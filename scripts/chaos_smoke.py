#!/usr/bin/env python
"""CI chaos lane: a daemon under an aggressive fault plan must stay correct.

The acceptance loop of the fault-injection work: with workers being
SIGKILLed, cache writes failing and tearing, and the wire dropping,
truncating, and stalling frames, a tenant-churn workload driven through
``repro serve --chaos`` must still finish with every verdict matching a
clean in-process baseline — chaos may cost latency and retries, never
answers.

1. prove the plan itself is deterministic (two injectors over the same
   spec make identical decisions — a failing run's seed replays);
2. compute the expected outcome of every event with a clean in-process
   service (no chaos anywhere);
3. start ``repro serve`` with the fault plan (pool-bound via
   ``--quick-slice 0`` so solves actually cross the chaos surfaces, disk
   cache so the cache points fire) and drive the same events through it
   from concurrent retrying clients;
4. assert: the run completes, zero verdict/fingerprint mismatches
   against the baseline, the error rate stays inside the lane's budget
   (0 for the default lane), the daemon's gauges are balanced, and the
   plan actually fired (a chaos lane that injected nothing is a broken
   lane, not a green one).

The plan spec is written to ``WORKDIR/fault-plan.txt`` before anything
runs, so a CI failure can be replayed verbatim.  ``--aggressive`` (the
nightly lane) scales up the workload and the fault budgets and tolerates
a small residual error rate — budgets are counts, so a burst can exhaust
one request's retries.

Run locally with::

    PYTHONPATH=src python scripts/chaos_smoke.py [WORKDIR] [--aggressive]
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.engine.config import EngineConfig                     # noqa: E402
from repro.faults import FaultInjector, FaultPlan                # noqa: E402
from repro.service.client import ServiceClient                   # noqa: E402
from repro.service.service import SolverService                  # noqa: E402
from repro.workload import (                                     # noqa: E402
    build_scenario,
    client_factory,
    inprocess_factory,
    run_events,
)

REPO_SRC = Path(__file__).resolve().parents[1] / "src"

SCENARIO = "tenant-churn"

#: Fast lane: a taste of every fault point, budgets small enough that
#: the client's default 3 retries always win (so zero errors expected).
FAST = dict(
    tenants=4,
    changes=4,
    concurrency=3,
    allowed_error_rate=0.0,
    spec=(
        "seed={seed};"
        "worker.kill:p=0.05,count=1;"
        "worker.hang:p=0.05,count=1,delay=0.1;"
        "cache.put.io:p=0.3,count=3;"
        "cache.put.torn:p=0.2,count=2;"
        "wire.drop:p=0.08,count=3;"
        "wire.truncate:p=0.06,count=2;"
        "wire.slow:p=0.1,count=6,delay=0.02"
    ),
)

#: Nightly lane: bigger stream, bigger budgets, and a small tolerated
#: residual error rate (fault bursts can outlast one request's retries).
AGGRESSIVE = dict(
    tenants=8,
    changes=10,
    concurrency=4,
    allowed_error_rate=0.02,
    spec=(
        "seed={seed};"
        "worker.kill:p=0.08,count=2;"
        "worker.hang:p=0.08,count=2,delay=0.2;"
        "cache.put.io:p=0.4,count=10;"
        "cache.put.torn:p=0.3,count=6;"
        "wire.drop:p=0.12,count=10;"
        "wire.truncate:p=0.08,count=6;"
        "wire.slow:p=0.15,count=20,delay=0.03"
    ),
)


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def check_plan_determinism(spec: str) -> None:
    """Two injectors over one plan must make identical decisions."""
    plan = FaultPlan.from_spec(spec)
    if FaultPlan.from_spec(plan.spec()).spec() != plan.spec():
        raise SystemExit("fault plan spec does not round-trip")
    one, two = FaultInjector(plan), FaultInjector(plan)
    for point in plan.points:
        seq1 = [one.fire(point.name) is not None for _ in range(256)]
        seq2 = [two.fire(point.name) is not None for _ in range(256)]
        if seq1 != seq2:
            raise SystemExit(
                f"fault point {point.name} is not deterministic"
            )
    print(f"plan determinism: ok ({len(plan.points)} points x 256 decisions)")


def spawn_serve(socket_path: Path, workdir: Path, spec: str) -> subprocess.Popen:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--socket", str(socket_path),
            "--jobs", "2", "--quick-slice", "0",
            "--cache", "disk", "--cache-dir", str(workdir / "cache"),
            "--log-file", str(workdir / "daemon.log"),
            "--chaos", spec,
        ],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if socket_path.exists():
            try:
                ServiceClient(str(socket_path), retries=0).close()
                return proc
            except OSError:
                pass
        if proc.poll() is not None:
            raise SystemExit(f"serve died during startup:\n{proc.stderr.read()}")
        time.sleep(0.05)
    proc.kill()
    raise SystemExit("serve did not come up within 60s")


def outcome_keys(result) -> list[tuple] | None:
    """What must reproduce for one event (None = skip the comparison).

    Status and fingerprint are deterministic facts about the formula; the
    model's literals are not (a different racer or the solo fallback can
    win under chaos), so they are deliberately NOT compared.  A retried
    ``close_session`` may legitimately report ``existed=False`` — the
    documented idempotency caveat — so it only has to succeed.
    """
    if result.kind == "close_session":
        return None
    return [(r.status, r.fingerprint) for r in result.responses]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("workdir", nargs="?", default="chaos-smoke")
    parser.add_argument("--aggressive", action="store_true",
                        help="nightly lane: bigger stream, bigger fault budgets")
    parser.add_argument("--seed", type=int, default=42,
                        help="plan + scenario seed (reprints on failure)")
    args = parser.parse_args()
    lane = AGGRESSIVE if args.aggressive else FAST

    workdir = Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    spec = lane["spec"].format(seed=args.seed)
    # First thing on disk: the exact plan, so any failure is replayable.
    (workdir / "fault-plan.txt").write_text(spec + "\n")
    print(f"fault plan: {spec}")

    check_plan_determinism(spec)

    events = build_scenario(
        SCENARIO, seed=args.seed,
        tenants=lane["tenants"], changes=lane["changes"],
    )
    print(f"scenario: {SCENARIO}, {len(events)} events")

    # Clean in-process baseline: the ground truth for every verdict.
    with SolverService(EngineConfig(jobs=2)) as service:
        baseline, wall = run_events(events, inprocess_factory(service))
    failed = [r for r in baseline if not r.ok]
    if failed:
        raise SystemExit(
            f"baseline run failed {len(failed)} events "
            f"(first: {failed[0].error})"
        )
    expected = [outcome_keys(r) for r in baseline]
    print(f"baseline: {len(events)} events in {wall:.2f}s, all ok")

    sock = workdir / "serve.sock"
    proc = spawn_serve(sock, workdir, spec)
    phases_ok = False
    try:
        results, wall = run_events(
            events, client_factory(str(sock)),
            concurrency=lane["concurrency"],
        )
        errors = [r for r in results if not r.ok]
        mismatches = []
        for r, want in zip(results, expected):
            if not r.ok or want is None:
                continue
            got = outcome_keys(r)
            if got != want:
                mismatches.append(
                    f"event {r.index} ({r.kind}): {got!r} != {want!r}"
                )
        print(
            f"chaos run: {len(events)} events in {wall:.2f}s, "
            f"{len(errors)} errors, {len(mismatches)} mismatches"
        )
        for line in mismatches[:10]:
            print(f"  mismatch: {line}")
        if mismatches:
            raise SystemExit(
                f"{len(mismatches)} wrong verdicts under chaos "
                f"(plan: {spec})"
            )
        allowed = int(lane["allowed_error_rate"] * len(events))
        if len(errors) > allowed:
            detail = "; ".join(
                f"event {r.index} ({r.kind}): {r.error}" for r in errors[:5]
            )
            raise SystemExit(
                f"{len(errors)} errored events exceeds the lane budget "
                f"({allowed}) — {detail}"
            )

        with ServiceClient(str(sock)) as client:
            health = client.health()
            frame = client.stats_frame()
        fired = {
            name: point["fired"]
            for name, point in health["faults"]["points"].items()
        }
        print(f"daemon-side faults fired: {fired}")
        if not any(fired[n] for n in fired if n.startswith(("wire.", "cache."))):
            raise SystemExit(
                "the plan never fired a wire/cache fault — the chaos lane "
                "is not exercising anything (budgets too small for this "
                "workload?)"
            )
        pool = health["engine"]["pool"]
        print(
            f"pool: generation {pool['generation']}, "
            f"{pool['solo_fallbacks']} solo fallbacks; "
            f"cache: degraded={health['engine']['cache']['degraded']}, "
            f"errors={health['engine']['cache']['errors']}"
        )
        for gauge in ("queued", "inflight"):
            if frame.get(gauge, 0) != 0:
                raise SystemExit(
                    f"gauge {gauge!r} = {frame[gauge]} after the run — "
                    f"a failure path leaked a slot"
                )
        print("chaos smoke: all green")
        phases_ok = True
    finally:
        try:
            with ServiceClient(str(sock)) as client:
                client.shutdown()
        except OSError:
            pass
        try:
            out, err = proc.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            out, err = proc.communicate(timeout=10)
            if phases_ok:
                raise SystemExit(
                    f"serve did not exit after shutdown\n"
                    f"stdout:\n{out}\nstderr:\n{err}"
                )
        else:
            if phases_ok and proc.returncode != 0:
                raise SystemExit(
                    f"serve exited {proc.returncode}\n"
                    f"stdout:\n{out}\nstderr:\n{err}"
                )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
