#!/usr/bin/env python
"""CI observability lane: boot ``repro serve``, load it, read live stats.

The acceptance loop of the observability layer:

1. start the daemon on a temp socket (with its per-second monitor);
2. drive a short ``repro loadgen --connect`` burst through it;
3. ``repro stats --json --connect`` must return a well-formed frame
   whose windowed rps is nonzero (the monitor's ring buffer remembers
   the burst even though it already ended) with a populated
   log-bucketed latency histogram;
4. ``repro stats --watch --json --frames 2`` must stream two frames
   over the subscribe op and exit cleanly;
5. shut the daemon down and assert exit code 0.

Run locally with::

    PYTHONPATH=src python scripts/stats_smoke.py [WORKDIR]
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.service.client import ServiceClient                   # noqa: E402

REPO_SRC = Path(__file__).resolve().parents[1] / "src"


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def run_cli(*args: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=_env(), capture_output=True, text=True, timeout=300,
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"repro {' '.join(args)} exited {proc.returncode}\n"
            f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
        )
    return proc.stdout


def spawn_serve(socket_path: Path, log_path: Path) -> subprocess.Popen:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--socket", str(socket_path),
            "--jobs", "2", "--log-file", str(log_path),
        ],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if socket_path.exists():
            try:
                ServiceClient(str(socket_path)).close()
                return proc
            except OSError:
                pass
        if proc.poll() is not None:
            raise SystemExit(f"serve died during startup:\n{proc.stderr.read()}")
        time.sleep(0.05)
    proc.kill()
    raise SystemExit("serve did not come up within 60s")


#: Keys every frame must carry (build_frame's wire contract).
FRAME_KEYS = {
    "ts", "uptime", "interval", "rps", "hit_rate",
    "requests", "solves", "cache_hits", "races", "errors",
    "inflight", "queued", "sessions", "latency",
}


def check_frame(frame: dict, context: str) -> None:
    missing = FRAME_KEYS - set(frame)
    assert not missing, f"{context}: frame missing keys {sorted(missing)}"
    assert frame["interval"] > 0, f"{context}: nonpositive interval"
    assert frame["uptime"] >= 0, f"{context}: negative uptime"
    latency = frame["latency"]
    assert latency["p50"] <= latency["p99"] <= latency["max"] or (
        latency["count"] == 0
    ), f"{context}: non-monotone latency summary {latency}"


def main() -> int:
    workdir = Path(sys.argv[1] if len(sys.argv) > 1 else "stats-smoke")
    workdir.mkdir(parents=True, exist_ok=True)
    sock = workdir / "serve.sock"
    log = workdir / "daemon.log"

    proc = spawn_serve(sock, log)
    try:
        run_cli(
            "loadgen", "sat-mixed", "--tenants", "2", "--changes", "4",
            "--concurrency", "2", "--connect", str(sock),
        )
        print("loadgen burst: ok")

        out = run_cli("stats", "--json", "--connect", str(sock))
        frame = json.loads(out)
        check_frame(frame, "one-shot")
        assert frame["rps"] > 0, f"expected nonzero windowed rps: {frame}"
        assert frame["requests"] > 0, f"no requests in the window: {frame}"
        hist = frame["latency_histogram"]
        assert hist["count"] > 0 and hist["buckets"], hist
        assert hist["count"] == sum(n for _, n in hist["buckets"]), hist
        print(
            f"one-shot frame: ok ({frame['rps']:.1f} rps over "
            f"{frame['window']:.0f}s, {hist['count']} latency samples)"
        )

        out = run_cli(
            "stats", "--watch", "--json", "--frames", "2",
            "--interval", "0.2", "--connect", str(sock),
        )
        frames = [json.loads(line) for line in out.splitlines() if line]
        assert len(frames) == 2, f"expected 2 watch frames, got {len(frames)}"
        for i, watched in enumerate(frames):
            check_frame(watched, f"watch[{i}]")
        print("watch stream: ok (2 frames)")

        with ServiceClient(str(sock)) as client:
            client.shutdown()
    finally:
        out, err = proc.communicate(timeout=60)
        if proc.returncode != 0:
            raise SystemExit(
                f"serve exited {proc.returncode}\nstdout:\n{out}\nstderr:\n{err}"
            )
    records = [json.loads(line) for line in log.read_text().splitlines()]
    assert any(r["event"] == "op" for r in records), "no op records logged"
    print("clean shutdown + structured log: ok")
    print("stats smoke: all green")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
