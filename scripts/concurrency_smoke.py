#!/usr/bin/env python
"""CI concurrency lane: two loadgen clients must overlap on one daemon.

The acceptance loop of the concurrent-engine work (single-flight table +
shared pool): distinct-fingerprint traffic from independent clients must
actually run concurrently end to end — daemon accept loop, service,
engine, worker pool — not serialize on any layer's big lock.

1. start ``repro serve`` pool-bound (``--quick-slice 0``, ``--jobs 2``)
   on a temp socket, and warm its worker pool with a small burst;
2. run two race-heavy scenario streams *back to back* through it
   (``tenant-churn`` and ``coloring-churn`` — disjoint session
   namespaces, so they can later share the daemon) and sum their walls;
3. run fresh same-shape streams (new seeds, so nothing is answered from
   the verdict cache) through the same daemon *simultaneously* from two
   client processes;
4. aggregate concurrent throughput must beat the serial baseline by
   1.3x — i.e. the two clients' pool round trips genuinely overlapped.

A scheduler hiccup on a loaded CI box can sink one trial, so the
concurrent phase gets up to three attempts (fresh seeds each) and
passes on the first that clears the bar.

Run locally with::

    PYTHONPATH=src python scripts/concurrency_smoke.py [WORKDIR]
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.service.client import ServiceClient                   # noqa: E402

REPO_SRC = Path(__file__).resolve().parents[1] / "src"

#: Two race-heavy streams with disjoint session namespaces
#: (``churn-*`` vs ``color-*``): concurrent clients never fight over a
#: session name, and distinct seeds keep every fingerprint cold.
SCENARIOS = ("tenant-churn", "coloring-churn")
TENANTS, CHANGES = 6, 8
SPEEDUP_BAR = 1.3
ATTEMPTS = 3


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def spawn_serve(socket_path: Path) -> subprocess.Popen:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--socket", str(socket_path),
            "--jobs", "2", "--quick-slice", "0",
        ],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if socket_path.exists():
            try:
                ServiceClient(str(socket_path)).close()
                return proc
            except OSError:
                pass
        if proc.poll() is not None:
            raise SystemExit(f"serve died during startup:\n{proc.stderr.read()}")
        time.sleep(0.05)
    proc.kill()
    raise SystemExit("serve did not come up within 60s")


def loadgen(scenario: str, seed: int, sock: Path, out: Path) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "loadgen", scenario,
            "--tenants", str(TENANTS), "--changes", str(CHANGES),
            "--seed", str(seed), "--connect", str(sock), "--out", str(out),
        ],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )


def finish(proc: subprocess.Popen, out: Path, context: str) -> dict:
    stdout, stderr = proc.communicate(timeout=300)
    if proc.returncode != 0:
        raise SystemExit(
            f"{context} exited {proc.returncode}\n"
            f"stdout:\n{stdout}\nstderr:\n{stderr}"
        )
    report = json.loads(out.read_text())
    if report["errors"]:
        raise SystemExit(f"{context}: {report['errors']} errored events")
    return report


def main() -> int:
    workdir = Path(sys.argv[1] if len(sys.argv) > 1 else "concurrency-smoke")
    workdir.mkdir(parents=True, exist_ok=True)
    sock = workdir / "serve.sock"

    proc = spawn_serve(sock)
    phases_ok = False
    try:
        # Warm the worker pool (fork + first-task costs land here, not in
        # either measured phase).
        warm = loadgen(SCENARIOS[0], 900, sock, workdir / "warm.json")
        finish(warm, workdir / "warm.json", "warm-up loadgen")

        # Serial baseline: each stream alone, summed walls.
        serial_events = 0
        serial_wall = 0.0
        for i, scenario in enumerate(SCENARIOS):
            out = workdir / f"serial-{scenario}.json"
            report = finish(
                loadgen(scenario, 11 + i, sock, out), out,
                f"serial {scenario}",
            )
            serial_events += report["events"]
            serial_wall += report["wall_time"]
        serial_rps = serial_events / serial_wall
        print(
            f"serial baseline: {serial_events} events in {serial_wall:.2f}s "
            f"= {serial_rps:.0f} rps"
        )

        for attempt in range(ATTEMPTS):
            base_seed = 100 * (attempt + 2)
            outs = [
                workdir / f"concurrent-{attempt}-{scenario}.json"
                for scenario in SCENARIOS
            ]
            procs = [
                loadgen(scenario, base_seed + i, sock, outs[i])
                for i, scenario in enumerate(SCENARIOS)
            ]
            reports = [
                finish(p, out, f"concurrent {scenario}")
                for p, out, scenario in zip(procs, outs, SCENARIOS)
            ]
            events = sum(r["events"] for r in reports)
            wall = max(r["wall_time"] for r in reports)
            aggregate_rps = events / wall
            speedup = aggregate_rps / serial_rps
            print(
                f"concurrent attempt {attempt}: {events} events in "
                f"{wall:.2f}s = {aggregate_rps:.0f} rps "
                f"({speedup:.2f}x serial)"
            )
            if speedup > SPEEDUP_BAR:
                print(
                    f"concurrency smoke: all green "
                    f"({speedup:.2f}x > {SPEEDUP_BAR}x)"
                )
                break
        else:
            raise SystemExit(
                f"two concurrent clients never beat the serial baseline "
                f"by {SPEEDUP_BAR}x in {ATTEMPTS} attempts — "
                f"distinct-fingerprint queries are serializing somewhere"
            )

        phases_ok = True
    finally:
        # Always try to stop the daemon, but never let teardown mask a
        # phase failure: only raise about the daemon when the phases
        # themselves all passed.
        try:
            with ServiceClient(str(sock)) as client:
                client.shutdown()
        except OSError:
            pass
        try:
            out, err = proc.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            out, err = proc.communicate(timeout=10)
            if phases_ok:
                raise SystemExit(
                    f"serve did not exit after shutdown\n"
                    f"stdout:\n{out}\nstderr:\n{err}"
                )
        else:
            if phases_ok and proc.returncode != 0:
                raise SystemExit(
                    f"serve exited {proc.returncode}\n"
                    f"stdout:\n{out}\nstderr:\n{err}"
                )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
