#!/usr/bin/env python
"""CI trace lane: one trace id must survive client → router → node → solver.

The acceptance loop of the tracing tier: a sampled solve burst driven
through ``repro route`` over two ``repro serve --trace-log`` nodes must
leave JSONL span logs that reassemble into at least one *complete*
cross-node trace tree — the client root span, the router's
``router.forward`` hop, the owning node's ``daemon.solve`` /
``engine.solve`` stages, and the race's ``pool.wait`` + ``solve``
spans, all under a single trace id with a consistent parent chain.
Then a chaos phase drops the wire twice under an open client span and
the retries must surface as ``retry`` child spans of the same trace.
Finally the ``repro trace`` CLI itself must reconstruct the waterfall
from the same logs.

Node and router tracers run with ``--trace-sample 0``: every span they
emit is *continued* from the driving client's wire context, so a broken
propagation hop shows up as a missing stage, not as a lucky self-rooted
span.

Every process writes its spans under WORKDIR (``node-a-trace.jsonl``,
``node-b-trace.jsonl``, ``router-trace.jsonl``, ``client-trace.jsonl``);
the CI step uploads them on failure.

Run locally with::

    PYTHONPATH=src python scripts/trace_smoke.py [WORKDIR]
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cnf.generators import random_planted_ksat             # noqa: E402
from repro.obs.tracing import (                                  # noqa: E402
    Tracer,
    group_traces,
    load_spans,
    trace_tree,
)
from repro.service.client import ServiceClient                   # noqa: E402
from repro.service.requests import SolveRequest                  # noqa: E402

REPO_SRC = Path(__file__).resolve().parents[1] / "src"

BURST = 8

#: The stages a complete cross-node tree must contain, in parent order.
REQUIRED_CHAIN = ("client.solve", "router.forward", "daemon.solve",
                  "engine.solve")
#: The race-level spans that must hang off ``engine.solve``.
REQUIRED_LEAVES = ("pool.wait", "solve")


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.pop("REPRO_CHAOS", None)
    env.pop("REPRO_AUTH_TOKEN", None)
    return env


def _await_listening(proc: subprocess.Popen, name: str) -> str:
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            raise SystemExit(f"{name} died during startup")
        match = re.search(r"listening on (tcp://\S+)", line or "")
        if match:
            return match.group(1)
    proc.kill()
    raise SystemExit(f"{name} did not come up within 60s")


def spawn_node(workdir: Path, name: str) -> tuple[subprocess.Popen, str]:
    """Boot a traced node; jobs=2 + zero quick slice force the fan-out
    race so every solve produces pool.wait / solve spans."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--tcp", "127.0.0.1:0",
            "--jobs", "2", "--quick-slice", "0",
            "--cache", "disk", "--cache-dir", str(workdir / f"cache-{name}"),
            "--log-file", str(workdir / f"node-{name}.log"),
            "--trace-log", str(workdir / f"node-{name}-trace.jsonl"),
            "--trace-sample", "0",
        ],
        env=_env(), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True,
    )
    address = _await_listening(proc, f"node {name}")
    print(f"node {name}: {address}")
    return proc, address


def spawn_router(workdir: Path, nodes: list[str]) -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "route",
            "--listen", "tcp://127.0.0.1:0",
            *[arg for node in nodes for arg in ("--node", node)],
            "--health-interval", "0.3",
            "--log-file", str(workdir / "router.log"),
            "--trace-log", str(workdir / "router-trace.jsonl"),
            "--trace-sample", "0",
        ],
        env=_env(), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True,
    )
    address = _await_listening(proc, "router")
    print(f"router: {address}")
    return proc, address


def trace_logs(workdir: Path) -> list[str]:
    return [
        str(workdir / name)
        for name in ("client-trace.jsonl", "router-trace.jsonl",
                     "node-a-trace.jsonl", "node-b-trace.jsonl")
    ]


def _chain_of(bucket: list[dict]) -> dict[str, dict] | None:
    """The required stage chain of one trace, or None if incomplete."""
    by_name: dict[str, dict] = {}
    for span in bucket:
        by_name.setdefault(span["name"], span)
    if any(name not in by_name for name in REQUIRED_CHAIN + REQUIRED_LEAVES):
        return None
    parent = None
    for name in REQUIRED_CHAIN:
        span = by_name[name]
        if parent is not None and span["parent"] != parent["span"]:
            return None
        parent = span
    engine = by_name["engine.solve"]
    for name in REQUIRED_LEAVES:
        if by_name[name]["parent"] != engine["span"]:
            return None
    return by_name


def check_complete_tree(workdir: Path, client_tracer: Tracer) -> None:
    """≥1 burst trace must reassemble into the full cross-node chain."""
    want = {
        s["trace"] for s in client_tracer.spans()
        if s["name"] == "client.solve"
    }
    traces = group_traces(load_spans(trace_logs(workdir)))
    complete = []
    for tid in want:
        chain = _chain_of(traces.get(tid, []))
        if chain is None:
            continue
        if any(chain[name]["dur"] <= 0 for name in REQUIRED_CHAIN):
            continue
        roots, _children = trace_tree(traces[tid])
        if [r["name"] for r in roots] != ["client.solve"]:
            continue
        complete.append(tid)
    print(
        f"trace trees: {len(complete)}/{len(want)} complete "
        f"(chain: {' -> '.join(REQUIRED_CHAIN)} + {REQUIRED_LEAVES})"
    )
    if not complete:
        seen = {
            tid: sorted({s['name'] for s in traces.get(tid, [])})
            for tid in sorted(want)
        }
        raise SystemExit(f"no complete cross-node trace tree — saw {seen!r}")


def check_chaos_retries(workdir: Path) -> None:
    """Two dropped frames under one open trace → two retry child spans.

    ``wire.drop`` fires daemon-side (pre-dispatch), so the phase boots
    its own chaos node: the drops must not poison the burst cluster.
    """
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--tcp", "127.0.0.1:0", "--jobs", "1",
            "--log-file", str(workdir / "node-chaos.log"),
            "--chaos", "seed=7;wire.drop:p=1,count=2",
        ],
        env=_env(), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True,
    )
    try:
        address = _await_listening(proc, "chaos node")
        tracer = Tracer(
            service="client", sample=1.0,
            log_path=str(workdir / "client-trace.jsonl"),
        )
        f, _ = random_planted_ksat(12, 36, rng=777)
        with ServiceClient(address, tracer=tracer) as client:
            response = client.solve(SolveRequest(formula=f, seed=0))
            retried = client.retried
    finally:
        stop(proc)
    if response.status not in ("sat", "unsat"):
        raise SystemExit(f"chaos solve returned {response.status!r}")
    if retried != 2:
        raise SystemExit(f"expected 2 wire.drop retries, saw {retried}")
    spans = tracer.spans()
    root = next(s for s in spans if s["name"] == "client.solve")
    retries = [s for s in spans if s["name"] == "retry"]
    bad = [
        s for s in retries
        if s["trace"] != root["trace"] or s["parent"] != root["span"]
    ]
    if len(retries) != 2 or bad:
        raise SystemExit(
            f"retries did not land as child spans of the request trace: "
            f"{retries!r}"
        )
    print(f"chaos retries: ok (2 retry spans under trace {root['trace'][:8]})")


def check_trace_cli(workdir: Path) -> None:
    """``repro trace`` must rebuild the waterfall from the same logs."""
    result = subprocess.run(
        [sys.executable, "-m", "repro", "trace", *trace_logs(workdir),
         "--limit", "3"],
        env=_env(), capture_output=True, text=True, timeout=60,
    )
    if result.returncode != 0:
        raise SystemExit(f"repro trace failed:\n{result.stdout}{result.stderr}")
    for needle in ("trace ", "client.solve", "daemon.solve"):
        if needle not in result.stdout:
            raise SystemExit(
                f"repro trace output missing {needle!r}:\n{result.stdout}"
            )
    print("repro trace CLI: ok — sample waterfall:")
    for line in result.stdout.splitlines()[:8]:
        print(f"  {line}")


def stop(proc: subprocess.Popen | None, *, hard: bool = False) -> None:
    if proc is None or proc.poll() is not None:
        return
    proc.send_signal(signal.SIGKILL if hard else signal.SIGTERM)
    try:
        proc.wait(timeout=15)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=15)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("workdir", nargs="?", default="trace-smoke")
    args = parser.parse_args()
    workdir = Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)

    node_a = node_b = router = None
    try:
        node_a, addr_a = spawn_node(workdir, "a")
        node_b, addr_b = spawn_node(workdir, "b")
        router, router_addr = spawn_router(workdir, [addr_a, addr_b])

        # Sampled burst: distinct instances (no cache hits) so every
        # trace reaches the solver race on whichever node owns its key.
        client_tracer = Tracer(
            service="client", sample=1.0,
            log_path=str(workdir / "client-trace.jsonl"),
        )
        with ServiceClient(router_addr, tracer=client_tracer) as client:
            for i in range(BURST):
                f, _ = random_planted_ksat(12, 36, rng=100 + i)
                r = client.solve(SolveRequest(formula=f, seed=0))
                if r.status not in ("sat", "unsat"):
                    raise SystemExit(f"burst solve returned {r.status!r}")
        print(f"burst: {BURST} traced solves through the router")

        # Nodes flush spans as they finish; give stragglers a moment.
        time.sleep(0.5)
        check_complete_tree(workdir, client_tracer)
        check_chaos_retries(workdir)
        check_trace_cli(workdir)
        print("trace smoke: ok")
        return 0
    except BaseException:
        print(
            f"\nFAILED — span logs: {' '.join(trace_logs(workdir))}",
            file=sys.stderr,
        )
        raise
    finally:
        stop(router)
        stop(node_b)
        stop(node_a)


if __name__ == "__main__":
    raise SystemExit(main())
