#!/usr/bin/env python
"""CI cluster lane: two nodes + a router must equal one clean node.

The acceptance loop of the multi-node tier: a tenant-churn workload
driven through ``repro route`` over two token-guarded ``repro serve
--tcp`` nodes — with anti-entropy sync replicating their verdict caches
and a chaos plan dropping sync pulls and killing a pool worker — must
finish with every verdict matching a clean single-node in-process
baseline.  Then one node is SIGKILLed and the same stream must complete
again, errorless, against the survivor.

1. compute the expected outcome of every event with a clean in-process
   service (no cluster, no chaos anywhere);
2. boot node A, then node B with ``--peer`` at A (pull replication),
   both under one auth token and a seeded chaos plan, then a router
   across them;
3. phase 1: drive the stream through the router from concurrent
   retrying clients — zero errors, zero verdict mismatches;
4. prove replication end-to-end: a verdict node A computed must land on
   node B via sync (nonzero ``sync_merged``) and be answered *from
   cache* on B with the identical status/fingerprint/model;
5. phase 2: SIGKILL node A, re-drive the stream through the router —
   zero errors, zero mismatches, and the router's cluster picture shows
   A down and failovers absorbed.

Every node writes a structured log under WORKDIR (``node-a.log``,
``node-b.log``, ``router.log``); the CI step uploads them on failure.

Run locally with::

    PYTHONPATH=src python scripts/cluster_smoke.py [WORKDIR]
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.engine.config import EngineConfig                     # noqa: E402
from repro.service.client import ServiceClient                   # noqa: E402
from repro.service.requests import SolveRequest                  # noqa: E402
from repro.service.service import SolverService                  # noqa: E402
from repro.cnf.generators import random_planted_ksat             # noqa: E402
from repro.workload import (                                     # noqa: E402
    build_scenario,
    client_factory,
    inprocess_factory,
    run_events,
)

REPO_SRC = Path(__file__).resolve().parents[1] / "src"

SCENARIO = "tenant-churn"
TENANTS = 3
CHANGES = 3
CONCURRENCY = 3
TOKEN = "cluster-smoke-token"

#: Seeded chaos on both nodes: drop a few sync pulls mid-replication
#: (the cursor never advances, so the re-pull converges) and kill one
#: pool worker (the generation bump + retry machinery absorbs it).
CHAOS = "seed={seed};sync.drop:p=0.3,count=3;worker.kill:p=0.05,count=1"


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.pop("REPRO_CHAOS", None)
    env["REPRO_AUTH_TOKEN"] = TOKEN
    return env


def spawn_node(workdir: Path, name: str, seed: int,
               peers: list[str]) -> tuple[subprocess.Popen, str]:
    """Boot ``repro serve --tcp 127.0.0.1:0`` and return (proc, address)."""
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--tcp", "127.0.0.1:0",
        "--jobs", "2", "--quick-slice", "0",
        "--cache", "disk", "--cache-dir", str(workdir / f"cache-{name}"),
        "--log-file", str(workdir / f"node-{name}.log"),
        "--auth-token", TOKEN,
        "--chaos", CHAOS.format(seed=seed),
        "--sync-interval", "0.2",
    ]
    for peer in peers:
        cmd += ["--peer", peer]
    proc = subprocess.Popen(
        cmd, env=_env(), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            raise SystemExit(f"node {name} died during startup")
        match = re.search(r"listening on (tcp://\S+)", line or "")
        if match:
            address = match.group(1)
            print(f"node {name}: {address} (log: {workdir}/node-{name}.log)")
            return proc, address
    proc.kill()
    raise SystemExit(f"node {name} did not come up within 60s")


def spawn_router(workdir: Path, nodes: list[str]) -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "route",
            "--listen", "tcp://127.0.0.1:0",
            *[arg for node in nodes for arg in ("--node", node)],
            "--auth-token", TOKEN,
            "--health-interval", "0.3",
            "--log-file", str(workdir / "router.log"),
        ],
        env=_env(), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            raise SystemExit("router died during startup")
        match = re.search(r"listening on (tcp://\S+)", line or "")
        if match:
            address = match.group(1)
            print(f"router: {address} (log: {workdir}/router.log)")
            return proc, address
    proc.kill()
    raise SystemExit("router did not come up within 60s")


def outcome_keys(result) -> list[tuple] | None:
    """(status, fingerprint) per response; None = skip (close replay)."""
    if result.kind == "close_session":
        return None
    return [(r.status, r.fingerprint) for r in result.responses]


def drive(events, address: str, expected, phase: str) -> None:
    results, wall = run_events(
        events,
        client_factory(address, auth_token=TOKEN),
        concurrency=CONCURRENCY,
    )
    errors = [r for r in results if not r.ok]
    mismatches = []
    for r, want in zip(results, expected):
        if not r.ok or want is None:
            continue
        got = outcome_keys(r)
        if got != want:
            mismatches.append(f"event {r.index} ({r.kind}): {got!r} != {want!r}")
    print(
        f"{phase}: {len(events)} events in {wall:.2f}s, "
        f"{len(errors)} errors, {len(mismatches)} mismatches"
    )
    for line in mismatches[:10]:
        print(f"  mismatch: {line}")
    if errors:
        detail = "; ".join(
            f"event {r.index} ({r.kind}): {r.error}" for r in errors[:5]
        )
        raise SystemExit(f"{phase}: {len(errors)} errored events — {detail}")
    if mismatches:
        raise SystemExit(f"{phase}: {len(mismatches)} wrong verdicts")


def check_cross_node_hit(addr_a: str, addr_b: str) -> None:
    """A verdict solved on A must be served *from cache* on B via sync."""
    f, _ = random_planted_ksat(16, 48, rng=424242)
    with ServiceClient(addr_a, auth_token=TOKEN) as client:
        origin = client.solve(SolveRequest(formula=f, seed=0))
    with ServiceClient(addr_b, auth_token=TOKEN) as client:
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            counters = client.stats()["metrics"]["counters"]
            sync = client.health().get("sync") or {}
            cursor = (sync.get("peers", {}).get(addr_a) or {}).get("cursor", 0)
            if counters.get("sync_merged", 0) >= 1 and cursor >= 1:
                replica = client.solve(SolveRequest(formula=f, seed=0))
                if replica.from_cache:
                    break
            time.sleep(0.1)
        else:
            raise SystemExit(
                "node B never served node A's verdict from its replica "
                f"(sync status: {sync!r})"
            )
    if (replica.status, replica.fingerprint) != (origin.status, origin.fingerprint):
        raise SystemExit(
            f"replicated verdict diverged: {replica.status}/"
            f"{replica.fingerprint} != {origin.status}/{origin.fingerprint}"
        )
    if origin.assignment is not None and replica.assignment != origin.assignment:
        raise SystemExit("replicated model diverged from the origin's")
    print(
        f"cross-node hit: ok ({counters.get('sync_merged', 0)} merged, "
        f"cursor {cursor})"
    )


def wait_node_down(router_addr: str, dead: str) -> dict:
    with ServiceClient(router_addr, auth_token=TOKEN) as client:
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            picture = client.cluster_health()
            if picture["nodes"].get(dead, {}).get("alive") is False:
                return picture
            time.sleep(0.1)
    raise SystemExit(f"router never noticed {dead} going down")


def stop(proc: subprocess.Popen | None, *, hard: bool = False) -> None:
    if proc is None or proc.poll() is not None:
        return
    proc.send_signal(signal.SIGKILL if hard else signal.SIGTERM)
    try:
        proc.wait(timeout=15)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=15)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("workdir", nargs="?", default="cluster-smoke")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()
    workdir = Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)

    events = build_scenario(
        SCENARIO, seed=args.seed, tenants=TENANTS, changes=CHANGES,
    )
    print(f"scenario: {SCENARIO}, {len(events)} events")

    # Clean single-node baseline: the ground truth for every verdict.
    with SolverService(EngineConfig(jobs=2)) as service:
        baseline, wall = run_events(events, inprocess_factory(service))
    failed = [r for r in baseline if not r.ok]
    if failed:
        raise SystemExit(f"baseline failed {len(failed)} events")
    expected = [outcome_keys(r) for r in baseline]
    print(f"baseline: {len(events)} events in {wall:.2f}s, all ok")

    node_a = node_b = router = None
    try:
        node_a, addr_a = spawn_node(workdir, "a", args.seed, peers=[])
        node_b, addr_b = spawn_node(
            workdir, "b", args.seed + 1, peers=[addr_a]
        )
        router, router_addr = spawn_router(workdir, [addr_a, addr_b])

        drive(events, router_addr, expected, "phase 1 (both nodes)")
        check_cross_node_hit(addr_a, addr_b)

        print("SIGKILL node a")
        stop(node_a, hard=True)
        # Race the prober: distinct solves fired immediately after the
        # kill.  Keys the dead node owned hit its corpse first and must
        # fail over to B mid-request — errorless either way.
        with ServiceClient(router_addr, auth_token=TOKEN) as client:
            for i in range(12):
                f, _ = random_planted_ksat(12, 36, rng=900 + i)
                r = client.solve(SolveRequest(formula=f, seed=0))
                if r.status not in ("sat", "unsat"):
                    raise SystemExit(f"post-kill solve returned {r.status!r}")
        picture = wait_node_down(router_addr, addr_a)
        print(
            f"router sees: "
            f"{[(a, s['alive']) for a, s in picture['nodes'].items()]}"
        )

        drive(events, router_addr, expected, "phase 2 (one node dead)")

        with ServiceClient(router_addr, auth_token=TOKEN) as client:
            counters = client.cluster_health()["router"]
        print(
            f"router counters: routed={counters['routed']} "
            f"failovers={counters['failovers']} "
            f"unrouted={counters['unrouted']}"
        )
        if counters["routed"] == 0:
            raise SystemExit("router relayed nothing — lane is broken")
        if counters["unrouted"]:
            raise SystemExit(
                f"{counters['unrouted']} requests found no reachable node"
            )
        if counters["failovers"] == 0:
            # The prober can win the post-kill race and re-home every
            # key before a relay ever touches the corpse; the errorless
            # burst above still proved the behavioral failover.
            print("note: prober re-homed all keys before a counted failover")
        print("cluster smoke: ok")
        return 0
    except BaseException:
        print(
            f"\nFAILED — per-node logs: {workdir}/node-a.log "
            f"{workdir}/node-b.log {workdir}/router.log",
            file=sys.stderr,
        )
        raise
    finally:
        stop(router)
        stop(node_b)
        stop(node_a)


if __name__ == "__main__":
    raise SystemExit(main())
