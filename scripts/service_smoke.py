#!/usr/bin/env python
"""CI service lane: boot ``repro serve``, run a client round trip, shut down.

The round trip is the acceptance loop of the service layer:

1. start the daemon on a temp socket with the persistent disk cache;
2. open a named session (solve), apply a loosening change (re-solved by
   revalidation — no solver), apply a tightening change (a real
   re-solve);
3. shut the daemon down cleanly and assert exit code 0;
4. start a *second* daemon over the same cache directory and assert the
   original instance comes back as a cross-process cache hit.

The daemon log lands in ``service-smoke/daemon.log`` (uploaded as a CI
artifact on failure).  Run locally with::

    PYTHONPATH=src python scripts/service_smoke.py [WORKDIR]
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cnf.clause import Clause                              # noqa: E402
from repro.cnf.generators import random_planted_ksat             # noqa: E402
from repro.core.change import (                                  # noqa: E402
    AddClause,
    AddVariable,
    ChangeSet,
    RemoveClause,
)
from repro.service.client import ServiceClient                   # noqa: E402
from repro.service.requests import ChangeRequest, SolveRequest   # noqa: E402


def spawn(socket_path: Path, cache_dir: Path, log_path: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--socket", str(socket_path),
            "--cache", "disk", "--cache-dir", str(cache_dir),
            "--jobs", "2", "--log-file", str(log_path),
        ],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if socket_path.exists():
            try:
                ServiceClient(str(socket_path)).close()
                return proc
            except OSError:
                pass
        if proc.poll() is not None:
            raise SystemExit(f"serve died during startup:\n{proc.stderr.read()}")
        time.sleep(0.05)
    proc.kill()
    raise SystemExit("serve did not come up within 60s")


def stop(proc: subprocess.Popen) -> None:
    out, err = proc.communicate(timeout=60)
    if proc.returncode != 0:
        raise SystemExit(
            f"serve exited with {proc.returncode}\nstdout:\n{out}\nstderr:\n{err}"
        )


def main() -> int:
    workdir = Path(sys.argv[1] if len(sys.argv) > 1 else "service-smoke")
    workdir.mkdir(parents=True, exist_ok=True)
    sock = workdir / "serve.sock"
    cache_dir = workdir / "cache"
    log = workdir / "daemon.log"

    formula, _witness = random_planted_ksat(24, 80, rng=11)

    proc = spawn(sock, cache_dir, log)
    with ServiceClient(str(sock)) as client:
        opened = client.solve(SolveRequest(formula=formula, session="ci", seed=0))
        assert opened.status == "sat", opened
        print(f"solve: {opened.status} via {opened.source}")

        loosened = client.change(ChangeRequest(
            "ci",
            ChangeSet([RemoveClause(formula.clauses[0]), AddVariable()]),
            seed=0,
        ))
        assert loosened.source == "revalidation", loosened
        print(f"loosening change: re-solved via {loosened.source}")

        model = opened.assignment
        breaking = Clause([
            -v if model.get(v, False) else v
            for v in sorted(formula.variables)[:3]
        ])
        tightened = client.change(ChangeRequest(
            "ci", ChangeSet([AddClause(breaking)]), seed=0,
        ))
        assert tightened.status in ("sat", "unsat"), tightened
        print(f"tightening change: {tightened.status} via {tightened.source}")
        client.shutdown()
    stop(proc)
    print("clean shutdown: ok")

    # Restart over the same cache directory: the cross-process hit.
    proc = spawn(sock, cache_dir, log)
    with ServiceClient(str(sock)) as client:
        warm = client.solve(SolveRequest(formula=formula, seed=0))
        assert warm.status == "sat", warm
        assert warm.from_cache, "expected a cross-process disk-cache hit"
        stats = client.stats()
        assert stats["engine"]["solver_calls"] == 0, stats
        print(f"cross-process cache hit: ok ({stats['cache']['hits']} hits)")
        client.shutdown()
    stop(proc)
    print("service smoke: all green")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
