"""Live observability: histograms, metric frames, and the watch stream.

Run:  python examples/metrics_watch.py

Demonstrates the observability layer end to end: the log-bucketed
:class:`~repro.LatencyHistogram` (merge per-worker shards, read bucket-
resolved percentiles), the :class:`~repro.MetricsRegistry` every
:class:`~repro.SolverService` publishes into, and an in-process
``repro serve`` daemon streaming per-interval metric frames to a
subscriber over its ``watch`` op while a load burst runs — exactly what
``repro stats --watch --connect SOCKET`` renders.
"""

import tempfile
import threading
from pathlib import Path

from repro import EngineConfig, LatencyHistogram, ServiceClient, SolverService
from repro.service.daemon import ServiceDaemon
from repro.workload import build_scenario, client_factory, run_events


def histogram_basics() -> None:
    print("== Log-bucketed histograms ==")
    # Two workers observe different latency mixes; folding their shards
    # is exact — bucket counts just add.
    fast = LatencyHistogram.of([0.0008, 0.0011, 0.0009, 0.0012])
    slow = LatencyHistogram.of([0.040, 0.055, 0.120])
    merged = fast.copy().merge(slow)
    summary = merged.summary()
    print(f"merged {merged.count} samples: "
          f"p50 {summary['p50'] * 1e3:.2f}ms, p99 {summary['p99'] * 1e3:.2f}ms, "
          f"max {summary['max'] * 1e3:.2f}ms (max is exact)")
    # The JSON form is what BENCH_workload.json rows carry.
    data = merged.to_dict()
    print(f"serialized: {len(data['buckets'])} nonzero buckets, "
          f"round-trips to p99 {LatencyHistogram.from_dict(data).percentile(99) * 1e3:.2f}ms")


def registry_basics() -> None:
    print("\n== The service's metrics registry ==")
    with SolverService(EngineConfig(jobs=1)) as service:
        events = build_scenario("sat-mixed", seed=3, tenants=2, changes=3)
        from repro.workload import inprocess_factory

        run_events(events, inprocess_factory(service))
        snap = service.metrics.snapshot()
        print(f"counters: {snap['counters']}")
        print(f"per-session requests: {snap['families'].get('session_requests')}")
        latency = snap["histograms"]["solve_latency"]
        print(f"solve latency: {latency['count']} samples, "
              f"p99 {latency['p99'] * 1e3:.2f}ms")


def daemon_watch() -> None:
    print("\n== Watching a daemon under load ==")
    with tempfile.TemporaryDirectory() as tmp:
        sock = str(Path(tmp) / "svc.sock")
        daemon = ServiceDaemon(
            sock, SolverService(EngineConfig(jobs=1)), monitor_interval=0.2
        )
        thread = daemon.start()

        events = build_scenario("tenant-churn", seed=7, tenants=3, changes=4)
        loader = threading.Thread(
            target=run_events, args=(events, client_factory(sock)),
            kwargs={"concurrency": 2},
        )
        loader.start()

        # Subscribe: the daemon pushes one frame per interval on this
        # connection; each subscriber gets its own diffing cursor.
        with ServiceClient(sock) as client:
            for frame in client.watch(interval=0.25, count=4):
                lat = frame["latency"]
                print(f"  [{frame['uptime']:5.1f}s] {frame['rps']:6.1f} rps  "
                      f"p99 {lat['p99'] * 1e3:7.2f}ms  "
                      f"hit {frame['hit_rate'] * 100:5.1f}%  "
                      f"inflight {frame['inflight']:.0f}")
        loader.join()

        # The one-shot frame folds the monitor's ring-buffer history, so
        # the burst's rate is still visible after the burst ended.
        with ServiceClient(sock) as client:
            frame = client.stats_frame(window=60.0)
            client.shutdown()
        thread.join(timeout=10)
        print(f"one-shot after the burst: {frame['rps']:.1f} rps over the "
              f"{frame['window']:.0f}s window, "
              f"{frame['latency_histogram']['count']} latency samples")


def main() -> None:
    histogram_basics()
    registry_basics()
    daemon_watch()
    print("\nOK: observability end to end.")


if __name__ == "__main__":
    main()
