"""The SolverService facade: typed requests, tenants, a daemon round trip.

Run:  python examples/solver_service.py

Demonstrates the serving path of the reproduction: one
:class:`~repro.service.SolverService` hosting several named incremental
sessions over a single shared engine, an async submission, and the same
service exposed through an in-process ``repro serve`` daemon + client
pair speaking packed wire bytes over a Unix socket.
"""

import tempfile
from pathlib import Path

from repro import (
    ChangeRequest,
    EngineConfig,
    ServiceClient,
    SolveRequest,
    SolverService,
)
from repro.cnf.clause import Clause
from repro.cnf.generators import random_planted_ksat
from repro.core.change import AddClause, AddVariable, ChangeSet, RemoveClause
from repro.service.daemon import ServiceDaemon


def main() -> None:
    print("== Multi-tenant service ==")
    with SolverService(EngineConfig(jobs=1)) as service:
        # Two tenants, one engine, one cache.
        for tenant, rng in (("cpu-team", 3), ("dsp-team", 4)):
            formula, _ = random_planted_ksat(30, 100, rng=rng)
            response = service.solve(
                SolveRequest(formula=formula, session=tenant, seed=0)
            )
            print(f"{tenant}: {response.status} via {response.source}")

        # An EC stream against one tenant: loosen (revalidated), tighten.
        session = service.session("cpu-team")
        loosened = service.change(ChangeRequest(
            "cpu-team",
            ChangeSet([RemoveClause(session.formula.clauses[0]), AddVariable()]),
            seed=0,
        ))
        print(f"cpu-team loosening: via {loosened.source} "
              f"(regime: {loosened.regime})")
        model = session.assignment
        breaking = Clause([
            -v if model.get(v, False) else v
            for v in sorted(session.formula.variables)[:3]
        ])
        tightened = service.change(ChangeRequest(
            "cpu-team", ChangeSet([AddClause(breaking)]), seed=0,
        ))
        print(f"cpu-team tightening: {tightened.status} via {tightened.source}")

        # Async submission: enqueue, then collect.
        extra, _ = random_planted_ksat(20, 66, rng=9)
        pending = service.submit(SolveRequest(formula=extra, seed=0))
        print(f"submitted query: {pending.result().status} "
              f"(engine races so far: {service.engine.stats.races})")

    print("\n== Daemon round trip ==")
    with tempfile.TemporaryDirectory() as tmp:
        socket_path = str(Path(tmp) / "svc.sock")
        daemon = ServiceDaemon(
            socket_path, SolverService(EngineConfig(jobs=1))
        )
        daemon.start()
        formula, _ = random_planted_ksat(24, 80, rng=7)
        with ServiceClient(socket_path) as client:
            first = client.solve(SolveRequest(formula=formula, seed=0))
            again = client.solve(SolveRequest(formula=formula, seed=0))
            print(f"first: {first.status} via {first.source}")
            print(f"again: {again.status} via {again.source} "
                  f"(from_cache: {again.from_cache})")
            client.shutdown()

    print("\nOK: solver service end to end.")


if __name__ == "__main__":
    main()
