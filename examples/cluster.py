"""The multi-node tier: TCP nodes, auth, cache sync, and the router.

Run:  python examples/cluster.py

Boots a three-node cluster *inside this process* (three
:class:`~repro.service.ServiceDaemon` instances on ephemeral TCP ports,
each with its own disk cache, sharing one auth token), replicates a
verdict from node A to node B over anti-entropy sync, then puts a
:class:`~repro.cluster.RouterDaemon` in front and shows fingerprint
routing, session pinning, aggregated stats, and failover after a node
dies.  Everything an operator would run as ``repro serve --tcp`` /
``repro route`` — see the README's "Multi-node serving" section for the
CLI spelling.
"""

import tempfile
import time
from pathlib import Path

from repro import EngineConfig, ServiceClient, SolveRequest, SolverService
from repro.cluster import CacheSyncer, RouterDaemon
from repro.cnf.generators import random_planted_ksat
from repro.service.daemon import ServiceDaemon

TOKEN = "example-cluster-token"


def boot_node(workdir: Path, name: str) -> ServiceDaemon:
    daemon = ServiceDaemon(
        None,
        SolverService(EngineConfig(
            jobs=1, cache="disk", cache_dir=str(workdir / f"cache-{name}"),
        )),
        log_path=str(workdir / f"{name}.log"),
        tcp_address="127.0.0.1:0",     # ephemeral port, reported after bind
        auth_token=TOKEN,
    )
    daemon.start()
    (address,) = daemon.addresses
    print(f"node {name}: {address}")
    return daemon


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        print("== Three TCP nodes, one shared token ==")
        nodes = {name: boot_node(workdir, name) for name in "abc"}
        addr = {name: d.addresses[0] for name, d in nodes.items()}

        print("\n== Anti-entropy replication (b pulls a) ==")
        formula, _ = random_planted_ksat(30, 100, rng=7)
        with ServiceClient(addr["a"], auth_token=TOKEN) as client:
            origin = client.solve(SolveRequest(formula=formula, seed=0))
        print(f"node a solved: {origin.status} fp={origin.fingerprint[:16]}…")

        # The daemon runs this for you under `repro serve --peer`.
        syncer = CacheSyncer(
            nodes["b"].service.engine.cache, [addr["a"]],
            auth_token=TOKEN, interval=0.1,
        )
        merged = syncer.sync_once()
        syncer.stop()
        with ServiceClient(addr["b"], auth_token=TOKEN) as client:
            replica = client.solve(SolveRequest(formula=formula, seed=0))
        print(f"node b merged {merged} entries; answered {replica.status} "
              f"from_cache={replica.from_cache} (no solver ran on b)")

        print("\n== A router in front ==")
        router = RouterDaemon(
            "tcp://127.0.0.1:0", list(addr.values()),
            auth_token=TOKEN, health_interval=0.2,
            log_path=str(workdir / "router.log"),
        )
        router.start()
        print(f"router: {router.address}")
        with ServiceClient(router.address, auth_token=TOKEN) as client:
            owners_before = {}
            for i in range(9):
                f, _ = random_planted_ksat(20, 60, rng=100 + i)
                r = client.solve(SolveRequest(formula=f, seed=0))
                owners_before[r.fingerprint] = r.status
            print(f"routed 9 distinct instances: "
                  f"{sorted(owners_before.values()).count('sat')} sat")

            # Sessions pin by name: every op lands on one node's memory.
            opened = client.solve(
                SolveRequest(formula=formula, session="pinned", seed=0)
            )
            client.close_session("pinned")
            print(f"session 'pinned': {opened.status} on one node")

            stats = client.stats()
            print(f"aggregated stats: "
                  f"{len(stats['cluster']['nodes'])} nodes, "
                  f"{stats['metrics']['counters']['requests']} requests total")

            print("\n== Failover ==")
            nodes["c"].shutdown()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                picture = client.cluster_health()
                if picture["nodes"][addr["c"]]["alive"] is False:
                    break
                time.sleep(0.05)
            alive = [a for a, s in picture["nodes"].items() if s["alive"]]
            print(f"router sees {len(alive)}/3 nodes up")
            mismatches = 0
            for i in range(9):
                f, _ = random_planted_ksat(20, 60, rng=100 + i)
                r = client.solve(SolveRequest(formula=f, seed=0))
                if owners_before[r.fingerprint] != r.status:
                    mismatches += 1
            print(f"re-solved all 9 with a node dead: "
                  f"{mismatches} verdict mismatches")
            counters = client.cluster_health()["router"]
            print(f"router counters: routed={counters['routed']} "
                  f"failovers={counters['failovers']} "
                  f"unrouted={counters['unrouted']}")

        router.shutdown()
        for daemon in nodes.values():
            daemon.shutdown()


if __name__ == "__main__":
    main()
