"""Graph-coloring EC: register binding that survives interference changes.

Run:  python examples/register_binding_coloring.py

The paper's second domain (§8 / ref [6]): graph coloring.  We frame it as
register binding — nodes are live ranges, edges are interference, colors
are registers.  A specification change adds interference edges (two
values now live simultaneously); the three EC components keep the binding
usable:

* enabling EC picks a binding where live ranges have spare registers;
* fast EC re-binds only the conflicting region;
* preserving EC re-binds globally but keeps the maximum number of ranges
  in their old registers.
"""

from repro.coloring.ec import (
    coloring_flexibility,
    enable_coloring_ec,
    fast_coloring_ec,
    preserving_coloring_ec,
)
from repro.coloring.generators import random_colorable_graph
from repro.coloring.problem import GraphColoringProblem


def add_interference(graph, coloring, count):
    """Add *count* edges that conflict with the current binding."""
    g = graph.copy()
    added = 0
    for u in g.nodes:
        for v in g.nodes:
            if u < v and not g.has_edge(u, v) and coloring[u] == coloring[v]:
                g.add_edge(u, v)
                added += 1
                break
        if added >= count:
            break
    return g, added


def main() -> None:
    registers = 5
    graph, naive = random_colorable_graph(24, registers, 60, rng=2)
    problem = GraphColoringProblem(graph, registers)
    print(f"live ranges: {graph.number_of_nodes()}, "
          f"interference edges: {graph.number_of_edges()}, "
          f"registers: {registers}\n")

    # Enabling EC: choose the binding with maximal slack.
    enabled = enable_coloring_ec(problem)
    assert enabled.succeeded
    print("== enabling EC ==")
    print(f"naive binding flexibility:   "
          f"{coloring_flexibility(problem, naive):.2f}")
    print(f"enabled binding flexibility: {enabled.flexibility:.2f}\n")
    binding = enabled.coloring

    # Change: three new interference edges.
    changed_graph, added = add_interference(graph, binding, 3)
    changed = GraphColoringProblem(changed_graph, registers)
    print(f"== change: {added} new interference edges ==")
    print(f"binding still proper? {changed.is_proper(binding)}")

    # Fast EC: local re-bind.
    fast = fast_coloring_ec(changed, binding)
    assert fast.succeeded
    print(f"\nfast EC re-bound {len(fast.recolored_nodes)} of "
          f"{changed_graph.number_of_nodes()} live ranges "
          f"(preserved {fast.preserved_fraction:.1%})")

    # Preserving EC: globally optimal retention.
    pres = preserving_coloring_ec(changed, binding)
    assert pres.succeeded
    print(f"preserving EC kept {pres.preserved_fraction:.1%} of ranges in "
          f"their old registers")
    assert changed.is_proper(fast.coloring)
    assert changed.is_proper(pres.coloring)
    print("\nOK: the binding absorbed the interference change.")


if __name__ == "__main__":
    main()
