"""Quickstart: the paper's §1 example through the full EC flow.

Run:  python examples/quickstart.py

Walks the generic ILP-based EC flow of Figure 1 on the paper's motivating
SAT instance: solve with enabling EC, apply a specification change, then
repair with fast EC and with preserving EC.
"""

from repro import (
    AddClause,
    Assignment,
    ChangeSet,
    Clause,
    CNFFormula,
    ECFlow,
    EnablingOptions,
)
from repro.cnf.analysis import elimination_robustness, flexibility_report


def main() -> None:
    # The paper's instance F (§1) and its two solutions S and E.
    formula = CNFFormula([[1, -3, -5], [2, -3, 5], [2, 4, 5], [-3, -4]])
    s = Assignment({1: False, 2: True, 3: True, 4: False, 5: False})
    e = Assignment({1: True, 2: True, 3: False, 4: True, 5: False})

    print("== The paper's motivating example ==")
    print(f"S robustness to variable elimination: "
          f"{elimination_robustness(formula, s):.2f}")
    print(f"E robustness to variable elimination: "
          f"{elimination_robustness(formula, e):.2f}")
    print("-> E is the better starting point for engineering change.\n")

    # The same conclusion, produced automatically: enabling EC.
    flow = ECFlow(formula.copy())
    enabled = flow.solve_original(
        enable=EnablingOptions(mode="objective", support="acyclic")
    )
    report = flexibility_report(formula, enabled)
    print("== Enabling EC ==")
    print(f"solver-produced flexible solution: {enabled.to_literals()}")
    print(f"  2-satisfied clause fraction: {report.fraction_2_satisfied:.2f}")
    print(f"  elimination robustness:      {report.robustness:.2f}\n")

    # A specification change arrives: a new clause.
    change = ChangeSet([AddClause(Clause([-2, -4, 3]))])
    flow.apply_changes(change)
    print(f"== Change request: {change.summary()} ==")
    print(f"old solution still valid? {flow.is_current_solution_valid}")

    # Fast EC: fix it by re-solving only the affected sub-instance.
    updated = flow.resolve(strategy="fast")
    print(f"fast EC updated solution:  {updated.to_literals()}")
    print(f"history: {[step.kind for step in flow.history]}")

    # A second change, this time repaired with preserving EC.
    flow.apply_changes(ChangeSet([AddClause(Clause([-1, -2, -4]))]))
    updated = flow.resolve(strategy="preserving")
    print(f"preserving EC solution:    {updated.to_literals()}")
    print(f"history: {[step.kind for step in flow.history]}")
    assert flow.is_current_solution_valid
    print("\nOK: the flow of Figure 1, end to end.")


if __name__ == "__main__":
    main()
