"""The portfolio engine on a stream of engineering changes.

Run:  python examples/portfolio_engine.py

Demonstrates the production path of the reproduction: one
:class:`~repro.engine.session.IncrementalSession` absorbing a stream of
specification changes, answering loosening changes by revalidation (no
solver at all), tightening changes by the cached parallel portfolio, and
repeated queries straight from the fingerprint cache.
"""

from repro import IncrementalSession, PortfolioEngine
from repro.cnf.clause import Clause
from repro.cnf.generators import random_planted_ksat
from repro.core.change import AddClause, AddVariable, ChangeSet, RemoveClause


def main() -> None:
    formula, _witness = random_planted_ksat(40, 140, rng=7)

    # The session is one tenant of the shared engine and will not close
    # it on exit; the engine's own context manager releases the pool.
    with PortfolioEngine(jobs=2) as engine, \
            IncrementalSession(formula, engine=engine) as session:
        model = session.solve(seed=0)
        print("== Original specification ==")
        print(f"solved by: {session.history[-1].source}  "
              f"({formula.num_vars} vars, {formula.num_clauses} clauses)")

        # Change stream: loosen, loosen, tighten.
        session.apply_changes(ChangeSet([RemoveClause(session.formula.clauses[0])]))
        session.resolve(seed=0)
        session.apply_changes(ChangeSet([AddVariable()]))
        session.resolve(seed=0)
        print("\n== Two loosening changes ==")
        print(f"solver runs launched so far: {session.solver_calls} "
              f"(revalidations: {session.revalidations})")

        broken = Clause(
            [-v if model.get(v, False) else v
             for v in sorted(session.formula.variables)[:3]]
        )
        session.apply_changes(ChangeSet([AddClause(broken)]))
        new_model = session.resolve(seed=0)
        print("\n== One tightening change ==")
        print(f"re-solved by: {session.history[-1].source}, "
              f"model valid: {session.formula.is_satisfied(new_model)}")

        # The same instance again: served from the fingerprint cache.
        result = engine.solve(session.formula)
        print("\n== Repeated query ==")
        print(f"source: {result.source} (cache hits: {engine.cache.stats.hits})")

    print("\nOK: portfolio engine end to end.")


if __name__ == "__main__":
    main()
