"""Scheduling EC: behavioral-synthesis schedules that absorb changes.

Run:  python examples/datapath_scheduling.py

The paper claims the ILP-based EC methodology is "completely general";
its closest prior work handled graph coloring *and scheduling*.  This
example ports the methodology to resource-constrained scheduling: a small
dataflow graph is scheduled onto one multiplier and two ALUs, a late
specification change adds a data dependency, and preserving EC keeps the
control steps of as many operations as possible.
"""

from repro.ilp.solver import solve
from repro.scheduling.ec import (
    enable_scheduling_ec,
    preserving_scheduling_ec,
    schedule_slack,
)
from repro.scheduling.problem import Operation, SchedulingProblem


def show(title, schedule, problem):
    print(f"{title}")
    for step in problem.steps:
        ops = sorted(n for n, s in schedule.items() if s == step)
        if ops:
            print(f"  step {step}: {', '.join(ops)}")


def main() -> None:
    problem = SchedulingProblem(
        operations=[
            Operation("m1", "mul"), Operation("m2", "mul"),
            Operation("m3", "mul"),
            Operation("a1", "alu"), Operation("a2", "alu"),
            Operation("a3", "alu"), Operation("a4", "alu"),
        ],
        precedence=[
            ("m1", "a1"), ("m2", "a1"), ("m3", "a2"),
            ("a1", "a3"), ("a2", "a4"),
        ],
        capacities={"mul": 1, "alu": 2},
        horizon=7,
    )
    print(f"{problem}\n")

    baseline = problem.decode(solve(problem.to_ilp()))
    show("== baseline schedule ==", baseline, problem)
    print(f"slack: {schedule_slack(problem, baseline):.2f}\n")

    enabled = enable_scheduling_ec(problem)
    assert enabled.succeeded
    show("== enabling EC schedule ==", enabled.schedule, problem)
    print(f"slack: {enabled.slack:.2f}\n")

    # Late change: a4 now also depends on a3.
    changed = problem.with_precedence("a3", "a4")
    print("== change: new dependency a3 -> a4 ==")
    print(f"enabled schedule still valid? "
          f"{changed.is_valid(enabled.schedule)}")

    result = preserving_scheduling_ec(changed, enabled.schedule)
    assert result.succeeded
    show("\n== preserving EC schedule ==", result.schedule, changed)
    print(f"operations keeping their control step: "
          f"{result.preserved_fraction:.1%}")
    assert changed.is_valid(result.schedule)
    print("\nOK: the schedule absorbed the new dependency.")


if __name__ == "__main__":
    main()
