"""Enabling EC in depth: quantifying design-for-change on SAT.

Run:  python examples/design_for_change.py

Compares four policies on the same instance:

1. plain solve (set-cover objective, no EC awareness);
2. enabling EC, objective form, sound ("acyclic") support;
3. enabling EC, constraint form, paper-style ("chained") support;
4. the planted reference witness.

For each solution we report the k-satisfaction census, the fraction of
2-satisfied clauses, and the elimination robustness — then stress-test
all four against the same batch of random clause additions, counting how
often fast EC can repair locally (small affected set) vs globally.
"""

import random

from repro.cnf.analysis import flexibility_report
from repro.cnf.families import f_instance
from repro.cnf.generators import random_clause
from repro.core.enabling import EnablingOptions, enable_ec
from repro.core.fast import simplify_instance
from repro.sat.encoding import encode_sat
from repro.ilp.solver import solve


def stress(formula, assignment, trials=25, seed=0):
    """Average affected-set size over random single-clause additions."""
    rng = random.Random(seed)
    sizes = []
    for _ in range(trials):
        modified = formula.copy()
        modified.add_clause(random_clause(formula.variables, 3, rng))
        inst = simplify_instance(modified, assignment)
        sizes.append(0 if inst.already_satisfied else inst.num_vars)
    return sum(sizes) / len(sizes)


def main() -> None:
    inst = f_instance(40, 150, seed=9, name="design")
    formula, plant = inst.formula, inst.witness
    print(f"instance: {formula.num_vars} vars, {formula.num_clauses} clauses\n")

    solutions = {}
    enc = encode_sat(formula)
    plain = enc.decode(solve(enc.model, time_limit=60), default=False)
    solutions["plain solve"] = plain
    solutions["enable OF acyclic"] = enable_ec(
        formula, EnablingOptions(mode="objective", support="acyclic")
    ).assignment
    solutions["enable SC chained"] = enable_ec(
        formula, EnablingOptions(mode="constraints", support="chained")
    ).assignment
    solutions["planted witness"] = plant

    header = f"{'policy':<20} {'2-sat':>6} {'robust':>7} {'avg affected':>13}"
    print(header)
    print("-" * len(header))
    for name, assignment in solutions.items():
        rep = flexibility_report(formula, assignment)
        affected = stress(formula, assignment)
        print(
            f"{name:<20} {rep.fraction_2_satisfied:>6.2f} "
            f"{rep.robustness:>7.2f} {affected:>13.1f}"
        )
    print(
        "\nMore 2-satisfied clauses -> smaller affected sets -> cheaper "
        "future engineering change; exactly the paper's enabling-EC claim."
    )


if __name__ == "__main__":
    main()
