"""Preserving EC: keep downstream synthesis results stable across changes.

Run:  python examples/incremental_synthesis.py

Scenario (§7 of the paper): "a single synthesis step is followed by a
number of consecutive synthesis steps.  Therefore, if we want to avoid
numerous changes to all steps, we have to preserve as much as possible of
the initial solution at the higher levels of abstraction."

We model a high-level decision vector as the solution of a SAT instance,
apply a stream of specification changes, and compare how much of the
decision vector survives with an oblivious re-solve vs preserving EC.
Every preserved variable means a downstream step that does not need to be
redone.
"""

from repro.cnf.families import ii_instance
from repro.cnf.mutations import table3_trial
from repro.core.preserving import preserving_ec, resolve_oblivious


def main() -> None:
    inst = ii_instance(80, 260, seed=5, name="hls-decisions")
    formula, solution = inst.formula, inst.witness
    print(f"high-level decision model: {formula.num_vars} decisions, "
          f"{formula.num_clauses} constraints\n")

    print(f"{'round':>5} {'changes':^34} {'oblivious':>10} {'preserving':>11}")
    current = solution
    current_formula = formula
    for round_no in range(1, 4):
        modified, log = table3_trial(current_formula, current, rng=round_no)
        oblivious = resolve_oblivious(modified, current, method="exact")
        preserving = preserving_ec(modified, current, method="exact")
        assert oblivious.succeeded and preserving.succeeded
        print(
            f"{round_no:>5} {log.summary():^34} "
            f"{oblivious.preserved_fraction:>9.1%} "
            f"{preserving.preserved_fraction:>10.1%}"
        )
        # Chain: the preserving solution feeds the next round (the paper's
        # "successive application to new requests").
        current = preserving.assignment
        current_formula = modified

    print("\nEvery preserved decision is a downstream synthesis step kept "
          "intact; preserving EC consistently retains (weakly) more.")


if __name__ == "__main__":
    main()
