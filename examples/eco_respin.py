"""Fast EC as an ECO respin: late netlist changes with minimal re-solve.

Run:  python examples/eco_respin.py

Scenario (the paper's motivation): a design has been verified and signed
off — its SAT model is solved.  Late in the flow an engineering change
order (ECO) arrives: a few signals are removed and new constraints are
added.  Re-running the full solve would be expensive; fast EC (§6 of the
paper, Figure 2) extracts the affected cone and re-solves only that.
"""

import time

from repro.cnf.families import jnh_instance
from repro.cnf.mutations import table2_trial
from repro.core.fast import fast_ec
from repro.sat.encoding import encode_sat
from repro.ilp.solver import solve


def main() -> None:
    # A jnh-style constraint system standing in for a signed-off design.
    inst = jnh_instance(60, 360, seed=11, name="design")
    formula, witness = inst.formula, inst.witness
    print(f"design model: {formula.num_vars} signals, "
          f"{formula.num_clauses} constraints")

    # Baseline: the original sign-off solve through the ILP route.
    t0 = time.perf_counter()
    encoding = encode_sat(formula)
    solution = solve(encoding.model, method="exact", time_limit=60)
    original = encoding.decode(solution, default=False)
    t_full = time.perf_counter() - t0
    print(f"original sign-off solve: {t_full:.2f}s "
          f"({solution.stats.nodes} B&B nodes)\n")

    # The ECO: three signals removed, ten new constraints (Table 2 setup).
    modified, log = table2_trial(formula, original, rng=7)
    print(f"ECO arrives: {log.summary()}")
    print(f"old solution still valid? {modified.is_satisfied(original)}")

    # Fast EC instead of a full re-solve.
    t0 = time.perf_counter()
    result = fast_ec(modified, original, method="exact")
    t_fast = time.perf_counter() - t0
    assert result.succeeded
    print(f"\nfast EC re-solved only {result.instance.num_vars} signals / "
          f"{result.instance.num_clauses} constraints "
          f"(of {modified.num_vars}/{modified.num_clauses})")
    print(f"fast EC time: {t_fast:.3f}s  "
          f"(normalized {t_fast / max(t_full, 1e-9):.4f} of the original solve)")
    untouched = (
        len(set(modified.variables) - set(result.instance.affected_variables))
    )
    print(f"signals untouched by the respin: {untouched}")
    assert modified.is_satisfied(result.assignment)
    print("\nOK: the ECO landed without re-opening the whole design.")


if __name__ == "__main__":
    main()
