"""Workload subsystem end to end: generate, drive, record, replay.

Run:  python examples/workload_replay.py

Walks the measurement substrate of the reproduction:

1. build a seeded multi-tenant EC request stream from a scenario
   generator (the same seed always produces the identical stream);
2. drive it closed-loop against an in-process ``SolverService`` and
   read the throughput / latency-percentile / counter report;
3. record the executed stream as a versioned JSONL trace;
4. replay the trace against a *fresh* service — the replay verifier
   demands the recorded verdicts, fingerprints, and models come back
   byte-identical;
5. drive the same stream open-loop at a fixed arrival rate and compare
   service latency with schedule lateness.

The CLI equivalents::

    python -m repro loadgen sat-mixed --record t.jsonl
    python -m repro replay t.jsonl
    python -m repro serve --socket S --record t.jsonl   # server-side
    python -m repro bench workload                      # the full sweep
"""

import tempfile
from pathlib import Path

from repro import EngineConfig, SolverService
from repro.workload import (
    build_scenario,
    inprocess_factory,
    read_trace,
    replay_trace,
    run_events,
    summarize,
    write_trace_from_run,
)


def main() -> None:
    print("== 1. a seeded EC request stream ==")
    events = build_scenario("sat-mixed", seed=42, tenants=3, changes=5)
    kinds = {}
    for event in events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    print(f"sat-mixed/seed=42: {len(events)} events {kinds}")
    rebuilt = build_scenario("sat-mixed", seed=42, tenants=3, changes=5)
    print(f"same seed, same stream: {len(rebuilt) == len(events)}")

    print("\n== 2. closed-loop drive ==")
    with SolverService(EngineConfig(jobs=1)) as service:
        factory = inprocess_factory(service)
        before = factory().stats()
        results, wall = run_events(events, factory, concurrency=2)
        report = summarize(
            results, wall, scenario="sat-mixed", concurrency=2,
            stats_before=before, stats_after=factory().stats(),
        )
    lat = report.latency
    print(f"{report.events} events, {report.errors} errors, "
          f"{report.throughput:.0f} ev/s")
    print(f"latency p50 {lat['p50'] * 1e3:.2f}ms  p99 {lat['p99'] * 1e3:.2f}ms")
    engine = report.counters["engine"]
    print(f"counters: {engine['races']} races, {engine['revalidations']} "
          f"revalidations, {engine['cache_hits']} cache hits")

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "sat-mixed.jsonl"

        print("\n== 3. record the stream ==")
        written = write_trace_from_run(
            str(trace_path), events, results, meta={"scenario": "sat-mixed"}
        )
        print(f"recorded {written} request/response pairs -> "
              f"{trace_path.name}")

        print("\n== 4. replay against a fresh service ==")
        trace = read_trace(str(trace_path))
        with SolverService(EngineConfig(jobs=1)) as fresh:
            replay_report = replay_trace(trace, inprocess_factory(fresh))
        print(f"replayed {replay_report.events} events: "
              f"{replay_report.mismatches} mismatches "
              f"(verdicts, fingerprints, and models all byte-checked)")
        assert replay_report.mismatches == 0

    print("\n== 5. open-loop at a fixed arrival rate ==")
    with SolverService(EngineConfig(jobs=1)) as service:
        results, wall = run_events(
            events, inprocess_factory(service), mode="open", rate=400.0, seed=1
        )
    open_report = summarize(results, wall, scenario="sat-mixed", mode="open")
    print(f"offered 400 ev/s, served {open_report.throughput:.0f} ev/s; "
          f"latency p99 {open_report.latency['p99'] * 1e3:.2f}ms, "
          f"lateness p99 {open_report.lateness['p99'] * 1e3:.2f}ms")

    print("\nOK")


if __name__ == "__main__":
    main()
