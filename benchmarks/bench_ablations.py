"""Ablation benchmarks for the design choices DESIGN.md calls out.

* acyclic vs chained support in enabling EC (soundness vs feasibility);
* presolve on/off in branch and bound;
* warm start on/off for the EC re-solve (why EC re-solves are cheap);
* root cuts on/off;
* own simplex vs scipy HiGHS as the LP relaxation backend.
"""

import pytest

from repro.cnf.generators import random_planted_ksat
from repro.cnf.mutations import table2_trial
from repro.core.enabling import EnablingOptions, build_enabling_encoding
from repro.ilp.branch_and_bound import BranchAndBoundSolver
from repro.ilp.cuts import strengthen_with_cuts
from repro.ilp.lp_backend import ScipyBackend, SimplexBackend
from repro.ilp.solver import solve
from repro.sat.encoding import encode_sat


@pytest.fixture(scope="module")
def instance():
    return random_planted_ksat(24, 80, rng=51)


@pytest.fixture(scope="module")
def ec_resolve_setup(instance):
    f, p = instance
    modified, _ = table2_trial(f, p, rng=3)
    enc = encode_sat(modified)
    warm = enc.values_from_assignment(p.restricted_to(modified.variables))
    return enc, warm


# ----------------------------------------------------------------------
# support semantics
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="ablation-support")
@pytest.mark.parametrize("support", ["acyclic", "chained"])
def bench_enabling_support_semantics(benchmark, instance, support):
    """Chained support adds rows but never risks infeasibility; acyclic
    is the sound guarantee.  Compare their objective-mode solve cost."""
    f, _p = instance
    options = EnablingOptions(mode="objective", support=support)

    def build_and_solve():
        enc = build_enabling_encoding(f, options)
        return solve(enc.model, method="exact", time_limit=120)

    sol = benchmark.pedantic(build_and_solve, rounds=2, iterations=1)
    assert sol.status.has_solution


# ----------------------------------------------------------------------
# presolve
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="ablation-presolve")
@pytest.mark.parametrize("use_presolve", [True, False], ids=["on", "off"])
def bench_presolve(benchmark, instance, use_presolve):
    f, _p = instance
    enc = encode_sat(f)

    def run():
        return BranchAndBoundSolver(
            use_presolve=use_presolve, time_limit=120
        ).solve(enc.model)

    sol = benchmark.pedantic(run, rounds=2, iterations=1)
    assert sol.status.has_solution


# ----------------------------------------------------------------------
# warm start
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="ablation-warmstart")
@pytest.mark.parametrize("warm", [True, False], ids=["warm", "cold"])
def bench_warm_start(benchmark, ec_resolve_setup, warm):
    """The EC advantage in one knob: handing the old solution to the
    solver as an incumbent."""
    enc, warm_values = ec_resolve_setup

    def run():
        return BranchAndBoundSolver(time_limit=120).solve(
            enc.model, warm_start=warm_values if warm else None
        )

    sol = benchmark.pedantic(run, rounds=2, iterations=1)
    assert sol.status.has_solution


# ----------------------------------------------------------------------
# cuts
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="ablation-cuts")
@pytest.mark.parametrize("with_cuts", [True, False], ids=["cuts", "nocuts"])
def bench_root_cuts(benchmark, instance, with_cuts):
    f, _p = instance
    enc = encode_sat(f)

    def run():
        model = enc.model
        if with_cuts:
            model, _added = strengthen_with_cuts(model, rounds=2)
        return BranchAndBoundSolver(time_limit=120).solve(model)

    sol = benchmark.pedantic(run, rounds=2, iterations=1)
    assert sol.status.has_solution


# ----------------------------------------------------------------------
# LP backend
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="ablation-lp-backend")
@pytest.mark.parametrize(
    "backend", [SimplexBackend(), ScipyBackend()], ids=["own-simplex", "scipy-highs"]
)
def bench_lp_backend(benchmark, instance, backend):
    f, _p = instance
    enc = encode_sat(f)

    def run():
        return BranchAndBoundSolver(backend=backend, time_limit=120).solve(enc.model)

    sol = benchmark.pedantic(run, rounds=2, iterations=1)
    assert sol.status.has_solution
