"""Table 3 benchmark: preserving EC (paper §7, Table 3).

Per trial the paper randomly adds and deletes five variables and five
clauses (keeping the instance satisfiable), then compares the percentage
of the original assignment preserved by an oblivious re-solve vs
preserving EC.  Expected shape: preserving EC ~95-99 %, oblivious ~60-85%.

Regenerate the full printed table with ``python -m repro.bench.table3``.
"""

import pytest

from repro.cnf.mutations import table3_trial
from repro.core.preserving import preserving_ec, resolve_oblivious


@pytest.fixture(scope="module")
def trial(solved_ii):
    """One pinned Table-3 trial on the solved ii8a1 row."""
    inst, original = solved_ii
    modified, _log = table3_trial(inst.formula, original, rng=31)
    return original, modified


@pytest.mark.benchmark(group="table3-preserving")
def bench_preserving_resolve(benchmark, trial):
    """The "%Sol with EC" column: agreement-maximizing re-solve."""
    original, modified = trial
    result = benchmark.pedantic(
        preserving_ec, args=(modified, original), rounds=2, iterations=1
    )
    assert result.succeeded
    assert modified.is_satisfied(result.assignment)


@pytest.mark.benchmark(group="table3-oblivious")
def bench_oblivious_resolve(benchmark, trial):
    """The "%Sol Original" column: re-solve with no preservation goal."""
    original, modified = trial
    result = benchmark.pedantic(
        resolve_oblivious, args=(modified, original), rounds=2, iterations=1
    )
    assert result.succeeded


def bench_shape_preserving_dominates(solved_ii):
    """Shape check (not timed): preserving EC keeps (weakly) more of the
    old assignment than the oblivious re-solve, and close to all of it."""
    inst, original = solved_ii
    modified, _ = table3_trial(inst.formula, original, rng=37)
    pres = preserving_ec(modified, original)
    obl = resolve_oblivious(modified, original)
    assert pres.succeeded and obl.succeeded
    assert pres.preserved_fraction >= obl.preserved_fraction - 1e-9
    assert pres.preserved_fraction >= 0.85
