"""Table 2 benchmark: fast EC (paper §6, Table 2).

Ten trials per row in the paper, each eliminating 3 variables and adding
10 clauses.  Expected shape: the re-solved sub-instance is a small
fraction of the original and the re-solve is orders of magnitude faster
than the from-scratch solve.

Regenerate the full printed table with ``python -m repro.bench.table2``.
"""

import pytest

from repro.cnf.mutations import table2_trial
from repro.core.fast import fast_ec, simplify_instance
from repro.sat.encoding import encode_sat
from repro.ilp.solver import solve


@pytest.fixture(scope="module")
def trial(solved_ii):
    """One pinned Table-2 trial on the solved ii8a1 row."""
    inst, original = solved_ii
    modified, _log = table2_trial(inst.formula, original, rng=13)
    return inst, original, modified


@pytest.mark.benchmark(group="table2-simplify")
def bench_figure2_simplification(benchmark, trial):
    """The Figure-2 instance simplifier alone (marking + growth)."""
    _inst, original, modified = trial
    sub = benchmark(simplify_instance, modified, original)
    assert not sub.already_satisfied
    assert sub.num_vars <= modified.num_vars


@pytest.mark.benchmark(group="table2-fast-ec")
def bench_fast_ec_resolve(benchmark, trial):
    """Full fast EC: simplify + sub-solve + merge (the "New Runtime" col)."""
    _inst, original, modified = trial
    result = benchmark(fast_ec, modified, original)
    assert result.succeeded
    assert modified.is_satisfied(result.assignment)


@pytest.mark.benchmark(group="table2-baseline")
def bench_full_resolve_baseline(benchmark, trial):
    """Baseline the paper normalizes against: solve the modified instance
    from scratch."""
    _inst, _original, modified = trial

    def from_scratch():
        enc = encode_sat(modified)
        return solve(enc.model, method="exact", time_limit=120)

    sol = benchmark.pedantic(from_scratch, rounds=2, iterations=1)
    assert sol.status.has_solution


def bench_shape_subproblem_is_smaller(solved_ii):
    """Shape check (not timed): the affected set must not be the whole
    instance on a realistically-sized row."""
    inst, original = solved_ii
    modified, _ = table2_trial(inst.formula, original, rng=29)
    sub = simplify_instance(modified, original)
    assert sub.num_vars < modified.num_vars
    assert sub.num_clauses < modified.num_clauses
