"""Table 1 benchmark: enabling-EC overhead (paper §5, Table 1).

The paper reports normalized runtimes of the original solve vs the solve
with enabling constraints ("EC (SC)") and with the augmented objective
("EC (OF)").  Expected shape: both EC variants stay within a small factor
of the original solve — enabling is cheap insurance.

Regenerate the full printed table with ``python -m repro.bench.table1``.
"""

import pytest

from repro.core.enabling import EnablingOptions, enable_ec
from repro.sat.encoding import encode_sat
from repro.ilp.solver import solve


def _solve_original(row):
    enc = encode_sat(row.formula)
    sol = solve(enc.model, method="exact", time_limit=120)
    assert sol.status.has_solution
    return sol


@pytest.mark.benchmark(group="table1-original")
def bench_original_solve_par(benchmark, row_par):
    """Baseline column: the original par8-1-c solve."""
    sol = benchmark.pedantic(_solve_original, args=(row_par,), rounds=2, iterations=1)
    assert sol.status.has_solution


@pytest.mark.benchmark(group="table1-original")
def bench_original_solve_ii(benchmark, row_ii):
    """Baseline column: the original ii8a1 solve."""
    sol = benchmark.pedantic(_solve_original, args=(row_ii,), rounds=2, iterations=1)
    assert sol.status.has_solution


@pytest.mark.benchmark(group="table1-ec-sc")
def bench_enabling_constraints_par(benchmark, row_par):
    """EC (SC) column: specified-constraint enabling (chained support)."""
    result = benchmark.pedantic(
        enable_ec,
        args=(row_par.formula,),
        kwargs={
            "options": EnablingOptions(mode="constraints", support="chained"),
            "time_limit": 120,
        },
        rounds=2,
        iterations=1,
    )
    assert result.succeeded
    assert row_par.formula.is_satisfied(result.assignment)


@pytest.mark.benchmark(group="table1-ec-sc")
def bench_enabling_constraints_ii(benchmark, row_ii):
    """EC (SC) column on ii8a1."""
    result = benchmark.pedantic(
        enable_ec,
        args=(row_ii.formula,),
        kwargs={
            "options": EnablingOptions(mode="constraints", support="chained"),
            "time_limit": 120,
        },
        rounds=2,
        iterations=1,
    )
    assert result.succeeded


@pytest.mark.benchmark(group="table1-ec-of")
def bench_enabling_objective_par(benchmark, row_par):
    """EC (OF) column: objective-function enabling (chained support)."""
    result = benchmark.pedantic(
        enable_ec,
        args=(row_par.formula,),
        kwargs={
            "options": EnablingOptions(mode="objective", support="chained"),
            "time_limit": 120,
        },
        rounds=2,
        iterations=1,
    )
    assert result.succeeded


@pytest.mark.benchmark(group="table1-ec-of")
def bench_enabling_objective_ii(benchmark, row_ii):
    """EC (OF) column on ii8a1."""
    result = benchmark.pedantic(
        enable_ec,
        args=(row_ii.formula,),
        kwargs={
            "options": EnablingOptions(mode="objective", support="chained"),
            "time_limit": 120,
        },
        rounds=2,
        iterations=1,
    )
    assert result.succeeded
