"""Engine comparison benchmark: sequential vs portfolio vs cached-incremental.

Unlike the pytest-benchmark files alongside it, this driver is a plain
script because it emits a committed JSON artifact (``BENCH_engine.json``
at the repo root) so successive PRs accumulate a performance trajectory::

    PYTHONPATH=src python benchmarks/bench_engine.py           # ci tier
    PYTHONPATH=src python benchmarks/bench_engine.py --rows 2  # quicker

All options of :mod:`repro.bench.engine` are accepted and forwarded; the
only difference is the default ``--out`` location.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.bench.engine import main as engine_main

#: Default artifact path: the repository root, next to this directory.
DEFAULT_OUT = Path(__file__).resolve().parents[1] / "BENCH_engine.json"


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not any(a == "--out" or a.startswith("--out=") for a in argv):
        argv += ["--out", str(DEFAULT_OUT)]
    return engine_main(argv)


if __name__ == "__main__":
    raise SystemExit(main())
