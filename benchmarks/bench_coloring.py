"""Graph-coloring EC benchmark (the paper's §8 second domain).

The coloring data lives in the unpublished tech report [6]; these
benchmarks exercise the same three components on random colorable graphs
and check the analogous shapes: enabling raises flexibility, fast EC
touches few nodes, preserving EC retains most of the binding.
"""

import pytest

from repro.coloring.ec import (
    coloring_flexibility,
    enable_coloring_ec,
    fast_coloring_ec,
    preserving_coloring_ec,
)
from repro.coloring.generators import random_colorable_graph
from repro.coloring.problem import GraphColoringProblem
from repro.ilp.solver import solve


@pytest.fixture(scope="module")
def coloring_setup():
    graph, planted = random_colorable_graph(18, 4, 36, rng=21)
    problem = GraphColoringProblem(graph, 4)
    # A changed problem with two fresh conflicting edges.
    changed_graph = graph.copy()
    added = 0
    for u in graph.nodes:
        for v in graph.nodes:
            if u < v and not changed_graph.has_edge(u, v) and planted[u] == planted[v]:
                changed_graph.add_edge(u, v)
                added += 1
                break
        if added >= 2:
            break
    changed = GraphColoringProblem(changed_graph, 4)
    return problem, planted, changed


@pytest.mark.benchmark(group="coloring-solve")
def bench_coloring_exact_solve(benchmark, coloring_setup):
    """Baseline: exact k-coloring through the ILP route."""
    problem, _planted, _changed = coloring_setup
    sol = benchmark.pedantic(
        solve, args=(problem.to_ilp(),), kwargs={"time_limit": 60},
        rounds=2, iterations=1,
    )
    assert sol.status.has_solution


@pytest.mark.benchmark(group="coloring-enable")
def bench_coloring_enabling(benchmark, coloring_setup):
    """Enabling EC: maximize nodes with a spare color."""
    problem, planted, _changed = coloring_setup
    result = benchmark.pedantic(
        enable_coloring_ec, args=(problem,), kwargs={"time_limit": 120},
        rounds=2, iterations=1,
    )
    assert result.succeeded
    assert result.flexibility >= coloring_flexibility(problem, planted) - 1e-9


@pytest.mark.benchmark(group="coloring-fast")
def bench_coloring_fast_ec(benchmark, coloring_setup):
    """Fast EC: local re-bind after edge insertion."""
    _problem, planted, changed = coloring_setup
    result = benchmark(fast_coloring_ec, changed, planted)
    assert result.succeeded
    assert len(result.recolored_nodes) <= 4


@pytest.mark.benchmark(group="coloring-preserving")
def bench_coloring_preserving_ec(benchmark, coloring_setup):
    """Preserving EC: maximum-retention re-bind."""
    _problem, planted, changed = coloring_setup
    result = benchmark.pedantic(
        preserving_coloring_ec, args=(changed, planted), rounds=2, iterations=1
    )
    assert result.succeeded
    assert result.preserved_fraction >= 0.8
