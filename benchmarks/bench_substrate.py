"""Substrate benchmarks: the building blocks under the EC methodology.

Not a paper table — these keep the from-scratch substrates honest
(simplex vs HiGHS on LPs, DPLL vs the ILP route on the same formulas,
WalkSAT witness generation, DIMACS parsing throughput).
"""

import numpy as np
import pytest

from repro.cnf.dimacs import parse_dimacs, to_dimacs
from repro.cnf.generators import random_planted_ksat
from repro.ilp.lp_backend import ScipyBackend, SimplexBackend
from repro.ilp.solver import solve
from repro.sat.dpll import dpll_solve
from repro.sat.encoding import encode_sat
from repro.sat.walksat import walksat_solve


@pytest.fixture(scope="module")
def lp_case():
    rng = np.random.default_rng(7)
    n, m = 40, 60
    c = rng.normal(size=n)
    a = rng.normal(size=(m, n))
    b = rng.uniform(1.0, 4.0, size=m)
    return c, a, b, [(0.0, 1.0)] * n


@pytest.fixture(scope="module")
def sat_case():
    return random_planted_ksat(60, 240, rng=77)


@pytest.mark.benchmark(group="substrate-lp")
@pytest.mark.parametrize(
    "backend", [SimplexBackend(), ScipyBackend()], ids=["own-simplex", "scipy-highs"]
)
def bench_lp_solve(benchmark, lp_case, backend):
    c, a, b, bounds = lp_case
    res = benchmark(backend.solve, c, a, b, None, None, bounds)
    assert res.status.has_solution or res.status.name == "OPTIMAL"


@pytest.mark.benchmark(group="substrate-sat")
def bench_dpll_solve(benchmark, sat_case):
    f, _p = sat_case
    res = benchmark(dpll_solve, f)
    assert res.satisfiable


@pytest.mark.benchmark(group="substrate-sat")
def bench_walksat_solve(benchmark, sat_case):
    f, _p = sat_case
    res = benchmark(walksat_solve, f)
    assert res.satisfiable


@pytest.mark.benchmark(group="substrate-sat")
def bench_ilp_route_solve(benchmark, sat_case):
    """The paper's route: SAT -> set cover -> 0-1 ILP -> branch & bound."""
    f, _p = sat_case

    def run():
        enc = encode_sat(f)
        return solve(enc.model, method="heuristic", seed=5,
                     stop_on_first_feasible=True)

    sol = benchmark.pedantic(run, rounds=3, iterations=1)
    assert sol.status.has_solution


@pytest.mark.benchmark(group="substrate-io")
def bench_dimacs_roundtrip(benchmark, sat_case):
    f, _p = sat_case
    text = to_dimacs(f)

    def roundtrip():
        return parse_dimacs(text)

    g = benchmark(roundtrip)
    assert g.num_clauses == f.num_clauses
