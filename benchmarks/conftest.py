"""Shared fixtures for the pytest-benchmark suite.

Instances here are the CI-tier benchmark rows (or purpose-built small
instances) so the whole suite finishes in minutes.  Set
``REPRO_BENCH_SCALE=paper`` to run the published sizes instead — expect
hours, exactly like the original CPLEX runs.

The printed tables (the paper's layout, with averages and medians) come
from the module runners::

    python -m repro.bench.table1   # enabling EC
    python -m repro.bench.table2   # fast EC
    python -m repro.bench.table3   # preserving EC
"""

from __future__ import annotations

import pytest

from repro.bench.registry import load_instance
from repro.sat.encoding import encode_sat
from repro.ilp.solver import solve


@pytest.fixture(scope="session")
def row_par():
    """The par8-1-c row at the current tier."""
    return load_instance("par8-1-c")


@pytest.fixture(scope="session")
def row_ii():
    """The ii8a1 row at the current tier."""
    return load_instance("ii8a1")


@pytest.fixture(scope="session")
def row_f():
    """The f600 row at the current tier."""
    return load_instance("f600")


@pytest.fixture(scope="session")
def solved_ii(row_ii):
    """(instance, decoded original solution) for EC benchmarks."""
    enc = encode_sat(row_ii.formula)
    sol = solve(enc.model, method="exact", time_limit=120)
    assert sol.status.has_solution
    return row_ii, enc.decode(sol, default=False)
