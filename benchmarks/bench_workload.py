"""Workload benchmark: scenario throughput, latency, replay fidelity.

Like ``bench_engine.py``, a plain script emitting a committed JSON
artifact (``BENCH_workload.json`` at the repo root) so successive PRs
accumulate a load-trajectory — every future scale PR (cache sharding,
parallel distinct-fingerprint execution, TCP transport) is judged
against these numbers::

    PYTHONPATH=src python benchmarks/bench_workload.py            # ci tier
    PYTHONPATH=src python benchmarks/bench_workload.py --tier paper

All options of :mod:`repro.bench.workload` are accepted and forwarded;
the only difference is the default ``--out`` location.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.bench.workload import main as workload_main

#: Default artifact path: the repository root, next to this directory.
DEFAULT_OUT = Path(__file__).resolve().parents[1] / "BENCH_workload.json"


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not any(a == "--out" or a.startswith("--out=") for a in argv):
        argv += ["--out", str(DEFAULT_OUT)]
    return workload_main(argv)


if __name__ == "__main__":
    raise SystemExit(main())
