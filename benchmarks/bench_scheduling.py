"""Scheduling EC benchmarks (generality-claim extension).

Same three shapes as the SAT and coloring domains, on a behavioral-
synthesis style dataflow graph: enabling raises slack, preserving EC
retains most start steps after a new dependency.
"""

import pytest

from repro.ilp.solver import solve
from repro.scheduling.ec import (
    enable_scheduling_ec,
    preserving_scheduling_ec,
    schedule_slack,
)
from repro.scheduling.problem import Operation, SchedulingProblem


@pytest.fixture(scope="module")
def dfg():
    ops = [Operation(f"m{i}", "mul") for i in range(3)] + [
        Operation(f"a{i}", "alu") for i in range(5)
    ]
    precedence = [
        ("m0", "a0"), ("m1", "a0"), ("m2", "a1"),
        ("a0", "a2"), ("a1", "a3"), ("a2", "a4"), ("a3", "a4"),
    ]
    return SchedulingProblem(
        operations=ops,
        precedence=precedence,
        capacities={"mul": 1, "alu": 2},
        horizon=8,
    )


@pytest.mark.benchmark(group="scheduling-solve")
def bench_schedule_exact(benchmark, dfg):
    """Baseline: exact time-indexed scheduling solve."""
    sol = benchmark.pedantic(
        solve, args=(dfg.to_ilp(),), kwargs={"time_limit": 60},
        rounds=2, iterations=1,
    )
    assert sol.status.has_solution


@pytest.mark.benchmark(group="scheduling-enable")
def bench_schedule_enabling(benchmark, dfg):
    """Enabling EC: slack-maximizing schedule."""
    result = benchmark.pedantic(
        enable_scheduling_ec, args=(dfg,), kwargs={"time_limit": 120},
        rounds=2, iterations=1,
    )
    assert result.succeeded
    assert result.slack >= 0.0


@pytest.mark.benchmark(group="scheduling-preserving")
def bench_schedule_preserving(benchmark, dfg):
    """Preserving EC after a new dependency."""
    baseline = dfg.decode(solve(dfg.to_ilp(), time_limit=60))
    changed = dfg.with_precedence("a4", "m2") if baseline["m2"] > baseline["a4"] \
        else dfg.with_precedence("a2", "a3")

    result = benchmark.pedantic(
        preserving_scheduling_ec,
        args=(changed, baseline),
        kwargs={"time_limit": 120},
        rounds=2,
        iterations=1,
    )
    if result.succeeded:
        assert changed.is_valid(result.schedule)


def bench_shape_enabling_increases_slack(dfg):
    """Shape check (not timed): enabling slack >= a plain solve's slack."""
    plain = dfg.decode(solve(dfg.to_ilp(), time_limit=60))
    enabled = enable_scheduling_ec(dfg, time_limit=120)
    assert enabled.succeeded
    assert enabled.slack >= schedule_slack(dfg, plain) - 1e-9
