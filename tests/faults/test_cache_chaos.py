"""DiskCache under disk failure: degraded mode, torn-write self-healing,
re-probe recovery, and the engine staying up on a dying filesystem."""

import pytest

from repro import faults
from repro.cnf.assignment import Assignment
from repro.cnf.generators import random_planted_ksat
from repro.engine.config import EngineConfig
from repro.engine.diskcache import DiskCache
from repro.engine.engine import PortfolioEngine


@pytest.fixture
def model():
    return Assignment({1: True, 2: False, 3: True})


class TestDegradedMode:
    def test_enospc_parks_the_cache_in_memory_only_mode(self, tmp_path, model):
        faults.install("seed=3;cache.put.io:p=1,count=1")
        cache = DiskCache(tmp_path, reprobe_interval=60.0)
        cache.put("fp1", True, model, "cdcl")

        # The failed store degraded instead of raising; nothing torn on
        # disk, the verdict still served from the overlay.
        assert cache.stats.errors == 1
        assert cache.degraded
        assert not (tmp_path / "fp1.json").exists()
        entry = cache.get("fp1")
        assert entry is not None and entry.satisfiable
        assert list(entry.assignment.to_literals()) == list(model.to_literals())

        # While degraded, further stores bypass the disk entirely (the
        # chaos budget is spent — a raise here would fail the test).
        cache.put("fp2", False)
        assert not (tmp_path / "fp2.json").exists()
        assert cache.get("fp2").satisfiable is False

        health = cache.health()
        assert health["degraded"] is True
        assert health["errors"] == 1
        assert health["overlay_entries"] == 2

    def test_reprobe_promotes_back_to_disk(self, tmp_path):
        faults.install("cache.put.io:p=1,count=1")
        cache = DiskCache(tmp_path, reprobe_interval=0.0)
        cache.put("fp1", False)
        assert cache.stats.errors == 1
        # Zero-length window: the next put re-probes a now-healthy disk.
        cache.put("fp2", False)
        assert (tmp_path / "fp2.json").exists()
        assert not cache.degraded
        assert cache.health()["degraded"] is False

    def test_torn_write_is_never_served(self, tmp_path, model):
        faults.install("cache.put.torn:p=1,count=1")
        cache = DiskCache(tmp_path, reprobe_interval=60.0)
        cache.put("fpt", True, model, "cdcl")
        torn = tmp_path / "fpt.json"
        assert torn.exists()              # the truncated entry landed
        assert cache.stats.errors == 1

        # The reader self-heals: the torn file is unlinked, the verdict
        # comes back intact from the degraded-mode overlay.
        entry = cache.get("fpt")
        assert entry is not None and entry.satisfiable
        assert list(entry.assignment.to_literals()) == list(model.to_literals())
        assert not torn.exists()

    def test_readable_or_absent_for_a_reader_without_the_overlay(
        self, tmp_path, model
    ):
        # A *sibling process* over the same directory has no overlay: it
        # must see a clean miss, never a torn verdict.
        faults.install("cache.put.torn:p=1,count=1")
        writer = DiskCache(tmp_path, reprobe_interval=60.0)
        writer.put("fpt", True, model, "cdcl")
        faults.clear()
        reader = DiskCache(tmp_path)
        assert reader.get("fpt") is None
        assert not (tmp_path / "fpt.json").exists()


class TestEngineUnderDiskFailure:
    def test_engine_keeps_serving_on_a_permanently_failing_disk(self, tmp_path):
        # The EngineConfig(chaos=...) activation route, end to end.
        config = EngineConfig(
            jobs=1,
            cache="disk",
            cache_dir=str(tmp_path / "cache"),
            chaos="seed=5;cache.put.io:p=1",
        )
        engine = PortfolioEngine.from_config(config)
        try:
            formula, witness = random_planted_ksat(10, 30, rng=3)
            first = engine.solve(formula, seed=0)
            assert first.status == "sat"
            assert formula.is_satisfied(first.assignment)

            # Same query again: the overlay serves it despite the disk.
            second = engine.solve(formula, seed=0)
            assert second.status == "sat"
            assert second.from_cache

            health = engine.health()
            assert health["cache"]["degraded"] is True
            assert health["cache"]["errors"] >= 1
        finally:
            engine.close()
