"""Portfolio races under worker chaos: SIGKILLed workers, hung racers,
the broken-pool solo fallback, and single-step generation accounting."""

import pytest

from repro import faults
from repro.cnf.generators import random_planted_ksat
from repro.engine.portfolio import Portfolio


@pytest.fixture
def planted():
    return random_planted_ksat(12, 36, rng=6)


class TestWorkerKill:
    def test_killed_workers_fall_back_to_an_in_process_solo_solve(
        self, planted
    ):
        formula, _ = planted
        # p=1,count=1: every forked worker SIGKILLs itself on its first
        # task (the budget is per process), so the whole pool breaks
        # under the race.  The parent never runs _race_entry, so it is
        # immune by construction.
        faults.install("seed=1;worker.kill:p=1,count=1", propagate=True)
        with Portfolio(jobs=2, quick_slice=0.0) as pool:
            gen_before = pool.generation
            result = pool.solve(formula, seed=0, deadline=60)

            # The verdict survived the massacre via the solo fallback.
            assert result.outcome.status == "sat"
            assert formula.is_satisfied(result.outcome.assignment)
            assert pool.solo_fallbacks == 1

            # The broken pool was torn down exactly once.
            assert pool.generation == gen_before + 1
            health = pool.health()
            assert health["active_races"] == 0
            assert health["pool_alive"] is False

            # With chaos cleared, the next race forks a clean pool (the
            # children inherit the cleared state) and runs normally.
            faults.clear()
            again = pool.solve(formula, seed=1, deadline=60)
            assert again.outcome.status == "sat"
            assert pool.solo_fallbacks == 1        # no second fallback
            health = pool.health()
            assert health["pool_alive"] is True
            assert health["active_races"] == 0
            assert health["free_slots"] > 0        # the slot came back

    def test_quick_slice_win_never_reaches_the_pool(self, planted):
        formula, _ = planted
        faults.install("worker.kill:p=1", propagate=True)
        with Portfolio(jobs=2, quick_slice=5.0) as pool:
            result = pool.solve(formula, seed=0, deadline=60)
            assert result.outcome.status == "sat"
            assert result.via_quick_slice
            assert pool.generation == 0
            assert pool.solo_fallbacks == 0


class TestWorkerHang:
    def test_hung_racers_do_not_stall_the_race(self, planted):
        formula, _ = planted
        # Each worker's first racer stalls 0.3 s then returns undecided;
        # the race outlives it on the remaining configurations.
        faults.install(
            "seed=2;worker.hang:p=1,count=1,delay=0.3", propagate=True
        )
        with Portfolio(jobs=2, quick_slice=0.0) as pool:
            result = pool.solve(formula, seed=0, deadline=60)
            assert result.outcome.status == "sat"
            assert formula.is_satisfied(result.outcome.assignment)

    def test_health_snapshot_shape(self):
        with Portfolio(jobs=1) as pool:
            health = pool.health()
        assert set(health) == {
            "generation", "pool_alive", "active_races", "free_slots",
            "reaping", "leaked", "solo_fallbacks", "total_launched", "jobs",
        }
