"""Shared hygiene for the fault-injection tests.

Chaos installation is process-global (that is the point), so every test
in this directory gets a clean slate on both sides: no injector, no
``REPRO_CHAOS`` in the environment.  Without this an installed plan
would leak into the next test — or worse, into a forked pool worker
created by an unrelated suite.
"""

import pytest

from repro import faults


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.clear()
    yield
    faults.clear()
