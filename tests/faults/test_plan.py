"""Fault plans and the injector: spec round-trips, seeded determinism,
probability/count budgets, and the process-global install plumbing."""

import pytest

from repro import faults
from repro.engine.config import EngineConfig
from repro.faults import FaultError, FaultInjector, FaultPlan, FaultPoint


class TestSpecParsing:
    def test_round_trip_is_exact(self):
        spec = "seed=42;worker.kill:p=0.2,count=2;wire.slow:delay=0.1"
        assert FaultPlan.from_spec(spec).spec() == spec

    def test_defaults_are_omitted_from_the_spec(self):
        plan = FaultPlan.from_spec("wire.drop")
        assert plan.spec() == "seed=0;wire.drop"
        point = plan.point("wire.drop")
        assert point.probability == 1.0
        assert point.count is None
        assert point.delay == 0.0

    def test_probability_alias_and_whitespace(self):
        plan = FaultPlan.from_spec(" seed=7 ; wire.drop : probability=0.5 ")
        assert plan.seed == 7
        assert plan.point("wire.drop").probability == 0.5

    def test_unknown_point_lookup_returns_none(self):
        assert FaultPlan.from_spec("wire.drop").point("worker.kill") is None

    @pytest.mark.parametrize("bad, match", [
        ("seed=x", "bad seed segment"),
        ("bogus::", "needs key=value"),
        ("p1:frobnicate=3", "unknown parameter"),
        ("p1:p=lots", "bad value"),
        ("p1:count=2.5", "bad value"),
    ])
    def test_malformed_specs_raise_fault_error(self, bad, match):
        with pytest.raises(FaultError, match=match):
            FaultPlan.from_spec(bad)

    def test_point_validation(self):
        with pytest.raises(FaultError, match="probability"):
            FaultPoint("x", probability=1.5)
        with pytest.raises(FaultError, match="count"):
            FaultPoint("x", count=-1)
        with pytest.raises(FaultError, match="delay"):
            FaultPoint("x", delay=-0.1)
        with pytest.raises(FaultError, match="bad fault point name"):
            FaultPoint("a b")

    def test_duplicate_points_rejected(self):
        with pytest.raises(FaultError, match="duplicate"):
            FaultPlan.from_spec("wire.drop;wire.drop:p=0.5")


class TestInjector:
    def test_decisions_are_deterministic_across_instances(self):
        plan = FaultPlan.from_spec("seed=9;a:p=0.3;b:p=0.7")
        one = FaultInjector(plan)
        two = FaultInjector(plan)
        for name in ("a", "b"):
            seq1 = [one.fire(name) is not None for _ in range(200)]
            seq2 = [two.fire(name) is not None for _ in range(200)]
            assert seq1 == seq2
            assert any(seq1) and not all(seq1)

    def test_different_seeds_differ(self):
        spec = "a:p=0.5"
        one = FaultInjector(FaultPlan.from_spec("seed=1;" + spec))
        two = FaultInjector(FaultPlan.from_spec("seed=2;" + spec))
        assert (
            [one.fire("a") is not None for _ in range(64)]
            != [two.fire("a") is not None for _ in range(64)]
        )

    def test_count_is_a_lifetime_budget(self):
        injector = FaultInjector(FaultPlan.from_spec("a:p=1,count=2"))
        fired = [injector.fire("a") is not None for _ in range(10)]
        assert fired == [True, True] + [False] * 8
        assert injector.fired["a"] == 2
        assert injector.checked["a"] == 10

    def test_probability_zero_never_fires(self):
        injector = FaultInjector(FaultPlan.from_spec("a:p=0"))
        assert all(injector.fire("a") is None for _ in range(50))
        assert injector.fired["a"] == 0

    def test_unplanned_point_is_a_silent_no_op(self):
        injector = FaultInjector(FaultPlan.from_spec("a"))
        assert injector.fire("nope") is None
        assert "nope" not in injector.checked

    def test_fire_returns_the_point_budget(self):
        injector = FaultInjector(FaultPlan.from_spec("slow:delay=0.25"))
        assert injector.fire("slow").delay == 0.25

    def test_snapshot_reports_spec_and_counters(self):
        injector = FaultInjector(FaultPlan.from_spec("seed=3;a:count=1"))
        injector.fire("a")
        injector.fire("a")
        snap = injector.snapshot()
        assert snap["spec"] == "seed=3;a:count=1"
        assert snap["seed"] == 3
        assert snap["points"]["a"] == {"checked": 2, "fired": 1}


class TestInstallPlumbing:
    def test_no_plan_means_no_fires(self):
        assert faults.get_injector() is None
        assert faults.fire("worker.kill") is None

    def test_install_and_clear(self):
        faults.install("seed=1;a")
        assert faults.fire("a") is not None
        faults.clear()
        assert faults.fire("a") is None

    def test_propagate_exports_and_clear_drops_the_env_var(self):
        import os

        faults.install("seed=5;a:p=0.5", propagate=True)
        assert os.environ[faults.ENV_VAR] == "seed=5;a:p=0.5"
        faults.clear()
        assert faults.ENV_VAR not in os.environ

    def test_env_var_is_adopted_lazily(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "seed=4;a:count=1")
        injector = faults.get_injector()
        assert injector is not None
        assert injector.plan.spec() == "seed=4;a:count=1"

    def test_env_var_is_consulted_at_most_once(self, monkeypatch):
        assert faults.get_injector() is None
        monkeypatch.setenv(faults.ENV_VAR, "seed=4;a")
        # The daemon decided chaos-free at startup; later env mutation
        # must not flip a long-lived process mid-run.
        assert faults.get_injector() is None
        # clear() re-arms the check (and drops the export, so re-set it).
        faults.clear()
        monkeypatch.setenv(faults.ENV_VAR, "seed=4;a")
        assert faults.get_injector() is not None


class TestEngineConfigValidation:
    def test_valid_spec_is_accepted(self):
        cfg = EngineConfig(chaos="seed=1;worker.kill:p=0.1,count=2")
        assert cfg.chaos.startswith("seed=1")

    def test_invalid_spec_is_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="invalid chaos spec"):
            EngineConfig(chaos="bogus::")
