"""Wire-level chaos and the hardened client/daemon: retried transport
failures, idempotent change replay, frame caps, the health op, and the
one-line exit-1 contract for a missing daemon."""

import json
import socket as socket_mod
import struct
import time

import pytest

from repro import faults
from repro.cnf.clause import Clause
from repro.cnf.dimacs import write_dimacs
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_planted_ksat
from repro.core.change import AddClause, ChangeSet
from repro.engine.config import EngineConfig
from repro.errors import ConnectError
from repro.service.client import ServiceClient
from repro.service.daemon import ServiceDaemon
from repro.service.requests import ChangeRequest, SolveRequest
from repro.service.service import SolverService
from repro.service.wire import batch_request_to_wire, recv_frame, send_frame

pytestmark = pytest.mark.skipif(
    not hasattr(socket_mod, "AF_UNIX"), reason="needs AF_UNIX sockets"
)

_LEN = struct.Struct("<I")


@pytest.fixture
def planted():
    return random_planted_ksat(12, 36, rng=6)


@pytest.fixture
def daemon(tmp_path):
    d = ServiceDaemon(
        str(tmp_path / "svc.sock"),
        SolverService(EngineConfig(jobs=1)),
        log_path=str(tmp_path / "daemon.log"),
    )
    thread = d.start()
    yield d
    d.shutdown()
    thread.join(timeout=10)
    assert not thread.is_alive()


def _log_records(daemon):
    with open(daemon.log_path, "r", encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


class TestClientRetries:
    def test_dropped_connections_are_retried(self, daemon):
        # The daemon eats the first two frames (drop fires pre-dispatch)
        # and serves the third; the client absorbs both as retries.
        with ServiceClient(
            daemon.socket_path, retries=3, backoff=0.01
        ) as client:
            faults.install("seed=7;wire.drop:p=1,count=2")
            assert client.ping()
            assert client.retried == 2
            snap = client.health()["faults"]
            assert snap["points"]["wire.drop"]["fired"] == 2

    def test_truncated_response_replays_the_change_exactly_once(
        self, daemon, planted
    ):
        formula, _ = planted
        with ServiceClient(
            daemon.socket_path, retries=3, backoff=0.01
        ) as client:
            opened = client.solve(
                SolveRequest(formula=formula, session="t", seed=0)
            )
            assert opened.status == "sat"
            before = len(daemon.service.session("t").formula.clauses)

            # The first response is cut mid-frame AFTER the change ran;
            # the retry must replay the recorded response, not re-apply.
            faults.install("seed=7;wire.truncate:p=1,count=1")
            model = opened.assignment
            breaking = Clause([
                -v if model.get(v, False) else v
                for v in sorted(formula.variables)[:2]
            ])
            response = client.change(ChangeRequest(
                "t", ChangeSet([AddClause(breaking)]), seed=0,
            ))
            assert response.status in ("sat", "unsat")
            assert client.retried == 1
            after = len(daemon.service.session("t").formula.clauses)
            assert after == before + 1
            assert daemon.service.metrics.counter("change_replays") == 1

    def test_truncated_response_replays_the_session_open(
        self, daemon, planted
    ):
        formula, _ = planted
        # The open runs, the session exists, then the response frame is
        # cut; the retry must replay the recorded open response instead
        # of hitting "session already exists".
        faults.install("seed=7;wire.truncate:p=1,count=1")
        with ServiceClient(
            daemon.socket_path, retries=3, backoff=0.01
        ) as client:
            response = client.solve(
                SolveRequest(formula=formula, session="t", seed=0)
            )
            assert response.status == "sat"
            assert client.retried == 1
            assert daemon.service.session_names == ("t",)
            assert daemon.service.metrics.counter("open_replays") == 1
            assert daemon.service.metrics.counter("session_opens") == 1

            # The session is fully usable after the replayed open.
            again = client.solve(SolveRequest(session="t", seed=0))
            assert again.status == "sat"

    def test_slow_wire_only_stalls(self, daemon):
        faults.install("seed=7;wire.slow:p=1,count=1,delay=0.05")
        with ServiceClient(daemon.socket_path) as client:
            assert client.ping()
            assert client.retried == 0


class TestDaemonResilience:
    def test_client_disconnect_mid_solve_many_keeps_the_daemon_serving(
        self, daemon
    ):
        f1, _ = random_planted_ksat(10, 30, rng=1)
        f2, _ = random_planted_ksat(10, 30, rng=2)
        header, payload = batch_request_to_wire([f1, f2], seed=0)
        sock = socket_mod.socket(socket_mod.AF_UNIX, socket_mod.SOCK_STREAM)
        sock.connect(daemon.socket_path)
        send_frame(sock, header, payload)
        sock.close()                       # walk away before the response

        # The daemon still executes the batch (it only notices the dead
        # peer when it tries to answer); wait for the op record.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if any(
                r["event"] == "op" and r["op"] == "solve_many"
                for r in _log_records(daemon)
            ):
                break
            time.sleep(0.05)
        else:
            raise AssertionError("solve_many never dispatched")

        metrics = daemon.service.metrics
        assert metrics.gauge("queued") == 0
        assert metrics.gauge("inflight") == 0
        with ServiceClient(daemon.socket_path) as client:
            assert client.ping()
            response = client.solve(SolveRequest(formula=f1, seed=0))
            assert response.status == "sat"

    def test_health_op_round_trip(self, daemon):
        with ServiceClient(daemon.socket_path) as client:
            health = client.health()
        assert health["sessions"] == 0
        assert health["draining"] is False
        assert health["closed"] is False
        assert health["faults"] is None
        pool = health["engine"]["pool"]
        assert pool["generation"] >= 0
        assert health["engine"]["cache"]["degraded"] is False

    def test_health_surfaces_the_installed_plan(self, daemon):
        faults.install("seed=11;wire.drop:p=0")
        with ServiceClient(daemon.socket_path) as client:
            health = client.health()
        assert health["faults"]["spec"] == "seed=11;wire.drop:p=0"
        assert "wire.drop" in health["faults"]["points"]


class TestFrameCap:
    @pytest.fixture
    def capped(self, tmp_path):
        d = ServiceDaemon(
            str(tmp_path / "cap.sock"),
            SolverService(EngineConfig(jobs=1)),
            log_path=str(tmp_path / "cap.log"),
            max_frame_bytes=1024,
        )
        thread = d.start()
        yield d
        d.shutdown()
        thread.join(timeout=10)

    def test_oversized_header_is_refused_and_logged(self, capped):
        sock = socket_mod.socket(socket_mod.AF_UNIX, socket_mod.SOCK_STREAM)
        sock.settimeout(10)
        sock.connect(capped.socket_path)
        try:
            sock.sendall(_LEN.pack(5000))       # declared header over cap
            response, _ = recv_frame(sock)
        finally:
            sock.close()
        assert response["ok"] is False
        assert "exceeds the frame cap" in response["error"]
        records = [r for r in _log_records(capped) if r["event"] == "wire_error"]
        assert records and records[0]["length"] == 5000
        assert records[0]["op"] is None

    def test_oversized_payload_logs_the_op(self, capped):
        sock = socket_mod.socket(socket_mod.AF_UNIX, socket_mod.SOCK_STREAM)
        sock.settimeout(10)
        sock.connect(capped.socket_path)
        try:
            raw = b'{"op":"solve"}'
            sock.sendall(_LEN.pack(len(raw)) + raw + _LEN.pack(5000))
            response, _ = recv_frame(sock)
        finally:
            sock.close()
        assert response["ok"] is False
        records = [r for r in _log_records(capped) if r["event"] == "wire_error"]
        assert records and records[0]["length"] == 5000
        assert records[0]["op"] == "solve"


class TestMissingDaemonCli:
    """Satellite: --connect against a dead socket is one line + exit 1."""

    def _assert_one_line_error(self, capsys):
        err = capsys.readouterr().err
        assert err.startswith("error: cannot reach daemon")
        assert len(err.strip().splitlines()) == 1

    @pytest.fixture
    def fast_client(self, monkeypatch):
        # Shrink the connect-retry budget: these tests only care about
        # the failure contract, not about riding out a daemon restart.
        import repro.service.client as client_mod

        original = client_mod.ServiceClient.__init__

        def quick(self, socket_path, **kwargs):
            kwargs.setdefault("retries", 1)
            kwargs.setdefault("backoff", 0.01)
            original(self, socket_path, **kwargs)

        monkeypatch.setattr(client_mod.ServiceClient, "__init__", quick)

    def test_solve_connect(self, tmp_path, capsys, fast_client):
        from repro.cli import main

        cnf = tmp_path / "f.cnf"
        write_dimacs(CNFFormula([[1]]), cnf)
        rc = main([
            "solve", str(cnf), "--connect", str(tmp_path / "nope.sock"),
        ])
        assert rc == 1
        self._assert_one_line_error(capsys)

    def test_stats_connect(self, tmp_path, capsys, fast_client):
        from repro.cli import main

        assert main(["stats", "--connect", str(tmp_path / "nope.sock")]) == 1
        self._assert_one_line_error(capsys)

    def test_loadgen_connect(self, tmp_path, capsys, fast_client):
        from repro.cli import main

        rc = main([
            "loadgen", "tenant-churn", "--changes", "1",
            "--connect", str(tmp_path / "nope.sock"),
        ])
        assert rc == 1
        self._assert_one_line_error(capsys)

    def test_replay_connect(self, tmp_path, capsys, fast_client):
        from repro.cli import main

        trace = tmp_path / "t.trace"
        trace.write_text(
            '{"format":"repro-workload-trace","version":1,"meta":{}}\n'
        )
        rc = main([
            "replay", str(trace), "--connect", str(tmp_path / "nope.sock"),
        ])
        assert rc == 1
        self._assert_one_line_error(capsys)

    def test_client_raises_connect_error_directly(self, tmp_path):
        with pytest.raises(ConnectError, match="cannot reach daemon"):
            ServiceClient(
                str(tmp_path / "nope.sock"), retries=0, backoff=0.0
            )


class TestTruncatedTrace:
    def test_replay_reports_the_offending_line(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "torn.trace"
        trace.write_text(
            '{"format":"repro-workload-trace","version":1,"meta":{}}\n'
            '{"seq":0,"op":"solve","header"\n'
        )
        rc = main(["replay", str(trace)])
        assert rc == 2
        err = capsys.readouterr().err
        assert f"{trace}:2: malformed record" in err
