"""Unit tests for preserving EC (§7)."""

import pytest

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_planted_ksat
from repro.cnf.mutations import table3_trial
from repro.core.preserving import (
    build_preserving_encoding,
    preserving_ec,
    resolve_oblivious,
)
from repro.errors import PreservationError
from repro.sat.brute import max_agreement_model


class TestPaperPreservingExample:
    """§1's preserving example: S2 keeps 4/5 assignments, S1 only 1/5."""

    @pytest.fixture
    def setup(self):
        f = CNFFormula(
            [
                [1, 2, 4],
                [1, 4, -5],
                [-1, -3, 4],
                [2, 3, 5],
                [-2, 4, 5],
                [3, -4, 5],
            ]
        )
        s = Assignment({1: True, 2: True, 3: False, 4: False, 5: True})
        assert f.is_satisfied(s)
        modified = f.copy()
        modified.add_clause([-2, 3, 4])
        modified.add_clause([1, -2, -5])
        return modified, s

    def test_original_now_broken(self, setup):
        modified, s = setup
        assert not modified.is_satisfied(s)

    def test_preserving_finds_high_agreement(self, setup):
        modified, s = setup
        result = preserving_ec(modified, s)
        assert result.succeeded
        assert modified.is_satisfied(result.assignment)
        # The paper's S2 preserves 4/5; the ILP must do at least that well.
        assert result.preserved_count >= 4

    def test_matches_brute_force_optimum(self, setup):
        modified, s = setup
        result = preserving_ec(modified, s)
        _, best = max_agreement_model(modified, s)
        assert result.preserved_count == best


class TestOptimality:
    @pytest.mark.parametrize("seed", range(6))
    def test_preserving_is_optimal(self, seed):
        f, p = random_planted_ksat(12, 36, rng=200 + seed)
        modified, _ = table3_trial(
            f, p, rng=seed, num_var_adds=2, num_var_deletes=2,
            num_clause_adds=3, num_clause_deletes=3,
        )
        result = preserving_ec(modified, p)
        _, best = max_agreement_model(
            modified, p.restricted_to(modified.variables)
        )
        assert result.preserved_count == best

    def test_beats_or_ties_oblivious(self, planted_medium):
        f, p = planted_medium
        modified, _ = table3_trial(f, p, rng=77)
        pres = preserving_ec(modified, p, time_limit=60)
        obl = resolve_oblivious(modified, p, time_limit=60)
        assert pres.preserved_fraction >= obl.preserved_fraction - 1e-9


class TestSpecifiedPreservation:
    def test_pinned_variables_kept(self, planted_small):
        f, p = planted_small
        modified, _ = table3_trial(f, p, rng=5, num_var_deletes=0, num_var_adds=0)
        pins = list(modified.variables)[:3]
        result = preserving_ec(modified, p, preserve=pins)
        if result.succeeded:
            for var in pins:
                assert result.assignment[var] == p[var]

    def test_pin_unknown_variable_raises(self, planted_small):
        f, p = planted_small
        with pytest.raises(PreservationError):
            build_preserving_encoding(f, p, preserve=[999])

    def test_pin_valueless_variable_raises(self):
        f = CNFFormula([[1, 2]])
        with pytest.raises(PreservationError):
            build_preserving_encoding(f, Assignment({1: True}), preserve=[2])


class TestEdgeCases:
    def test_unsatisfiable_modified(self):
        f = CNFFormula([[1], [-1]])
        result = preserving_ec(f, Assignment({1: True}))
        assert not result.succeeded

    def test_fresh_variables_have_no_agreement_term(self, planted_small):
        f, p = planted_small
        g = f.copy()
        new_var = g.add_variable()
        result = preserving_ec(g, p)
        assert result.succeeded
        assert result.comparable_variables == 20  # new var not comparable
        assert new_var in result.assignment  # but it does get a value

    def test_quality_weight_mixes_objectives(self, planted_small):
        f, p = planted_small
        result = preserving_ec(f, p, quality_weight=0.01)
        assert result.succeeded
        assert result.preserved_fraction == pytest.approx(1.0)
