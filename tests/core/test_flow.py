"""Integration tests for the Figure-1 EC flow."""

import pytest

from repro.cnf.assignment import Assignment
from repro.cnf.clause import Clause
from repro.core.change import AddClause, AddVariable, ChangeSet, RemoveClause
from repro.core.enabling import EnablingOptions
from repro.core.flow import ECFlow
from repro.errors import ECError


class TestSolveOriginal:
    def test_plain_solve(self, planted_small):
        f, _ = planted_small
        flow = ECFlow(f.copy())
        a = flow.solve_original()
        assert f.is_satisfied(a)
        assert flow.history[0].kind == "solve"

    def test_enabled_solve(self, planted_small):
        f, _ = planted_small
        flow = ECFlow(f.copy())
        a = flow.solve_original(
            enable=EnablingOptions(mode="objective", support="chained")
        )
        assert f.is_satisfied(a)
        assert flow.enabled
        assert flow.history[0].kind == "enable"

    def test_unsat_original_raises(self):
        from repro.cnf.formula import CNFFormula

        flow = ECFlow(CNFFormula([[1], [-1]]))
        with pytest.raises(ECError):
            flow.solve_original()

    def test_external_solution(self, planted_small):
        f, p = planted_small
        flow = ECFlow(f.copy())
        flow.set_solution(p)
        assert flow.is_current_solution_valid

    def test_external_solution_must_satisfy(self, planted_small):
        f, p = planted_small
        flow = ECFlow(f.copy())
        bad = Assignment({v: not p[v] for v in p})
        if not f.is_satisfied(bad):
            with pytest.raises(ECError):
                flow.set_solution(bad)


class TestResolve:
    def test_resolve_requires_solution(self, planted_small):
        f, _ = planted_small
        flow = ECFlow(f.copy())
        with pytest.raises(ECError):
            flow.resolve("fast")

    def test_unknown_strategy(self, planted_small):
        f, p = planted_small
        flow = ECFlow(f.copy())
        flow.set_solution(p)
        with pytest.raises(ECError):
            flow.resolve("psychic")

    def test_fast_path(self, planted_small):
        f, p = planted_small
        flow = ECFlow(f.copy())
        flow.set_solution(p)
        flow.apply_changes(ChangeSet([AddClause(Clause([-1, -2, -3]))]))
        a = flow.resolve("fast")
        assert flow.formula.is_satisfied(a)
        assert flow.history[-1].kind == "fast"

    def test_preserving_path(self, planted_small):
        f, p = planted_small
        flow = ECFlow(f.copy())
        flow.set_solution(p)
        flow.apply_changes(ChangeSet([AddClause(Clause([-1, -2, -3]))]))
        a = flow.resolve("preserving")
        assert flow.formula.is_satisfied(a)
        assert "preserved" in flow.history[-1].detail


class TestSuccessiveChanges:
    """The paper claims the technique supports successive EC requests."""

    def test_three_rounds(self, planted_medium):
        f, p = planted_medium
        flow = ECFlow(f.copy())
        flow.set_solution(p)
        for round_no, lits in enumerate([[-1, -2, -3], [-4, -5, -6], [-7, -8, -9]]):
            flow.apply_changes(ChangeSet([AddClause(Clause(lits))]))
            strategy = "fast" if round_no % 2 == 0 else "preserving"
            flow.resolve(strategy, time_limit=60)
            assert flow.is_current_solution_valid
        kinds = [s.kind for s in flow.history]
        assert kinds.count("change") == 3

    def test_loosening_changes_keep_solution_valid(self, planted_small):
        f, p = planted_small
        flow = ECFlow(f.copy())
        flow.set_solution(p)
        first_clause = flow.formula.clause(0)
        flow.apply_changes(
            ChangeSet([AddVariable(), RemoveClause(first_clause)])
        )
        assert flow.is_current_solution_valid  # no resolve needed


class TestPortfolioStrategy:
    """ECFlow.resolve(strategy="portfolio") — the engine wired into Fig. 1."""

    def test_end_to_end_with_solver_call_accounting(self, planted_small):
        f, _ = planted_small
        flow = ECFlow(f.copy())
        flow.solve_original()

        # Loosening-only batch: answered by revalidation, zero launches.
        flow.apply_changes(ChangeSet([RemoveClause(flow.formula.clauses[0]),
                                      AddVariable()]))
        a = flow.resolve(strategy="portfolio", jobs=1)
        assert flow.engine is not None
        assert flow.engine.stats.solver_calls == 0
        assert flow.engine.stats.revalidations == 1
        assert flow.formula.is_satisfied(a)
        assert flow.history[-1].kind == "portfolio"
        assert "revalidation" in flow.history[-1].detail

        # A contradicting clause forces a real portfolio re-solve.
        broken = Clause(
            [-v if a.get(v, False) else v for v in sorted(flow.formula.variables)[:3]]
        )
        flow.apply_changes(ChangeSet([AddClause(broken)]))
        try:
            b = flow.resolve(strategy="portfolio")
        except ECError:
            return  # the contradicting clause happened to make it UNSAT
        assert flow.engine.stats.solver_calls > 0
        assert flow.formula.is_satisfied(b)

    def test_unsat_modified_instance_raises(self):
        from repro.cnf.formula import CNFFormula

        flow = ECFlow(CNFFormula([[1, 2]]))
        flow.solve_original()
        flow.apply_changes(ChangeSet([AddClause(Clause([-1])),
                                      AddClause(Clause([-2]))]))
        with pytest.raises(ECError, match="unsatisfiable"):
            flow.resolve(strategy="portfolio", jobs=1)

    def test_engine_reused_across_resolves(self, planted_small):
        f, _ = planted_small
        flow = ECFlow(f.copy())
        flow.solve_original()
        flow.apply_changes(ChangeSet([AddVariable()]))
        flow.resolve(strategy="portfolio", jobs=1)
        engine = flow.engine
        flow.apply_changes(ChangeSet([AddVariable()]))
        flow.resolve(strategy="portfolio")
        assert flow.engine is engine
        assert engine.stats.solves == 2


    def test_stray_portfolio_option_rejected(self, planted_small):
        f, p = planted_small
        flow = ECFlow(f.copy())
        flow.set_solution(p)
        with pytest.raises(ECError, match="unknown portfolio option"):
            flow.resolve(strategy="portfolio", deadine=1.0)  # typo'd on purpose
