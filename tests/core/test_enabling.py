"""Unit tests for enabling EC (§5)."""

import pytest

from repro.cnf.analysis import flexibility_report
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_planted_ksat
from repro.core.enabling import (
    EnablingOptions,
    build_enabling_encoding,
    enable_ec,
    support_variable_name,
)
from repro.errors import ECError


class TestOptions:
    def test_defaults(self):
        o = EnablingOptions()
        assert o.k == 2 and o.mode == "constraints" and o.support == "acyclic"

    def test_bad_k(self):
        with pytest.raises(ECError):
            EnablingOptions(k=0)

    def test_bad_mode(self):
        with pytest.raises(ECError):
            EnablingOptions(mode="soft")

    def test_bad_support(self):
        with pytest.raises(ECError):
            EnablingOptions(support="psychic")


class TestEncodingStructure:
    def test_support_variables_created(self):
        f = CNFFormula([[1, 2], [-1, 2]])
        enc = build_enabling_encoding(f, EnablingOptions())
        for lit in (1, 2, -1):
            assert enc.model.has_var(support_variable_name(lit))

    def test_objective_mode_has_achievement_vars(self):
        f = CNFFormula([[1, 2, 3]])
        enc = build_enabling_encoding(f, EnablingOptions(mode="objective"))
        assert enc.model.has_var("S::0")

    def test_constraint_mode_has_enable_rows(self):
        f = CNFFormula([[1, 2, 3]])
        enc = build_enabling_encoding(f, EnablingOptions(mode="constraints"))
        assert any(c.name == "enable::0" for c in enc.model.constraints)

    def test_unit_clause_blocks_support(self):
        # comp literal in a unit clause can never flip-support anything.
        f = CNFFormula([[1], [-1, 2]])
        enc = build_enabling_encoding(f, EnablingOptions())
        assert any(
            c.name and c.name.startswith("Wblock::-1") for c in enc.model.constraints
        )


class TestSolvedFlexibility:
    def test_objective_mode_improves_flexibility(self):
        f, p = random_planted_ksat(12, 36, rng=21)
        result = enable_ec(f, EnablingOptions(mode="objective"))
        assert result.succeeded
        enabled = flexibility_report(f, result.assignment)
        plain = flexibility_report(f, p)
        assert f.is_satisfied(result.assignment)
        assert enabled.fraction_2_satisfied >= plain.fraction_2_satisfied - 0.15

    def test_chained_constraints_feasible_on_dense(self):
        f, _ = random_planted_ksat(12, 40, rng=2)
        result = enable_ec(
            f, EnablingOptions(mode="constraints", support="chained")
        )
        assert result.succeeded
        assert f.is_satisfied(result.assignment)

    def test_acyclic_constraints_raise_on_rigid(self):
        # XOR group: provably no 2-satisfied-or-supported solution.
        from repro.cnf.families import _xor_clauses

        f = CNFFormula(_xor_clauses(1, 2, 3, True))
        with pytest.raises(ECError):
            enable_ec(f, EnablingOptions(mode="constraints", support="acyclic"))

    def test_objective_mode_never_raises_on_rigid(self):
        from repro.cnf.families import _xor_clauses

        f = CNFFormula(_xor_clauses(1, 2, 3, True))
        result = enable_ec(f, EnablingOptions(mode="objective", support="acyclic"))
        assert result.succeeded
        assert f.is_satisfied(result.assignment)

    def test_acyclic_enabled_solution_is_robust(self):
        # On a loose instance the constraint mode must produce a solution
        # where every clause is 2-satisfied or one-flip repairable.
        f = CNFFormula([[1, 2, 3], [2, 3, 4], [-1, 4, 5]], num_vars=5)
        result = enable_ec(f, EnablingOptions(mode="constraints", support="acyclic"))
        assert result.succeeded
        rep = flexibility_report(f, result.assignment)
        assert rep.min_level >= 1

    def test_narrow_clause_exemption(self):
        f = CNFFormula([[1], [1, 2, 3]])
        result = enable_ec(
            f, EnablingOptions(mode="constraints", support="chained")
        )
        assert result.succeeded  # unit clause exempted from the k=2 row

    def test_narrow_exemption_disabled_infeasible(self):
        f = CNFFormula([[1]])
        with pytest.raises(ECError):
            enable_ec(
                f,
                EnablingOptions(
                    mode="constraints", exempt_narrow_clauses=False, support="chained"
                ),
            )

    def test_flexibility_only_objective(self):
        f, _ = random_planted_ksat(10, 25, rng=31)
        result = enable_ec(
            f,
            EnablingOptions(mode="objective", keep_quality_objective=False),
        )
        assert result.succeeded
        assert f.is_satisfied(result.assignment)
