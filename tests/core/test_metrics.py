"""Unit tests for EC metrics."""

import pytest

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.core.metrics import ECComparison, compare_flexibility, preserved_fraction


class TestPreservedFraction:
    def test_full_agreement(self):
        a = Assignment({1: True, 2: False})
        assert preserved_fraction(a, a.copy()) == 1.0

    def test_partial(self):
        a = Assignment({1: True, 2: False})
        b = Assignment({1: True, 2: True})
        assert preserved_fraction(a, b) == pytest.approx(0.5)

    def test_restricted_to_formula(self):
        f = CNFFormula([[1, 2]])
        a = Assignment({1: True, 2: False, 9: True})  # v9 eliminated
        b = Assignment({1: True, 2: False})
        assert preserved_fraction(a, b, over=f) == 1.0

    def test_empty_reference(self):
        assert preserved_fraction(Assignment({}), Assignment({1: True})) == 1.0


class TestCompareFlexibility:
    def test_gains(self, paper_formula, paper_solution_s, paper_solution_e):
        cmp = compare_flexibility(paper_formula, paper_solution_s, paper_solution_e)
        assert isinstance(cmp, ECComparison)
        assert cmp.robustness_gain > 0  # E is strictly more robust than S

    def test_self_comparison_zero_gain(self, paper_formula, paper_solution_e):
        cmp = compare_flexibility(paper_formula, paper_solution_e, paper_solution_e)
        assert cmp.flexibility_gain == pytest.approx(0.0)
        assert cmp.robustness_gain == pytest.approx(0.0)
