"""Focused tests for fast EC's flexibility-recovery path (§6 first half).

"When clauses are deleted, the idea is to increase the enabling of the
problem such that the next EC can be easily and properly handled.  We can
increase the EC flexibility of the problem in two ways.  First, we try
and recover as many DC variables from the initial solution as possible."
"""

import pytest

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.core.fast import _recover_dont_cares, fast_ec


class TestRecoverDontCares:
    def test_redundantly_assigned_variable_freed(self):
        # Clause (1 2) with both true: one of them can become DC.
        f = CNFFormula([[1, 2]])
        a = Assignment({1: True, 2: True})
        out = _recover_dont_cares(f, a)
        assert len(out) == 1
        # The remaining partial assignment still satisfies every clause.
        assert f.is_satisfied(out)

    def test_sole_satisfier_kept(self):
        f = CNFFormula([[1, 2]])
        a = Assignment({1: True, 2: False})
        out = _recover_dont_cares(f, a)
        assert out.get(1) is True  # v1 is the only satisfier

    def test_deterministic_order(self):
        f = CNFFormula([[1, 2], [2, 3]])
        a = Assignment({1: True, 2: True, 3: True})
        out1 = _recover_dont_cares(f, a)
        out2 = _recover_dont_cares(f, a)
        assert out1 == out2

    def test_unassigned_variables_skipped(self):
        f = CNFFormula([[1, 2]], num_vars=3)
        a = Assignment({1: True, 2: True})  # v3 already DC
        out = _recover_dont_cares(f, a)
        assert 3 not in out


class TestClauseDeletionRecovery:
    def test_deletion_then_recovery_increases_dcs(self):
        # After deleting a clause, its sole satisfier can be recovered.
        f = CNFFormula([[1, 2], [3]])
        a = Assignment({1: True, 2: False, 3: True})
        g = f.copy()
        g.remove_clause([3])
        result = fast_ec(g, a, recover_flexibility=True)
        assert result.succeeded
        assert 3 not in result.assignment  # v3 recovered as don't care
        assert g.is_satisfied(result.assignment)

    def test_recovered_solution_still_satisfies(self, planted_small):
        f, p = planted_small
        g = f.copy()
        for _ in range(10):
            g.remove_clause_at(0)
        result = fast_ec(g, p, recover_flexibility=True)
        assert result.succeeded
        assert g.is_satisfied(result.assignment)
        assert len(result.assignment) <= len(p)
