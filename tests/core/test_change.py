"""Unit tests for typed change requests."""

import pytest

from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula
from repro.core.change import (
    AddClause,
    AddVariable,
    ChangeSet,
    RemoveClause,
    RemoveVariable,
)
from repro.errors import ChangeError


@pytest.fixture
def f():
    return CNFFormula([[1, 2], [-2, 3]])


class TestSingleChanges:
    def test_add_clause(self, f):
        AddClause(Clause([1, 3])).apply(f)
        assert f.num_clauses == 3

    def test_remove_clause(self, f):
        RemoveClause(Clause([1, 2])).apply(f)
        assert f.num_clauses == 1

    def test_add_variable(self, f):
        AddVariable().apply(f)
        assert 4 in f.variables

    def test_remove_variable(self, f):
        RemoveVariable(2).apply(f)
        assert 2 not in f.variables

    def test_tightening_flags(self):
        assert AddClause(Clause([1])).tightening
        assert RemoveVariable(1).tightening
        assert not RemoveClause(Clause([1])).tightening
        assert not AddVariable().tightening


class TestChangeSet:
    def test_apply_returns_copy(self, f):
        cs = ChangeSet([AddClause(Clause([1, 3]))])
        g = cs.apply_to(f)
        assert g.num_clauses == 3 and f.num_clauses == 2

    def test_loosening_only(self):
        loose = ChangeSet([AddVariable(), RemoveClause(Clause([1, 2]))])
        assert loose.is_loosening_only
        tight = ChangeSet([AddVariable(), AddClause(Clause([1]))])
        assert not tight.is_loosening_only
        assert len(tight.tightening_changes) == 1

    def test_emptying_clause_rejected(self):
        f = CNFFormula([[1]])
        cs = ChangeSet([RemoveVariable(1)])
        with pytest.raises(ChangeError):
            cs.apply_to(f)

    def test_order_matters(self, f):
        # Add a clause on v4, then remove v4 from it -> clause shrinks.
        cs = ChangeSet([AddClause(Clause([4, 1])), RemoveVariable(4)])
        g = cs.apply_to(f)
        assert Clause([1]) in g.clauses

    def test_builder_and_summary(self, f):
        cs = ChangeSet().add(AddVariable()).add(AddClause(Clause([1])))
        assert len(cs) == 2
        assert "+var:1" in cs.summary() and "+clause:1" in cs.summary()
        assert list(cs)  # iterable
