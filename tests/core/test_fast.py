"""Unit tests for fast EC (§6, Figure 2)."""

import pytest

from repro.cnf.assignment import Assignment
from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_planted_ksat
from repro.cnf.mutations import table2_trial
from repro.core.fast import FastECInstance, fast_ec, simplify_instance


class TestPaperFastExample:
    """The §1 fast-EC walkthrough: F'' shrinks to 3 clauses over v2,v5,v6."""

    @pytest.fixture
    def formula(self):
        # f1..f10 of the fast-EC example.
        return CNFFormula(
            [
                [1, 2, 3],          # f1
                [1, -2, -3, 4],     # f2
                [1, 3, 6],          # f3
                [1, 4, 5],          # f4
                # f5: printed as (v1'+v3+v4); the prime on v3 is lost to
                # OCR — with (v1'+v3'+v4) every §1 claim checks out.
                [-1, -3, 4],
                [2, -3, 5],         # f6
                [2, -6],            # f7
                [-2, 5],            # f8
                [3, -4, 5],         # f9
                [-3, 5],            # f10
            ]
        )

    @pytest.fixture
    def solution(self):
        return Assignment({1: True, 2: True, 3: False, 4: False, 5: True, 6: False})

    def test_original_satisfied(self, formula, solution):
        assert formula.is_satisfied(solution)

    def test_simplification_matches_paper(self, formula, solution):
        modified = formula.copy()
        modified.add_clause([-5, 6])      # f11
        modified.add_clause([1, -3, 4])   # f12 (already satisfied)
        inst = simplify_instance(modified, solution)
        # Paper: F'' = (v5'+v6)(v2+v6')(v2'+v5) over v2, v5, v6.
        assert set(inst.affected_variables) == {2, 5, 6}
        assert inst.num_clauses == 3

    def test_full_fast_ec_resolves(self, formula, solution):
        modified = formula.copy()
        modified.add_clause([-5, 6])
        modified.add_clause([1, -3, 4])
        result = fast_ec(modified, solution)
        assert result.succeeded
        assert modified.is_satisfied(result.assignment)
        assert not result.fell_back
        # Unaffected variables keep their original values.
        for var in (1, 3, 4):
            assert result.assignment[var] == solution[var]


class TestSimplify:
    def test_already_satisfied_noop(self, planted_small):
        f, p = planted_small
        inst = simplify_instance(f, p)
        assert inst.already_satisfied
        assert inst.num_vars == 0

    def test_added_variable_is_dc(self, planted_small):
        f, p = planted_small
        g = f.copy()
        g.add_variable()
        inst = simplify_instance(g, p)
        assert inst.already_satisfied

    def test_deleted_clause_noop(self, planted_small):
        f, p = planted_small
        g = f.copy()
        g.remove_clause_at(0)
        assert simplify_instance(g, p).already_satisfied

    def test_unsatisfied_clause_marked(self):
        f = CNFFormula([[1, 2], [3, 4]])
        p = Assignment({1: True, 2: False, 3: True, 4: False})
        g = f.copy()
        g.add_clause([-1, -3])  # unsatisfied under p
        inst = simplify_instance(g, p)
        assert not inst.already_satisfied
        assert set(inst.affected_variables) >= {1, 3}

    def test_outside_support_stops_growth(self):
        # Clause (1 2): satisfied by v2 (outside V) -> not marked.
        f = CNFFormula([[1, 2], [3]])
        p = Assignment({1: True, 2: True, 3: True})
        g = f.copy()
        g.add_clause([-1])
        inst = simplify_instance(g, p)
        assert 2 not in inst.affected_variables
        assert inst.num_clauses == 1  # only the new unit clause


class TestFastEC:
    def test_merge_preserves_unaffected(self, planted_medium):
        f, p = planted_medium
        modified, log = table2_trial(f, p, rng=17)
        result = fast_ec(modified, p, time_limit=60)
        assert result.succeeded
        assert modified.is_satisfied(result.assignment)
        untouched = set(modified.variables) - set(result.instance.affected_variables)
        for var in untouched:
            assert result.assignment[var] == p[var]

    def test_unsat_without_fallback_returns_failure(self):
        f = CNFFormula([[1, 2]])
        p = Assignment({1: True, 2: False})
        g = f.copy()
        g.add_clause([-1])
        g.add_clause([-2])
        g.add_clause([1, 2])
        result = fast_ec(g, p, allow_fallback=False)
        # Local subproblem covers everything here and is UNSAT overall.
        assert not result.succeeded

    def test_unsat_instance_fails_even_with_fallback(self):
        # The Figure-2 sub-instance is a subset of the modified clauses
        # over their own variables, so a sub-UNSAT verdict implies the
        # whole modified instance is UNSAT; the fallback full solve must
        # agree and the result reports failure.
        f = CNFFormula([[1, 2], [1, -2]])
        p = Assignment({1: True, 2: True})
        g = f.copy()
        g.add_clause([-1])
        g.add_clause([2, -1])
        g.add_clause([-2])
        result = fast_ec(g, p, allow_fallback=True)
        assert not result.succeeded
        assert result.fell_back

    def test_recover_flexibility_unassigns_dcs(self):
        f = CNFFormula([[1, 2]], num_vars=3)
        p = Assignment({1: True, 2: True, 3: True})
        result = fast_ec(f, p, recover_flexibility=True)
        assert result.succeeded
        # v3 occurs nowhere; at least it must be recovered as DC.
        assert 3 not in result.assignment

    def test_heuristic_subsolver(self, planted_medium):
        f, p = planted_medium
        modified, _ = table2_trial(f, p, rng=23)
        result = fast_ec(modified, p, method="heuristic", seed=4)
        assert result.succeeded
        assert modified.is_satisfied(result.assignment)


class TestFastECInstance:
    def test_shape_properties(self):
        inst = FastECInstance(CNFFormula([[1, 2]]), (1, 2), (0,))
        assert inst.num_vars == 2 and inst.num_clauses == 1
