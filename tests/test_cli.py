"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.cnf.dimacs import write_dimacs
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_planted_ksat


@pytest.fixture
def cnf_file(tmp_path):
    f, _ = random_planted_ksat(10, 30, rng=3)
    path = tmp_path / "orig.cnf"
    write_dimacs(f, path)
    return path, f


@pytest.fixture
def modified_file(tmp_path, cnf_file):
    _path, f = cnf_file
    g = f.copy()
    g.add_clause([-1, -2, -3])
    path = tmp_path / "modified.cnf"
    write_dimacs(g, path)
    return path, g


class TestSolve:
    def test_satisfiable(self, cnf_file, capsys):
        path, f = cnf_file
        assert main(["solve", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("s SATISFIABLE")
        lits = [int(t) for t in out.splitlines()[-1].split()[1:-1]]
        from repro.cnf.assignment import Assignment

        assert f.is_satisfied(Assignment.from_literals(lits))

    def test_unsatisfiable(self, tmp_path, capsys):
        path = tmp_path / "unsat.cnf"
        write_dimacs(CNFFormula([[1], [-1]]), path)
        assert main(["solve", str(path)]) == 1
        assert "s UNSATISFIABLE" in capsys.readouterr().out

    def test_deadline_and_seed_forwarded(self, cnf_file, capsys):
        path, _f = cnf_file
        assert main(["solve", str(path), "--deadline", "60", "--seed", "3"]) == 0
        assert capsys.readouterr().out.startswith("s SATISFIABLE")


class TestEnable:
    def test_enable_reports_flexibility(self, cnf_file, capsys):
        path, _f = cnf_file
        assert main(["enable", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2-satisfied fraction" in out


class TestECCommands:
    def test_fast(self, cnf_file, modified_file, capsys):
        orig, _ = cnf_file
        mod_path, mod = modified_file
        assert main(["fast", str(orig), str(mod_path)]) == 0
        out = capsys.readouterr().out
        assert "re-solved" in out

    def test_preserve(self, cnf_file, modified_file, capsys):
        orig, _ = cnf_file
        mod_path, _ = modified_file
        assert main(["preserve", str(orig), str(mod_path)]) == 0
        out = capsys.readouterr().out
        assert "preserved" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_table(self):
        with pytest.raises(SystemExit):
            main(["bench", "table9"])


class TestPortfolioEngine:
    def test_solve_portfolio(self, cnf_file, capsys):
        path, f = cnf_file
        assert main(["solve", str(path), "--engine", "portfolio", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("s SATISFIABLE")
        assert "c engine: portfolio" in out
        lits = [int(t) for t in out.splitlines()[-1].split()[1:-1]]
        from repro.cnf.assignment import Assignment

        assert f.is_satisfied(Assignment.from_literals(lits))

    def test_solve_portfolio_unsat(self, tmp_path, capsys):
        path = tmp_path / "unsat.cnf"
        write_dimacs(CNFFormula([[1], [-1]]), path)
        assert main(["solve", str(path), "--engine", "portfolio", "--jobs", "1"]) == 1
        assert "UNSATISFIABLE" in capsys.readouterr().out

    def test_solve_portfolio_accepts_seed_and_deadline(self, cnf_file, capsys):
        path, _f = cnf_file
        rc = main([
            "solve", str(path), "--engine", "portfolio",
            "--jobs", "1", "--seed", "7", "--deadline", "30",
        ])
        assert rc == 0

    def test_missing_file_reports_error(self, capsys):
        assert main(["solve", "/no/such/file.cnf", "--engine", "portfolio"]) == 2
        assert "No such file" in capsys.readouterr().err

    def test_portfolio_reports_winner(self, cnf_file, capsys):
        path, _f = cnf_file
        assert main(["solve", str(path), "--engine", "portfolio", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        # The quick slice decides this tiny instance: the winner is the
        # portfolio's lead solver, surfaced by name.
        assert "winner: cdcl" in out


class TestSingleSolverEngines:
    @pytest.mark.parametrize("engine", ["cdcl", "dpll", "walksat", "brute"])
    def test_named_solver_sat(self, cnf_file, capsys, engine):
        path, f = cnf_file
        assert main(["solve", str(path), "--engine", engine, "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("s SATISFIABLE")
        assert f"c engine: {engine}" in out
        lits = [int(t) for t in out.splitlines()[-1].split()[1:-1]]
        from repro.cnf.assignment import Assignment

        assert f.is_satisfied(Assignment.from_literals(lits))

    @pytest.mark.parametrize("engine", ["cdcl", "dpll"])
    def test_named_solver_unsat(self, tmp_path, capsys, engine):
        path = tmp_path / "unsat.cnf"
        write_dimacs(CNFFormula([[1], [-1]]), path)
        assert main(["solve", str(path), "--engine", engine]) == 1
        assert f"s UNSATISFIABLE (by {engine})" in capsys.readouterr().out

    def test_incomplete_solver_undecided_is_error(self, tmp_path, capsys):
        # WalkSAT cannot prove UNSAT: a non-trivial unsatisfiable instance
        # must surface as an undecided error, never as exit code 1.
        from repro.cnf.generators import unsat_parity_pair

        path = tmp_path / "hard-unsat.cnf"
        write_dimacs(unsat_parity_pair(6, rng=1), path)
        rc = main(["solve", str(path), "--engine", "walksat", "--deadline", "0.2"])
        assert rc == 2
        assert "undecided" in capsys.readouterr().err

    def test_undecided_budget_is_error_not_unsat(self, cnf_file, capsys):
        # A give-up status (node_limit) must never masquerade as UNSAT.
        path, _f = cnf_file
        rc = main([
            "solve", str(path), "--method", "heuristic",
            "--deadline", "0.0001", "--seed", "1",
        ])
        captured = capsys.readouterr()
        if rc == 0:  # pragma: no cover - heuristic got lucky in the budget
            assert captured.out.startswith("s SATISFIABLE")
        else:
            assert rc == 2
            assert "undecided" in captured.err
            assert "UNSATISFIABLE" not in captured.out


class TestStatsJson:
    def test_portfolio_solve_dumps_engine_and_cache_stats(
        self, cnf_file, tmp_path, capsys
    ):
        import json

        path, _f = cnf_file
        out = tmp_path / "stats.json"
        rc = main([
            "solve", str(path), "--engine", "portfolio", "--jobs", "1",
            "--stats-json", str(out),
        ])
        assert rc == 0
        stats = json.loads(out.read_text())
        assert stats["engine"]["solves"] == 1
        assert stats["engine"]["races"] == 1
        assert stats["engine"]["batch_dedups"] == 0
        assert "transport_bytes" in stats["engine"]
        assert stats["cache"]["misses"] >= 1
        assert stats["winner"] == "cdcl"
        assert stats["status"] == "sat"

    def test_batch_solve_dumps_per_file_results(self, tmp_path, capsys):
        import json

        f, _ = random_planted_ksat(10, 30, rng=3)
        write_dimacs(f, tmp_path / "a.cnf")
        write_dimacs(f, tmp_path / "b.cnf")
        out = tmp_path / "stats.json"
        rc = main([
            "solve", str(tmp_path), "--batch", "--jobs", "1",
            "--stats-json", str(out),
        ])
        assert rc == 0
        stats = json.loads(out.read_text())
        assert stats["engine"]["batch_dedups"] == 1
        assert [r["file"] for r in stats["results"]] == ["a.cnf", "b.cnf"]
        assert stats["results"][1]["source"] == "batch-dedup"

    def test_stats_json_for_ilp_route(self, cnf_file, tmp_path, capsys):
        # The flag works on every route; the engine counters just stay
        # zero when the ILP encoding answered without the engine.
        import json

        path, _f = cnf_file
        out = tmp_path / "stats.json"
        assert main(["solve", str(path), "--stats-json", str(out)]) == 0
        stats = json.loads(out.read_text())
        assert stats["engine"]["solves"] == 0
        assert stats["status"] == "sat"


class TestServeParser:
    def test_serve_requires_an_endpoint(self, capsys):
        # --socket is optional since --tcp arrived, but at least one
        # listener must be given.
        rc = main(["serve"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "--socket" in err and "--tcp" in err

    def test_serve_disk_cache_requires_dir(self, tmp_path, capsys):
        rc = main(["serve", "--socket", str(tmp_path / "s.sock"),
                   "--cache", "disk"])
        assert rc == 2
        assert "cache_dir" in capsys.readouterr().err

    def test_connect_with_batch_rejected(self, tmp_path, capsys):
        rc = main(["solve", str(tmp_path), "--batch",
                   "--connect", str(tmp_path / "s.sock")])
        assert rc == 2
        assert "cannot be combined" in capsys.readouterr().err

    def test_connect_without_daemon_reports_error(
        self, cnf_file, capsys, monkeypatch
    ):
        # The one-line exit-1 contract for an unreachable daemon (the
        # retry budget is shrunk: only the failure shape matters here).
        import repro.service.client as client_mod

        original = client_mod.ServiceClient.__init__

        def quick(self, socket_path, **kwargs):
            kwargs.setdefault("retries", 1)
            kwargs.setdefault("backoff", 0.01)
            original(self, socket_path, **kwargs)

        monkeypatch.setattr(client_mod.ServiceClient, "__init__", quick)
        path, _f = cnf_file
        rc = main(["solve", str(path), "--connect", "/no/such/socket.sock"])
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error: cannot reach daemon")
        assert len(err.strip().splitlines()) == 1


class TestSolveBatch:
    @pytest.fixture
    def batch_dir(self, tmp_path):
        f, _ = random_planted_ksat(10, 30, rng=3)
        write_dimacs(f, tmp_path / "a.cnf")
        write_dimacs(f, tmp_path / "b.cnf")            # duplicate of a
        write_dimacs(CNFFormula([[1], [-1]]), tmp_path / "unsat.cnf")
        return tmp_path

    def test_batch_reports_per_file_verdicts(self, batch_dir, capsys):
        # Exit 1: everything decided, at least one instance proven UNSAT
        # (same convention as the single-file solve).
        assert main(["solve", str(batch_dir), "--batch", "--jobs", "1"]) == 1
        out = capsys.readouterr().out
        assert "a.cnf: SATISFIABLE" in out
        assert "b.cnf: SATISFIABLE (via batch-dedup)" in out
        assert "unsat.cnf: UNSATISFIABLE" in out
        assert "1 batch dedups" in out

    def test_all_sat_batch_exits_zero(self, tmp_path, capsys):
        f, _ = random_planted_ksat(8, 24, rng=4)
        write_dimacs(f, tmp_path / "only.cnf")
        assert main(["solve", str(tmp_path), "--batch", "--jobs", "1"]) == 0
        assert "only.cnf: SATISFIABLE" in capsys.readouterr().out

    def test_batch_rejects_single_solver_engine(self, batch_dir, capsys):
        code = main(["solve", str(batch_dir), "--batch", "--engine", "cdcl"])
        assert code == 2
        assert "portfolio" in capsys.readouterr().err

    def test_batch_accepts_explicit_portfolio(self, tmp_path, capsys):
        f, _ = random_planted_ksat(8, 24, rng=4)
        write_dimacs(f, tmp_path / "only.cnf")
        args = ["solve", str(tmp_path), "--batch", "--engine", "portfolio",
                "--jobs", "1"]
        assert main(args) == 0
        capsys.readouterr()

    def test_batch_on_file_is_an_error(self, cnf_file, capsys):
        path, _f = cnf_file
        assert main(["solve", str(path), "--batch"]) == 2
        assert "directory" in capsys.readouterr().err

    def test_batch_on_empty_dir_is_an_error(self, tmp_path, capsys):
        assert main(["solve", str(tmp_path), "--batch"]) == 2
        assert "no .cnf files" in capsys.readouterr().err
