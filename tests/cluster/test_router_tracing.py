"""Tracing across the router hop: client root → ``router.forward`` →
node daemon spans under one trace id, per-node latency histograms in
``cluster_health``, and failover keeping a stable trace id."""

import json

import pytest

from repro.cnf.generators import random_planted_ksat
from repro.cluster.router import RouterDaemon
from repro.engine.config import EngineConfig
from repro.obs import tracing
from repro.obs.tracing import Tracer, group_traces
from repro.service.client import ServiceClient
from repro.service.daemon import ServiceDaemon
from repro.service.requests import SolveRequest
from repro.service.service import SolverService


@pytest.fixture(autouse=True)
def clean_tracer():
    tracing.install(None)
    yield
    tracing.install(None)


class _TracedCluster:
    """Two traced daemons plus a traced router on Unix sockets.

    Node and router tracers sample at 0 — every span they emit must be
    a continuation of the driving client's wire context.
    """

    def __init__(self, tmp_path, *, health_interval=0.2):
        self.tmp_path = tmp_path
        self.daemons = []
        self.threads = []
        for name in ("a", "b"):
            d = ServiceDaemon(
                str(tmp_path / f"{name}.sock"),
                SolverService(EngineConfig(
                    jobs=1, cache="disk",
                    cache_dir=str(tmp_path / f"cache-{name}"),
                )),
                log_path=str(tmp_path / f"{name}.log"),
                tracer=Tracer(
                    service=f"node-{name}", sample=0.0,
                    log_path=str(tmp_path / f"{name}-trace.jsonl"),
                ),
            )
            self.daemons.append(d)
            self.threads.append(d.start())
        self.router = RouterDaemon(
            str(tmp_path / "router.sock"),
            [d.socket_path for d in self.daemons],
            log_path=str(tmp_path / "router.log"),
            health_interval=health_interval,
            retries=1,
            trace_log=str(tmp_path / "router-trace.jsonl"),
            trace_sample=0.0,
        )
        self.threads.append(self.router.start())

    def trace_logs(self):
        return [
            str(self.tmp_path / name)
            for name in ("a-trace.jsonl", "b-trace.jsonl",
                         "router-trace.jsonl")
        ]

    def stop(self):
        self.router.shutdown()
        for d in self.daemons:
            d.shutdown()
        for t in self.threads:
            t.join(timeout=10)


@pytest.fixture
def cluster(tmp_path):
    c = _TracedCluster(tmp_path)
    yield c
    c.stop()


class TestRouterHopSpans:
    def test_hop_span_bridges_client_and_node(self, cluster):
        f, _ = random_planted_ksat(12, 36, rng=6)
        client_tracer = Tracer(service="client", sample=1.0)
        with ServiceClient(cluster.router.address, tracer=client_tracer) as c:
            assert c.solve(SolveRequest(formula=f, seed=0)).status == "sat"

        (root,) = [
            s for s in client_tracer.spans() if s["name"] == "client.solve"
        ]
        spans = tracing.load_spans(cluster.trace_logs())
        bucket = group_traces(spans).get(root["trace"])
        assert bucket, "node/router spans did not join the client's trace"
        by_name = {s["name"]: s for s in bucket}

        hop = by_name["router.forward"]
        assert hop["svc"] == "router"
        assert hop["parent"] == root["span"]
        assert hop["tags"]["tried"] == 1
        assert hop["tags"]["node"] in cluster.router.ring.nodes

        daemon_span = by_name["daemon.solve"]
        # The node's span re-parents on the router hop, not the client:
        # the reconstructed tree shows the request passing through.
        assert daemon_span["parent"] == hop["span"]
        assert daemon_span["svc"].startswith("node-")
        assert by_name["engine.solve"]["parent"] == daemon_span["span"]

    def test_failover_keeps_a_stable_trace_id(self, tmp_path):
        # A 1h probe interval + killing the node *after* the startup
        # probe round keeps it first in the routing order, so the
        # failover happens inside the hop span (tried > 1), not by the
        # prober quietly reordering the preference list.
        import time

        cluster = _TracedCluster(tmp_path, health_interval=3600)
        instances = [random_planted_ksat(10, 30, rng=i)[0] for i in range(8)]
        client_tracer = Tracer(service="client", sample=1.0)
        try:
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                nodes = cluster.router.cluster_health()["nodes"]
                if all(s["alive"] for s in nodes.values()):
                    break
                time.sleep(0.02)
            else:
                pytest.fail("startup probe round never completed")
            victim = cluster.daemons[1]
            victim.shutdown()
            cluster.threads[1].join(timeout=10)
            with ServiceClient(
                cluster.router.address, tracer=client_tracer
            ) as c:
                for f in instances:
                    assert c.solve(SolveRequest(formula=f, seed=0)).status
        finally:
            cluster.stop()

        roots = {
            s["span"]: s for s in client_tracer.spans()
            if s["name"] == "client.solve"
        }
        hops = [
            s for s in tracing.load_spans(cluster.trace_logs())
            if s["name"] == "router.forward"
        ]
        failed_over = [h for h in hops if h["tags"]["tried"] > 1]
        assert failed_over, "no instance was primaried on the dead node"
        for hop in failed_over:
            parent = roots[hop["parent"]]
            # Failover happens inside the hop span: one span, one trace,
            # surviving-node verdict — the retry is visible as tried > 1.
            assert hop["trace"] == parent["trace"]
            assert "error" not in hop["tags"]

    def test_router_op_log_records_the_trace_id(self, cluster):
        f, _ = random_planted_ksat(12, 36, rng=6)
        client_tracer = Tracer(service="client", sample=1.0)
        with ServiceClient(cluster.router.address, tracer=client_tracer) as c:
            c.solve(SolveRequest(formula=f, seed=0))
        (root,) = [
            s for s in client_tracer.spans() if s["name"] == "client.solve"
        ]
        with open(cluster.tmp_path / "router.log", encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh]
        solves = [r for r in records if r.get("op") == "solve"]
        assert solves and solves[-1]["trace"] == root["trace"]

    def test_router_can_root_traces_itself(self, tmp_path):
        # trace_sample > 0 lets the router originate traces for old
        # clients that send no context at all.
        c = _TracedCluster(tmp_path)
        c.router.shutdown()
        c.threads.pop().join(timeout=10)
        c.router = RouterDaemon(
            str(tmp_path / "router2.sock"),
            [d.socket_path for d in c.daemons],
            log_path=str(tmp_path / "router2.log"),
            health_interval=0.2,
            retries=1,
            trace_log=str(tmp_path / "router2-trace.jsonl"),
            trace_sample=1.0,
        )
        c.threads.append(c.router.start())
        try:
            f, _ = random_planted_ksat(12, 36, rng=6)
            with ServiceClient(c.router.address) as client:
                client.solve(SolveRequest(formula=f, seed=0))
            hops = [
                s for s in tracing.load_spans(
                    [str(tmp_path / "router2-trace.jsonl")]
                )
                if s["name"] == "router.forward"
            ]
            assert hops and hops[0]["parent"] is None
        finally:
            c.stop()


class TestPerNodeLatency:
    def test_cluster_health_carries_latency_summaries(self, cluster):
        instances = [random_planted_ksat(10, 30, rng=i)[0] for i in range(8)]
        with ServiceClient(cluster.router.address) as c:
            for f in instances:
                c.solve(SolveRequest(formula=f, seed=0))
        nodes = cluster.router.cluster_health()["nodes"]
        summaries = [snap["latency"] for snap in nodes.values()]
        assert all(
            set(s) >= {"mean", "p50", "p99", "count"} for s in summaries
        )
        # 12 distinct instances spread over both nodes: each saw traffic.
        assert sum(s["count"] for s in summaries) == len(instances)

    def test_aggregated_stats_carry_node_latency(self, cluster):
        f, _ = random_planted_ksat(12, 36, rng=6)
        with ServiceClient(cluster.router.address) as c:
            c.solve(SolveRequest(formula=f, seed=0))
            stats = c.stats()
        section = stats["cluster"]
        assert section["router"] == cluster.router.address
        assert any(
            entry["count"] >= 1 for entry in section["node_latency"].values()
        )
