"""``repro route``: consistent-hash spread, session pinning, failover,
router auth, stream refusal, stats aggregation, and cluster health."""

import pytest

from repro.cnf.generators import random_planted_ksat
from repro.core.change import AddClause, ChangeSet
from repro.cnf.clause import Clause
from repro.engine.config import EngineConfig
from repro.errors import ServiceError
from repro.service.client import AuthError, ServiceClient
from repro.service.daemon import ServiceDaemon
from repro.service.requests import ChangeRequest, SolveRequest
from repro.service.service import SolverService
from repro.cluster import HashRing
from repro.cluster.router import RouterDaemon, _merge_stats


class TestHashRing:
    def test_pick_is_deterministic_and_spread(self):
        ring = HashRing(["a", "b", "c"])
        keys = [f"fp:{i:x}" for i in range(200)]
        owners = [ring.pick(k) for k in keys]
        assert owners == [ring.pick(k) for k in keys]  # stable
        assert {"a", "b", "c"} == set(owners)          # all nodes used

    def test_preference_lists_every_node_once(self):
        ring = HashRing(["a", "b", "c"])
        pref = ring.preference("anything")
        assert sorted(pref) == ["a", "b", "c"]

    def test_skip_falls_over_deterministically(self):
        ring = HashRing(["a", "b", "c"])
        key = "fp:deadbeef"
        primary = ring.pick(key)
        fallback = ring.pick(key, skip={primary})
        assert fallback != primary
        assert fallback == ring.pick(key, skip={primary})
        # The failover target is the next entry of the preference order.
        pref = ring.preference(key)
        assert pref[0] == primary and pref[1] == fallback

    def test_duplicate_nodes_collapse(self):
        assert HashRing(["a", "a", "b"]).nodes == ("a", "b")


class _Cluster:
    """Two daemons plus a router, all on Unix sockets (fast to boot)."""

    def __init__(self, tmp_path, *, auth_token=None, health_interval=0.2):
        self.daemons = []
        self.threads = []
        for name in ("a", "b"):
            cache_dir = tmp_path / f"cache-{name}"
            d = ServiceDaemon(
                str(tmp_path / f"{name}.sock"),
                SolverService(EngineConfig(
                    jobs=1, cache="disk", cache_dir=str(cache_dir),
                )),
                log_path=str(tmp_path / f"{name}.log"),
                auth_token=auth_token,
            )
            self.daemons.append(d)
            self.threads.append(d.start())
        self.router = RouterDaemon(
            str(tmp_path / "router.sock"),
            [d.socket_path for d in self.daemons],
            auth_token=auth_token,
            log_path=str(tmp_path / "router.log"),
            health_interval=health_interval,
            retries=1,
        )
        self.threads.append(self.router.start())

    def node_requests(self):
        counts = []
        for d in self.daemons:
            counters = d.service.metrics.snapshot()["counters"]
            counts.append(counters.get("requests", 0))
        return counts

    def stop(self):
        self.router.shutdown()
        for d in self.daemons:
            d.shutdown()
        for t in self.threads:
            t.join(timeout=10)


@pytest.fixture
def cluster(tmp_path):
    c = _Cluster(tmp_path)
    yield c
    c.stop()


class TestRouting:
    def test_distinct_instances_spread_over_both_nodes(self, cluster):
        with ServiceClient(cluster.router.address) as client:
            for i in range(24):
                f, _ = random_planted_ksat(10, 30, rng=i)
                response = client.solve(SolveRequest(formula=f, seed=0))
                assert response.status in ("sat", "unsat")
        a, b = cluster.node_requests()
        assert a > 0 and b > 0
        assert a + b >= 24

    def test_repeats_of_one_instance_pin_to_one_node(self, cluster):
        f, _ = random_planted_ksat(10, 30, rng=1)
        with ServiceClient(cluster.router.address) as client:
            cold = client.solve(SolveRequest(formula=f, seed=0))
            warm = client.solve(SolveRequest(formula=f, seed=0))
        # Same fp-v2 routes to the same node, whose verdict cache hits.
        assert warm.from_cache
        assert warm.fingerprint == cold.fingerprint
        a, b = cluster.node_requests()
        assert sorted((a, b)) == [0, 2]

    def test_sessions_pin_and_survive_changes(self, cluster):
        f, _ = random_planted_ksat(10, 30, rng=2)
        with ServiceClient(cluster.router.address) as client:
            opened = client.solve(
                SolveRequest(formula=f, session="pinned", seed=0)
            )
            assert opened.session == "pinned"
            changed = client.change(ChangeRequest(
                "pinned",
                ChangeSet([AddClause(Clause([1, 2]))]),
                seed=0,
            ))
            assert changed.session == "pinned"
            assert client.close_session("pinned")
        # All three session ops landed on one node; the other is idle.
        assert 0 in cluster.node_requests()

    def test_ping_and_health_answer_locally(self, cluster):
        with ServiceClient(cluster.router.address) as client:
            assert client.ping()
            health = client.health()
        assert health["router"] is True
        assert health["nodes_total"] == 2
        assert cluster.node_requests() == [0, 0]

    def test_streams_are_refused(self, cluster):
        with ServiceClient(cluster.router.address) as client:
            with pytest.raises(ServiceError, match="not routed"):
                client.sync(0)


class TestFailover:
    def test_dead_node_fails_over_with_identical_verdicts(self, cluster):
        instances = [random_planted_ksat(10, 30, rng=i)[0] for i in range(12)]
        with ServiceClient(cluster.router.address) as client:
            before = {}
            for f in instances:
                r = client.solve(SolveRequest(formula=f, seed=0))
                before[r.fingerprint] = r.status
            # Kill node B outright; the ring re-homes its keys onto A.
            victim = cluster.daemons[1]
            victim.shutdown()
            cluster.threads[1].join(timeout=10)
            mismatches = 0
            for f in instances:
                r = client.solve(SolveRequest(formula=f, seed=0))
                if before[r.fingerprint] != r.status:
                    mismatches += 1
            assert mismatches == 0
        counters = cluster.router.cluster_health()["router"]
        assert counters["unrouted"] == 0
        assert counters["routed"] == 24

    def test_prober_race_window_fails_over_not_errors(self, tmp_path):
        # A node dies and a request arrives BEFORE any probe could mark
        # it down (interval = 1h): the relay's ConnectError must turn
        # into a counted failover to the survivor, never an error frame.
        import time

        c = _Cluster(tmp_path, health_interval=3600.0)
        try:
            # Let the startup probe round finish (both alive), so the
            # next round is an hour away and cannot win the race below.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                nodes = c.router.cluster_health()["nodes"]
                if all(s["alive"] for s in nodes.values()):
                    break
                time.sleep(0.02)
            else:
                pytest.fail("startup probe round never completed")
            victim = c.daemons[1]
            victim.shutdown()
            c.threads[1].join(timeout=10)
            with ServiceClient(c.router.address) as client:
                for i in range(12):
                    f, _ = random_planted_ksat(10, 30, rng=50 + i)
                    r = client.solve(SolveRequest(formula=f, seed=0))
                    assert r.status in ("sat", "unsat")
            counters = c.router.cluster_health()["router"]
            assert counters["unrouted"] == 0
            assert counters["failovers"] >= 1
        finally:
            c.stop()

    def test_cluster_health_tracks_the_dead_node(self, cluster):
        import time

        victim = cluster.daemons[0]
        victim.shutdown()
        cluster.threads[0].join(timeout=10)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            nodes = cluster.router.cluster_health()["nodes"]
            alive = [s["alive"] for s in nodes.values()]
            if alive.count(False) == 1 and alive.count(True) == 1:
                break
            time.sleep(0.05)
        nodes = cluster.router.cluster_health()["nodes"]
        alive = {a: s["alive"] for a, s in nodes.items()}
        down = f"unix://{victim.socket_path}"
        assert alive[down] is False
        assert nodes[down]["last_error"]
        up = next(a for a in alive if a != down)
        assert alive[up] is True
        assert nodes[up]["generation"] is not None
        assert nodes[up]["sync_cursor"] is not None


class TestRouterAuth:
    def test_router_enforces_its_own_token(self, tmp_path):
        c = _Cluster(tmp_path, auth_token="s3cret")
        try:
            with pytest.raises(AuthError):
                ServiceClient(
                    c.router.address, retries=0, auth_token="wrong"
                )
            with ServiceClient(
                c.router.address, auth_token="s3cret"
            ) as client:
                assert client.ping()
                f, _ = random_planted_ksat(10, 30, rng=3)
                # The router presents the shared token to the node too.
                assert client.solve(
                    SolveRequest(formula=f, seed=0)
                ).status == "sat"
        finally:
            c.stop()

    def test_unauthed_op_is_401(self, tmp_path):
        c = _Cluster(tmp_path, auth_token="s3cret")
        try:
            with ServiceClient(c.router.address, retries=0) as client:
                with pytest.raises(AuthError, match="auth required"):
                    client.ping()
        finally:
            c.stop()


class TestStatsAggregation:
    def test_stats_sum_across_nodes(self, cluster):
        with ServiceClient(cluster.router.address) as client:
            for i in range(8):
                f, _ = random_planted_ksat(10, 30, rng=100 + i)
                client.solve(SolveRequest(formula=f, seed=0))
            stats = client.stats()
        assert len(stats["cluster"]["nodes"]) == 2
        assert stats["cluster"]["router"] == cluster.router.address
        a, b = cluster.node_requests()
        assert stats["metrics"]["counters"]["requests"] == a + b

    def test_merge_stats_shapes(self):
        merged = _merge_stats(
            {"n": 1, "d": {"x": 2}, "l": [1], "flag": False, "s": "keep"},
            {"n": 2, "d": {"x": 3, "y": 1}, "l": [2], "flag": True, "new": 9},
        )
        assert merged["n"] == 3
        assert merged["d"] == {"x": 5, "y": 1}
        assert merged["l"] == [1, 2]
        assert merged["flag"] is True
        assert merged["s"] == "keep"
        assert merged["new"] == 9


class TestClusterHealthOp:
    def test_cluster_health_over_the_wire(self, cluster):
        with ServiceClient(cluster.router.address) as client:
            picture = client.cluster_health()
        assert set(picture) == {"router", "nodes"}
        router = picture["router"]
        for key in ("routed", "failovers", "unrouted", "auth_rejects",
                    "errors", "listen", "health_interval"):
            assert key in router
        assert len(picture["nodes"]) == 2
        for snapshot in picture["nodes"].values():
            assert {"alive", "generation", "degraded", "sync_cursor",
                    "last_error", "age"} <= set(snapshot)
