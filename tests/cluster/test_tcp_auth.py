"""TCP transport and the token-auth handshake.

The daemon listens on Unix and/or TCP with identical frame semantics;
a token-guarded daemon 401s everything before a valid ``auth`` frame;
the ``auth.reject`` chaos point bounces one *valid* handshake and the
client's connect-retry budget absorbs it.
"""

import pytest

from repro import faults
from repro.cnf.generators import random_planted_ksat
from repro.engine.config import EngineConfig
from repro.errors import ConnectError
from repro.service.client import AuthError, ServiceClient
from repro.service.daemon import ServiceDaemon
from repro.service.requests import SolveRequest
from repro.service.service import SolverService


@pytest.fixture
def planted():
    return random_planted_ksat(12, 36, rng=6)


def _daemon(tmp_path, *, socket_path=None, tcp=None, token=None, name="d"):
    return ServiceDaemon(
        socket_path,
        SolverService(EngineConfig(jobs=1)),
        log_path=str(tmp_path / f"{name}.log"),
        tcp_address=tcp,
        auth_token=token,
    )


def _run(daemon):
    thread = daemon.start()
    return thread


class TestTcpTransport:
    def test_tcp_only_daemon_serves_solves(self, tmp_path, planted):
        d = _daemon(tmp_path, tcp="127.0.0.1:0")
        thread = _run(d)
        try:
            (addr,) = d.addresses
            assert addr.startswith("tcp://127.0.0.1:")
            assert addr.endswith(f":{d.tcp_port}")
            f, _ = planted
            with ServiceClient(addr) as client:
                assert client.ping()
                response = client.solve(SolveRequest(formula=f, seed=0))
            assert response.status == "sat"
            assert f.is_satisfied(response.assignment)
        finally:
            d.shutdown()
            thread.join(timeout=10)
        assert not thread.is_alive()

    def test_dual_listeners_serve_both_families(self, tmp_path, planted):
        d = _daemon(tmp_path, socket_path=str(tmp_path / "svc.sock"),
                    tcp="127.0.0.1:0")
        thread = _run(d)
        try:
            unix_addr, tcp_addr = d.addresses
            assert unix_addr.startswith("unix://")
            f, _ = planted
            with ServiceClient(unix_addr) as client:
                first = client.solve(SolveRequest(formula=f, seed=0))
            with ServiceClient(tcp_addr) as client:
                second = client.solve(SolveRequest(formula=f, seed=0))
            # Same service behind both sockets: the TCP solve hits the
            # verdict the Unix solve populated.
            assert second.from_cache
            assert first.fingerprint == second.fingerprint
        finally:
            d.shutdown()
            thread.join(timeout=10)

    def test_daemon_requires_at_least_one_endpoint(self):
        with pytest.raises(Exception):
            ServiceDaemon(None, SolverService(EngineConfig(jobs=1)))


class TestAuth:
    def test_missing_token_is_refused(self, tmp_path):
        d = _daemon(tmp_path, tcp="127.0.0.1:0", token="hunter2")
        thread = _run(d)
        try:
            (addr,) = d.addresses
            with ServiceClient(addr, retries=0) as client:
                with pytest.raises(AuthError, match="auth required"):
                    client.ping()
        finally:
            d.shutdown()
            thread.join(timeout=10)

    def test_wrong_token_is_refused_and_counted(self, tmp_path):
        d = _daemon(tmp_path, tcp="127.0.0.1:0", token="hunter2")
        thread = _run(d)
        try:
            (addr,) = d.addresses
            # The client handshakes eagerly on connect, so a bad token
            # dies at construction — before any op is even attempted.
            with pytest.raises(AuthError, match="auth failed"):
                ServiceClient(addr, retries=0, auth_token="nope")
            counters = d.service.metrics.snapshot()["counters"]
            assert counters.get("auth_failures", 0) >= 1
        finally:
            d.shutdown()
            thread.join(timeout=10)

    def test_auth_error_is_a_connect_error(self):
        # The CLI's one-line exit-1 contract keys off ConnectError.
        assert issubclass(AuthError, ConnectError)

    def test_valid_token_serves_normally(self, tmp_path, planted):
        d = _daemon(tmp_path, tcp="127.0.0.1:0", token="hunter2")
        thread = _run(d)
        try:
            (addr,) = d.addresses
            f, _ = planted
            with ServiceClient(addr, auth_token="hunter2") as client:
                assert client.ping()
                response = client.solve(SolveRequest(formula=f, seed=0))
                assert response.status == "sat"
                # Health is reachable post-auth on the same connection.
                assert "engine" in client.health()
        finally:
            d.shutdown()
            thread.join(timeout=10)

    def test_token_defaults_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_AUTH_TOKEN", "hunter2")
        d = _daemon(tmp_path, tcp="127.0.0.1:0", token="hunter2")
        thread = _run(d)
        try:
            (addr,) = d.addresses
            with ServiceClient(addr) as client:  # no explicit token
                assert client.ping()
        finally:
            d.shutdown()
            thread.join(timeout=10)

    def test_tokenless_daemon_acks_auth_as_noop(self, tmp_path):
        d = _daemon(tmp_path, tcp="127.0.0.1:0")
        thread = _run(d)
        try:
            (addr,) = d.addresses
            # A client configured with a token against an open daemon
            # must still work: the daemon acks the handshake as a no-op.
            with ServiceClient(addr, auth_token="whatever") as client:
                assert client.ping()
        finally:
            d.shutdown()
            thread.join(timeout=10)


class TestAuthChaos:
    def test_auth_reject_is_absorbed_by_connect_retries(
        self, tmp_path, planted
    ):
        d = _daemon(tmp_path, tcp="127.0.0.1:0", token="hunter2")
        thread = _run(d)
        try:
            (addr,) = d.addresses
            faults.install("seed=7;auth.reject:p=1,count=1")
            f, _ = planted
            with ServiceClient(
                addr, retries=3, backoff=0.01, auth_token="hunter2"
            ) as client:
                response = client.solve(SolveRequest(formula=f, seed=0))
                assert response.status == "sat"
                snap = client.health()["faults"]
            assert snap["points"]["auth.reject"]["fired"] == 1
            counters = d.service.metrics.snapshot()["counters"]
            assert counters.get("auth_rejects", 0) == 1
        finally:
            d.shutdown()
            thread.join(timeout=10)

    def test_auth_reject_exhausting_retries_surfaces_auth_error(
        self, tmp_path
    ):
        d = _daemon(tmp_path, tcp="127.0.0.1:0", token="hunter2")
        thread = _run(d)
        try:
            (addr,) = d.addresses
            faults.install("seed=7;auth.reject:p=1")  # every handshake
            with pytest.raises(AuthError):
                ServiceClient(
                    addr, retries=1, backoff=0.01, auth_token="hunter2"
                )
        finally:
            faults.clear()
            d.shutdown()
            thread.join(timeout=10)
