"""Shared hygiene for the cluster tests.

Same rule as ``tests/faults``: chaos installation is process-global, so
every test starts and ends with no injector and no ``REPRO_CHAOS`` in
the environment.  Auth tests additionally must not inherit a token from
the developer's shell, so ``REPRO_AUTH_TOKEN`` is scrubbed too.
"""

import pytest

from repro import faults


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    monkeypatch.delenv("REPRO_AUTH_TOKEN", raising=False)
    faults.clear()
    yield
    faults.clear()
