"""End-to-end cross-node cache hit, through real processes.

Node A (``repro serve --tcp``) solves an instance; node B boots with
``--peer`` pointed at A, pulls the verdict over anti-entropy sync, and
answers the same instance **from cache** — same verdict, same
fingerprint, same model — without ever running a solver.
"""

import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.cnf.dimacs import write_dimacs
from repro.cnf.generators import random_planted_ksat
from repro.service.client import ServiceClient
from repro.service.requests import SolveRequest


def _env():
    env = dict(os.environ)
    root = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(root) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    env.pop("REPRO_CHAOS", None)
    env.pop("REPRO_AUTH_TOKEN", None)
    return env


def _spawn_node(tmp_path, name, *extra):
    """Start ``repro serve --tcp 127.0.0.1:0`` and return (proc, addr)."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--tcp", "127.0.0.1:0",
            "--cache", "disk",
            "--cache-dir", str(tmp_path / f"cache-{name}"),
            "--jobs", "1",
            "--log-file", str(tmp_path / f"{name}.log"),
            *extra,
        ],
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    line = proc.stdout.readline()
    match = re.search(r"listening on (tcp://\S+)", line)
    assert match, f"node {name} failed to report its address: {line!r}"
    return proc, match.group(1)


def _stop(proc):
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=15)


def test_node_b_answers_from_node_a_verdict(tmp_path):
    f, _ = random_planted_ksat(14, 42, rng=9)
    node_a = node_b = None
    try:
        node_a, addr_a = _spawn_node(tmp_path, "a")
        with ServiceClient(addr_a) as client:
            solved = client.solve(SolveRequest(formula=f, seed=0))
            assert solved.status == "sat" and not solved.from_cache

        node_b, addr_b = _spawn_node(
            tmp_path, "b", "--peer", addr_a, "--sync-interval", "0.1"
        )
        with ServiceClient(addr_b) as client:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                counters = client.stats()["metrics"]["counters"]
                if counters.get("sync_merged", 0) >= 1:
                    break
                time.sleep(0.1)
            else:
                pytest.fail("node B never merged node A's verdict")

            replica = client.solve(SolveRequest(formula=f, seed=0))

        # B answered from its replicated cache: no solver ran on B.
        assert replica.from_cache
        assert replica.status == solved.status
        assert replica.fingerprint == solved.fingerprint
        assert replica.assignment == solved.assignment
        assert f.is_satisfied(replica.assignment)
    finally:
        for proc in (node_a, node_b):
            if proc is not None:
                _stop(proc)


def test_peer_health_reports_sync_progress(tmp_path):
    """Node B's health op exposes its syncer cursor toward node A."""
    f, _ = random_planted_ksat(12, 36, rng=4)
    node_a = node_b = None
    try:
        node_a, addr_a = _spawn_node(tmp_path, "a")
        with ServiceClient(addr_a) as client:
            client.solve(SolveRequest(formula=f, seed=0))
        node_b, addr_b = _spawn_node(
            tmp_path, "b", "--peer", addr_a, "--sync-interval", "0.1"
        )
        with ServiceClient(addr_b) as client:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                sync = client.health().get("sync") or {}
                peer = sync.get("peers", {}).get(addr_a, {})
                if (peer.get("cursor") or 0) >= 1 and sync.get("merged", 0):
                    break
                time.sleep(0.1)
            else:
                pytest.fail("node B health never showed sync progress")
            assert sync["pulls"] >= 1
    finally:
        for proc in (node_a, node_b):
            if proc is not None:
                _stop(proc)


def test_cli_solve_connect_tcp_round_trip(tmp_path):
    """`repro solve --connect tcp://...` against a spawned node."""
    f, _ = random_planted_ksat(10, 30, rng=2)
    cnf = tmp_path / "inst.cnf"
    write_dimacs(f, str(cnf))
    node = None
    try:
        node, addr = _spawn_node(tmp_path, "solo")
        result = subprocess.run(
            [sys.executable, "-m", "repro", "solve", str(cnf),
             "--connect", addr],
            env=_env(), capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.startswith("s SATISFIABLE")

        stats = subprocess.run(
            [sys.executable, "-m", "repro", "stats", "--connect", addr,
             "--json"],
            env=_env(), capture_output=True, text=True, timeout=60,
        )
        assert stats.returncode == 0, stats.stderr
        import json

        frame = json.loads(stats.stdout)
        assert frame["totals"].get("requests", 0) >= 1
    finally:
        if node is not None:
            _stop(node)
