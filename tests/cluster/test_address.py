"""``parse_address``: the one grammar behind every ``--connect``/
``--peer``/``--node`` flag, and the CLI's one-line exit-1 contract for
malformed or unreachable targets."""

import pytest

from repro.cli import main
from repro.errors import ConnectError
from repro.service.address import Address, parse_address, parse_tcp


class TestParseAddress:
    def test_bare_path_is_unix(self, tmp_path):
        a = parse_address(str(tmp_path / "svc.sock"))
        assert a.scheme == "unix"
        assert a.path == str(tmp_path / "svc.sock")
        assert a.connect_target == a.path
        assert str(a) == f"unix://{a.path}"

    def test_unix_scheme(self):
        a = parse_address("unix:///run/repro.sock")
        assert (a.scheme, a.path) == ("unix", "/run/repro.sock")

    def test_tcp(self):
        a = parse_address("tcp://127.0.0.1:7777")
        assert (a.scheme, a.host, a.port) == ("tcp", "127.0.0.1", 7777)
        assert a.connect_target == ("127.0.0.1", 7777)
        assert str(a) == "tcp://127.0.0.1:7777"

    def test_idempotent_on_address(self):
        a = parse_address("tcp://h:1")
        assert parse_address(a) is a

    def test_round_trips_its_own_str(self):
        for text in ("tcp://10.0.0.1:80", "unix:///tmp/x.sock"):
            assert str(parse_address(str(parse_address(text)))) == text

    def test_port_zero_means_ephemeral_and_parses(self):
        assert parse_address("tcp://127.0.0.1:0").port == 0

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "tcp://",
            "tcp://bad",
            "tcp://host:",
            "tcp://host:notaport",
            "tcp://host:70000",
            "tcp://host:-1",
            "unix://",
            "http://host:1",
        ],
    )
    def test_malformed_is_connect_error(self, bad):
        with pytest.raises(ConnectError, match="cannot reach daemon"):
            parse_address(bad)

    def test_parse_tcp_prefixes_scheme(self):
        assert str(parse_tcp("127.0.0.1:0")) == "tcp://127.0.0.1:0"
        assert parse_tcp("tcp://127.0.0.1:4000").port == 4000

    def test_create_socket_families(self, tmp_path):
        import socket as socket_mod

        tcp_sock = parse_address("tcp://127.0.0.1:0").create_socket()
        assert tcp_sock.family == socket_mod.AF_INET
        tcp_sock.close()
        if hasattr(socket_mod, "AF_UNIX"):
            ux = parse_address(str(tmp_path / "x.sock")).create_socket()
            assert ux.family == socket_mod.AF_UNIX
            ux.close()

    def test_address_is_frozen_and_hashable(self):
        a = parse_address("tcp://h:1")
        assert isinstance(a, Address)
        assert {a: 1}[parse_address("tcp://h:1")] == 1


class TestCliContract:
    """A typo'd --connect must die with one line, exit 1, no traceback."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["stats", "--connect", "tcp://bad"],
            ["stats", "--connect", "tcp://host:notaport"],
            ["loadgen", "tenant-churn", "--connect", "http://x:1",
             "--tenants", "1", "--changes", "1"],
        ],
    )
    def test_malformed_connect_is_one_line_exit_1(self, argv, capsys):
        assert main(argv) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: cannot reach daemon")
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_dead_tcp_endpoint_keeps_the_contract(self, capsys):
        # Reserved TEST-NET-1 address: connect fails fast, no listener.
        assert main(["stats", "--connect", "tcp://127.0.0.1:1"]) == 1
        err = capsys.readouterr().err
        assert "error: cannot reach daemon" in err
        assert "Traceback" not in err
