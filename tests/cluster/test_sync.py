"""Anti-entropy replication: the disk cache's journal/cursor, blind
idempotent merges, the daemon's ``sync`` op, the :class:`CacheSyncer`
pull loop, the ``sync.drop`` chaos point, and offline packet files."""

import json

import pytest

from repro import faults
from repro.cli import main
from repro.cnf.assignment import Assignment
from repro.cnf.generators import random_planted_ksat
from repro.engine.config import EngineConfig
from repro.engine.diskcache import DiskCache
from repro.errors import ReproError, ServiceError
from repro.service.client import ServiceClient
from repro.service.daemon import ServiceDaemon
from repro.service.requests import SolveRequest
from repro.service.service import SolverService
from repro.cluster import CacheSyncer, export_packet, import_packet


def _cache(tmp_path, name, **kw):
    d = tmp_path / name
    d.mkdir(exist_ok=True)
    return DiskCache(str(d), **kw)


def _fill(cache, n, *, start=0):
    """Put n distinct entries; returns their fingerprints."""
    fps = []
    for i in range(start, start + n):
        fp = f"{i:064x}"
        cache.put(fp, True, Assignment.from_literals([i + 1]), solver="test")
        fps.append(fp)
    return fps


class TestJournal:
    def test_puts_advance_the_cursor(self, tmp_path):
        cache = _cache(tmp_path, "a")
        assert cache.sync_cursor() == 0
        _fill(cache, 3)
        assert cache.sync_cursor() >= 3

    def test_entries_since_pages_and_terminates(self, tmp_path):
        cache = _cache(tmp_path, "a")
        fps = set(_fill(cache, 5))
        cursor, seen = 0, []
        while cursor < cache.sync_cursor():
            cursor, entries = cache.entries_since(cursor, limit=2)
            seen.extend(e["fp"] for e in entries)
        assert set(seen) == fps

    def test_journal_bootstraps_for_a_prejournal_directory(self, tmp_path):
        cache = _cache(tmp_path, "a")
        _fill(cache, 3)
        # Simulate a cache directory written before journaling existed.
        (tmp_path / "a" / "_journal.log").unlink()
        fresh = DiskCache(str(tmp_path / "a"))
        assert fresh.sync_cursor() == 3
        _, entries = fresh.entries_since(0, limit=10)
        assert len(entries) == 3

    def test_clear_resets_the_cursor(self, tmp_path):
        cache = _cache(tmp_path, "a")
        _fill(cache, 2)
        cache.clear()
        assert cache.sync_cursor() == 0
        assert cache.entries_since(0) == (0, [])

    def test_health_reports_the_cursor(self, tmp_path):
        cache = _cache(tmp_path, "a")
        _fill(cache, 2)
        assert cache.health()["sync_cursor"] == cache.sync_cursor()


class TestMergeEntry:
    def test_merge_is_idempotent(self, tmp_path):
        src = _cache(tmp_path, "src")
        dst = _cache(tmp_path, "dst")
        (fp,) = _fill(src, 1)
        _, entries = src.entries_since(0, limit=10)
        (entry,) = [e for e in entries if e["fp"] == fp]
        assert dst.merge_entry(entry) is True
        assert dst.merge_entry(entry) is False  # already present
        got = dst.get(fp)
        assert got is not None and got.satisfiable

    def test_merged_entry_round_trips_unsat(self, tmp_path):
        src = _cache(tmp_path, "src")
        dst = _cache(tmp_path, "dst")
        fp = "ab" * 32
        src.put(fp, False, None, solver="test")
        _, entries = src.entries_since(0, limit=10)
        (entry,) = entries
        assert dst.merge_entry(entry)
        got = dst.get(fp)
        assert got is not None and not got.satisfiable

    @pytest.mark.parametrize(
        "fp",
        [
            "../../etc/passwd",
            "..",
            "x/y",
            "UPPERCASE" * 8,
            "short",
            "",
            123,
        ],
    )
    def test_hostile_fingerprints_are_rejected(self, tmp_path, fp):
        # The fp arrives off the wire and is joined into the cache
        # directory: anything but a plain hex digest must be refused.
        dst = _cache(tmp_path, "dst")
        assert dst.merge_entry({"fp": fp, "sat": True, "lits": [1]}) is False

    @pytest.mark.parametrize(
        "entry",
        [
            "not a dict",
            {},
            {"fp": "ab" * 32, "sat": True, "lits": None},
            {"fp": "ab" * 32, "sat": True, "lits": []},
            {"fp": "ab" * 32, "sat": True, "lits": [0]},
            {"fp": "ab" * 32, "sat": True, "lits": ["x"]},
        ],
    )
    def test_malformed_entries_are_rejected(self, tmp_path, entry):
        dst = _cache(tmp_path, "dst")
        assert dst.merge_entry(entry) is False

    def test_merge_respects_capacity_and_degraded_mode(self, tmp_path):
        src = _cache(tmp_path, "src")
        _fill(src, 1)
        _, entries = src.entries_since(0, limit=10)
        disabled = _cache(tmp_path, "off", max_entries=0)
        assert disabled.merge_entry(entries[0]) is False


class TestSyncOp:
    @pytest.fixture
    def disk_daemon(self, tmp_path):
        d = ServiceDaemon(
            str(tmp_path / "svc.sock"),
            SolverService(EngineConfig(
                jobs=1, cache="disk", cache_dir=str(tmp_path / "cache"),
            )),
            log_path=str(tmp_path / "daemon.log"),
        )
        thread = d.start()
        yield d
        d.shutdown()
        thread.join(timeout=10)

    def test_sync_streams_solved_entries(self, disk_daemon):
        f, _ = random_planted_ksat(12, 36, rng=6)
        with ServiceClient(disk_daemon.socket_path) as client:
            solved = client.solve(SolveRequest(formula=f, seed=0))
            assert solved.status == "sat"
            page = client.sync(0)
            fps = {e["fp"] for e in page["entries"]}
            assert solved.fingerprint in fps
            assert page["cursor"] >= 1
            # Cursor caught up: the next pull is empty.
            again = client.sync(page["cursor"])
            assert again["entries"] == [] and not again["more"]

    def test_sync_needs_the_disk_cache(self, tmp_path):
        d = ServiceDaemon(
            str(tmp_path / "mem.sock"),
            SolverService(EngineConfig(jobs=1)),  # memory cache
            log_path=str(tmp_path / "mem.log"),
        )
        thread = d.start()
        try:
            with ServiceClient(d.socket_path) as client:
                with pytest.raises(ServiceError, match="persistent cache"):
                    client.sync(0)
        finally:
            d.shutdown()
            thread.join(timeout=10)

    def test_sync_drop_chaos_converges_on_repull(self, disk_daemon):
        f, _ = random_planted_ksat(12, 36, rng=6)
        with ServiceClient(
            disk_daemon.socket_path, retries=3, backoff=0.01
        ) as client:
            client.solve(SolveRequest(formula=f, seed=0))
            faults.install("seed=7;sync.drop:p=1,count=2")
            # Two drops burn two retries; the third attempt lands and the
            # page is identical to what an undropped pull would return.
            page = client.sync(0)
            assert len(page["entries"]) == 1
            snap = client.health()["faults"]
        assert snap["points"]["sync.drop"]["fired"] == 2


class TestCacheSyncer:
    @pytest.fixture
    def peer_daemon(self, tmp_path):
        d = ServiceDaemon(
            str(tmp_path / "peer.sock"),
            SolverService(EngineConfig(
                jobs=1, cache="disk", cache_dir=str(tmp_path / "peer-cache"),
            )),
            log_path=str(tmp_path / "peer.log"),
        )
        thread = d.start()
        yield d
        d.shutdown()
        thread.join(timeout=10)

    def test_sync_once_pulls_a_peer_cache(self, tmp_path, peer_daemon):
        f, _ = random_planted_ksat(12, 36, rng=6)
        with ServiceClient(peer_daemon.socket_path) as client:
            solved = client.solve(SolveRequest(formula=f, seed=0))
        local = _cache(tmp_path, "local")
        syncer = CacheSyncer(local, [peer_daemon.socket_path], limit=2)
        try:
            assert syncer.sync_once() == 1
            assert solved.fingerprint in local
            # Second round: cursor advanced, nothing new to merge.
            assert syncer.sync_once() == 0
            status = syncer.status()
            assert status["merged"] == 1 and status["pulls"] >= 1
            peer_key = f"unix://{peer_daemon.socket_path}"
            assert status["peers"][peer_key]["cursor"] >= 1
            assert status["peers"][peer_key]["last_error"] is None
        finally:
            syncer.stop()

    def test_down_peer_is_recorded_not_raised(self, tmp_path):
        local = _cache(tmp_path, "local")
        syncer = CacheSyncer(local, [str(tmp_path / "nobody.sock")])
        try:
            assert syncer.sync_once() == 0
            (peer_status,) = syncer.status()["peers"].values()
            assert peer_status["last_error"] is not None
            assert peer_status["cursor"] == 0
        finally:
            syncer.stop()

    def test_background_loop_replicates(self, tmp_path, peer_daemon):
        f, _ = random_planted_ksat(12, 36, rng=6)
        with ServiceClient(peer_daemon.socket_path) as client:
            solved = client.solve(SolveRequest(formula=f, seed=0))
        local = _cache(tmp_path, "local")
        syncer = CacheSyncer(local, [peer_daemon.socket_path], interval=0.05)
        syncer.start()
        try:
            import time

            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if solved.fingerprint in local:
                    break
                time.sleep(0.02)
            assert solved.fingerprint in local
        finally:
            syncer.stop()


class TestPackets:
    def test_export_import_round_trip(self, tmp_path):
        src = _cache(tmp_path, "src")
        fps = _fill(src, 4)
        packet = tmp_path / "pkt.jsonl"
        assert export_packet(src, packet) == 4
        dst = _cache(tmp_path, "dst")
        assert import_packet(dst, packet) == (4, 4)
        assert import_packet(dst, packet) == (4, 0)  # idempotent
        for fp in fps:
            assert fp in dst

    def test_export_since_skips_old_entries(self, tmp_path):
        src = _cache(tmp_path, "src")
        _fill(src, 2)
        mid = src.sync_cursor()
        _fill(src, 2, start=10)
        packet = tmp_path / "tail.jsonl"
        assert export_packet(src, packet, since=mid) == 2

    def test_import_rejects_non_packets(self, tmp_path):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text(json.dumps({"format": "something-else"}) + "\n")
        dst = _cache(tmp_path, "dst")
        with pytest.raises(ReproError, match="not a cache packet"):
            import_packet(dst, bogus)

    def test_cache_cli_round_trip(self, tmp_path, capsys):
        src = _cache(tmp_path, "src")
        _fill(src, 3)
        packet = str(tmp_path / "pkt.jsonl")
        assert main([
            "cache", "export", packet, "--cache-dir", str(tmp_path / "src"),
        ]) == 0
        assert "exported 3 entries" in capsys.readouterr().out
        assert main([
            "cache", "import", packet, "--cache-dir", str(tmp_path / "dst"),
        ]) == 0
        assert "imported 3 new of 3" in capsys.readouterr().out
        assert len(DiskCache(str(tmp_path / "dst"))) == 3
