"""Unit tests for the scheduling EC extension."""

import pytest

from repro.errors import ECError, ModelError
from repro.ilp.solver import solve
from repro.ilp.status import SolveStatus
from repro.scheduling.ec import (
    enable_scheduling_ec,
    preserving_scheduling_ec,
    schedule_slack,
)
from repro.scheduling.problem import Operation, SchedulingProblem


@pytest.fixture
def dfg():
    """A small dataflow graph: two multiplies feeding adds, one ALU each."""
    return SchedulingProblem(
        operations=[
            Operation("m1", "mul"),
            Operation("m2", "mul"),
            Operation("a1", "alu"),
            Operation("a2", "alu"),
            Operation("a3", "alu"),
        ],
        precedence=[("m1", "a1"), ("m2", "a2"), ("a1", "a3"), ("a2", "a3")],
        capacities={"mul": 1, "alu": 1},
        horizon=6,
    )


class TestProblemValidation:
    def test_duplicate_names(self):
        with pytest.raises(ModelError):
            SchedulingProblem(
                [Operation("x", "alu"), Operation("x", "alu")],
                capacities={"alu": 1},
            )

    def test_unknown_precedence_op(self):
        with pytest.raises(ModelError):
            SchedulingProblem(
                [Operation("x", "alu")],
                precedence=[("x", "ghost")],
                capacities={"alu": 1},
            )

    def test_missing_capacity(self):
        with pytest.raises(ModelError):
            SchedulingProblem([Operation("x", "mul")], capacities={"alu": 1})

    def test_bad_horizon(self):
        with pytest.raises(ModelError):
            SchedulingProblem(
                [Operation("x", "alu")], capacities={"alu": 1}, horizon=0
            )


class TestILP:
    def test_exact_solve_is_valid(self, dfg):
        sol = solve(dfg.to_ilp())
        assert sol.status is SolveStatus.OPTIMAL
        schedule = dfg.decode(sol)
        assert dfg.is_valid(schedule)

    def test_precedence_respected(self, dfg):
        schedule = dfg.decode(solve(dfg.to_ilp()))
        assert schedule["a1"] >= schedule["m1"] + 1
        assert schedule["a3"] >= schedule["a1"] + 1

    def test_infeasible_horizon(self, dfg):
        tight = SchedulingProblem(
            operations=list(dfg.operations),
            precedence=list(dfg.precedence),
            capacities=dict(dfg.capacities),
            horizon=2,  # chain m1 -> a1 -> a3 alone needs 3 steps
        )
        assert solve(tight.to_ilp()).status is SolveStatus.INFEASIBLE

    def test_capacity_binding(self):
        # Two ALU ops, capacity 1, horizon 2: they must serialize.
        prob = SchedulingProblem(
            [Operation("p", "alu"), Operation("q", "alu")],
            capacities={"alu": 1},
            horizon=2,
        )
        schedule = prob.decode(solve(prob.to_ilp()))
        assert schedule["p"] != schedule["q"]

    def test_is_valid_rejections(self, dfg):
        schedule = dfg.decode(solve(dfg.to_ilp()))
        bad = dict(schedule)
        bad["a3"] = bad["a1"]  # violates precedence
        assert not dfg.is_valid(bad)
        assert not dfg.is_valid({})


class TestSlack:
    def test_slack_range(self, dfg):
        schedule = dfg.decode(solve(dfg.to_ilp()))
        assert 0.0 <= schedule_slack(dfg, schedule) <= 1.0

    def test_empty_problem_slack(self):
        prob = SchedulingProblem([], capacities={}, horizon=1)
        assert schedule_slack(prob, {}) == 1.0


class TestEnabling:
    def test_enabled_schedule_valid_and_slack_measured(self, dfg):
        result = enable_scheduling_ec(dfg)
        assert result.succeeded
        assert dfg.is_valid(result.schedule)
        assert 0.0 <= result.slack <= 1.0


class TestPreserving:
    def test_new_precedence_edge(self, dfg):
        schedule = dfg.decode(solve(dfg.to_ilp()))
        changed = dfg.with_precedence("a3", "m2") if schedule["m2"] > schedule["a3"] \
            else dfg.with_precedence("a1", "m2")
        result = preserving_scheduling_ec(changed, schedule)
        if result.succeeded:
            assert changed.is_valid(result.schedule)
            assert 0.0 <= result.preserved_fraction <= 1.0

    def test_unchanged_problem_preserves_everything(self, dfg):
        schedule = dfg.decode(solve(dfg.to_ilp()))
        result = preserving_scheduling_ec(dfg, schedule)
        assert result.succeeded
        assert result.preserved_fraction == pytest.approx(1.0)

    def test_capacity_change(self, dfg):
        schedule = dfg.decode(solve(dfg.to_ilp()))
        changed = dfg.with_capacity("alu", 2)  # loosening: schedule survives
        result = preserving_scheduling_ec(changed, schedule)
        assert result.succeeded
        assert result.preserved_fraction == pytest.approx(1.0)

    def test_pin_unknown_start_raises(self, dfg):
        with pytest.raises(ECError):
            preserving_scheduling_ec(dfg, {}, preserve=["m1"])
