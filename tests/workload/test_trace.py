"""Trace format: lossless round trips, versioning, malformed input."""

import json

import pytest

from repro.cnf.generators import random_planted_ksat
from repro.workload.scenarios import build_scenario
from repro.workload.trace import (
    TRACE_FORMAT,
    TRACE_VERSION,
    TraceError,
    TraceRecorder,
    event_to_wire,
    expected_outcomes,
    read_trace,
    record_to_event,
)


def write_scenario_trace(path, name="sat-mixed", seed=3):
    """Record a scenario's raw requests (no execution needed)."""
    events = build_scenario(name, seed=seed, tenants=2, changes=4)
    with TraceRecorder(str(path), meta={"scenario": name}) as recorder:
        for event in events:
            op, header, payload = event_to_wire(event)
            recorder.record(op, header, payload, {"status": "sat"}, wall=0.001)
    return events


class TestRoundTrip:
    def test_records_round_trip_losslessly(self, tmp_path):
        path = tmp_path / "t.jsonl"
        events = write_scenario_trace(path)
        trace = read_trace(str(path))
        assert trace.version == TRACE_VERSION
        assert trace.meta == {"scenario": "sat-mixed"}
        assert len(trace) == len(events)
        for i, (event, record) in enumerate(zip(events, trace.records)):
            op, header, payload = event_to_wire(event)
            assert record.seq == i
            assert record.op == op
            assert record.header == header
            assert record.payload == payload          # byte-identical
            assert record.wall == pytest.approx(0.001)

    def test_record_to_event_rebuilds_identical_wire_frames(self, tmp_path):
        """decode(encode(event)) must re-encode to the same frame."""
        path = tmp_path / "t.jsonl"
        write_scenario_trace(path, name="coloring-churn")
        for record in read_trace(str(path)).records:
            op, header, payload = event_to_wire(record_to_event(record))
            assert (op, header, payload) == (record.op, record.header, record.payload)

    def test_solve_many_record_round_trips(self, tmp_path):
        from repro.service.requests import SolveResponse

        f1, _ = random_planted_ksat(10, 30, rng=1)
        f2, _ = random_planted_ksat(10, 30, rng=2)
        path = tmp_path / "b.jsonl"
        with TraceRecorder(str(path)) as recorder:
            recorder.record_solve_many(
                [f1, f2],
                {"deadline": None, "seed": 7, "use_cache": True, "lead": None},
                [SolveResponse("sat"), SolveResponse("sat")],
                wall=0.01,
            )
        record = read_trace(str(path)).records[0]
        event = record_to_event(record)
        assert event.kind == "solve_many"
        assert len(event.formulas) == 2
        assert event.options["seed"] == 7
        rebuilt = [sorted(c.literals) for c in event.formulas[0].clauses]
        original = [sorted(c.literals) for c in f1.clauses]
        assert rebuilt == original
        assert len(expected_outcomes(record)) == 2

    def test_arrival_offsets_survive(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceRecorder(str(path)) as recorder:
            recorder.record(
                "close_session", {"op": "close_session", "session": "s"},
                response={"ok": True, "existed": True}, at=1.25,
            )
        trace = read_trace(str(path))
        assert trace.records[0].at == pytest.approx(1.25)
        assert trace.events()[0].at == pytest.approx(1.25)
        assert expected_outcomes(trace.records[0]) == [{"existed": True}]


class TestMalformedInput:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text("")
        with pytest.raises(TraceError, match="empty"):
            read_trace(str(path))

    def test_foreign_format(self, tmp_path):
        path = tmp_path / "f.jsonl"
        path.write_text('{"format": "something-else", "version": 1}\n')
        with pytest.raises(TraceError, match="not a"):
            read_trace(str(path))

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "v.jsonl"
        path.write_text(
            json.dumps({"format": TRACE_FORMAT, "version": TRACE_VERSION + 1}) + "\n"
        )
        with pytest.raises(TraceError, match="unsupported trace version"):
            read_trace(str(path))

    def test_malformed_record_line(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text(
            json.dumps({"format": TRACE_FORMAT, "version": TRACE_VERSION}) + "\n"
            + "not json\n"
        )
        with pytest.raises(TraceError, match="malformed record"):
            read_trace(str(path))

    def test_incomplete_record_line(self, tmp_path):
        path = tmp_path / "i.jsonl"
        path.write_text(
            json.dumps({"format": TRACE_FORMAT, "version": TRACE_VERSION}) + "\n"
            + json.dumps({"seq": 0}) + "\n"
        )
        with pytest.raises(TraceError, match="incomplete record"):
            read_trace(str(path))

    def test_unknown_op_rejected_at_event_build(self, tmp_path):
        path = tmp_path / "o.jsonl"
        path.write_text(
            json.dumps({"format": TRACE_FORMAT, "version": TRACE_VERSION}) + "\n"
            + json.dumps({"seq": 0, "op": "frob", "header": {}}) + "\n"
        )
        trace = read_trace(str(path))
        with pytest.raises(TraceError, match="unknown trace op"):
            trace.events()


class TestRecorderLifecycle:
    def test_close_is_idempotent_and_closed_rejects_writes(self, tmp_path):
        recorder = TraceRecorder(str(tmp_path / "c.jsonl"))
        recorder.record("close_session", {"op": "close_session", "session": "x"})
        assert recorder.count == 1
        recorder.close()
        recorder.close()
        with pytest.raises(TraceError, match="closed"):
            recorder.record("close_session", {"op": "close_session", "session": "y"})

    def test_offsets_start_at_the_first_record_not_recorder_birth(
        self, tmp_path
    ):
        """A daemon idle before its first client must not bake dead air
        into the trace (open-loop replay would sleep it back)."""
        import time

        recorder = TraceRecorder(str(tmp_path / "idle.jsonl"))
        time.sleep(0.15)                   # pre-traffic daemon idle
        recorder.record("close_session", {"op": "close_session", "session": "a"})
        recorder.record("close_session", {"op": "close_session", "session": "b"})
        recorder.close()
        records = read_trace(str(tmp_path / "idle.jsonl")).records
        assert records[0].at == 0.0
        assert 0.0 <= records[1].at < 0.1

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "b.jsonl"
        write_scenario_trace(path)
        content = path.read_text().replace("\n", "\n\n", 1)
        path.write_text(content)
        assert len(read_trace(str(path))) > 0
