"""Scenario generators: structure, session discipline, registry."""

import pytest

from repro.errors import ReproError
from repro.service.requests import ChangeRequest, SolveRequest
from repro.workload.scenarios import (
    EVENT_KINDS,
    SCENARIOS,
    WorkloadEvent,
    build_scenario,
)
from repro.workload.trace import event_to_wire


def small(name, seed=0):
    return build_scenario(name, seed=seed, tenants=2, changes=4)


class TestRegistry:
    def test_every_scenario_builds_a_nonempty_stream(self):
        for name in SCENARIOS:
            events = small(name)
            assert events, name
            assert all(e.kind in EVENT_KINDS for e in events)

    def test_unknown_scenario_raises(self):
        with pytest.raises(ReproError, match="unknown scenario"):
            build_scenario("nope")

    def test_unknown_event_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            WorkloadEvent("frobnicate")


class TestSessionDiscipline:
    """Streams must be executable: opens before changes before closes."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_stream_respects_session_lifecycle(self, name):
        open_sessions: set[str] = set()
        for event in small(name):
            if event.kind == "solve":
                request = event.request
                assert isinstance(request, SolveRequest)
                if request.session is None:
                    assert request.has_source
                elif request.has_source:
                    # An open: the name must be free.
                    assert request.session not in open_sessions
                    open_sessions.add(request.session)
                else:
                    # A re-query: the session must exist.
                    assert request.session in open_sessions
            elif event.kind == "change":
                assert isinstance(event.request, ChangeRequest)
                assert event.request.session in open_sessions
            elif event.kind == "close_session":
                assert event.session in open_sessions
                open_sessions.remove(event.session)
        assert not open_sessions, "every scenario closes what it opens"

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_tenants_interleave(self, name):
        """Round-robin merge: the first few events span > 1 session."""
        events = small(name)
        leading_keys = {e.key for e in events[:4] if e.key is not None}
        assert len(leading_keys) > 1

    def test_ordering_key(self):
        events = small("tenant-churn")
        stateless = [e for e in events if e.kind == "solve" and e.request.session is None]
        assert stateless, "tenant-churn carries stateless traffic"
        assert all(e.key is None for e in stateless)
        closes = [e for e in events if e.kind == "close_session"]
        assert all(e.key == e.session for e in closes)


class TestParameters:
    def test_tenants_scale_the_stream(self):
        assert len(build_scenario("sat-tightening", tenants=4, changes=3)) == 2 * len(
            build_scenario("sat-tightening", tenants=2, changes=3)
        )

    def test_changes_scale_the_stream(self):
        shorter = build_scenario("sat-loosening", tenants=2, changes=2)
        longer = build_scenario("sat-loosening", tenants=2, changes=6)
        assert len(longer) > len(shorter)

    def test_different_seeds_differ(self):
        a = [event_to_wire(e) for e in small("sat-mixed", seed=0)]
        b = [event_to_wire(e) for e in small("sat-mixed", seed=1)]
        assert a != b

    def test_tenant_churn_collides_fingerprints(self):
        """The churn scenario must contain repeated-content solves."""
        from repro.engine.fingerprint import fingerprint_v2

        events = build_scenario("tenant-churn", seed=0, tenants=3, changes=4)
        fps = [
            fingerprint_v2(e.request.formula)
            for e in events
            if e.kind == "solve" and e.request is not None
            and e.request.formula is not None
        ]
        assert len(set(fps)) < len(fps)
