"""Load driver: closed/open loops, ordering, replay verification."""

import dataclasses

import pytest

from repro.engine.config import EngineConfig
from repro.service.service import SolverService
from repro.workload.runner import (
    coalesce_batches,
    counters_delta,
    inprocess_factory,
    latency_summary,
    percentile,
    replay_trace,
    run_closed,
    run_events,
    run_open,
    summarize,
    write_trace_from_run,
)
from repro.workload.scenarios import build_scenario
from repro.workload.trace import expected_outcomes, read_trace, record_to_event


@pytest.fixture
def service():
    with SolverService(EngineConfig(jobs=1)) as svc:
        yield svc


def run_scenario(service, name="sat-mixed", seed=1, **kwargs):
    events = build_scenario(name, seed=seed, tenants=2, changes=4)
    results, wall = run_events(events, inprocess_factory(service), **kwargs)
    return events, results, wall


class TestClosedLoop:
    def test_single_worker_runs_clean(self, service):
        events, results, wall = run_scenario(service)
        report = summarize(results, wall, scenario="sat-mixed")
        assert report.errors == 0, report.error_detail
        assert report.events == len(events)
        assert set(report.statuses) == {"sat"}
        assert report.throughput > 0
        assert report.latency["p99"] >= report.latency["p50"] >= 0

    def test_concurrent_workers_preserve_session_order(self, service):
        """Three workers over interleaved tenants: a change must never
        reach the daemon before the open that creates its session."""
        events = build_scenario("tenant-churn", seed=2, tenants=3, changes=4)
        results, _ = run_closed(
            events, inprocess_factory(service), concurrency=3
        )
        errors = [r.error for r in results if not r.ok]
        assert errors == []

    def test_results_keep_stream_order(self, service):
        events, results, _ = run_scenario(service)
        assert [r.index for r in results] == list(range(len(events)))
        assert [r.kind for r in results] == [e.kind for e in events]


class TestOpenLoop:
    def test_poisson_arrivals_run_clean_and_report_lateness(self, service):
        events, results, wall = run_scenario(
            service, mode="open", rate=500.0, seed=3
        )
        report = summarize(results, wall, mode="open")
        assert report.errors == 0, report.error_detail
        assert report.lateness is not None
        assert all(r.due is not None for r in results)
        # Arrival schedule is monotone.
        dues = [r.due for r in results]
        assert dues == sorted(dues)

    def test_recorded_offsets_drive_the_schedule(self, service):
        events, results, _ = run_scenario(service)
        trace_events = [
            dataclasses.replace(e, at=i * 0.001) for i, e in enumerate(events)
        ]
        with SolverService(EngineConfig(jobs=1)) as fresh:
            replay_results, _ = run_open(
                trace_events, inprocess_factory(fresh), speed=2.0
            )
        assert all(r.ok for r in replay_results)
        assert replay_results[-1].due == pytest.approx(
            (len(events) - 1) * 0.001 / 2.0
        )

    def test_bad_rate_rejected(self, service):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="rate must be positive"):
            run_open([], inprocess_factory(service), rate=0.0)


class TestReplay:
    def test_record_then_replay_reproduces_fingerprints_and_verdicts(
        self, service, tmp_path
    ):
        events, results, _ = run_scenario(service, name="sat-tightening")
        path = tmp_path / "t.jsonl"
        write_trace_from_run(str(path), events, results, meta={"scenario": "x"})
        trace = read_trace(str(path))
        with SolverService(EngineConfig(jobs=1)) as fresh:
            factory = inprocess_factory(fresh)
            report = replay_trace(trace, factory, stats_target=factory())
        assert report.errors == 0, report.error_detail
        assert report.mismatches == 0, report.mismatch_detail

    def test_replay_detects_a_tampered_trace(self, service, tmp_path):
        events, results, _ = run_scenario(service)
        path = tmp_path / "t.jsonl"
        write_trace_from_run(str(path), events, results)
        text = path.read_text()
        fp = next(
            r.fingerprint
            for res in results
            for r in res.responses
            if r.fingerprint
        )
        assert fp in text
        path.write_text(text.replace(fp, "0" * len(fp)))
        trace = read_trace(str(path))
        with SolverService(EngineConfig(jobs=1)) as fresh:
            report = replay_trace(trace, inprocess_factory(fresh))
        assert report.mismatches > 0
        assert any("fingerprint" in d for d in report.mismatch_detail)

    def test_batch_segments_coalesce_and_still_verify(self, service, tmp_path):
        events, results, _ = run_scenario(service, name="tenant-churn", seed=4)
        path = tmp_path / "t.jsonl"
        write_trace_from_run(str(path), events, results)
        trace = read_trace(str(path))
        pairs = [(record_to_event(r), expected_outcomes(r)) for r in trace.records]
        coalesced = coalesce_batches(pairs)
        assert any(e.kind == "solve_many" for e, _ in coalesced)
        assert len(coalesced) < len(pairs)
        # Expected-outcome counts are conserved across coalescing.
        assert sum(len(x) for _, x in coalesced) == sum(len(x) for _, x in pairs)
        with SolverService(EngineConfig(jobs=1)) as fresh:
            report = replay_trace(
                trace, inprocess_factory(fresh), batch_segments=True
            )
        assert report.errors == 0, report.error_detail
        assert report.mismatches == 0, report.mismatch_detail
        assert report.by_kind.get("solve_many", 0) >= 1


class TestReporting:
    def test_percentile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 99) == 7.0

    def test_latency_summary_shape(self):
        summary = latency_summary([0.004, 0.001, 0.002, 0.003])
        assert summary["p50"] <= summary["p90"] <= summary["p99"] <= summary["max"]
        assert summary["max"] == 0.004
        assert summary["mean"] == pytest.approx(0.0025)

    def test_counters_delta_diffs_numeric_leaves(self):
        before = {"engine": {"solves": 3, "races": 1}, "sessions": ["a"]}
        after = {"engine": {"solves": 10, "races": 4}, "sessions": ["b"]}
        delta = counters_delta(before, after)
        assert delta["engine"] == {"solves": 7, "races": 3}
        assert delta["sessions"] == ["b"]

    def test_stats_delta_counts_only_this_run(self, service):
        factory = inprocess_factory(service)
        run_scenario(service)                      # warm-up traffic
        before = factory().stats()
        events, results, wall = run_scenario(service, seed=9)
        after = factory().stats()
        report = summarize(
            results, wall, stats_before=before, stats_after=after
        )
        engine = report.counters["engine"]
        assert 0 < engine["solves"] <= len(events)
        assert engine["solves"] == (
            engine["cache_hits"] + engine["revalidations"] + engine["races"]
            + engine["batch_dedups"] + engine["inflight_joins"]
        )

    def test_counters_delta_defaults_missing_before_keys_to_zero(self):
        # A counter born mid-run (first bump after the before-snapshot)
        # must appear in the delta, not be silently dropped.
        before = {"metrics": {"counters": {"requests": 5}}}
        after = {"metrics": {"counters": {"requests": 9, "errors": 2}}}
        delta = counters_delta(before, after)
        assert delta["metrics"]["counters"] == {"requests": 4, "errors": 2}
