"""Unit coverage for :mod:`repro.obs.tracing`: wire context round trips,
sampling, the zero-overhead disabled path, span emission (ring + JSONL),
and the log-join reconstruction behind ``repro trace``."""

import json

import pytest

from repro.obs import tracing
from repro.obs.tracing import (
    Tracer,
    TraceContext,
    ctx_from_wire,
    ctx_to_wire,
    format_trace,
    group_traces,
    load_spans,
    new_span_id,
    new_trace_id,
    trace_tree,
)


@pytest.fixture(autouse=True)
def clean_tracer():
    """Tracing is process-global (the faults idiom): every test starts
    and ends with no tracer installed and no context active."""
    tracing.install(None)
    yield
    tracing.install(None)


class TestWireContext:
    def test_round_trip(self):
        ctx = TraceContext(new_trace_id(), new_span_id())
        parsed = ctx_from_wire(ctx_to_wire(ctx))
        assert parsed == ctx
        assert parsed.sampled is True

    def test_ids_are_hex_of_fixed_width(self):
        assert len(new_trace_id()) == 32
        assert len(new_span_id()) == 16
        int(new_trace_id(), 16)
        int(new_span_id(), 16)

    @pytest.mark.parametrize("garbage", [
        None, 42, "tid", [], {}, {"tid": "a"}, {"sid": "b"},
        {"tid": 1, "sid": "b"}, {"tid": "", "sid": "b"},
        {"tid": "a", "sid": None},
    ])
    def test_malformed_wire_values_parse_to_none(self, garbage):
        # A malformed trace annotation must never fail the request.
        assert ctx_from_wire(garbage) is None


class TestTracer:
    def test_begin_finish_emits_a_child_record(self):
        tracer = Tracer(service="t")
        root = tracer.begin("root")
        child = tracer.begin("child", root.context, solver="cdcl")
        rec = tracer.finish(child, status="sat")
        assert rec["event"] == "span"
        assert rec["trace"] == root.trace_id
        assert rec["parent"] == root.span_id
        assert rec["svc"] == "t"
        assert rec["dur"] >= 0.0
        assert rec["tags"] == {"solver": "cdcl", "status": "sat"}

    def test_none_tags_are_filtered(self):
        tracer = Tracer()
        span = tracer.begin("x", session=None)
        rec = tracer.finish(span, error=None, node="n1")
        assert rec["tags"] == {"node": "n1"}

    def test_ring_is_bounded(self):
        tracer = Tracer(ring=4)
        for i in range(10):
            tracer.finish(tracer.begin(f"s{i}"))
        spans = tracer.spans()
        assert len(spans) == 4
        assert tracer.emitted == 10
        assert [s["name"] for s in spans] == ["s6", "s7", "s8", "s9"]

    def test_jsonl_sink_shares_the_daemon_log_convention(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(service="node", log_path=str(path))
        tracer.finish(tracer.begin("daemon.solve"))
        record = json.loads(path.read_text().strip())
        assert record["event"] == "span"
        assert "mono" in record and "ts" in record

    def test_synthetic_record_backdates_start(self):
        tracer = Tracer()
        parent = tracer.begin("race")
        rec = tracer.record(
            "solve", parent=parent.context, duration=1.5,
            tags={"solver": "cdcl"},
        )
        assert rec["dur"] == 1.5
        assert rec["parent"] == parent.span_id
        assert rec["start"] <= rec["mono"] - 1.4

    def test_sampling_bounds(self):
        assert Tracer(sample=0.0).maybe_trace() is False
        assert Tracer(sample=1.0).maybe_trace() is True
        assert Tracer(sample=-3).sample == 0.0
        assert Tracer(sample=7).sample == 1.0


class TestStageAndPropagation:
    def test_stage_is_null_without_a_tracer(self):
        with tracing.stage("engine.solve") as sp:
            assert sp is None

    def test_stage_is_null_without_an_active_context(self):
        tracing.install(Tracer())
        with tracing.stage("engine.solve") as sp:
            assert sp is None

    def test_disabled_stage_is_the_shared_singleton(self):
        # The sample-rate-0 fast path allocates nothing.
        assert tracing.stage("a") is tracing.stage("b")

    def test_stage_nests_under_the_activated_context(self):
        tracer = Tracer()
        tracing.install(tracer)
        root = tracer.begin("daemon.solve")
        with tracing.activated(root.context):
            with tracing.stage("engine.solve") as outer:
                assert outer.parent_id == root.span_id
                with tracing.stage("cache.lookup") as inner:
                    assert inner.parent_id == outer.span_id
        assert tracing.current() is None
        names = [s["name"] for s in tracer.spans()]
        assert names == ["cache.lookup", "engine.solve"]  # finish order

    def test_stage_tags_errors_and_still_finishes(self):
        tracer = Tracer()
        tracing.install(tracer)
        with tracing.activated(tracer.begin("root").context):
            with pytest.raises(ValueError):
                with tracing.stage("engine.solve"):
                    raise ValueError("boom")
        (rec,) = tracer.spans()
        assert "boom" in rec["tags"]["error"]

    def test_adopted_activates_only_when_nothing_is_active(self):
        tracer = Tracer()
        tracing.install(tracer)
        ctx = TraceContext(new_trace_id(), new_span_id())
        with tracing.adopted(ctx_to_wire(ctx)):
            assert tracing.current() == ctx
            inner = TraceContext(new_trace_id(), new_span_id())
            # The daemon already activated its span: adopting the
            # client's context here would flatten the tree.
            with tracing.adopted(ctx_to_wire(inner)):
                assert tracing.current() == ctx
        assert tracing.current() is None

    def test_adopted_is_null_on_garbage_and_without_tracer(self):
        assert tracing.adopted({"tid": "a", "sid": "b"}) is tracing._NULL_STAGE
        tracing.install(Tracer())
        assert tracing.adopted("nonsense") is tracing._NULL_STAGE

    def test_active_requires_both_tracer_and_sampled_context(self):
        assert tracing.active() == (None, None)
        tracer = Tracer()
        tracing.install(tracer)
        assert tracing.active() == (None, None)
        ctx = TraceContext(new_trace_id(), new_span_id())
        with tracing.activated(ctx):
            assert tracing.active() == (tracer, ctx)
        unsampled = TraceContext(new_trace_id(), new_span_id(), sampled=False)
        with tracing.activated(unsampled):
            assert tracing.active() == (None, None)


class TestReconstruction:
    def _emit_tree(self, path):
        tracer = Tracer(service="node", log_path=str(path))
        root = tracer.begin("daemon.solve")
        child = tracer.begin("engine.solve", root.context)
        tracer.finish(child)
        tracer.finish(root)
        return root.trace_id

    def test_load_spans_skips_garbage_and_op_records(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        tid = self._emit_tree(path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("not json at all\n")
            fh.write(json.dumps({"event": "op", "op": "solve"}) + "\n")
            fh.write(json.dumps({"event": "span", "trace": 7}) + "\n")
        spans = load_spans([str(path), str(tmp_path / "missing.jsonl")])
        assert len(spans) == 2
        assert {s["trace"] for s in spans} == {tid}

    def test_group_and_tree(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tid = self._emit_tree(path)
        traces = group_traces(load_spans([str(path)]))
        roots, children = trace_tree(traces[tid])
        assert len(roots) == 1
        assert roots[0]["name"] == "daemon.solve"
        kids = children[roots[0]["span"]]
        assert [k["name"] for k in kids] == ["engine.solve"]

    def test_orphans_surface_as_roots(self):
        spans = [
            {"trace": "t", "span": "a", "parent": None, "name": "r",
             "svc": "x", "start": 0.0, "dur": 1.0, "mono": 1.0},
            {"trace": "t", "span": "b", "parent": "missing", "name": "o",
             "svc": "y", "start": 0.5, "dur": 0.1, "mono": 1.0},
        ]
        roots, _ = trace_tree(spans)
        assert [r["name"] for r in roots] == ["r", "o"]

    def test_format_trace_renders_a_waterfall(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tid = self._emit_tree(path)
        traces = group_traces(load_spans([str(path)]))
        lines = format_trace(traces[tid])
        assert tid in lines[0]
        assert "daemon.solve" in lines[1]
        assert "engine.solve" in lines[2]
        # The child is indented under the root and both carry bars.
        assert all("|" in line for line in lines[1:])

    def test_format_trace_empty(self):
        assert format_trace([]) == []
