"""Ring-buffer time series: slot math, gap invalidation, windows."""

import pytest

from repro.obs.timeseries import RingSeries


def make(slots=5, step=1.0):
    return RingSeries(("a", "b"), slots=slots, step=step)


class TestPutAndRows:
    def test_rows_come_back_oldest_first_with_timestamps(self):
        s = make()
        s.put(100.0, {"a": 1})
        s.put(101.0, {"a": 2, "b": 7})
        s.put(102.0, {"a": 3})
        rows = s.rows()
        assert [r["a"] for r in rows] == [1, 2, 3]
        assert [r["t"] for r in rows] == [100.0, 101.0, 102.0]
        assert rows[1]["b"] == 7
        assert rows[0]["b"] == 0
        assert len(s) == 3

    def test_same_slot_overwrites(self):
        s = make()
        s.put(100.1, {"a": 1})
        s.put(100.9, {"a": 5})
        rows = s.rows()
        assert len(rows) == 1
        assert rows[0]["a"] == 5

    def test_older_writes_are_dropped(self):
        s = make()
        s.put(105.0, {"a": 1})
        s.put(101.0, {"a": 9})      # a clock step backwards
        assert [r["a"] for r in s.rows()] == [1]

    def test_capacity_wraps(self):
        s = make(slots=3)
        for i in range(6):
            s.put(100.0 + i, {"a": i})
        rows = s.rows()
        assert [r["a"] for r in rows] == [3, 4, 5]
        assert len(s) == 3

    def test_clock_gap_invalidates_skipped_slots(self):
        """A stalled sampler must not leave stale rows inside the gap."""
        s = make(slots=5)
        s.put(100.0, {"a": 1})
        s.put(101.0, {"a": 2})
        s.put(104.0, {"a": 3})      # slots 102 and 103 never happened
        rows = s.rows()
        assert [r["t"] for r in rows] == [100.0, 101.0, 104.0]

    def test_unknown_field_rejected(self):
        s = make()
        with pytest.raises(ValueError, match="unknown"):
            s.put(100.0, {"nope": 1})

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            RingSeries(("a",), slots=0)
        with pytest.raises(ValueError):
            RingSeries(("a",), step=0.0)
        with pytest.raises(ValueError):
            RingSeries(())


class TestWindows:
    def test_latest_and_window(self):
        s = make()
        for i in range(4):
            s.put(200.0 + i, {"a": i, "b": 10 * i})
        assert s.latest()["a"] == 3
        recent = s.window(2.0)
        assert [r["a"] for r in recent] == [2, 3]

    def test_rows_last_n(self):
        s = make()
        for i in range(4):
            s.put(200.0 + i, {"a": i})
        assert [r["a"] for r in s.rows(last=2)] == [2, 3]

    def test_totals_sum_fields_and_report_span(self):
        s = make()
        for i in range(4):
            s.put(300.0 + i, {"a": 1, "b": i})
        totals = s.totals(2.0)
        assert totals["a"] == 2
        assert totals["b"] == 2 + 3
        assert totals["span"] == pytest.approx(2.0)
        everything = s.totals(None)
        assert everything["a"] == 4
        assert everything["span"] == pytest.approx(4.0)

    def test_empty_series(self):
        s = make()
        assert s.rows() == []
        assert s.latest() is None
        assert s.totals(10.0) == {"a": 0, "b": 0, "span": 0.0}
