"""Registry, frame diffing, and the monitor (clock-independent paths)."""

import threading

import pytest

from repro.obs.metrics import (
    FRAME_COUNTERS,
    LATENCY_HISTOGRAM,
    FrameTracker,
    MetricsRegistry,
    StatsMonitor,
    build_frame,
    hit_rate,
)


class TestRegistry:
    def test_bump_applies_counts_observations_and_families(self):
        r = MetricsRegistry()
        r.bump(
            counts={"solves": 2, "races": 1},
            observe={LATENCY_HISTOGRAM: 0.01},
            families={"session_requests": {"alpha": 3}},
        )
        r.bump(counts={"solves": 1}, families={"session_requests": {"alpha": 1}})
        assert r.counter("solves") == 3
        assert r.counter("races") == 1
        assert r.counter("never_touched") == 0
        assert r.histogram(LATENCY_HISTOGRAM).count == 1
        snap = r.snapshot()
        assert snap["families"]["session_requests"] == {"alpha": 4}
        assert snap["histograms"][LATENCY_HISTOGRAM]["count"] == 1

    def test_gauges_set_and_adjust(self):
        r = MetricsRegistry()
        r.set_gauge("inflight", 3)
        r.adjust_gauge("inflight", -1)
        r.adjust_gauge("queued", 2)
        assert r.gauge("inflight") == 2.0
        assert r.gauge("queued") == 2.0
        assert r.gauge("absent") == 0.0

    def test_histogram_reads_are_snapshots(self):
        r = MetricsRegistry()
        r.observe(LATENCY_HISTOGRAM, 0.01)
        snap = r.histogram(LATENCY_HISTOGRAM)
        r.observe(LATENCY_HISTOGRAM, 0.02)
        assert snap.count == 1
        assert r.histogram(LATENCY_HISTOGRAM).count == 2

    def test_concurrent_bumps_do_not_tear(self):
        r = MetricsRegistry()

        def hammer():
            for _ in range(500):
                r.bump(counts={"solves": 1}, observe={LATENCY_HISTOGRAM: 0.001})

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert r.counter("solves") == 2000
        assert r.histogram(LATENCY_HISTOGRAM).count == 2000


class TestFrames:
    def test_hit_rate_arithmetic(self):
        assert hit_rate({}) == 0.0
        assert hit_rate({"solves": 0, "cache_hits": 3}) == 0.0
        assert hit_rate({"solves": 4, "cache_hits": 1, "revalidations": 1}) == 0.5
        assert hit_rate({"solves": 1, "cache_hits": 5}) == 1.0  # capped

    def test_build_frame_shape(self):
        from repro.obs.histogram import LatencyHistogram

        frame = build_frame(
            {"requests": 10, "solves": 4, "cache_hits": 2},
            {"inflight": 1, "sessions": 2},
            LatencyHistogram.of([0.01, 0.02]),
            interval=2.0, uptime=5.0, totals={"requests": 100},
        )
        assert frame["rps"] == pytest.approx(5.0)
        assert frame["hit_rate"] == pytest.approx(0.5)
        assert frame["uptime"] == 5.0
        assert frame["inflight"] == 1
        assert frame["queued"] == 0
        assert frame["latency"]["count"] == 2
        assert frame["totals"] == {"requests": 100}
        for name in FRAME_COUNTERS:
            assert name in frame

    def test_tracker_reports_deltas_not_totals(self):
        r = MetricsRegistry()
        r.bump(counts={"requests": 5}, observe={LATENCY_HISTOGRAM: 0.01})
        tracker = FrameTracker(r)        # birth snapshot swallows history
        r.bump(counts={"requests": 3}, observe={LATENCY_HISTOGRAM: 0.04})
        frame = tracker.frame()
        assert frame["requests"] == 3
        assert frame["latency"]["count"] == 1
        assert frame["totals"]["requests"] == 8
        # A second frame over an idle interval is all zeros.
        idle = tracker.frame()
        assert idle["requests"] == 0
        assert idle["latency"]["count"] == 0

    def test_independent_trackers_have_independent_cursors(self):
        r = MetricsRegistry()
        a, b = FrameTracker(r), FrameTracker(r)
        r.bump(counts={"requests": 2})
        assert a.frame()["requests"] == 2
        r.bump(counts={"requests": 1})
        assert a.frame()["requests"] == 1
        assert b.frame()["requests"] == 3


class TestMonitor:
    def test_sample_writes_rows_and_snapshot_windows_them(self):
        r = MetricsRegistry()
        m = StatsMonitor(r, interval=1.0)
        r.bump(counts={"requests": 30, "solves": 10, "cache_hits": 5},
               observe={LATENCY_HISTOGRAM: 0.02})
        m.sample()
        frame = m.snapshot_frame(window=60.0)
        assert frame["requests"] == 30
        assert frame["rps"] == pytest.approx(30.0)
        assert frame["hit_rate"] == pytest.approx(0.5)
        assert frame["window"] >= 1.0
        assert frame["latency_histogram"]["count"] == 1

    def test_snapshot_includes_recent_series_rows(self):
        r = MetricsRegistry()
        m = StatsMonitor(r, interval=1.0)
        r.bump(counts={"requests": 4})
        m.sample()
        frame = m.snapshot_frame(recent=5)
        assert len(frame["series"]) == 1
        assert frame["series"][0]["requests"] == 4
        assert "series" not in m.snapshot_frame()

    def test_idle_snapshot_is_well_formed(self):
        m = StatsMonitor(MetricsRegistry(), interval=1.0)
        frame = m.snapshot_frame()
        assert frame["rps"] == 0.0
        assert frame["latency"]["count"] == 0

    def test_start_stop_idempotent(self):
        m = StatsMonitor(MetricsRegistry(), interval=0.05)
        m.start()
        m.start()
        m.stop()
        m.stop()
        assert m._thread is None

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            StatsMonitor(MetricsRegistry(), interval=0.0)
