"""Log-bucketed latency histogram: exactness, merge/diff, serialization."""

import math

import pytest

from repro.obs.histogram import LatencyHistogram


class TestRecordingAndExactAggregates:
    def test_count_sum_min_max_are_exact(self):
        values = [0.0012, 0.5, 0.0012, 0.033, 7.5]
        h = LatencyHistogram.of(values)
        assert h.count == len(values)
        assert h.sum == pytest.approx(sum(values))
        assert h.min == min(values)
        assert h.max == max(values)
        assert h.mean == pytest.approx(sum(values) / len(values))
        assert len(h) == len(values)

    def test_empty_histogram_answers_zero_everywhere(self):
        h = LatencyHistogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0
        summary = h.summary()
        assert summary == {
            "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0,
            "max": 0.0, "count": 0,
        }

    def test_single_sample_quantiles_are_exact(self):
        h = LatencyHistogram.of([0.0421])
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert h.quantile(q) == 0.0421

    def test_zero_and_subresolution_values_land_in_underflow(self):
        h = LatencyHistogram.of([0.0, 1e-9, 1e-8])
        assert h.counts[0] == 3
        assert h.count == 3
        # The underflow bucket's representative (min_value) is clamped
        # to the exact observed range.
        assert h.quantile(0.5) == 1e-8

    def test_overflow_values_are_counted_and_resolved_as_max(self):
        h = LatencyHistogram.of([0.001, 5000.0])
        assert h.counts[-1] == 1
        assert h.max == 5000.0
        assert h.quantile(1.0) == 5000.0

    def test_relative_error_bound_holds(self):
        """Every in-range value's bucket midpoint is within the scheme's
        relative resolution of the value itself."""
        h = LatencyHistogram()
        bound = 10 ** (1 / h.buckets_per_decade) - 1
        for value in (1e-5, 3.7e-4, 0.0123, 0.5, 2.0, 99.0, 999.0):
            mid = h._bucket_value(h._index(value))
            assert abs(mid - value) / value <= bound

    def test_quantiles_are_monotone(self):
        import random

        rng = random.Random(7)
        h = LatencyHistogram.of(rng.expovariate(20.0) for _ in range(500))
        qs = [h.quantile(q / 100) for q in range(0, 101, 5)]
        assert qs == sorted(qs)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram(min_value=0.0)
        with pytest.raises(ValueError):
            LatencyHistogram(min_value=1.0, max_value=0.5)
        with pytest.raises(ValueError):
            LatencyHistogram(buckets_per_decade=0)
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)


class TestMergeAndDiff:
    def test_merge_adds_counts_and_extremes(self):
        a = LatencyHistogram.of([0.001, 0.002])
        b = LatencyHistogram.of([0.5, 0.0005])
        a.merge(b)
        assert a.count == 4
        assert a.min == 0.0005
        assert a.max == 0.5
        assert a.sum == pytest.approx(0.5035)

    def test_merge_rejects_different_schemes(self):
        a = LatencyHistogram()
        b = LatencyHistogram(buckets_per_decade=8)
        with pytest.raises(ValueError, match="scheme"):
            a.merge(b)

    def test_diff_recovers_the_interval(self):
        h = LatencyHistogram.of([0.001, 0.002])
        snap = h.copy()
        h.record_many([0.01, 0.02, 0.04])
        d = h.diff(snap)
        assert d.count == 3
        assert d.sum == pytest.approx(0.07)
        # Interval extremes are bucket-resolved, not exact: max is the
        # representative of the bucket *after* the highest occupied one,
        # so it can exceed the true value by up to 1.5 bucket widths.
        bound = 10 ** (1 / h.buckets_per_decade)
        assert d.min <= 0.01 * bound and d.min >= 0.01 / bound
        assert d.max >= 0.04 and d.max <= 0.04 * bound ** 1.5

    def test_diff_of_identical_snapshots_is_empty(self):
        h = LatencyHistogram.of([0.3, 0.001])
        d = h.diff(h.copy())
        assert d.count == 0
        assert d.quantile(0.99) == 0.0

    def test_diff_against_a_later_snapshot_raises(self):
        h = LatencyHistogram.of([0.001])
        later = h.copy()
        later.record(0.002)
        with pytest.raises(ValueError, match="non-earlier"):
            h.diff(later)

    def test_copy_is_independent(self):
        h = LatencyHistogram.of([0.01])
        c = h.copy()
        c.record(0.02)
        assert h.count == 1 and c.count == 2


class TestSerialization:
    def test_round_trip_preserves_everything(self):
        h = LatencyHistogram.of([0.0013, 0.9, 0.033, 0.033, 15.0])
        data = h.to_dict()
        back = LatencyHistogram.from_dict(data)
        assert back.counts == h.counts
        assert back.count == h.count
        assert back.sum == pytest.approx(h.sum)
        assert back.min == h.min and back.max == h.max
        for q in (0.1, 0.5, 0.9, 0.99):
            assert back.quantile(q) == h.quantile(q)

    def test_buckets_are_sparse(self):
        h = LatencyHistogram.of([0.01, 0.01, 0.02])
        buckets = h.to_dict()["buckets"]
        assert len(buckets) == 2
        assert sum(n for _, n in buckets) == 3

    def test_json_round_trip(self):
        import json

        h = LatencyHistogram.of([0.004, 0.1])
        back = LatencyHistogram.from_dict(json.loads(json.dumps(h.to_dict())))
        assert back.summary() == h.summary()

    def test_empty_round_trip(self):
        back = LatencyHistogram.from_dict(LatencyHistogram().to_dict())
        assert back.count == 0
        assert back.min == math.inf

    def test_corrupt_dicts_rejected(self):
        h = LatencyHistogram.of([0.01])
        data = h.to_dict()
        bad_index = dict(data, buckets=[[10_000_000, 1]])
        with pytest.raises(ValueError, match="scheme"):
            LatencyHistogram.from_dict(bad_index)
        bad_total = dict(data, count=5)
        with pytest.raises(ValueError, match="disagree"):
            LatencyHistogram.from_dict(bad_total)
