"""End-to-end integration tests across all layers.

These tests walk the paper's full story on real (small) instances:
generate a benchmark-family instance, solve it through the ILP route,
apply engineering changes, and run all three EC components.
"""

import pytest

from repro.bench.registry import load_instance
from repro.cnf.analysis import flexibility_report
from repro.cnf.mutations import table2_trial, table3_trial
from repro.core.change import AddClause, ChangeSet
from repro.core.enabling import EnablingOptions, enable_ec
from repro.core.fast import fast_ec
from repro.core.flow import ECFlow
from repro.core.preserving import preserving_ec, resolve_oblivious
from repro.cnf.clause import Clause
from repro.sat.dpll import dpll_solve
from repro.sat.encoding import encode_sat
from repro.ilp.solver import solve


@pytest.fixture(scope="module")
def instance():
    return load_instance("ii8a1", tier="ci")


class TestFullPipeline:
    def test_ilp_route_solves_family_instance(self, instance):
        enc = encode_sat(instance.formula)
        sol = solve(enc.model)
        assert sol.status.has_solution
        a = enc.decode(sol, default=False)
        assert instance.formula.is_satisfied(a)

    def test_enabling_then_fast_ec(self, instance):
        enabled = enable_ec(
            instance.formula,
            EnablingOptions(mode="objective", support="chained"),
            time_limit=60,
        )
        assert enabled.succeeded
        modified, _ = table2_trial(instance.formula, enabled.assignment, rng=3)
        result = fast_ec(modified, enabled.assignment)
        assert result.succeeded
        assert modified.is_satisfied(result.assignment)

    def test_enabled_solutions_are_more_flexible(self, instance):
        plain_enc = encode_sat(instance.formula)
        plain = plain_enc.decode(solve(plain_enc.model), default=False)
        enabled = enable_ec(
            instance.formula,
            EnablingOptions(mode="objective", support="acyclic"),
            time_limit=60,
        )
        rep_plain = flexibility_report(instance.formula, plain, with_robustness=False)
        rep_enabled = flexibility_report(
            instance.formula, enabled.assignment, with_robustness=False
        )
        assert rep_enabled.fraction_2_satisfied >= rep_plain.fraction_2_satisfied

    def test_preserving_vs_oblivious_shape(self, instance):
        witness = instance.witness
        modified, _ = table3_trial(instance.formula, witness, rng=9)
        pres = preserving_ec(modified, witness)
        obl = resolve_oblivious(modified, witness)
        assert pres.succeeded and obl.succeeded
        # The paper's Table-3 shape: preserving EC keeps (weakly) more.
        assert pres.preserved_fraction >= obl.preserved_fraction - 1e-9
        # And at these perturbation sizes it should be near-total.
        assert pres.preserved_fraction >= 0.8

    def test_flow_chains_strategies(self, instance):
        flow = ECFlow(instance.formula.copy())
        flow.set_solution(instance.witness)
        variables = list(flow.formula.variables)
        flow.apply_changes(
            ChangeSet([AddClause(Clause([-variables[0], -variables[1]]))])
        )
        flow.resolve("fast")
        assert flow.is_current_solution_valid
        flow.apply_changes(
            ChangeSet([AddClause(Clause([-variables[2], -variables[3]]))])
        )
        flow.resolve("preserving")
        assert flow.is_current_solution_valid

    def test_dpll_confirms_every_ec_output(self, instance):
        modified, _ = table2_trial(instance.formula, instance.witness, rng=11)
        result = fast_ec(modified, instance.witness)
        assert result.succeeded
        # Independent solver agrees the modified instance is satisfiable.
        assert dpll_solve(modified).satisfiable
