"""The paper's §1 worked examples, verified end to end.

Each motivating example in the introduction is reproduced literally:
the enabling example (solutions S and E), the fast-EC example (F'' with
three clauses over v2, v5, v6), and the preserving example (S2 keeps four
of five assignments).
"""

import pytest

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.cnf.analysis import elimination_robustness, survives_elimination
from repro.core.fast import fast_ec, simplify_instance
from repro.core.preserving import preserving_ec
from repro.sat.brute import all_satisfying_assignments


class TestEnablingExample:
    """F = (v1+v3'+v5')(v2+v3'+v5)(v2+v4+v5)(v3'+v4'), solutions S and E."""

    def test_both_are_solutions(self, paper_formula, paper_solution_s, paper_solution_e):
        assert paper_formula.is_satisfied(paper_solution_s)
        assert paper_formula.is_satisfied(paper_solution_e)

    def test_e_survives_every_single_elimination(self, paper_formula, paper_solution_e):
        # "Solution E always has the correct solution, regardless of which
        #  variable is being eliminated."
        assert elimination_robustness(paper_formula, paper_solution_e) == 1.0

    def test_eliminating_v3_from_e_needs_the_v4_flip(
        self, paper_formula, paper_solution_e
    ):
        # After eliminating v3, clause (v3'+v4') loses v3'; with v4 = 1 it
        # is unsatisfied, and flipping v4 to 0 repairs it.
        reduced = paper_formula.copy()
        reduced.remove_variable(3)
        broken = reduced.unsatisfied_clauses(paper_solution_e)
        assert broken  # the clause really breaks...
        repaired = paper_solution_e.flipped(4)
        assert reduced.is_satisfied(repaired)  # ...and the flip repairs it

    def test_s_is_strictly_less_robust(
        self, paper_formula, paper_solution_s, paper_solution_e
    ):
        rs = elimination_robustness(paper_formula, paper_solution_s)
        assert rs < 1.0


class TestFastExample:
    """Ten-clause F; adding f11, f12 shrinks the re-solve to 3 clauses."""

    F = CNFFormula(
        [
            [1, 2, 3], [1, -2, -3, 4], [1, 3, 6], [1, 4, 5], [-1, -3, 4],
            [2, -3, 5], [2, -6], [-2, 5], [3, -4, 5], [-3, 5],
        ]
    )
    S = Assignment({1: True, 2: True, 3: False, 4: False, 5: True, 6: False})

    def test_shrinks_ten_clauses_to_three(self):
        modified = self.F.copy()
        modified.add_clause([-5, 6])
        modified.add_clause([1, -3, 4])
        inst = simplify_instance(modified, self.S)
        assert inst.num_clauses == 3
        assert set(inst.affected_variables) == {2, 5, 6}

    def test_resolving_the_small_instance_fixes_everything(self):
        modified = self.F.copy()
        modified.add_clause([-5, 6])
        modified.add_clause([1, -3, 4])
        result = fast_ec(modified, self.S)
        assert result.succeeded and not result.fell_back
        assert modified.is_satisfied(result.assignment)


class TestPreservingExample:
    """Six-clause F; S2 = flip only v2 preserves 4/5 assignments."""

    F = CNFFormula(
        [
            [1, 2, 4], [1, 4, -5], [-1, -3, 4],
            [2, 3, 5], [-2, 4, 5], [3, -4, 5],
        ]
    )
    S = Assignment({1: True, 2: True, 3: False, 4: False, 5: True})

    def _modified(self):
        g = self.F.copy()
        g.add_clause([-2, 3, 4])
        g.add_clause([1, -2, -5])
        return g

    def test_change_invalidates_s(self):
        assert self.F.is_satisfied(self.S)
        assert not self._modified().is_satisfied(self.S)

    def test_s2_is_a_model_preserving_four(self):
        s2 = Assignment({1: True, 2: False, 3: False, 4: False, 5: True})
        modified = self._modified()
        assert modified.is_satisfied(s2)
        assert self.S.agreement_with(s2) == 4

    def test_preserving_ec_reaches_the_best_model(self):
        modified = self._modified()
        result = preserving_ec(modified, self.S)
        assert result.succeeded
        best = max(
            self.S.agreement_with(m) for m in all_satisfying_assignments(modified)
        )
        assert result.preserved_count == best
        assert best >= 4
