"""Smoke tests: the shipped examples must run end to end.

Only the quickstart runs in the default suite (the others take tens of
seconds); they share all code paths with tests elsewhere.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def test_examples_exist():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "eco_respin.py",
        "incremental_synthesis.py",
        "register_binding_coloring.py",
        "design_for_change.py",
        "portfolio_engine.py",
        "solver_service.py",
        "workload_replay.py",
        "cluster.py",
    } <= names


def test_quickstart_runs(capsys):
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "Enabling EC" in out
    assert "OK" in out


def test_portfolio_engine_runs(capsys):
    runpy.run_path(str(EXAMPLES / "portfolio_engine.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "revalidations: 2" in out
    assert "source: cache" in out
    assert "OK" in out


def test_solver_service_runs(capsys):
    runpy.run_path(str(EXAMPLES / "solver_service.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "via revalidation" in out
    assert "from_cache: True" in out
    assert "OK" in out


def test_workload_replay_runs(capsys):
    runpy.run_path(str(EXAMPLES / "workload_replay.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "same seed, same stream: True" in out
    assert "0 mismatches" in out
    assert "OK" in out


@pytest.mark.slow
def test_register_binding_runs(capsys):
    runpy.run_path(
        str(EXAMPLES / "register_binding_coloring.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "OK" in out
