"""Unit tests for the 0-1 presolve reductions."""

import pytest

from repro.ilp.expr import LinExpr
from repro.ilp.model import ILPModel
from repro.ilp.presolve import presolve
from repro.ilp.status import SolveStatus


class TestRedundancyAndInfeasibility:
    def test_redundant_row_dropped(self):
        m = ILPModel()
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add_constraint(x + y <= 5)  # never binding on binaries
        m.set_objective(x + y, "max")
        res = presolve(m)
        assert res.status is SolveStatus.FEASIBLE
        assert res.model.num_constraints == 0
        assert res.dropped_rows >= 1

    def test_infeasible_le(self):
        m = ILPModel()
        x = m.add_binary("x")
        m.add_constraint(x + 0 <= -1)
        m.set_objective(x + 0, "max")
        assert presolve(m).status is SolveStatus.INFEASIBLE

    def test_infeasible_ge(self):
        m = ILPModel()
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add_constraint(x + y >= 3)
        m.set_objective(x + 0, "max")
        assert presolve(m).status is SolveStatus.INFEASIBLE

    def test_infeasible_eq(self):
        m = ILPModel()
        x = m.add_binary("x")
        m.add_constraint((2 * x).__eq__(5.0))
        m.set_objective(x + 0, "max")
        # max activity is 2 < 5
        assert presolve(m).status is SolveStatus.INFEASIBLE


class TestForcing:
    def test_forcing_ge_fixes_all(self):
        m = ILPModel()
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add_constraint(x + y >= 2)  # only (1, 1) works
        m.set_objective(x + y, "max")
        res = presolve(m)
        assert res.status is SolveStatus.OPTIMAL
        assert res.fixed == {"x": 1.0, "y": 1.0}

    def test_forcing_le_fixes_all(self):
        m = ILPModel()
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add_constraint(x + y <= 0)
        m.set_objective(x + y, "max")
        res = presolve(m)
        assert res.status is SolveStatus.OPTIMAL
        assert res.fixed == {"x": 0.0, "y": 0.0}

    def test_unit_propagation_chain(self):
        # x >= 1 forces x; then y + (1-x) >= 2 forces nothing... use a
        # simple chain: x == 1, x + y <= 1 -> y = 0.
        m = ILPModel()
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add_constraint(x + 0 >= 1)
        m.add_constraint(x + y <= 1)
        m.set_objective(y + 0, "max")
        res = presolve(m)
        assert res.status is SolveStatus.OPTIMAL
        assert res.fixed == {"x": 1.0, "y": 0.0}


class TestSingleton:
    def test_singleton_tightens_integer_bound(self):
        m = ILPModel()
        k = m.add_integer("k", 0, 10)
        m.add_constraint(2 * k <= 7)   # k <= 3.5 -> k <= 3
        m.set_objective(k + 0, "max")
        res = presolve(m)
        assert res.status is SolveStatus.FEASIBLE
        assert res.model.var("k").ub == pytest.approx(3.0)

    def test_singleton_infeasible(self):
        m = ILPModel()
        k = m.add_integer("k", 0, 3)
        m.add_constraint(k + 0 >= 9)
        m.set_objective(k + 0, "max")
        assert presolve(m).status is SolveStatus.INFEASIBLE


class TestLift:
    def test_lift_combines(self):
        m = ILPModel()
        x = m.add_binary("x")
        y = m.add_binary("y")
        z = m.add_binary("z")
        m.add_constraint(x + 0 >= 1)          # forces x = 1
        m.add_constraint(y + z >= 1)          # stays
        m.set_objective(y + z, "max")
        res = presolve(m)
        assert res.status is SolveStatus.FEASIBLE
        assert res.fixed == {"x": 1.0}
        lifted = res.lift({"y": 1.0, "z": 0.0})
        assert lifted == {"x": 1.0, "y": 1.0, "z": 0.0}
