"""Unit tests for cutting planes."""

import pytest

from repro.ilp.cuts import (
    clique_cuts,
    conflict_graph,
    knapsack_cover_cuts,
    strengthen_with_cuts,
)
from repro.ilp.expr import LinExpr
from repro.ilp.model import ILPModel


class TestCoverCuts:
    def test_violated_cover_found(self):
        m = ILPModel()
        xs = [m.add_binary(f"x{i}") for i in range(3)]
        m.add_constraint(3 * xs[0] + 3 * xs[1] + 3 * xs[2] <= 5)
        m.set_objective(LinExpr.sum(xs), "max")
        # LP point (0.8, 0.8, 0) violates x0 + x1 <= 1 (cover {0, 1}).
        cuts = knapsack_cover_cuts(m, {"x0": 0.8, "x1": 0.8, "x2": 0.0})
        assert cuts, "expected a violated cover cut"
        cut = cuts[0]
        assert cut.rhs == pytest.approx(1.0)

    def test_satisfied_point_yields_nothing(self):
        m = ILPModel()
        xs = [m.add_binary(f"x{i}") for i in range(3)]
        m.add_constraint(3 * xs[0] + 3 * xs[1] + 3 * xs[2] <= 5)
        m.set_objective(LinExpr.sum(xs), "max")
        assert not knapsack_cover_cuts(m, {"x0": 0.5, "x1": 0.5, "x2": 0.0})

    def test_rows_with_negative_coefs_skipped(self):
        m = ILPModel()
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add_constraint(x - y <= 0)
        m.set_objective(x + 0, "max")
        assert not knapsack_cover_cuts(m, {"x": 1.0, "y": 0.0})


class TestCliqueCuts:
    def _pairwise_model(self, n):
        m = ILPModel()
        xs = [m.add_binary(f"x{i}") for i in range(n)]
        for i in range(n):
            for j in range(i + 1, n):
                m.add_constraint(xs[i] + xs[j] <= 1)
        m.set_objective(LinExpr.sum(xs), "max")
        return m

    def test_conflict_graph_edges(self):
        m = self._pairwise_model(4)
        g = conflict_graph(m)
        assert g.number_of_edges() == 6

    def test_violated_clique_found(self):
        m = self._pairwise_model(3)
        # LP point (0.5, 0.5, 0.5) sums to 1.5 > 1 over the triangle.
        cuts = clique_cuts(m, {"x0": 0.5, "x1": 0.5, "x2": 0.5})
        assert cuts
        assert cuts[0].rhs == pytest.approx(1.0)
        assert len(cuts[0].terms) == 3

    def test_integral_point_yields_nothing(self):
        m = self._pairwise_model(3)
        assert not clique_cuts(m, {"x0": 1.0, "x1": 0.0, "x2": 0.0})


class TestStrengthen:
    def test_strengthen_tightens_lp_bound(self):
        m = ILPModel()
        xs = [m.add_binary(f"x{i}") for i in range(3)]
        for i in range(3):
            for j in range(i + 1, 3):
                m.add_constraint(xs[i] + xs[j] <= 1)
        m.set_objective(LinExpr.sum(xs), "max")
        strengthened, added = strengthen_with_cuts(m)
        assert added >= 1
        assert strengthened.num_constraints > m.num_constraints
        # The clique cut caps the LP relaxation at the true optimum 1.
        from repro.ilp.lp_backend import SimplexBackend

        a_ub, b_ub, a_eq, b_eq = strengthened.constraint_matrices()
        res = SimplexBackend().solve(
            -strengthened.objective_vector(), a_ub, b_ub, a_eq, b_eq,
            strengthened.bounds(),
        )
        assert -res.objective == pytest.approx(1.0, abs=1e-6)
