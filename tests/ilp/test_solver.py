"""Unit tests for the solve() facade, Solution and SolveStatus."""

import pytest

from repro.errors import ILPError, ModelError
from repro.ilp.expr import LinExpr
from repro.ilp.model import ILPModel
from repro.ilp.solution import Solution, SolveStats
from repro.ilp.solver import AUTO_HEURISTIC_VARS, solve
from repro.ilp.status import SolveStatus


@pytest.fixture
def model():
    m = ILPModel()
    x = m.add_binary("x")
    y = m.add_binary("y")
    m.add_constraint(x + y >= 1)
    m.set_objective(x + 2 * y, "max")
    return m


class TestFacade:
    def test_exact(self, model):
        sol = solve(model, method="exact")
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(3.0)

    def test_heuristic(self, model):
        sol = solve(model, method="heuristic", seed=1)
        assert sol.status is SolveStatus.FEASIBLE
        assert model.is_feasible(sol.values)

    def test_auto_small_is_exact(self, model):
        sol = solve(model, method="auto")
        assert sol.status is SolveStatus.OPTIMAL

    def test_auto_threshold_constant(self):
        assert AUTO_HEURISTIC_VARS >= 1000

    def test_unknown_method(self, model):
        with pytest.raises(ModelError):
            solve(model, method="magic")

    def test_options_forwarded(self, model):
        sol = solve(model, method="exact", node_limit=5)
        assert sol.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


class TestSolutionObject:
    def test_value_accessors(self, model):
        sol = solve(model)
        assert sol.value("y") == pytest.approx(1.0)
        assert sol.rounded(model.var("y")) == 1

    def test_no_solution_raises(self):
        sol = Solution(SolveStatus.INFEASIBLE)
        with pytest.raises(ILPError):
            sol.value("x")

    def test_unknown_variable_raises(self, model):
        sol = solve(model)
        with pytest.raises(ILPError):
            sol.value("ghost")

    def test_binary_support(self, model):
        sol = solve(model)
        assert "y" in sol.binary_support()

    def test_stats_merge(self):
        a = SolveStats(nodes=2, lp_solves=3)
        b = SolveStats(nodes=5, lp_solves=1, cuts_added=2)
        a.merge(b)
        assert a.nodes == 7 and a.lp_solves == 4 and a.cuts_added == 2


class TestStatusProperties:
    def test_has_solution(self):
        assert SolveStatus.OPTIMAL.has_solution
        assert SolveStatus.FEASIBLE.has_solution
        assert not SolveStatus.INFEASIBLE.has_solution
        assert not SolveStatus.NODE_LIMIT.has_solution

    def test_is_proven(self):
        assert SolveStatus.OPTIMAL.is_proven
        assert SolveStatus.INFEASIBLE.is_proven
        assert not SolveStatus.FEASIBLE.is_proven
