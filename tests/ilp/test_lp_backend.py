"""Unit tests for the LP backend abstraction."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ilp.lp_backend import (
    ScipyBackend,
    SimplexBackend,
    SIMPLEX_SIZE_LIMIT,
    default_backend,
)
from repro.ilp.status import SolveStatus


@pytest.fixture(params=[SimplexBackend(), ScipyBackend()], ids=["simplex", "scipy"])
def backend(request):
    return request.param


class TestBackendsUniformly:
    def test_simple_lp(self, backend):
        res = backend.solve(
            np.array([-1.0, -1.0]),
            np.array([[1.0, 2.0], [3.0, 1.0]]),
            np.array([4.0, 6.0]),
            None,
            None,
            [(0, 10), (0, 10)],
        )
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(-2.8)

    def test_sparse_input(self, backend):
        a = sp.csr_matrix(np.array([[1.0, 1.0]]))
        res = backend.solve(
            np.array([1.0, 1.0]), a, np.array([1.0]), None, None, [(0, 1), (0, 1)]
        )
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(0.0)

    def test_infeasible(self, backend):
        res = backend.solve(
            np.array([1.0]),
            np.array([[1.0], [-1.0]]),
            np.array([0.0, -2.0]),  # x <= 0 and x >= 2
            None,
            None,
            [(0, 5)],
        )
        assert res.status is SolveStatus.INFEASIBLE

    def test_empty_inequalities(self, backend):
        res = backend.solve(
            np.array([1.0]),
            sp.csr_matrix((0, 1)),
            np.zeros(0),
            None,
            None,
            [(2, 5)],
        )
        assert res.status is SolveStatus.OPTIMAL
        assert res.objective == pytest.approx(2.0)


class TestDefaultBackend:
    def test_small_uses_simplex(self):
        assert default_backend(10, 10).name == "simplex"

    def test_large_uses_scipy(self):
        assert default_backend(1000, SIMPLEX_SIZE_LIMIT).name == "scipy-highs"
