"""Unit tests for the iterative-improvement heuristic ILP solver."""

import pytest

from repro.errors import ModelError
from repro.ilp.expr import LinExpr
from repro.ilp.heuristic import HeuristicILPSolver
from repro.ilp.model import ILPModel
from repro.ilp.status import SolveStatus
from repro.sat.encoding import encode_sat


class TestBasics:
    def test_finds_feasible(self):
        m = ILPModel()
        xs = [m.add_binary(f"x{i}") for i in range(6)]
        m.add_constraint(LinExpr.sum(xs) >= 3)
        m.add_constraint(LinExpr.sum(xs) <= 4)
        m.set_objective(LinExpr.sum(xs), "max")
        sol = HeuristicILPSolver(seed=1).solve(m)
        assert sol.status is SolveStatus.FEASIBLE
        assert m.is_feasible(sol.values)

    def test_objective_improvement(self):
        # Feasible region: any point; heuristic should climb to all-ones.
        m = ILPModel()
        xs = [m.add_binary(f"x{i}") for i in range(5)]
        m.add_constraint(LinExpr.sum(xs) >= 0)
        m.set_objective(LinExpr.sum(xs), "max")
        sol = HeuristicILPSolver(seed=2, max_restarts=3).solve(m)
        assert sol.objective == pytest.approx(5.0)

    def test_rejects_non_binary(self):
        m = ILPModel()
        m.add_integer("k", 0, 9)
        m.set_objective(m.var("k") + 0, "max")
        with pytest.raises(ModelError):
            HeuristicILPSolver().solve(m)

    def test_gives_up_on_infeasible(self):
        m = ILPModel()
        x = m.add_binary("x")
        m.add_constraint(x + 0 >= 1)
        m.add_constraint(x + 0 <= 0)
        m.set_objective(x + 0, "max")
        sol = HeuristicILPSolver(max_flips=300, max_restarts=2, seed=0).solve(m)
        assert sol.status is SolveStatus.NODE_LIMIT

    def test_deterministic_given_seed(self):
        m = ILPModel()
        xs = [m.add_binary(f"x{i}") for i in range(8)]
        m.add_constraint(LinExpr.sum(xs) >= 4)
        m.set_objective(LinExpr.sum(xs), "min")
        a = HeuristicILPSolver(seed=7).solve(m)
        b = HeuristicILPSolver(seed=7).solve(m)
        assert a.values == b.values


class TestOnSATEncodings:
    def test_solves_planted_sat(self, planted_medium):
        f, p = planted_medium
        enc = encode_sat(f)
        sol = HeuristicILPSolver(
            seed=3, max_flips=50_000, max_restarts=3, stop_on_first_feasible=True
        ).solve(enc.model)
        assert sol.status is SolveStatus.FEASIBLE
        a = enc.decode(sol, default=False)
        assert f.is_satisfied(a)

    def test_warm_start_speeds_convergence(self, planted_medium):
        f, p = planted_medium
        enc = encode_sat(f)
        warm = enc.values_from_assignment(p)
        sol = HeuristicILPSolver(seed=3, stop_on_first_feasible=True).solve(
            enc.model, warm_start=warm
        )
        assert sol.status is SolveStatus.FEASIBLE
        # Warm-started from a satisfying assignment: no repair moves needed.
        assert sol.stats.heuristic_moves <= enc.model.num_vars
