"""Unit tests for decision variables."""

import pytest

from repro.errors import ModelError
from repro.ilp.constraint import Constraint, Sense
from repro.ilp.expr import LinExpr
from repro.ilp.variable import VarType, Variable


class TestConstruction:
    def test_defaults_are_binary(self):
        v = Variable("x")
        assert v.vartype is VarType.BINARY
        assert (v.lb, v.ub) == (0.0, 1.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            Variable("")

    def test_non_string_name_rejected(self):
        with pytest.raises(ModelError):
            Variable(7)  # type: ignore[arg-type]

    def test_nan_bounds_rejected(self):
        with pytest.raises(ModelError):
            Variable("x", VarType.CONTINUOUS, float("nan"), 1.0)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ModelError):
            Variable("x", VarType.CONTINUOUS, 2.0, 1.0)

    def test_is_integer(self):
        assert Variable("x", VarType.BINARY).is_integer
        assert Variable("y", VarType.INTEGER, 0, 9).is_integer
        assert not Variable("z", VarType.CONTINUOUS, 0, 9).is_integer


class TestArithmetic:
    def test_add_and_scale(self):
        x, y = Variable("x"), Variable("y")
        e = 2 * x + y - 1
        assert isinstance(e, LinExpr)
        assert e.terms == {"x": 2.0, "y": 1.0}
        assert e.constant == -1.0

    def test_rsub(self):
        x = Variable("x")
        e = 3 - x
        assert e.terms == {"x": -1.0} and e.constant == 3.0

    def test_negation_and_division(self):
        x = Variable("x")
        assert (-x).terms == {"x": -1.0}
        assert (x / 4).terms == {"x": 0.25}

    def test_comparisons_build_constraints(self):
        x, y = Variable("x"), Variable("y")
        le = x <= 1
        ge = x + y >= 1
        assert isinstance(le, Constraint) and le.sense is Sense.LE
        assert isinstance(ge, Constraint) and ge.sense is Sense.GE

    def test_identity_hashable(self):
        x, x2 = Variable("x"), Variable("x")
        s = {x, x2}
        assert len(s) == 2  # identity semantics, not name equality
