"""Unit tests for linear expressions."""

import pytest

from repro.errors import ModelError
from repro.ilp.constraint import Constraint, Sense
from repro.ilp.expr import LinExpr
from repro.ilp.model import ILPModel


@pytest.fixture
def xy():
    m = ILPModel()
    return m.add_binary("x"), m.add_binary("y")


class TestArithmetic:
    def test_add_variables(self, xy):
        x, y = xy
        e = x + y
        assert e.terms == {"x": 1.0, "y": 1.0}

    def test_scalar_multiply(self, xy):
        x, _ = xy
        e = 3 * x
        assert e.terms == {"x": 3.0}
        assert (x * 3).terms == {"x": 3.0}

    def test_subtract_cancels(self, xy):
        x, y = xy
        e = (x + y) - y
        assert e.terms == {"x": 1.0}

    def test_constants_fold(self, xy):
        x, _ = xy
        e = x + 2 - 5
        assert e.constant == -3.0

    def test_negation(self, xy):
        x, y = xy
        e = -(x - y + 1)
        assert e.terms == {"x": -1.0, "y": 1.0} and e.constant == -1.0

    def test_division(self, xy):
        x, _ = xy
        assert ((2 * x) / 2).terms == {"x": 1.0}

    def test_divide_by_zero(self, xy):
        x, _ = xy
        with pytest.raises(ModelError):
            x / 0

    def test_nonlinear_rejected(self, xy):
        x, y = xy
        with pytest.raises(ModelError):
            x.to_expr() * y.to_expr()  # type: ignore[operator]

    def test_rsub(self, xy):
        x, _ = xy
        e = 5 - x
        assert e.terms == {"x": -1.0} and e.constant == 5.0

    def test_sum_helper(self, xy):
        x, y = xy
        e = LinExpr.sum([x, y, 2 * x, 3])
        assert e.terms == {"x": 3.0, "y": 1.0} and e.constant == 3.0

    def test_zero_coefficient_dropped(self, xy):
        x, _ = xy
        e = x - x
        assert e.terms == {}
        assert e.is_constant()


class TestComparisons:
    def test_le_builds_constraint(self, xy):
        x, y = xy
        con = x + y <= 1
        assert isinstance(con, Constraint)
        assert con.sense is Sense.LE and con.rhs == 1.0

    def test_ge(self, xy):
        x, y = xy
        con = x + y >= 1
        assert con.sense is Sense.GE

    def test_eq(self, xy):
        x, y = xy
        con = (x + y).__eq__(1)
        assert con.sense is Sense.EQ

    def test_constant_folded_to_rhs(self, xy):
        x, _ = xy
        con = x + 3 <= 5
        assert con.rhs == 2.0 and con.terms == {"x": 1.0}

    def test_variables_on_both_sides(self, xy):
        x, y = xy
        con = x <= y
        assert con.terms == {"x": 1.0, "y": -1.0} and con.rhs == 0.0

    def test_constraint_with_no_variables_rejected(self):
        with pytest.raises(ModelError):
            LinExpr(constant=1.0) <= 2


class TestEvaluation:
    def test_evaluate(self, xy):
        x, y = xy
        e = 2 * x + y - 1
        assert e.evaluate({"x": 1.0, "y": 0.0}) == 1.0

    def test_missing_value(self, xy):
        x, _ = xy
        with pytest.raises(ModelError):
            (x + 0).evaluate({})

    def test_variables_sorted(self, xy):
        x, y = xy
        assert (y + x).variables() == ("x", "y")

    def test_coerce_rejects_junk(self):
        with pytest.raises(ModelError):
            LinExpr.coerce("x")
