"""Unit tests for linear constraints."""

import pytest

from repro.errors import ModelError
from repro.ilp.constraint import Constraint, Sense
from repro.ilp.expr import LinExpr


class TestSense:
    def test_holds_le(self):
        assert Sense.LE.holds(1.0, 2.0)
        assert Sense.LE.holds(2.0, 2.0)
        assert not Sense.LE.holds(2.1, 2.0)

    def test_holds_ge(self):
        assert Sense.GE.holds(3.0, 2.0)
        assert not Sense.GE.holds(1.9, 2.0)

    def test_holds_eq_with_tolerance(self):
        assert Sense.EQ.holds(2.0 + 1e-12, 2.0)
        assert not Sense.EQ.holds(2.1, 2.0)


class TestNormalForm:
    def test_constants_folded(self):
        con = Constraint.from_sides(LinExpr({"x": 1.0}, 3.0), 5.0, Sense.LE)
        assert con.terms == {"x": 1.0} and con.rhs == 2.0

    def test_variables_collected_from_both_sides(self):
        lhs = LinExpr({"x": 1.0})
        rhs = LinExpr({"y": 2.0}, 1.0)
        con = Constraint.from_sides(lhs, rhs, Sense.GE)
        assert con.terms == {"x": 1.0, "y": -2.0}
        assert con.rhs == 1.0

    def test_no_variable_rejected(self):
        with pytest.raises(ModelError):
            Constraint.from_sides(LinExpr(constant=1.0), 2.0, Sense.LE)


class TestEvaluation:
    @pytest.fixture
    def con(self):
        return Constraint({"x": 2.0, "y": -1.0}, Sense.LE, 3.0)

    def test_evaluate(self, con):
        assert con.evaluate({"x": 2.0, "y": 1.0}) == 3.0

    def test_is_satisfied(self, con):
        assert con.is_satisfied({"x": 1.0, "y": 0.0})
        assert not con.is_satisfied({"x": 3.0, "y": 0.0})

    def test_violation_le(self, con):
        assert con.violation({"x": 3.0, "y": 0.0}) == pytest.approx(3.0)
        assert con.violation({"x": 0.0, "y": 0.0}) == 0.0

    def test_violation_ge(self):
        con = Constraint({"x": 1.0}, Sense.GE, 2.0)
        assert con.violation({"x": 0.5}) == pytest.approx(1.5)

    def test_violation_eq(self):
        con = Constraint({"x": 1.0}, Sense.EQ, 2.0)
        assert con.violation({"x": 3.5}) == pytest.approx(1.5)
        assert con.violation({"x": 0.5}) == pytest.approx(1.5)

    def test_variables_sorted(self, con):
        assert con.variables() == ("x", "y")

    def test_repr_contains_sense(self, con):
        assert "<=" in repr(con)
