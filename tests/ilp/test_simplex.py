"""Unit tests for the from-scratch two-phase simplex LP solver."""

import numpy as np
import pytest

from repro.ilp.simplex import simplex_solve
from repro.ilp.status import SolveStatus


class TestBasicLPs:
    def test_textbook_max(self):
        # max x + y st x + 2y <= 4, 3x + y <= 6 -> (1.6, 1.2), obj 2.8
        r = simplex_solve(
            [1, 1], [[1, 2], [3, 1]], [4, 6], bounds=[(0, 10), (0, 10)], maximize=True
        )
        assert r.status is SolveStatus.OPTIMAL
        np.testing.assert_allclose(r.x, [1.6, 1.2], atol=1e-8)
        assert r.objective == pytest.approx(2.8)

    def test_minimization(self):
        # min x + y st x + y >= 2 (as -x - y <= -2)
        r = simplex_solve([1, 1], [[-1, -1]], [-2], bounds=[(0, 5), (0, 5)])
        assert r.status is SolveStatus.OPTIMAL
        assert r.objective == pytest.approx(2.0)

    def test_equality_constraint(self):
        r = simplex_solve(
            [1, 2], None, None, [[1, 1]], [3], bounds=[(0, 5), (0, 5)]
        )
        assert r.status is SolveStatus.OPTIMAL
        assert r.objective == pytest.approx(3.0)  # min -> x=3, y=0

    def test_lower_bound_shift(self):
        # min x with x >= 2 via bounds
        r = simplex_solve([1.0], None, None, None, None, bounds=[(2, 10)])
        assert r.status is SolveStatus.OPTIMAL
        assert r.x[0] == pytest.approx(2.0)

    def test_negative_rhs_normalization(self):
        # x <= -1 with x in [-5, 5]: feasible, optimum at boundary.
        r = simplex_solve([1.0], [[1.0]], [-1.0], bounds=[(-5, 5)])
        assert r.status is SolveStatus.OPTIMAL
        assert r.x[0] == pytest.approx(-5.0)


class TestDegenerateOutcomes:
    def test_infeasible(self):
        r = simplex_solve([1, 1], [[1, 1], [-1, -1]], [1, -3], bounds=[(0, 5)] * 2)
        assert r.status is SolveStatus.INFEASIBLE

    def test_infeasible_bounds(self):
        r = simplex_solve([1.0], bounds=[(3, 1)])
        assert r.status is SolveStatus.INFEASIBLE

    def test_boxed_problems_never_unbounded(self):
        # All-variable boxes mean maximization saturates at upper bounds.
        r = simplex_solve([1, 1], None, None, bounds=[(0, 7), (0, 9)], maximize=True)
        assert r.status is SolveStatus.OPTIMAL
        assert r.objective == pytest.approx(16.0)

    def test_empty_constraint_systems(self):
        r = simplex_solve([2.0], bounds=[(0, 3)], maximize=True)
        assert r.objective == pytest.approx(6.0)


class TestCrossCheckAgainstScipy:
    """Random LPs: our simplex must agree with HiGHS."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_lp_agreement(self, seed):
        from scipy.optimize import linprog

        rng = np.random.default_rng(seed)
        n, m = 6, 8
        c = rng.normal(size=n)
        a = rng.normal(size=(m, n))
        b = rng.uniform(0.5, 3.0, size=m)
        bounds = [(0.0, 1.0)] * n
        ours = simplex_solve(c, a, b, bounds=bounds)
        ref = linprog(c, A_ub=a, b_ub=b, bounds=bounds, method="highs")
        assert ours.status is SolveStatus.OPTIMAL
        assert ref.status == 0
        assert ours.objective == pytest.approx(ref.fun, abs=1e-6)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_lp_with_equalities(self, seed):
        from scipy.optimize import linprog

        rng = np.random.default_rng(100 + seed)
        n = 5
        c = rng.normal(size=n)
        a_eq = rng.normal(size=(2, n))
        x_feas = rng.uniform(0.1, 0.9, size=n)
        b_eq = a_eq @ x_feas  # guarantees feasibility
        bounds = [(0.0, 1.0)] * n
        ours = simplex_solve(c, None, None, a_eq, b_eq, bounds=bounds)
        ref = linprog(c, A_eq=a_eq, b_eq=b_eq, bounds=bounds, method="highs")
        assert ours.status is SolveStatus.OPTIMAL and ref.status == 0
        assert ours.objective == pytest.approx(ref.fun, abs=1e-6)
