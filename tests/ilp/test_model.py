"""Unit tests for the ILP model container."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ilp.constraint import Sense
from repro.ilp.model import ILPModel
from repro.ilp.variable import VarType


@pytest.fixture
def model():
    m = ILPModel("t")
    x = m.add_binary("x")
    y = m.add_binary("y")
    z = m.add_continuous("z", 0, 4)
    m.add_constraint(x + y <= 1, name="pack")
    m.add_constraint(x + z >= 1)
    m.add_constraint((y + z).__eq__(2), name="bal")
    m.set_objective(x + 2 * y + 0.5 * z, "max")
    return m


class TestVariables:
    def test_duplicate_name_rejected(self, model):
        with pytest.raises(ModelError):
            model.add_binary("x")

    def test_lookup(self, model):
        assert model.var("x").vartype is VarType.BINARY
        with pytest.raises(ModelError):
            model.var("nope")

    def test_bad_bounds(self):
        m = ILPModel()
        with pytest.raises(ModelError):
            m.add_var("w", VarType.CONTINUOUS, 3, 1)

    def test_binary_bounds_enforced(self):
        m = ILPModel()
        with pytest.raises(ModelError):
            m.add_var("w", VarType.BINARY, 0, 2)

    def test_add_binaries(self):
        m = ILPModel()
        vs = m.add_binaries(["a", "b", "c"])
        assert [v.index for v in vs] == [0, 1, 2]

    def test_integer_mask(self, model):
        assert model.integer_mask().tolist() == [True, True, False]


class TestConstraints:
    def test_unknown_variable_rejected(self, model):
        from repro.ilp.constraint import Constraint

        with pytest.raises(ModelError):
            model.add_constraint(Constraint({"ghost": 1.0}, Sense.LE, 1.0))

    def test_auto_naming(self, model):
        names = [c.name for c in model.constraints]
        assert names[0] == "pack" and names[2] == "bal"

    def test_matrices_shapes(self, model):
        a_ub, b_ub, a_eq, b_eq = model.constraint_matrices()
        assert a_ub.shape == (2, 3)   # LE row + flipped GE row
        assert a_eq.shape == (1, 3)
        assert b_ub.shape == (2,) and b_eq.shape == (1,)

    def test_ge_rows_negated(self, model):
        a_ub, b_ub, _, _ = model.constraint_matrices()
        # second ub row is -(x + z) <= -1
        row = a_ub.toarray()[1]
        assert row[model.var("x").index] == -1.0
        assert b_ub[1] == -1.0


class TestObjective:
    def test_vector(self, model):
        np.testing.assert_allclose(model.objective_vector(), [1.0, 2.0, 0.5])

    def test_bad_sense(self, model):
        with pytest.raises(ModelError):
            model.set_objective(model.var("x") + 0, "upward")

    def test_unknown_objective_variable(self, model):
        from repro.ilp.expr import LinExpr

        with pytest.raises(ModelError):
            model.set_objective(LinExpr({"ghost": 1.0}), "max")

    def test_objective_value(self, model):
        assert model.objective_value({"x": 1, "y": 0, "z": 2}) == 2.0


class TestFeasibility:
    def test_feasible_point(self, model):
        assert model.is_feasible({"x": 0, "y": 1, "z": 1})

    def test_violated_constraints(self, model):
        bad = model.violated_constraints({"x": 1, "y": 1, "z": 1})
        assert any(c.name == "pack" for c in bad)

    def test_bounds_checked(self, model):
        assert not model.is_feasible({"x": 0, "y": 1, "z": 9})

    def test_integrality_checked(self, model):
        assert not model.is_feasible({"x": 0.5, "y": 0.5, "z": 1.5})

    def test_missing_value_infeasible(self, model):
        assert not model.is_feasible({"x": 0, "y": 1})


class TestCopy:
    def test_copy_independent(self, model):
        c = model.copy()
        c.add_binary("w")
        assert model.num_vars == 3 and c.num_vars == 4
        assert c.sense == model.sense
        assert c.num_constraints == model.num_constraints
