"""Unit tests for the exact branch-and-bound solver."""

import itertools
import random

import pytest

from repro.ilp.branch_and_bound import BranchAndBoundSolver
from repro.ilp.expr import LinExpr
from repro.ilp.lp_backend import ScipyBackend, SimplexBackend
from repro.ilp.model import ILPModel
from repro.ilp.status import SolveStatus


def knapsack_model(weights, values, capacity):
    m = ILPModel("knapsack")
    xs = [m.add_binary(f"x{i}") for i in range(len(weights))]
    m.add_constraint(
        LinExpr.sum(w * x for w, x in zip(weights, xs)) <= capacity
    )
    m.set_objective(LinExpr.sum(v * x for v, x in zip(values, xs)), "max")
    return m


def brute_knapsack(weights, values, capacity):
    best = 0
    for bits in itertools.product([0, 1], repeat=len(weights)):
        if sum(w * b for w, b in zip(weights, bits)) <= capacity:
            best = max(best, sum(v * b for v, b in zip(values, bits)))
    return best


class TestExactness:
    @pytest.mark.parametrize("seed", range(10))
    def test_knapsack_matches_brute_force(self, seed):
        rng = random.Random(seed)
        n = 9
        w = [rng.randint(1, 12) for _ in range(n)]
        v = [rng.randint(1, 12) for _ in range(n)]
        cap = rng.randint(6, 50)
        sol = BranchAndBoundSolver().solve(knapsack_model(w, v, cap))
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(brute_knapsack(w, v, cap))

    @pytest.mark.parametrize("backend", [SimplexBackend(), ScipyBackend()])
    def test_backends_agree(self, backend):
        m = knapsack_model([3, 5, 7, 4], [4, 6, 9, 5], 11)
        sol = BranchAndBoundSolver(backend=backend).solve(m)
        assert sol.status is SolveStatus.OPTIMAL
        # Optimum: items of weight 7 and 4 (values 9 + 5).
        assert sol.objective == pytest.approx(14.0)

    def test_minimization(self):
        m = ILPModel()
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add_constraint(x + y >= 1)
        m.set_objective(3 * x + 2 * y, "min")
        sol = BranchAndBoundSolver().solve(m)
        assert sol.objective == pytest.approx(2.0)
        assert sol.rounded("y") == 1


class TestStatuses:
    def test_infeasible(self):
        m = ILPModel()
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add_constraint(x + y >= 3)
        m.set_objective(x + 0, "max")
        assert BranchAndBoundSolver().solve(m).status is SolveStatus.INFEASIBLE

    def test_integer_infeasible_lp_feasible(self):
        # 2x == 1 has LP solution x=0.5, no integer one.
        m = ILPModel()
        x = m.add_binary("x")
        m.add_constraint((2 * x).__eq__(1.0))
        m.set_objective(x + 0, "max")
        assert BranchAndBoundSolver().solve(m).status is SolveStatus.INFEASIBLE

    def test_empty_model(self):
        m = ILPModel()
        sol = BranchAndBoundSolver().solve(m)
        assert sol.status is SolveStatus.OPTIMAL and sol.objective == 0.0

    def test_node_limit_respected(self):
        rng = random.Random(5)
        n = 14
        w = [rng.randint(5, 9) for _ in range(n)]
        v = [rng.randint(5, 9) for _ in range(n)]
        m = knapsack_model(w, v, sum(w) // 2)
        sol = BranchAndBoundSolver(node_limit=1, use_presolve=False).solve(m)
        # One node: either a lucky proven optimum or a limit status.
        assert sol.status in (
            SolveStatus.OPTIMAL,
            SolveStatus.FEASIBLE,
            SolveStatus.NODE_LIMIT,
        )


class TestWarmStart:
    def test_feasible_warm_start_becomes_incumbent(self):
        m = knapsack_model([2, 3, 4], [3, 4, 5], 6)
        warm = {"x0": 1.0, "x1": 0.0, "x2": 1.0}  # weight 6, value 8: optimal
        sol = BranchAndBoundSolver().solve(m, warm_start=warm)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(8.0)

    def test_infeasible_warm_start_ignored(self):
        m = knapsack_model([2, 3, 4], [3, 4, 5], 6)
        warm = {"x0": 1.0, "x1": 1.0, "x2": 1.0}  # weight 9 > 6
        sol = BranchAndBoundSolver().solve(m, warm_start=warm)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(8.0)


class TestMixedInteger:
    def test_continuous_variables_stay_fractional(self):
        m = ILPModel()
        x = m.add_binary("x")
        z = m.add_continuous("z", 0, 10)
        m.add_constraint(2 * x + z <= 3.5)
        m.set_objective(x + z, "max")
        sol = BranchAndBoundSolver().solve(m)
        assert sol.status is SolveStatus.OPTIMAL
        # x=0, z=3.5 beats x=1, z=1.5.
        assert sol.objective == pytest.approx(3.5)
        assert sol.value("z") == pytest.approx(3.5)

    def test_general_integer(self):
        m = ILPModel()
        k = m.add_integer("k", 0, 10)
        m.add_constraint(3 * k <= 14)
        m.set_objective(k + 0, "max")
        sol = BranchAndBoundSolver().solve(m)
        assert sol.rounded("k") == 4
