"""Workload properties: generator determinism, replay fidelity.

Two invariants the whole subsystem hangs on:

1. **seeded determinism** — the same (scenario, seed, tenants, changes)
   must produce a *wire-identical* request stream: every event
   serializes to the same (op, header, payload) triple, payload bytes
   included.  Traces, replay verification, and benchmark trajectories
   all assume it.
2. **record → replay fidelity** — executing a stream, recording it, and
   replaying the trace against a fresh service must reproduce the exact
   fingerprint sequence and verdict sequence (and the models, which the
   replay verifier also checks byte-for-byte).
"""

import pytest

from repro.engine.config import EngineConfig
from repro.service.service import SolverService
from repro.workload.runner import (
    inprocess_factory,
    replay_trace,
    run_events,
    write_trace_from_run,
)
from repro.workload.scenarios import SCENARIOS, build_scenario
from repro.workload.trace import event_to_wire, read_trace


@pytest.mark.parametrize("name", sorted(SCENARIOS))
@pytest.mark.parametrize("seed", [0, 7, 123])
def test_same_seed_means_wire_identical_stream(name, seed):
    first = build_scenario(name, seed=seed, tenants=3, changes=5)
    second = build_scenario(name, seed=seed, tenants=3, changes=5)
    assert len(first) == len(second)
    for a, b in zip(first, second):
        assert event_to_wire(a) == event_to_wire(b)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_distinct_seeds_diverge(name):
    import json

    def digest(seed):
        return tuple(
            (op, json.dumps(header, sort_keys=True), payload)
            for op, header, payload in map(
                event_to_wire, build_scenario(name, seed=seed, tenants=2, changes=4)
            )
        )

    assert len({digest(s) for s in (0, 1, 2)}) == 3


@pytest.mark.parametrize(
    "name", ["sat-tightening", "sat-loosening", "coloring-churn", "tenant-churn"]
)
def test_record_replay_reproduces_fingerprints_and_verdicts(name, tmp_path):
    events = build_scenario(name, seed=11, tenants=2, changes=4)
    with SolverService(EngineConfig(jobs=1)) as service:
        results, _ = run_events(events, inprocess_factory(service))
    assert all(r.ok for r in results)
    recorded_sequence = [
        (resp.status, resp.fingerprint)
        for result in results
        for resp in result.responses
    ]

    path = tmp_path / "trace.jsonl"
    write_trace_from_run(str(path), events, results, meta={"scenario": name})
    trace = read_trace(str(path))

    with SolverService(EngineConfig(jobs=1)) as fresh:
        report = replay_trace(trace, inprocess_factory(fresh))
    assert report.errors == 0, report.error_detail
    assert report.mismatches == 0, report.mismatch_detail

    # Belt and braces: re-execute once more by hand and compare the raw
    # (verdict, fingerprint) sequence, independent of the verifier.
    with SolverService(EngineConfig(jobs=1)) as again:
        rerun, _ = run_events(trace.events(), inprocess_factory(again))
    rerun_sequence = [
        (resp.status, resp.fingerprint)
        for result in rerun
        for resp in result.responses
    ]
    assert rerun_sequence == recorded_sequence
