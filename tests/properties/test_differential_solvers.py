"""Differential fuzzing: five independent solvers must agree.

The repo's cheapest correctness oracle is its own solver diversity: CDCL,
DPLL, brute force, and the paper's exact ILP route are four *independent*
complete deciders, and WalkSAT a fifth incomplete witness-finder.  This
harness fuzzes seeded CNF instances from :mod:`repro.cnf.generators` and
:mod:`repro.cnf.families` and hard-fuses their verdicts (in the spirit of
hard-decision fusion across independent deciders): any definitive
disagreement, or any returned "model" that does not satisfy the formula,
is a bug in at least one solver.

On failure the offending instance is shrunk (greedy clause removal while
the disagreement persists) and printed as DIMACS so the repro case can be
pasted straight into ``repro solve``.

Instance count: ``REPRO_FUZZ_INSTANCES`` (default 200 — the CI fast
lane).  The ``slow``-marked nightly variant runs a deeper sweep with a
different seed stream; enable it with ``REPRO_FUZZ_NIGHTLY=1`` and
``pytest -m slow``.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.cnf.assignment import Assignment
from repro.cnf.dimacs import to_dimacs
from repro.cnf.families import f_instance, ii_instance, jnh_instance, parity_instance
from repro.cnf.formula import CNFFormula
from repro.cnf.packed import PackedCNF
from repro.cnf.generators import (
    pigeonhole,
    random_ksat,
    random_mixed_width,
    random_planted_ksat,
    unsat_parity_pair,
)
from repro.engine.adapters import (
    BruteForceAdapter,
    CDCLAdapter,
    DPLLAdapter,
    ExactILPAdapter,
    WalkSATAdapter,
)
from repro.engine.protocol import SAT, UNSAT

#: The five solvers under differential test.  WalkSAT runs with a small
#: budget: on UNSAT instances it can only ever answer unknown, and the
#: harness needs throughput, not witnesses.
SOLVERS = (
    CDCLAdapter(),
    DPLLAdapter(),
    BruteForceAdapter(),
    ExactILPAdapter(),
    WalkSATAdapter(max_flips=2_000, max_restarts=2),
)

_COMPLETE = tuple(s.name for s in SOLVERS if s.complete)


def _instances(count: int, stream: int):
    """Yield (name, formula, seed) triples covering every generator family.

    The yielded seed both generated the instance and seeds every solver
    on it, so the (name, seed) pair printed on failure reproduces the
    case exactly.  Sizes stay at or below the brute-force limit (16
    variables) so all five solvers can participate in every verdict.
    """
    families = (parity_instance, ii_instance, jnh_instance, f_instance)
    for i in range(count):
        seed = stream * 1_000_003 + i
        rng = random.Random(seed)
        kind = i % 8
        if kind == 0:
            f, _ = random_planted_ksat(rng.randint(4, 12), rng.randint(8, 40), rng=rng)
            yield f"planted-{i}", f, seed
        elif kind == 1:
            # Near the phase transition: a healthy SAT/UNSAT mix.
            n = rng.randint(3, 10)
            yield f"threshold-{i}", random_ksat(n, int(n * 4.3), k=min(3, n), rng=rng), seed
        elif kind == 2:
            # Over-constrained: mostly UNSAT.
            n = rng.randint(3, 8)
            yield f"dense-{i}", random_ksat(n, n * 7, k=min(3, n), rng=rng), seed
        elif kind == 3:
            widths = {1: 0.1, 2: 0.4, 3: 0.4, 4: 0.1}
            n = rng.randint(4, 12)
            yield f"mixed-{i}", random_mixed_width(n, rng.randint(6, 30), widths, rng=rng), seed
        elif kind == 4:
            maker = families[(i // 8) % len(families)]
            inst = maker(rng.randint(6, 14), rng.randint(12, 40), seed=rng)
            yield f"{inst.family}-{i}", inst.formula, seed
        elif kind == 5:
            yield f"php-{i}", pigeonhole(rng.randint(2, 3)), seed
        elif kind == 6:
            yield f"parity-unsat-{i}", unsat_parity_pair(rng.randint(2, 4), rng=rng), seed
        else:
            # Unit-heavy shallow instances stress the propagation paths,
            # with inactive padding variables in the DIMACS header.
            n = rng.randint(2, 8)
            f = random_ksat(n, rng.randint(2, 3 * n), k=min(2, n), rng=rng)
            f.add_variable()
            yield f"units-{i}", f, seed


def _disagreement(formula: CNFFormula, seed: int) -> str | None:
    """One line describing a solver inconsistency, or None if all agree."""
    verdicts: dict[str, str] = {}
    for solver in SOLVERS:
        out = solver.solve(formula, seed=seed, deadline=30.0)
        verdicts[solver.name] = out.status
        if out.status == SAT:
            # Re-verify independently of the adapters' own check: a model
            # claim that does not satisfy the formula is itself a bug.
            if out.assignment is None or not formula.is_satisfied(out.assignment):
                return f"{solver.name} claimed sat with a non-model"
        if out.status == UNSAT and not solver.complete:
            if formula.num_clauses and not formula.has_empty_clause():
                return f"incomplete {solver.name} claimed unsat"
    definitive = {verdicts[name] for name in _COMPLETE if verdicts[name] != "unknown"}
    if len(definitive) > 1:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(verdicts.items()))
        return f"complete solvers disagree: {pairs}"
    if not definitive:
        return "no complete solver produced a verdict"
    if verdicts["walksat"] == SAT and UNSAT in definitive:
        return "walksat found a model for an instance proven unsat"
    return None


def _shrink(formula: CNFFormula, seed: int) -> CNFFormula:
    """Greedy clause removal preserving the disagreement."""
    current = formula
    improved = True
    while improved:
        improved = False
        for idx in reversed(range(current.num_clauses)):
            candidate = current.copy()
            candidate.remove_clause_at(idx)
            if _disagreement(candidate, seed) is not None:
                current = candidate
                improved = True
    return current


def _run_sweep(count: int, stream: int) -> None:
    for name, formula, seed in _instances(count, stream):
        problem = _disagreement(formula, seed)
        if problem is not None:
            shrunk = _shrink(formula, seed)
            pytest.fail(
                f"solver disagreement on {name} (seed={seed}): {problem}\n"
                f"shrunk repro ({shrunk.num_vars} vars, "
                f"{shrunk.num_clauses} clauses):\n{to_dimacs(shrunk)}"
            )


def test_differential_cross_solver_agreement():
    """All five solvers agree on every seeded instance (CI fast lane)."""
    count = int(os.environ.get("REPRO_FUZZ_INSTANCES", "200"))
    _run_sweep(count, stream=1)


#: The packed-capable solvers fuzzed for object/packed path equality.
_PACKED_SOLVERS = tuple(
    s for s in SOLVERS if s.name in ("cdcl", "dpll", "walksat")
)


def _packed_mismatch(formula: CNFFormula, seed: int) -> str | None:
    """One line describing an object/packed divergence, or None.

    The packed kernel is round-tripped through its wire format first, so
    this also fuses the portfolio's worker transport path into the
    differential harness: object entry point, packed entry point, and
    deserialized-payload entry point must produce the *same verdict and
    the same model* (both wrappers delegate to the packed core, so any
    difference is a kernel-maintenance or wire-format bug).
    """
    packed = PackedCNF.from_bytes(PackedCNF.from_formula(formula).to_bytes())
    for solver in _PACKED_SOLVERS:
        obj = solver.solve(formula, seed=seed, deadline=30.0)
        pak = solver.solve_packed(packed, seed=seed, deadline=30.0)
        if obj.status != pak.status:
            return f"{solver.name}: object={obj.status} packed={pak.status}"
        if (obj.assignment is None) != (pak.assignment is None):
            return f"{solver.name}: only one path produced a model"
        if obj.assignment is not None and (
            obj.assignment.as_dict() != pak.assignment.as_dict()
        ):
            return f"{solver.name}: object and packed models differ"
    return None


def test_differential_packed_vs_object_paths():
    """Packed and object entry points agree on verdict *and* model.

    Runs over the same seeded instance stream as the cross-solver sweep
    (stream 1), so a failure here and a failure there point at the same
    reproducible (name, seed) pair.
    """
    count = int(os.environ.get("REPRO_FUZZ_INSTANCES", "200"))
    for name, formula, seed in _instances(count, stream=1):
        problem = _packed_mismatch(formula, seed)
        if problem is not None:
            pytest.fail(
                f"packed/object divergence on {name} (seed={seed}): {problem}\n"
                f"instance ({formula.num_vars} vars, "
                f"{formula.num_clauses} clauses):\n{to_dimacs(formula)}"
            )


def _service_mismatch(direct, routed, name: str, seed: int) -> str | None:
    """One line describing a service/engine divergence, or None."""
    if direct.status != routed.status:
        return (
            f"engine={direct.status} service={routed.status} "
            f"on {name} (seed={seed})"
        )
    if (direct.assignment is None) != (routed.assignment is None):
        return f"only one route produced a model on {name} (seed={seed})"
    if direct.assignment is not None and (
        direct.assignment.as_dict() != routed.assignment.as_dict()
    ):
        return f"engine and service models differ on {name} (seed={seed})"
    return None


def test_differential_service_vs_direct_engine():
    """The SolverService facade is a pass-through, not a reinterpretation.

    Over the same seeded instance stream as the cross-solver sweep, a
    request routed through the service must produce the *same verdict
    and the same model* as a direct PortfolioEngine call with identical
    parameters.  Both engines run single-job with a quick slice big
    enough that the deterministic CDCL lead decides every CI-size
    instance, so any divergence is a facade bug, not scheduling noise.
    """
    from repro.engine.config import EngineConfig
    from repro.engine.engine import PortfolioEngine
    from repro.service.requests import SolveRequest
    from repro.service.service import SolverService

    count = int(os.environ.get("REPRO_FUZZ_INSTANCES", "200"))
    engine = PortfolioEngine(jobs=1, quick_slice=30.0)
    service = SolverService(EngineConfig(jobs=1, quick_slice=30.0))
    with engine, service:
        for name, formula, seed in _instances(count, stream=1):
            direct = engine.solve(formula, seed=seed, use_cache=False)
            routed = service.solve(SolveRequest(
                formula=formula, seed=seed, use_cache=False
            ))
            problem = _service_mismatch(direct, routed, name, seed)
            if problem is not None:
                pytest.fail(
                    f"service/engine divergence: {problem}\n"
                    f"instance ({formula.num_vars} vars, "
                    f"{formula.num_clauses} clauses):\n{to_dimacs(formula)}"
                )


@pytest.mark.slow
@pytest.mark.skipif(
    os.environ.get("REPRO_FUZZ_NIGHTLY") != "1",
    reason="nightly differential sweep (set REPRO_FUZZ_NIGHTLY=1)",
)
def test_differential_nightly_sweep():
    """The deeper nightly sweep: a fresh seed stream, 5x the instances."""
    count = int(os.environ.get("REPRO_FUZZ_INSTANCES", "200")) * 5
    _run_sweep(count, stream=2)
