"""Property-based tests (hypothesis) for the CNF substrate."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cnf.assignment import Assignment
from repro.cnf.clause import Clause
from repro.cnf.dimacs import parse_dimacs, to_dimacs
from repro.cnf.formula import CNFFormula


@st.composite
def clauses(draw, max_var=8, max_width=4):
    """A non-tautological, non-empty clause."""
    width = draw(st.integers(1, max_width))
    variables = draw(
        st.lists(
            st.integers(1, max_var), min_size=width, max_size=width, unique=True
        )
    )
    signs = draw(st.lists(st.booleans(), min_size=width, max_size=width))
    return Clause([v if s else -v for v, s in zip(variables, signs)])


@st.composite
def formulas(draw, max_var=8, max_clauses=12):
    cls = draw(st.lists(clauses(max_var=max_var), min_size=0, max_size=max_clauses))
    return CNFFormula(cls, num_vars=max_var)


@st.composite
def assignments(draw, max_var=8):
    bits = draw(st.lists(st.booleans(), min_size=max_var, max_size=max_var))
    return Assignment({v: b for v, b in zip(range(1, max_var + 1), bits)})


class TestClauseProperties:
    @given(clauses())
    def test_literal_normalization_idempotent(self, cl):
        assert Clause(cl.literals) == cl

    @given(clauses(), st.integers(1, 8))
    def test_without_variable_removes(self, cl, var):
        reduced = cl.without_variable(var)
        assert not reduced.contains_variable(var)
        assert set(reduced.literals) <= set(cl.literals)

    @given(clauses(), assignments())
    def test_satisfaction_level_consistent(self, cl, a):
        level = cl.satisfaction_level(a)
        assert (level > 0) == cl.is_satisfied(a)
        assert 0 <= level <= len(cl)


class TestFormulaProperties:
    @given(formulas())
    def test_dimacs_roundtrip(self, f):
        assert parse_dimacs(to_dimacs(f)) == f

    @given(formulas(), assignments())
    def test_unsatisfied_clause_partition(self, f, a):
        unsat = f.unsatisfied_clauses(a)
        assert len(unsat) + sum(1 for c in f.clauses if c.is_satisfied(a)) == len(f)
        assert f.is_satisfied(a) == (not unsat)

    @given(formulas())
    def test_copy_equals_original(self, f):
        assert f.copy() == f

    @given(formulas(), st.integers(1, 8))
    def test_remove_variable_clears_occurrences(self, f, var):
        g = f.copy()
        if var in g.variables:
            g.remove_variable(var)
            assert all(not cl.contains_variable(var) for cl in g.clauses)
            assert var not in g.variables

    @given(formulas())
    def test_deduplicated_is_subset(self, f):
        d = f.deduplicated()
        assert d.num_clauses <= f.num_clauses
        assert set(d.clauses) == set(f.clauses)

    @given(formulas(), assignments())
    def test_satisfaction_levels_match_census(self, f, a):
        from repro.cnf.analysis import k_satisfaction_census

        census = k_satisfaction_census(f, a)
        assert sum(census.values()) == f.num_clauses


class TestAssignmentProperties:
    @given(assignments(), st.integers(1, 8))
    def test_flip_involution(self, a, var):
        assert a.flipped(var).flipped(var) == a

    @given(assignments(), assignments())
    def test_agreement_symmetric_on_equal_domains(self, a, b):
        assert a.agreement_with(b) == b.agreement_with(a)

    @given(assignments())
    def test_literal_roundtrip(self, a):
        assert Assignment.from_literals(a.to_literals()) == a

    @given(assignments(), assignments())
    def test_merge_respects_override(self, a, b):
        merged = a.merged_with(b)
        for var in b:
            assert merged[var] == b[var]
