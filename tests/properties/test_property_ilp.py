"""Property-based tests for the ILP substrate.

The key cross-checks: our simplex agrees with scipy's HiGHS on random
LPs, and branch-and-bound agrees with brute-force enumeration on random
0-1 programs.
"""

import itertools

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.ilp.branch_and_bound import BranchAndBoundSolver
from repro.ilp.constraint import Constraint, Sense
from repro.ilp.expr import LinExpr
from repro.ilp.model import ILPModel
from repro.ilp.presolve import presolve
from repro.ilp.simplex import simplex_solve
from repro.ilp.status import SolveStatus


@st.composite
def binary_models(draw, max_vars=6, max_cons=5):
    """A random 0-1 ILP with small integer coefficients."""
    n = draw(st.integers(2, max_vars))
    m = ILPModel("prop")
    xs = [m.add_binary(f"x{i}") for i in range(n)]
    num_cons = draw(st.integers(1, max_cons))
    for _ in range(num_cons):
        coefs = draw(st.lists(st.integers(-3, 3), min_size=n, max_size=n))
        if all(c == 0 for c in coefs):
            coefs[0] = 1
        sense = draw(st.sampled_from([Sense.LE, Sense.GE]))
        rhs = draw(st.integers(-4, 6))
        m.add_constraint(
            Constraint({f"x{i}": float(c) for i, c in enumerate(coefs) if c}, sense, rhs)
        )
    obj = draw(st.lists(st.integers(-5, 5), min_size=n, max_size=n))
    m.set_objective(
        LinExpr({f"x{i}": float(c) for i, c in enumerate(obj)}),
        draw(st.sampled_from(["max", "min"])),
    )
    return m


def brute_optimum(model):
    """(status, best objective) by enumerating all binary points."""
    names = [v.name for v in model.variables]
    best = None
    for bits in itertools.product([0.0, 1.0], repeat=len(names)):
        point = dict(zip(names, bits))
        if model.is_feasible(point):
            val = model.objective_value(point)
            if best is None:
                best = val
            elif model.is_maximization:
                best = max(best, val)
            else:
                best = min(best, val)
    return best


class TestBranchAndBoundAgainstBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(binary_models())
    def test_agreement(self, model):
        expected = brute_optimum(model)
        sol = BranchAndBoundSolver().solve(model)
        if expected is None:
            assert sol.status is SolveStatus.INFEASIBLE
        else:
            assert sol.status is SolveStatus.OPTIMAL
            assert sol.objective == pytest.approx(expected, abs=1e-6)
            assert model.is_feasible(sol.values)

    @settings(max_examples=25, deadline=None)
    @given(binary_models())
    def test_presolve_preserves_optimum(self, model):
        expected = brute_optimum(model)
        with_pre = BranchAndBoundSolver(use_presolve=True).solve(model)
        without = BranchAndBoundSolver(use_presolve=False).solve(model)
        if expected is None:
            assert with_pre.status is SolveStatus.INFEASIBLE
            assert without.status is SolveStatus.INFEASIBLE
        else:
            assert with_pre.objective == pytest.approx(without.objective, abs=1e-6)


class TestSimplexAgainstScipy:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_box_lp(self, seed):
        from scipy.optimize import linprog

        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 7))
        m = int(rng.integers(1, 7))
        c = rng.integers(-4, 5, size=n).astype(float)
        a = rng.integers(-3, 4, size=(m, n)).astype(float)
        b = rng.integers(-2, 7, size=m).astype(float)
        bounds = [(0.0, 1.0)] * n
        ours = simplex_solve(c, a, b, bounds=bounds)
        ref = linprog(c, A_ub=a, b_ub=b, bounds=bounds, method="highs")
        if ref.status == 0:
            assert ours.status is SolveStatus.OPTIMAL
            assert ours.objective == pytest.approx(ref.fun, abs=1e-6)
        elif ref.status == 2:
            assert ours.status is SolveStatus.INFEASIBLE


class TestPresolveProperties:
    @settings(max_examples=40, deadline=None)
    @given(binary_models())
    def test_fixings_are_consistent(self, model):
        res = presolve(model)
        if res.status is SolveStatus.OPTIMAL:
            assert model.is_feasible(res.fixed)
        elif res.status is SolveStatus.INFEASIBLE:
            assert brute_optimum(model) is None
