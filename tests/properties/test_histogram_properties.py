"""Histogram properties: quantile accuracy vs exact sorted-list math.

The observability layer replaced the runner's sorted-list percentile
math with the shared log-bucketed histogram, so the accuracy claim must
hold as a *property*, not an example: under seeded sweeps over several
latency-shaped distributions, every histogram quantile must agree with
the exact sorted-sample answer to within the scheme's bucket resolution
(one bucket of relative error on either side of the bracketing order
statistics), mean/max must stay exact, and merge must equal
concatenation — the invariant per-worker folding rides on.
"""

import math
import random

import pytest

from repro.obs.histogram import LatencyHistogram
from repro.workload.runner import latency_summary, percentile


def _bound(hist: LatencyHistogram) -> float:
    """One bucket of relative width for *hist*'s scheme."""
    return 10 ** (1 / hist.buckets_per_decade)


def draw(kind: str, rng: random.Random, n: int) -> list[float]:
    """Latency-shaped samples, clamped inside the default scheme range."""
    if kind == "uniform":
        raw = [rng.uniform(1e-4, 1.0) for _ in range(n)]
    elif kind == "exponential":
        raw = [rng.expovariate(50.0) for _ in range(n)]
    elif kind == "lognormal":
        raw = [rng.lognormvariate(math.log(5e-3), 1.5) for _ in range(n)]
    else:  # bimodal: fast cache hits + slow solver races
        raw = [
            rng.uniform(1e-4, 5e-4) if rng.random() < 0.8
            else rng.uniform(0.5, 2.0)
            for _ in range(n)
        ]
    return [min(max(v, 1e-5), 500.0) for v in raw]


QS = (0.10, 0.50, 0.90, 0.99, 1.0)


@pytest.mark.parametrize("kind", ("uniform", "exponential", "lognormal", "bimodal"))
@pytest.mark.parametrize("seed", (0, 1, 7, 42))
@pytest.mark.parametrize("n", (1, 2, 17, 400))
def test_quantiles_bracket_the_exact_order_statistics(kind, seed, n):
    """hist.quantile(q) lands within one bucket of the order statistics
    that bracket the exact rank — the bucket-resolution accuracy claim."""
    values = draw(kind, random.Random(seed), n)
    ordered = sorted(values)
    hist = LatencyHistogram.of(values)
    bound = _bound(hist)
    for q in QS:
        got = hist.quantile(q)
        rank = q * (n - 1)
        lo = ordered[int(math.floor(rank))]
        hi = ordered[int(math.ceil(rank))]
        assert lo / bound <= got <= hi * bound, (kind, seed, n, q)
        # Clamping keeps every answer inside the observed range.
        assert hist.min <= got <= hist.max


@pytest.mark.parametrize("kind", ("exponential", "bimodal"))
@pytest.mark.parametrize("seed", (3, 11))
def test_summary_agrees_with_sorted_list_percentiles(kind, seed):
    """The runner-facing summary: mean/max exact, percentiles within
    bucket resolution of the old interpolated sorted-list answers."""
    values = draw(kind, random.Random(seed), 300)
    ordered = sorted(values)
    summary = latency_summary(values)
    assert summary["mean"] == pytest.approx(sum(values) / len(values))
    assert summary["max"] == max(values)
    assert summary["count"] == len(values)
    bound = _bound(LatencyHistogram())
    for key, p in (("p50", 50.0), ("p90", 90.0), ("p99", 99.0)):
        exact = percentile(ordered, p)
        rank = (p / 100.0) * (len(ordered) - 1)
        lo = ordered[int(math.floor(rank))]
        hi = ordered[int(math.ceil(rank))]
        # Both answers live inside the same bracket, one bucket wide.
        assert lo <= exact <= hi
        assert lo / bound <= summary[key] <= hi * bound


@pytest.mark.parametrize("seed", (0, 5, 9))
def test_edge_cases_match_exact_math(seed):
    """Satellite: the empty/single-sample paths the old code guarded
    ad hoc are exact by construction now."""
    assert latency_summary([]) == {
        "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0,
        "max": 0.0, "count": 0,
    }
    value = random.Random(seed).uniform(1e-4, 10.0)
    single = latency_summary([value])
    for key in ("mean", "p50", "p90", "p99", "max"):
        assert single[key] == pytest.approx(value)


@pytest.mark.parametrize("seed", (2, 13, 77))
@pytest.mark.parametrize("workers", (2, 5))
def test_merge_equals_concatenation(seed, workers):
    """Folding per-worker histograms must equal one histogram over the
    concatenated sample — counts, aggregates, and quantiles alike."""
    rng = random.Random(seed)
    shards = [draw("lognormal", rng, rng.randint(0, 80)) for _ in range(workers)]
    merged = LatencyHistogram()
    for shard in shards:
        merged.merge(LatencyHistogram.of(shard))
    whole = LatencyHistogram.of(v for shard in shards for v in shard)
    assert merged.counts == whole.counts
    assert merged.count == whole.count
    assert merged.sum == pytest.approx(whole.sum)
    assert merged.min == whole.min and merged.max == whole.max
    for q in QS:
        assert merged.quantile(q) == whole.quantile(q)


@pytest.mark.parametrize("seed", (4, 21))
def test_diff_counts_equal_the_interval_sample(seed):
    """Snapshot diffing (the daemon's per-frame path) recovers exactly
    the interval's bucket counts for any split point."""
    rng = random.Random(seed)
    values = draw("exponential", rng, 120)
    split = rng.randint(0, len(values))
    hist = LatencyHistogram.of(values[:split])
    snap = hist.copy()
    hist.record_many(values[split:])
    interval = hist.diff(snap)
    direct = LatencyHistogram.of(values[split:])
    assert interval.counts == direct.counts
    assert interval.count == direct.count
    assert interval.sum == pytest.approx(direct.sum)


@pytest.mark.parametrize("seed", (0, 8))
def test_serialization_preserves_quantiles(seed):
    values = draw("bimodal", random.Random(seed), 150)
    hist = LatencyHistogram.of(values)
    back = LatencyHistogram.from_dict(hist.to_dict())
    for q in QS:
        assert back.quantile(q) == hist.quantile(q)
    assert back.summary() == hist.summary()
