"""Property-based tests for the SAT->ILP encoding and the SAT solvers."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cnf.assignment import Assignment
from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula
from repro.ilp.solver import solve
from repro.sat.brute import brute_force_solve, count_models
from repro.sat.dpll import dpll_solve
from repro.sat.encoding import encode_sat
from repro.sat.walksat import walksat_solve


@st.composite
def small_formulas(draw, max_var=6, max_clauses=10):
    n_clauses = draw(st.integers(1, max_clauses))
    cls = []
    for _ in range(n_clauses):
        width = draw(st.integers(1, 3))
        variables = draw(
            st.lists(st.integers(1, max_var), min_size=width, max_size=width, unique=True)
        )
        signs = draw(st.lists(st.booleans(), min_size=width, max_size=width))
        cls.append(Clause([v if s else -v for v, s in zip(variables, signs)]))
    return CNFFormula(cls, num_vars=max_var)


class TestEncodingCorrectness:
    @settings(max_examples=30, deadline=None)
    @given(small_formulas())
    def test_ilp_feasibility_equals_satisfiability(self, f):
        enc = encode_sat(f)
        sol = solve(enc.model)
        sat = brute_force_solve(f) is not None
        assert sol.status.has_solution == sat
        if sat:
            assert f.is_satisfied(enc.decode(sol, default=False))

    @settings(max_examples=30, deadline=None)
    @given(small_formulas())
    def test_decoded_solution_respects_consistency(self, f):
        enc = encode_sat(f)
        sol = solve(enc.model)
        if sol.status.has_solution:
            # No variable may be selected in both polarities.
            for var in f.variables:
                pos = sol.rounded(f"pos::{var}")
                neg = sol.rounded(f"neg::{var}")
                assert pos + neg <= 1

    @settings(max_examples=30, deadline=None)
    @given(small_formulas())
    def test_warm_start_values_feasible_iff_model(self, f):
        witness = brute_force_solve(f)
        if witness is None:
            return
        enc = encode_sat(f)
        values = enc.values_from_assignment(witness)
        assert enc.model.is_feasible(values)


class TestSolverAgreement:
    @settings(max_examples=40, deadline=None)
    @given(small_formulas())
    def test_dpll_matches_brute_force(self, f):
        expected = brute_force_solve(f) is not None
        res = dpll_solve(f)
        assert res.satisfiable is expected
        if expected:
            assert f.is_satisfied(res.assignment)

    @settings(max_examples=25, deadline=None)
    @given(small_formulas())
    def test_walksat_models_are_models(self, f):
        res = walksat_solve(f, max_flips=2000, max_restarts=3, rng=1)
        if res.satisfiable:
            assert f.is_satisfied(res.assignment)
            assert count_models(f) > 0
