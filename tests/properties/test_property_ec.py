"""Property-based tests for the EC invariants.

The two load-bearing guarantees of the paper:

* fast EC's merged solution always satisfies the modified formula, and
  never touches variables outside the affected set;
* preserving EC's agreement count equals the brute-force optimum.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cnf.assignment import Assignment
from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula
from repro.core.fast import fast_ec, simplify_instance
from repro.core.preserving import preserving_ec
from repro.sat.brute import brute_force_solve, max_agreement_model


@st.composite
def formula_with_witness(draw, max_var=7, max_clauses=10):
    """A satisfiable formula and one of its models."""
    n_clauses = draw(st.integers(1, max_clauses))
    bits = draw(st.lists(st.booleans(), min_size=max_var, max_size=max_var))
    witness = Assignment({v: b for v, b in zip(range(1, max_var + 1), bits)})
    cls = []
    for _ in range(n_clauses):
        width = draw(st.integers(2, 3))
        variables = draw(
            st.lists(st.integers(1, max_var), min_size=width, max_size=width, unique=True)
        )
        signs = draw(st.lists(st.booleans(), min_size=width, max_size=width))
        lits = [v if s else -v for v, s in zip(variables, signs)]
        # Force at least one literal true under the witness.
        if not Clause(lits).is_satisfied(witness):
            v0 = variables[0]
            lits[0] = v0 if witness[v0] else -v0
        cls.append(Clause(lits))
    return CNFFormula(cls, num_vars=max_var), witness


@st.composite
def extra_clause(draw, max_var=7):
    width = draw(st.integers(1, 3))
    variables = draw(
        st.lists(st.integers(1, max_var), min_size=width, max_size=width, unique=True)
    )
    signs = draw(st.lists(st.booleans(), min_size=width, max_size=width))
    return Clause([v if s else -v for v, s in zip(variables, signs)])


class TestFastECProperties:
    @settings(max_examples=40, deadline=None)
    @given(formula_with_witness(), extra_clause())
    def test_merge_satisfies_or_instance_unsat(self, fw, cl):
        f, p = fw
        modified = f.copy()
        modified.add_clause(cl)
        result = fast_ec(modified, p)
        truly_sat = brute_force_solve(modified) is not None
        assert result.succeeded == truly_sat
        if result.succeeded:
            assert modified.is_satisfied(result.assignment)

    @settings(max_examples=40, deadline=None)
    @given(formula_with_witness(), extra_clause())
    def test_untouched_variables_keep_values(self, fw, cl):
        f, p = fw
        modified = f.copy()
        modified.add_clause(cl)
        result = fast_ec(modified, p)
        if result.succeeded and not result.fell_back:
            outside = set(modified.variables) - set(result.instance.affected_variables)
            for var in outside:
                assert result.assignment[var] == p[var]

    @settings(max_examples=40, deadline=None)
    @given(formula_with_witness(), extra_clause())
    def test_simplification_marks_superset_of_unsatisfied(self, fw, cl):
        f, p = fw
        modified = f.copy()
        modified.add_clause(cl)
        inst = simplify_instance(modified, p)
        unsat = set(modified.unsatisfied_indices(p))
        assert unsat <= set(inst.marked_indices) or inst.already_satisfied

    @settings(max_examples=30, deadline=None)
    @given(formula_with_witness())
    def test_noop_when_nothing_changed(self, fw):
        f, p = fw
        result = fast_ec(f, p)
        assert result.succeeded
        assert result.instance.already_satisfied


class TestPreservingECProperties:
    @settings(max_examples=30, deadline=None)
    @given(formula_with_witness(), extra_clause())
    def test_agreement_is_optimal(self, fw, cl):
        f, p = fw
        modified = f.copy()
        modified.add_clause(cl)
        result = preserving_ec(modified, p)
        _, best = max_agreement_model(modified, p)
        if best < 0:
            assert not result.succeeded
        else:
            assert result.succeeded
            assert result.preserved_count == best
            assert modified.is_satisfied(result.assignment)
