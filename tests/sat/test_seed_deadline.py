"""Uniform seed/deadline plumbing across every solver entry point.

Satellite guarantee: ``seed=`` and ``deadline=`` are accepted everywhere,
and identical seeds give identical runs.
"""

import pytest

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_planted_ksat
from repro.errors import CNFError
from repro.ilp.solver import solve
from repro.sat.brute import all_satisfying_assignments, brute_force_solve
from repro.sat.dpll import dpll_solve
from repro.sat.encoding import encode_sat
from repro.sat.walksat import walksat_solve


@pytest.fixture(scope="module")
def instance():
    f, _ = random_planted_ksat(30, 100, rng=13)
    return f


class TestWalkSATSeeds:
    def test_identical_seeds_identical_runs(self, instance):
        a = walksat_solve(instance, seed=42)
        b = walksat_solve(instance, seed=42)
        assert a.satisfiable is b.satisfiable is True
        assert a.assignment.as_dict() == b.assignment.as_dict()
        assert (a.flips, a.restarts) == (b.flips, b.restarts)

    def test_seed_overrides_legacy_rng(self, instance):
        legacy = walksat_solve(instance, rng=7)
        unified = walksat_solve(instance, rng=999, seed=7)
        assert legacy.assignment.as_dict() == unified.assignment.as_dict()
        assert legacy.flips == unified.flips

    def test_different_seeds_may_differ_but_stay_models(self, instance):
        for s in (1, 2, 3):
            res = walksat_solve(instance, seed=s)
            assert instance.is_satisfied(res.assignment)

    def test_deadline_stops_search(self):
        unsat = CNFFormula([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        res = walksat_solve(
            unsat, max_flips=10**9, max_restarts=10**6, seed=0, deadline=0.01
        )
        assert res.satisfiable is None


class TestDPLLSeeds:
    def test_identical_seeds_identical_runs(self, instance):
        a = dpll_solve(instance, seed=5)
        b = dpll_solve(instance, seed=5)
        assert a.satisfiable is b.satisfiable is True
        assert a.assignment.as_dict() == b.assignment.as_dict()
        assert (a.decisions, a.propagations, a.conflicts) == (
            b.decisions, b.propagations, b.conflicts,
        )

    def test_unseeded_order_unchanged(self, instance):
        a = dpll_solve(instance)
        b = dpll_solve(instance)
        assert a.assignment.as_dict() == b.assignment.as_dict()

    def test_deadline_returns_unknown(self):
        f, _ = random_planted_ksat(60, 240, rng=17)
        res = dpll_solve(f, deadline=0.0)
        assert res.satisfiable is None

    def test_seeded_verdicts_agree(self, instance):
        assert dpll_solve(instance, seed=1).satisfiable is True
        assert (
            dpll_solve(CNFFormula([[1], [-1]]), seed=1).satisfiable is False
        )


class TestBruteDeadline:
    def test_deadline_raises_rather_than_lies(self):
        f, _ = random_planted_ksat(18, 50, rng=2)
        with pytest.raises(CNFError, match="deadline"):
            list(all_satisfying_assignments(f, deadline=0.0))

    def test_seed_accepted_and_ignored(self):
        f = CNFFormula([[1, 2]])
        a = brute_force_solve(f, seed=1)
        b = brute_force_solve(f, seed=99)
        assert a.as_dict() == b.as_dict()


class TestILPSeeds:
    def test_heuristic_identical_seeds_identical_solutions(self, instance):
        model = encode_sat(instance).model
        a = solve(model, method="heuristic", seed=11, stop_on_first_feasible=True)
        b = solve(model, method="heuristic", seed=11, stop_on_first_feasible=True)
        assert a.status.has_solution and b.status.has_solution
        assert a.values == b.values

    def test_deadline_maps_to_time_limit(self):
        f, _ = random_planted_ksat(40, 150, rng=19)
        model = encode_sat(f).model
        sol = solve(model, method="exact", deadline=0.001)
        # A cut-off exact solve may still return its incumbent, but it
        # must return promptly rather than run to optimality.
        assert sol.stats.wall_time < 5.0

    def test_exact_ignores_seed(self, instance):
        model = encode_sat(instance).model
        a = solve(model, method="exact", seed=3)
        b = solve(model, method="exact", seed=4)
        assert a.values == b.values
