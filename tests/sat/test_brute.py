"""Unit tests for the brute-force SAT oracle."""

import pytest

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.errors import CNFError
from repro.sat.brute import (
    MAX_BRUTE_VARS,
    all_satisfying_assignments,
    brute_force_solve,
    count_models,
    max_agreement_model,
)


class TestEnumeration:
    def test_count_models_simple(self):
        # (1 or 2): 3 of 4 assignments.
        assert count_models(CNFFormula([[1, 2]])) == 3

    def test_count_models_xor_like(self):
        f = CNFFormula([[1, 2], [-1, -2]])
        assert count_models(f) == 2

    def test_unsat(self):
        assert brute_force_solve(CNFFormula([[1], [-1]])) is None
        assert count_models(CNFFormula([[1], [-1]])) == 0

    def test_size_guard(self):
        f = CNFFormula(num_vars=MAX_BRUTE_VARS + 1)
        with pytest.raises(CNFError):
            brute_force_solve(f)

    def test_all_models_are_models(self):
        f = CNFFormula([[1, 2], [2, 3], [-1, -3]])
        models = list(all_satisfying_assignments(f))
        assert models
        assert all(f.is_satisfied(m) for m in models)


class TestMaxAgreement:
    def test_agrees_exactly_when_reference_is_model(self):
        f = CNFFormula([[1, 2]])
        ref = Assignment({1: True, 2: False})
        best, score = max_agreement_model(f, ref)
        assert score == 2 and best == ref

    def test_unsat_returns_none(self):
        best, score = max_agreement_model(CNFFormula([[1], [-1]]), Assignment({1: True}))
        assert best is None and score == -1

    def test_forced_disagreement_counted(self):
        # Reference wants 1=False but the formula forces 1=True.
        f = CNFFormula([[1], [2, 3]])
        ref = Assignment({1: False, 2: True, 3: True})
        _best, score = max_agreement_model(f, ref)
        assert score == 2
