"""Unit tests for WalkSAT."""

import pytest

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_planted_ksat
from repro.sat.walksat import walksat_solve


class TestBasics:
    def test_finds_planted_model(self):
        f, _ = random_planted_ksat(50, 180, rng=3)
        res = walksat_solve(f, rng=3)
        assert res.satisfiable
        assert f.is_satisfied(res.assignment)

    def test_empty_formula(self):
        res = walksat_solve(CNFFormula(num_vars=2))
        assert res.satisfiable
        assert len(res.assignment) == 2

    def test_empty_clause_unsat(self):
        f = CNFFormula([[1]])
        f.remove_variable(1)
        assert walksat_solve(f).satisfiable is False

    def test_budget_exhaustion_returns_unknown(self):
        # UNSAT instance: WalkSAT cannot prove it, must return None.
        f = CNFFormula([[1], [-1]])
        res = walksat_solve(f, max_flips=50, max_restarts=2, rng=0)
        assert res.satisfiable is None

    def test_deterministic_given_seed(self):
        f, _ = random_planted_ksat(30, 100, rng=4)
        a = walksat_solve(f, rng=9)
        b = walksat_solve(f, rng=9)
        assert a.assignment == b.assignment


class TestWarmStart:
    def test_initial_witness_needs_no_flips(self):
        f, p = random_planted_ksat(40, 140, rng=5)
        res = walksat_solve(f, initial=p, rng=5)
        assert res.satisfiable
        assert res.flips == 0

    def test_initial_partial_assignment_completed(self):
        f, p = random_planted_ksat(40, 140, rng=6)
        partial = Assignment({v: p[v] for v in list(p)[:20]})
        res = walksat_solve(f, initial=partial, rng=6)
        assert res.satisfiable
