"""Unit tests for the CDCL SAT solver."""

import random

import pytest

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import (
    pigeonhole,
    random_ksat,
    random_planted_ksat,
    unsat_parity_pair,
)
from repro.errors import CNFError
from repro.sat.brute import brute_force_solve
from repro.sat.cdcl import CDCLSolver, cdcl_solve, luby
from repro.sat.dpll import dpll_solve


class TestLuby:
    def test_sequence_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_rejects_non_positive(self):
        with pytest.raises(CNFError):
            luby(0)


class TestVerdicts:
    def test_trivial_sat(self):
        res = cdcl_solve(CNFFormula([[1, 2]]))
        assert res.satisfiable
        assert CNFFormula([[1, 2]]).is_satisfied(res.assignment)

    def test_trivial_unsat(self):
        assert cdcl_solve(CNFFormula([[1], [-1]])).satisfiable is False

    def test_empty_formula_sat(self):
        res = cdcl_solve(CNFFormula(num_vars=3))
        assert res.satisfiable
        assert len(res.assignment) == 3

    def test_empty_clause_unsat(self):
        f = CNFFormula([[1]])
        f.remove_variable(1)
        assert cdcl_solve(f).satisfiable is False

    def test_unit_chain(self):
        f = CNFFormula([[1], [-1, 2], [-2, 3]])
        res = cdcl_solve(f)
        assert res.satisfiable
        assert res.assignment.as_dict() == {1: True, 2: True, 3: True}

    def test_conflicting_units(self):
        assert cdcl_solve(CNFFormula([[1], [-1, 2], [-2, -1]])).satisfiable is False

    def test_model_covers_all_active_variables(self):
        # v4 occurs in no clause; the model must still assign it.
        f = CNFFormula([[1, 2], [-1, 3]], num_vars=4)
        res = cdcl_solve(f)
        assert res.satisfiable
        assert res.assignment.is_assigned(4)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_small(self, seed):
        rng = random.Random(seed)
        f = random_ksat(rng.randint(3, 9), rng.randint(3, 35), k=3, rng=rng)
        expected = brute_force_solve(f) is not None
        res = cdcl_solve(f, seed=seed)
        assert res.satisfiable is expected
        if expected:
            assert f.is_satisfied(res.assignment)


class TestAgainstDPLL:
    @pytest.mark.parametrize("seed", range(8))
    def test_medium_instances_agree(self, seed):
        rng = random.Random(100 + seed)
        f = random_ksat(rng.randint(20, 40), rng.randint(80, 180), k=3, rng=rng)
        assert cdcl_solve(f, seed=seed).satisfiable == dpll_solve(f).satisfiable


class TestUnsatFamilies:
    def test_parity_pair_refuted(self):
        f = unsat_parity_pair(14, rng=3)
        res = cdcl_solve(f, seed=0)
        assert res.satisfiable is False
        assert res.learned > 0

    def test_parity_pair_beats_dpll_on_conflicts(self):
        # The separating family: chronological DPLL re-derives the same
        # parity contradiction exponentially often; learning does not.
        f = unsat_parity_pair(14, rng=3)
        d = dpll_solve(f)
        c = cdcl_solve(f, seed=0)
        assert d.satisfiable is False and c.satisfiable is False
        assert c.conflicts * 10 < d.conflicts

    def test_small_pigeonhole_refuted(self):
        assert cdcl_solve(pigeonhole(4), seed=0).satisfiable is False


class TestHeuristics:
    def test_planted_100_vars(self):
        f, _ = random_planted_ksat(100, 400, rng=8)
        res = cdcl_solve(f, seed=0)
        assert res.satisfiable
        assert f.is_satisfied(res.assignment)

    def test_polarity_hint_restores_witness_quickly(self):
        f, p = random_planted_ksat(80, 300, rng=9)
        hinted = cdcl_solve(f, polarity_hint=p)
        assert hinted.satisfiable
        # The hint points straight at a model: no conflicts needed.
        assert hinted.conflicts == 0

    def test_seed_determinism(self):
        f, _ = random_planted_ksat(30, 120, rng=5)
        a = cdcl_solve(f, seed=7)
        b = cdcl_solve(f, seed=7)
        assert a.assignment.as_dict() == b.assignment.as_dict()
        assert (a.conflicts, a.decisions) == (b.conflicts, b.decisions)

    def test_restarts_fire_on_hard_instances(self):
        solver = CDCLSolver(restart_base=2)
        res = solver.solve(unsat_parity_pair(12, rng=1), seed=0)
        assert res.satisfiable is False
        assert res.restarts > 0

    def test_db_reduction_fires_under_tiny_budget(self):
        solver = CDCLSolver(max_learnts_factor=0.05)
        res = solver.solve(unsat_parity_pair(24, rng=1), seed=0)
        assert res.satisfiable is False
        assert res.deleted > 0


class TestBudget:
    def test_conflict_budget(self):
        f = unsat_parity_pair(16, rng=2)
        res = cdcl_solve(f, max_conflicts=3)
        assert res.satisfiable is None
        assert res.conflicts <= 3

    def test_deadline(self):
        f = unsat_parity_pair(30, rng=2)
        res = CDCLSolver().solve(f, deadline=0.0)
        assert res.satisfiable is None

    def test_is_satisfiable_raises_on_budget(self):
        f = unsat_parity_pair(16, rng=2)
        solver = CDCLSolver(max_conflicts=1)
        if solver.solve(f).satisfiable is None:
            with pytest.raises(CNFError):
                solver.is_satisfiable(f)
