"""Unit tests for the DPLL SAT solver."""

import pytest

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_ksat, random_planted_ksat
from repro.errors import CNFError
from repro.sat.brute import brute_force_solve
from repro.sat.dpll import DPLLSolver, dpll_solve


class TestVerdicts:
    def test_trivial_sat(self):
        res = dpll_solve(CNFFormula([[1, 2]]))
        assert res.satisfiable
        assert CNFFormula([[1, 2]]).is_satisfied(res.assignment)

    def test_trivial_unsat(self):
        assert dpll_solve(CNFFormula([[1], [-1]])).satisfiable is False

    def test_empty_formula_sat(self):
        res = dpll_solve(CNFFormula(num_vars=3))
        assert res.satisfiable
        assert len(res.assignment) == 3

    def test_empty_clause_unsat(self):
        f = CNFFormula([[1]])
        f.remove_variable(1)
        assert dpll_solve(f).satisfiable is False

    def test_unit_chain(self):
        # units propagate: 1, then (−1∨2) forces 2, then (−2∨3) forces 3.
        f = CNFFormula([[1], [-1, 2], [-2, 3]])
        res = dpll_solve(f)
        assert res.satisfiable
        assert res.assignment.as_dict() == {1: True, 2: True, 3: True}

    def test_conflicting_units(self):
        assert dpll_solve(CNFFormula([[1], [-1, 2], [-2, -1]])).satisfiable is False

    def test_tautologies_ignored(self):
        from repro.cnf.clause import Clause

        f = CNFFormula(num_vars=1)
        f._clauses.append(Clause([1, -1], allow_tautology=True))
        assert dpll_solve(f).satisfiable


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_small(self, seed):
        import random

        rng = random.Random(seed)
        f = random_ksat(rng.randint(3, 9), rng.randint(3, 35), k=3, rng=rng)
        expected = brute_force_solve(f) is not None
        res = dpll_solve(f)
        assert res.satisfiable is expected
        if expected:
            assert f.is_satisfied(res.assignment)


class TestScaling:
    def test_planted_100_vars(self):
        f, _ = random_planted_ksat(100, 400, rng=8)
        res = dpll_solve(f)
        assert res.satisfiable
        assert f.is_satisfied(res.assignment)

    def test_polarity_hint_restores_witness_quickly(self):
        f, p = random_planted_ksat(80, 300, rng=9)
        hinted = dpll_solve(f, polarity_hint=p)
        assert hinted.satisfiable
        # The hint points straight at a model: no conflicts needed.
        assert hinted.conflicts == 0


class TestBudget:
    def test_decision_budget(self):
        f = random_ksat(60, 255, rng=13)  # near-threshold: needs search
        res = dpll_solve(f, max_decisions=1)
        assert res.satisfiable is None or res.decisions <= 1

    def test_is_satisfiable_raises_on_budget(self):
        f = random_ksat(60, 255, rng=13)
        solver = DPLLSolver(max_decisions=1)
        if solver.solve(f).satisfiable is None:
            with pytest.raises(CNFError):
                solver.is_satisfiable(f)
