"""Unit tests for the set cover problem and its ILP form."""

import pytest

from repro.errors import ModelError
from repro.ilp.solver import solve
from repro.ilp.status import SolveStatus
from repro.sat.setcover import SetCoverProblem


@pytest.fixture
def cover():
    return SetCoverProblem(
        universe=["a", "b", "c", "d"],
        subsets={"s1": ["a", "b"], "s2": ["b", "c"], "s3": ["c", "d"], "s4": ["a", "d"]},
    )


class TestConstruction:
    def test_uncoverable_rejected(self):
        with pytest.raises(ModelError):
            SetCoverProblem(["a", "b"], {"s": ["a"]})

    def test_duplicate_universe_elements_deduped(self):
        p = SetCoverProblem(["a", "a"], {"s": ["a"]})
        assert p.universe == ("a",)


class TestILP:
    def test_optimal_cover_size(self, cover):
        sol = solve(cover.to_ilp())
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(2.0)  # {s1, s3} or {s2, s4}
        chosen = cover.decode(sol)
        assert cover.is_cover(chosen)
        assert len(chosen) == 2

    def test_weighted(self, cover):
        sol = solve(cover.to_ilp(weights={"s1": 10.0, "s3": 10.0}))
        chosen = cover.decode(sol)
        assert set(chosen) == {"s2", "s4"}

    def test_single_subset_instance(self):
        p = SetCoverProblem(["x"], {"only": ["x"]})
        sol = solve(p.to_ilp())
        assert p.decode(sol) == ["only"]


class TestHelpers:
    def test_is_cover(self, cover):
        assert cover.is_cover(["s1", "s3"])
        assert not cover.is_cover(["s1"])

    def test_is_cover_unknown_subset(self, cover):
        with pytest.raises(ModelError):
            cover.is_cover(["nope"])

    def test_greedy_cover_valid(self, cover):
        assert cover.is_cover(cover.greedy_cover())

    def test_greedy_on_chain(self):
        p = SetCoverProblem(
            range(6),
            {"big": [0, 1, 2, 3], "l": [3, 4], "r": [4, 5], "tiny": [5]},
        )
        chosen = p.greedy_cover()
        assert p.is_cover(chosen)
        assert chosen[0] == "big"  # greedy takes the largest first
