"""Cross-module integration: family instances through DIMACS and solvers."""

import pytest

from repro.cnf.dimacs import parse_dimacs, to_dimacs
from repro.cnf.families import f_instance, ii_instance, jnh_instance, parity_instance
from repro.cnf.simplify import simplify
from repro.sat.dpll import dpll_solve
from repro.sat.walksat import walksat_solve


@pytest.mark.parametrize(
    "maker", [parity_instance, ii_instance, jnh_instance, f_instance]
)
class TestFamilyPipelines:
    def test_dimacs_roundtrip_preserves_instance(self, maker):
        inst = maker(25, 90, seed=4)
        again = parse_dimacs(to_dimacs(inst.formula))
        assert again == inst.formula

    def test_dpll_finds_model(self, maker):
        inst = maker(25, 90, seed=4)
        res = dpll_solve(inst.formula, polarity_hint=inst.witness)
        assert res.satisfiable
        assert inst.formula.is_satisfied(res.assignment)

    def test_walksat_finds_model(self, maker):
        inst = maker(25, 90, seed=4)
        res = walksat_solve(inst.formula, rng=4, initial=inst.witness)
        assert res.satisfiable

    def test_simplify_preserves_satisfiability(self, maker):
        inst = maker(25, 90, seed=4)
        res = simplify(inst.formula)
        assert not res.proven_unsat
        if res.formula.num_clauses:
            again = dpll_solve(res.formula)
            assert again.satisfiable
            lifted = res.lift(again.assignment)
            for var in inst.formula.variables:
                if var not in lifted:
                    lifted[var] = False
            assert inst.formula.is_satisfied(lifted)
