"""Unit tests for the SAT -> set cover -> ILP encoding of §3."""

import pytest

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.errors import ModelError
from repro.ilp.solver import solve
from repro.ilp.status import SolveStatus
from repro.sat.brute import brute_force_solve
from repro.sat.encoding import encode_sat, literal_name, neg_name, pos_name


@pytest.fixture
def paper_f3():
    """The §3 illustration: F = (v1' + v2)(v2 + v3)(v1 + v3')."""
    return CNFFormula([[-1, 2], [2, 3], [1, -3]])


class TestStructure:
    def test_variable_count_doubles(self, paper_f3):
        enc = encode_sat(paper_f3)
        assert enc.model.num_vars == 6  # 2n selection variables

    def test_row_count(self, paper_f3):
        enc = encode_sat(paper_f3)
        # one row per clause + one consistency row per variable
        assert enc.model.num_constraints == 3 + 3

    def test_names(self):
        assert literal_name(4) == pos_name(4)
        assert literal_name(-4) == neg_name(4)

    def test_empty_clause_rejected(self):
        f = CNFFormula()
        f._clauses.append(__import__("repro.cnf.clause", fromlist=["Clause"]).Clause([]))
        with pytest.raises(ModelError):
            encode_sat(f)


class TestSolveAndDecode:
    def test_satisfiable_decodes_to_model(self, paper_f3):
        enc = encode_sat(paper_f3)
        sol = solve(enc.model)
        assert sol.status is SolveStatus.OPTIMAL
        a = enc.decode(sol, default=False)
        assert paper_f3.is_satisfied(a)

    def test_unsat_is_infeasible(self):
        f = CNFFormula([[1], [-1]])
        enc = encode_sat(f)
        assert solve(enc.model).status is SolveStatus.INFEASIBLE

    def test_objective_minimizes_literals(self):
        # (1+2): one selected literal suffices; min objective = 1.
        f = CNFFormula([[1, 2]])
        sol = solve(encode_sat(f).model)
        assert sol.objective == pytest.approx(1.0)

    def test_decode_partial_when_no_default(self):
        f = CNFFormula([[1, 2]], num_vars=3)
        enc = encode_sat(f)
        sol = solve(enc.model)
        a = enc.decode(sol, default=None)
        assert len(a) <= 3  # don't-cares stay unassigned

    def test_decode_matches_brute_force_satisfiability(self):
        from repro.cnf.generators import random_ksat

        for seed in range(10):
            f = random_ksat(6, 18, rng=seed)
            enc = encode_sat(f)
            sol = solve(enc.model)
            sat = brute_force_solve(f) is not None
            assert sol.status.has_solution == sat
            if sat:
                assert f.is_satisfied(enc.decode(sol, default=False))


class TestWarmStartValues:
    def test_values_roundtrip(self, paper_f3):
        enc = encode_sat(paper_f3)
        a = Assignment({1: True, 2: True, 3: False})
        vals = enc.values_from_assignment(a)
        assert vals[pos_name(1)] == 1.0 and vals[neg_name(1)] == 0.0
        assert vals[pos_name(3)] == 0.0 and vals[neg_name(3)] == 1.0
        assert enc.model.is_feasible(vals)

    def test_unassigned_to_zero(self, paper_f3):
        enc = encode_sat(paper_f3)
        vals = enc.values_from_assignment(Assignment({1: True}))
        assert vals[pos_name(2)] == 0.0 and vals[neg_name(2)] == 0.0

    def test_unassigned_strict_raises(self, paper_f3):
        enc = encode_sat(paper_f3)
        with pytest.raises(ModelError):
            enc.values_from_assignment(Assignment({}), unassigned_to_zero=False)
