"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import random

import pytest

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_planted_ksat


@pytest.fixture
def rng() -> random.Random:
    """Deterministic RNG for tests."""
    return random.Random(12345)


@pytest.fixture
def paper_formula() -> CNFFormula:
    """The paper's §1 motivating instance F (with f2 = v2 + v3' + v5).

    F = (v1+v3'+v5')(v2+v3'+v5)(v2+v4+v5)(v3'+v4')
    """
    return CNFFormula([[1, -3, -5], [2, -3, 5], [2, 4, 5], [-3, -4]])


@pytest.fixture
def paper_solution_s() -> Assignment:
    """Solution S from the paper's §1 example."""
    return Assignment({1: False, 2: True, 3: True, 4: False, 5: False})


@pytest.fixture
def paper_solution_e() -> Assignment:
    """Solution E from the paper's §1 example (the EC-friendly one)."""
    return Assignment({1: True, 2: True, 3: False, 4: True, 5: False})


@pytest.fixture
def planted_small():
    """A 20-variable planted-satisfiable 3-SAT instance and its witness."""
    return random_planted_ksat(20, 60, rng=7)


@pytest.fixture
def planted_medium():
    """A 60-variable planted-satisfiable 3-SAT instance and its witness."""
    return random_planted_ksat(60, 200, rng=11)
