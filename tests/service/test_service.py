"""SolverService: the one facade over flow, engine, and sessions."""

import pytest

from repro.cnf.clause import Clause
from repro.cnf.dimacs import write_dimacs
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_planted_ksat
from repro.core.change import AddClause, AddVariable, ChangeSet, RemoveClause
from repro.engine.config import EngineConfig
from repro.engine.diskcache import DiskCache
from repro.engine.engine import PortfolioEngine
from repro.errors import ServiceError
from repro.service.requests import ChangeRequest, SolveRequest
from repro.service.service import PendingSolve, SolverService


@pytest.fixture
def planted():
    return random_planted_ksat(12, 36, rng=5)


@pytest.fixture
def service():
    with SolverService(EngineConfig(jobs=1)) as svc:
        yield svc


def _breaking_clause(formula, model, width=2):
    lits = []
    for var in sorted(formula.variables):
        if model.is_assigned(var):
            lits.append(-var if model[var] else var)
        if len(lits) == width:
            break
    return Clause(lits)


class TestStatelessSolve:
    def test_portfolio_sat(self, service, planted):
        f, _ = planted
        response = service.solve(SolveRequest(formula=f, seed=0))
        assert response.status == "sat"
        assert f.is_satisfied(response.assignment)
        assert response.fingerprint

    def test_portfolio_unsat_is_a_response_not_an_exception(self, service):
        response = service.solve(SolveRequest(formula=CNFFormula([[1], [-1]])))
        assert response.status == "unsat" and response.assignment is None

    def test_dimacs_path_source(self, service, planted, tmp_path):
        f, _ = planted
        path = tmp_path / "f.cnf"
        write_dimacs(f, path)
        response = service.solve(SolveRequest(dimacs_path=str(path), seed=0))
        assert response.status == "sat"

    def test_packed_bytes_source(self, service, planted):
        f, _ = planted
        payload = f.packed().to_bytes()
        response = service.solve(SolveRequest(packed_bytes=payload, seed=0))
        assert response.status == "sat"

    def test_repeated_query_hits_the_cache(self, service, planted):
        f, _ = planted
        service.solve(SolveRequest(formula=f, seed=0))
        response = service.solve(SolveRequest(formula=f.copy(), seed=0))
        assert response.from_cache and response.source == "cache"

    def test_single_solver_strategy(self, service, planted):
        f, _ = planted
        response = service.solve(SolveRequest(formula=f, strategy="cdcl", seed=0))
        assert response.status == "sat" and response.winner == "cdcl"
        assert service.engine.stats.solves == 0   # engine untouched

    def test_ilp_strategy(self, service, planted):
        f, _ = planted
        response = service.solve(SolveRequest(formula=f, strategy="ilp", seed=0))
        assert response.status == "sat" and response.source == "ilp"
        assert f.is_satisfied(response.assignment)

    def test_ilp_strategy_unsat(self, service):
        response = service.solve(SolveRequest(
            formula=CNFFormula([[1], [-1]]), strategy="ilp"
        ))
        assert response.status == "unsat"

    def test_unknown_strategy_rejected(self, service, planted):
        f, _ = planted
        with pytest.raises(ServiceError, match="unknown strategy"):
            service.solve(SolveRequest(formula=f, strategy="quantum"))


class TestSessions:
    def test_open_change_resolve_loop(self, service, planted):
        f, _ = planted
        opened = service.solve(SolveRequest(formula=f, session="t1", seed=0))
        assert opened.status == "sat" and opened.session == "t1"

        # Loosening batch: answered by revalidation, zero solver runs.
        victim = service.session("t1").formula.clauses[0]
        calls = service.engine.stats.solver_calls
        changed = service.change(ChangeRequest(
            "t1", ChangeSet([RemoveClause(victim), AddVariable()]), seed=0,
        ))
        assert changed.status == "sat"
        assert changed.regime == "loosening"
        assert changed.source == "revalidation"
        assert service.engine.stats.solver_calls == calls

    def test_tightening_change_races_with_cdcl_lead(self, service, planted):
        f, _ = planted
        opened = service.solve(SolveRequest(formula=f, session="t", seed=0))
        breaking = _breaking_clause(
            service.session("t").formula, opened.assignment
        )
        calls = service.engine.stats.solver_calls
        response = service.change(ChangeRequest(
            "t", ChangeSet([AddClause(breaking)]), seed=0,
        ))
        assert response.regime == "tightening"
        if response.status == "sat":
            assert service.session("t").formula.is_satisfied(response.assignment)
            assert service.engine.stats.solver_calls > calls

    def test_force_mode_runs_a_full_engine_query(self, service, planted):
        f, _ = planted
        service.solve(SolveRequest(formula=f, session="t", seed=0))
        victim = service.session("t").formula.clauses[0]
        solves = service.engine.stats.solves
        response = service.change(ChangeRequest(
            "t", ChangeSet([RemoveClause(victim)]), ec_mode="force", seed=0,
        ))
        # Force mode bypasses the session's O(1) fast path: the engine
        # ran a query (the hint revalidation answered it — no race).
        assert response.status == "sat"
        assert service.engine.stats.solves == solves + 1

    def test_many_sessions_share_one_engine(self, service):
        # The multi-tenant headline: N sessions, one pool, one cache.
        for i in range(4):
            f, _ = random_planted_ksat(10, 30, rng=20 + i)
            service.solve(SolveRequest(formula=f, session=f"s{i}", seed=0))
        assert service.session_names == ("s0", "s1", "s2", "s3")
        engines = {id(service.session(f"s{i}").engine) for i in range(4)}
        assert engines == {id(service.engine)}

    def test_sessions_share_the_verdict_cache(self, service, planted):
        f, _ = planted
        service.solve(SolveRequest(formula=f, session="a", seed=0))
        hits = service.engine.cache.stats.hits
        response = service.solve(SolveRequest(formula=f.copy(), session="b", seed=0))
        assert response.status == "sat"
        assert service.engine.cache.stats.hits > hits

    def test_requery_existing_session_without_source(self, service, planted):
        f, _ = planted
        service.solve(SolveRequest(formula=f, session="t", seed=0))
        response = service.solve(SolveRequest(session="t", seed=0))
        assert response.status == "sat" and response.session == "t"

    def test_session_request_honors_use_cache_and_lead(self, service, planted):
        f, _ = planted
        service.solve(SolveRequest(formula=f, session="t", seed=0))
        hits = service.engine.cache.stats.hits
        fresh = service.solve(SolveRequest(
            session="t", seed=0, use_cache=False, lead="dpll",
        ))
        # The bypass flag reached the engine: no cache hit recorded, and
        # the hint revalidation answered (the session's own solution).
        assert fresh.status == "sat" and not fresh.from_cache
        assert service.engine.cache.stats.hits == hits

    def test_session_request_rejects_a_caller_hint(self, service, planted):
        f, _ = planted
        from repro.cnf.assignment import Assignment

        service.solve(SolveRequest(formula=f, session="t", seed=0))
        with pytest.raises(ServiceError, match="hint"):
            service.solve(SolveRequest(
                session="t", hint=Assignment({1: True}),
            ))

    def test_open_duplicate_session_rejected(self, service, planted):
        f, _ = planted
        service.solve(SolveRequest(formula=f, session="t", seed=0))
        with pytest.raises(ServiceError, match="already exists"):
            service.solve(SolveRequest(formula=f.copy(), session="t"))

    def test_unknown_session_rejected(self, service):
        with pytest.raises(ServiceError, match="unknown session"):
            service.solve(SolveRequest(session="ghost"))
        with pytest.raises(ServiceError, match="unknown session"):
            service.change(ChangeRequest("ghost", ChangeSet()))

    def test_close_session_keeps_the_engine_up(self, service, planted):
        f, _ = planted
        service.solve(SolveRequest(formula=f, session="t", seed=0))
        assert service.close_session("t")
        assert not service.close_session("t")
        # The shared engine is still serving.
        assert service.solve(SolveRequest(formula=f.copy(), seed=0)).status == "sat"


class TestSubmit:
    def test_submit_returns_pending_responses(self, service):
        pendings = []
        for i in range(4):
            f, _ = random_planted_ksat(10, 30, rng=40 + i)
            pendings.append(service.submit(SolveRequest(formula=f, seed=0)))
        assert all(isinstance(p, PendingSolve) for p in pendings)
        responses = [p.result(timeout=60) for p in pendings]
        assert all(r.status == "sat" for r in responses)
        assert all(p.done() for p in pendings)

    def test_submit_change_requests(self, service, planted):
        f, _ = planted
        service.solve(SolveRequest(formula=f, session="t", seed=0))
        victim = service.session("t").formula.clauses[0]
        pending = service.submit(ChangeRequest(
            "t", ChangeSet([RemoveClause(victim)]), seed=0,
        ))
        assert pending.result(timeout=60).source == "revalidation"

    def test_submit_surfaces_request_errors(self, service):
        pending = service.submit(SolveRequest(session="ghost"))
        with pytest.raises(ServiceError, match="unknown session"):
            pending.result(timeout=60)

    def test_close_drains_queued_submissions(self):
        # close() must let already-queued PendingSolves finish (the
        # docstring's drain contract) while rejecting new requests.
        svc = SolverService(EngineConfig(jobs=1, submit_workers=1))
        pendings = []
        for i in range(5):
            f, _ = random_planted_ksat(10, 30, rng=60 + i)
            pendings.append(svc.submit(SolveRequest(formula=f, seed=0)))
        svc.close()
        assert [p.result(timeout=60).status for p in pendings] == ["sat"] * 5
        f, _ = random_planted_ksat(10, 30, rng=70)
        with pytest.raises(ServiceError, match="closed"):
            svc.submit(SolveRequest(formula=f))

    def test_cancel_releases_the_queued_gauge(self):
        # Regression: cancelling a not-yet-started request used to skip
        # the run wrapper, so its -1 never fired and the gauge leaked
        # upward forever.
        import threading

        with SolverService(EngineConfig(jobs=1, submit_workers=1)) as svc:
            f0, _ = random_planted_ksat(10, 30, rng=81)
            svc.submit(SolveRequest(formula=f0, seed=0)).result(timeout=60)
            release = threading.Event()
            # Pin the single submit worker so the next request stays
            # queued (and is therefore deterministically cancellable).
            pin = svc._executor.submit(release.wait, 30)
            f, _ = random_planted_ksat(10, 30, rng=80)
            queued = svc.submit(SolveRequest(formula=f, seed=0))
            assert svc.metrics.gauge("queued") == 1
            assert queued.cancel() is True
            assert svc.metrics.gauge("queued") == 0
            # Repeated cancels must not decrement twice.
            assert queued.cancel() is True
            assert svc.metrics.gauge("queued") == 0
            release.set()
            pin.result(timeout=60)


class TestBatch:
    def test_solve_many_maps_to_responses(self, service, planted):
        f, _ = planted
        responses = service.solve_many([f, f.copy()], seed=0)
        assert [r.status for r in responses] == ["sat", "sat"]
        assert responses[1].source == "batch-dedup"
        assert service.engine.stats.batch_dedups == 1


class TestErrorAccounting:
    """Failed requests must be visible: counted as requests AND errors."""

    def test_failed_solve_counts_request_and_error(self, service):
        with pytest.raises(ServiceError, match="unknown session"):
            service.solve(SolveRequest(session="ghost"))
        assert service.metrics.counter("requests") == 1
        assert service.metrics.counter("errors") == 1

    def test_failed_change_counts_request_and_error(self, service):
        with pytest.raises(ServiceError, match="unknown session"):
            service.change(
                ChangeRequest("ghost", ChangeSet([AddVariable()]), seed=0)
            )
        assert service.metrics.counter("requests") == 1
        assert service.metrics.counter("errors") == 1

    def test_successful_requests_do_not_count_errors(self, service, planted):
        f, _ = planted
        service.solve(SolveRequest(formula=f, seed=0))
        assert service.metrics.counter("requests") == 1
        assert service.metrics.counter("errors") == 0

    def test_error_stream_shows_up_as_rps(self, service):
        # A stream of pure failures used to report zero rps — the whole
        # point of the finally-based accounting.
        for _ in range(5):
            with pytest.raises(ServiceError):
                service.solve(SolveRequest(session="ghost"))
        assert service.metrics.counter("requests") == 5
        assert service.metrics.counter("errors") == 5


class TestCacheBackends:
    def test_disk_backend_via_engine_config(self, tmp_path, planted):
        f, _ = planted
        config = EngineConfig(jobs=1, cache="disk",
                              cache_dir=str(tmp_path / "cache"))
        with SolverService(config) as svc:
            assert isinstance(svc.engine.cache, DiskCache)
            first = svc.solve(SolveRequest(formula=f, seed=0))
            assert first.status == "sat" and not first.from_cache
        # A second service over the same directory — the restart story —
        # answers from the persistent backend without any solver.
        with SolverService(EngineConfig(
            jobs=1, cache="disk", cache_dir=str(tmp_path / "cache")
        )) as svc:
            again = svc.solve(SolveRequest(formula=f.copy(), seed=0))
            assert again.from_cache
            assert svc.engine.stats.solver_calls == 0

    def test_none_backend_disables_caching(self, planted):
        f, _ = planted
        with SolverService(EngineConfig(jobs=1, cache="none")) as svc:
            svc.solve(SolveRequest(formula=f, seed=0))
            again = svc.solve(SolveRequest(formula=f.copy(), seed=0))
            assert not again.from_cache

    def test_disk_backend_requires_a_directory(self):
        with pytest.raises(ValueError, match="cache_dir"):
            EngineConfig(cache="disk")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown cache backend"):
            EngineConfig(cache="redis")


class TestLifecycle:
    def test_close_is_idempotent_and_final(self, planted):
        f, _ = planted
        svc = SolverService(EngineConfig(jobs=1))
        svc.solve(SolveRequest(formula=f, seed=0))
        svc.close()
        svc.close()                       # explicit double close
        svc.__exit__(None, None, None)    # ... and __exit__ after close
        with pytest.raises(ServiceError, match="closed"):
            svc.solve(SolveRequest(formula=f))

    def test_injected_engine_is_not_closed(self, planted):
        f, _ = planted
        engine = PortfolioEngine(jobs=1)
        svc = SolverService(engine=engine)
        svc.solve(SolveRequest(formula=f, seed=0))
        svc.close()
        assert not engine.closed
        engine.close()
        assert engine.closed

    def test_owned_engine_is_closed(self, planted):
        f, _ = planted
        svc = SolverService(EngineConfig(jobs=1))
        svc.solve(SolveRequest(formula=f, seed=0))
        svc.close()
        assert svc.engine.closed

    def test_stats_snapshot_shape(self, service, planted):
        f, _ = planted
        service.solve(SolveRequest(formula=f, seed=0))
        service.solve(SolveRequest(formula=f.copy(), seed=0))
        snapshot = service.stats()
        assert snapshot["engine"]["solves"] == 2
        assert snapshot["cache"]["hits"] >= 1
        assert 0.0 < snapshot["cache"]["hit_rate"] <= 1.0
        assert snapshot["sessions"] == []
