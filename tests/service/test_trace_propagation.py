"""End-to-end trace propagation: client root spans cross the wire into
daemon/engine stage spans under one trace id, retries surface as child
spans, and untraced/old clients keep producing byte-identical frames.
"""

import json
import socket as socket_mod

import pytest

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_planted_ksat
from repro.engine.config import EngineConfig
from repro.obs import tracing
from repro.obs.tracing import Tracer, group_traces, trace_tree
from repro.service import wire
from repro.service.client import ServiceClient
from repro.service.daemon import ServiceDaemon
from repro.service.requests import SolveRequest
from repro.service.service import SolverService
from repro import faults

pytestmark = pytest.mark.skipif(
    not hasattr(socket_mod, "AF_UNIX"), reason="needs AF_UNIX sockets"
)


@pytest.fixture(autouse=True)
def clean_globals():
    """The daemon install()s its tracer process-globally and chaos specs
    leak through env — scrub both around every test."""
    faults.clear()
    tracing.install(None)
    yield
    faults.clear()
    tracing.install(None)


@pytest.fixture
def planted():
    return random_planted_ksat(12, 36, rng=6)


@pytest.fixture
def traced_daemon(tmp_path):
    """A daemon whose node tracer samples at 0: any node span that shows
    up must have been *continued* from a wire context, not self-rooted."""
    node_log = tmp_path / "node-trace.jsonl"
    # jobs=2 + a zero quick slice forces the fan-out race, so traces
    # include the synthetic pool.wait / solve spans with CDCL counters.
    d = ServiceDaemon(
        str(tmp_path / "svc.sock"),
        SolverService(EngineConfig(jobs=2, quick_slice=0.0)),
        log_path=str(tmp_path / "daemon.log"),
        tracer=Tracer(service="node", sample=0.0, log_path=str(node_log)),
    )
    thread = d.start()
    yield d, node_log
    d.shutdown()
    thread.join(timeout=10)
    assert not thread.is_alive()


class TestEndToEndPropagation:
    def test_client_span_continues_into_daemon_and_engine(
        self, traced_daemon, planted
    ):
        daemon, node_log = traced_daemon
        f, _ = planted
        client_tracer = Tracer(service="client", sample=1.0)
        with ServiceClient(daemon.socket_path, tracer=client_tracer) as client:
            response = client.solve(SolveRequest(formula=f, seed=0))
        assert response.status == "sat"

        (root,) = client_tracer.spans()
        assert root["name"] == "client.solve"
        assert root["parent"] is None
        assert root["tags"]["status"] == "sat"

        node_spans = [
            json.loads(line) for line in node_log.read_text().splitlines()
        ]
        names = {s["name"] for s in node_spans}
        assert {"daemon.solve", "engine.solve", "cache.lookup"} <= names
        # One trace across both services, rooted at the client.
        assert {s["trace"] for s in node_spans} == {root["trace"]}
        by_name = {s["name"]: s for s in node_spans}
        assert by_name["daemon.solve"]["parent"] == root["span"]
        assert (
            by_name["engine.solve"]["parent"]
            == by_name["daemon.solve"]["span"]
        )
        assert by_name["cache.lookup"]["tags"]["tier"] == "miss"
        # The race's synthetic solve span carries the CDCL counters.
        solve = by_name["solve"]
        assert solve["tags"]["solver"]
        assert "propagations" in solve["tags"]

    def test_trace_tree_reconstructs_across_both_services(
        self, traced_daemon, planted
    ):
        daemon, node_log = traced_daemon
        f, _ = planted
        client_log = node_log.parent / "client-trace.jsonl"
        client_tracer = Tracer(
            service="client", sample=1.0, log_path=str(client_log)
        )
        with ServiceClient(daemon.socket_path, tracer=client_tracer) as client:
            client.solve(SolveRequest(formula=f, seed=0))

        spans = tracing.load_spans([str(client_log), str(node_log)])
        traces = group_traces(spans)
        assert len(traces) == 1
        (bucket,) = traces.values()
        roots, children = trace_tree(bucket)
        assert [r["name"] for r in roots] == ["client.solve"]
        walk, seen = [roots[0]], set()
        while walk:
            node = walk.pop()
            seen.add(node["name"])
            walk.extend(children.get(node["span"], []))
        assert {"client.solve", "daemon.solve", "engine.solve"} <= seen

    def test_unsampled_client_produces_no_node_spans(
        self, traced_daemon, planted
    ):
        daemon, node_log = traced_daemon
        f, _ = planted
        client_tracer = Tracer(service="client", sample=0.0)
        with ServiceClient(daemon.socket_path, tracer=client_tracer) as client:
            assert client.solve(SolveRequest(formula=f, seed=0)).status == "sat"
        assert client_tracer.spans() == []
        assert not node_log.exists() or node_log.read_text() == ""

    def test_daemon_op_log_carries_the_trace_id(self, traced_daemon, planted):
        daemon, _node_log = traced_daemon
        f, _ = planted
        client_tracer = Tracer(service="client", sample=1.0)
        with ServiceClient(daemon.socket_path, tracer=client_tracer) as client:
            client.solve(SolveRequest(formula=f, seed=0))
        (root,) = client_tracer.spans()
        records = [
            json.loads(line)
            for line in open(daemon.log_path, encoding="utf-8")
        ]
        solves = [r for r in records if r.get("op") == "solve"]
        assert solves and solves[-1]["trace"] == root["trace"]


class TestChaosRetrySpans:
    def test_wire_drops_become_retry_child_spans(self, traced_daemon, planted):
        daemon, _node_log = traced_daemon
        f, _ = planted
        client_tracer = Tracer(service="client", sample=1.0)
        with ServiceClient(daemon.socket_path, tracer=client_tracer) as client:
            faults.install("seed=7;wire.drop:p=1,count=2")
            response = client.solve(SolveRequest(formula=f, seed=0))
            assert response.status == "sat"
            assert client.retried == 2

        spans = client_tracer.spans()
        root = next(s for s in spans if s["name"] == "client.solve")
        retries = [s for s in spans if s["name"] == "retry"]
        assert len(retries) == 2
        for i, retry in enumerate(retries):
            # Same trace as the request that ultimately succeeded,
            # parented on its root span.
            assert retry["trace"] == root["trace"]
            assert retry["parent"] == root["span"]
            assert retry["tags"]["attempt"] == i + 1
            assert retry["tags"]["error"]


class TestBackwardCompat:
    def test_untraced_requests_omit_the_header_key(self, planted):
        # Old daemons reject unknown header keys only if present; an
        # untraced request must produce the exact pre-tracing header.
        f, _ = planted
        header, _payload = wire.solve_request_to_wire(SolveRequest(formula=f))
        assert "trace" not in header

    def test_traced_and_untraced_frames_both_parse(self, planted):
        f, _ = planted
        plain = wire.solve_request_to_wire(SolveRequest(formula=f))
        assert wire.solve_request_from_wire(*plain).trace is None
        ctx = {"tid": "ab" * 16, "sid": "cd" * 8}
        traced = wire.solve_request_to_wire(SolveRequest(formula=f, trace=ctx))
        assert wire.solve_request_from_wire(*traced).trace == ctx

    def test_garbage_trace_header_does_not_break_the_daemon(
        self, traced_daemon, planted
    ):
        daemon, _node_log = traced_daemon
        f, _ = planted
        with ServiceClient(daemon.socket_path) as client:
            request = SolveRequest(formula=f, seed=0, trace="not-a-context")
            assert client.solve(request).status == "sat"

    def test_old_style_formula_only_solve_still_works(self, traced_daemon):
        daemon, _node_log = traced_daemon
        f = CNFFormula([[1, 2], [-1, 3], [2, -3]])
        with ServiceClient(daemon.socket_path) as client:
            assert client.solve(SolveRequest(formula=f)).status == "sat"
