"""Typed request/response records and their wire codecs."""

import dataclasses

import pytest

from repro.cnf.assignment import Assignment
from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula
from repro.cnf.packed import PackedCNF
from repro.core.change import (
    AddClause,
    AddVariable,
    ChangeSet,
    RemoveClause,
    RemoveVariable,
)
from repro.service.requests import ChangeRequest, SolveRequest, SolveResponse
from repro.service.wire import (
    WireError,
    change_request_from_wire,
    change_request_to_wire,
    changes_from_wire,
    changes_to_wire,
    response_from_wire,
    response_to_wire,
    solve_request_from_wire,
    solve_request_to_wire,
)


@pytest.fixture
def formula():
    return CNFFormula([[1, -2], [2, 3], [-1, -3]])


class TestSolveRequest:
    def test_frozen(self, formula):
        request = SolveRequest(formula=formula)
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.seed = 3

    def test_at_most_one_source(self, formula):
        with pytest.raises(ValueError, match="at most one"):
            SolveRequest(formula=formula, dimacs_path="x.cnf")

    def test_source_or_session_required(self):
        with pytest.raises(ValueError, match="formula source or a session"):
            SolveRequest()

    def test_sourceless_session_request_is_valid(self):
        request = SolveRequest(session="tenant-a")
        assert not request.has_source

    def test_bad_ec_mode_rejected(self, formula):
        with pytest.raises(ValueError, match="ec_mode"):
            ChangeRequest("s", ChangeSet(), ec_mode="yolo")


class TestResponse:
    def test_tri_state_satisfiable(self):
        assert SolveResponse("sat", Assignment({1: True})).satisfiable is True
        assert SolveResponse("unsat").satisfiable is False
        assert SolveResponse("unknown").satisfiable is None

    def test_with_context(self):
        response = SolveResponse("sat", Assignment({1: True}))
        tagged = response.with_context(session="a", regime="tightening")
        assert (tagged.session, tagged.regime) == ("a", "tightening")
        assert response.session is None   # the original is untouched


class TestWireCodecs:
    def test_solve_request_ships_packed_bytes(self, formula):
        request = SolveRequest(
            formula=formula, deadline=2.5, seed=7,
            hint=Assignment({1: True}), lead="cdcl",
        )
        header, payload = solve_request_to_wire(request)
        assert payload == formula.packed().to_bytes()
        rebuilt = solve_request_from_wire(header, payload)
        assert rebuilt.packed_bytes == payload
        assert rebuilt.deadline == 2.5 and rebuilt.seed == 7
        assert rebuilt.lead == "cdcl"
        assert rebuilt.hint.as_dict() == {1: True}
        # The daemon-side formula is semantically the client's.
        roundtripped = PackedCNF.from_bytes(rebuilt.packed_bytes).to_formula()
        assert {c.literals for c in roundtripped.clauses} == {
            c.literals for c in formula.clauses
        }

    def test_change_request_round_trips_every_change_kind(self):
        changes = ChangeSet([
            AddClause(Clause([1, 2])),
            RemoveClause(Clause([-1, 3])),
            AddVariable(),
            RemoveVariable(2),
        ])
        request = ChangeRequest("tenant", changes, deadline=1.0, seed=3,
                                ec_mode="force")
        rebuilt = change_request_from_wire(change_request_to_wire(request))
        assert rebuilt.session == "tenant" and rebuilt.ec_mode == "force"
        kinds = [type(c).__name__ for c in rebuilt.changes]
        assert kinds == ["AddClause", "RemoveClause", "AddVariable",
                         "RemoveVariable"]
        assert rebuilt.changes.changes[0].clause.literals == (1, 2)

    def test_changes_unknown_kind_rejected(self):
        with pytest.raises(WireError, match="unknown change kind"):
            changes_from_wire([{"kind": "replace-universe"}])

    def test_changes_codec_preserves_loosening_classification(self):
        loosening = ChangeSet([RemoveClause(Clause([1])), AddVariable(9)])
        rebuilt = changes_from_wire(changes_to_wire(loosening))
        assert rebuilt.is_loosening_only

    def test_response_round_trips(self):
        response = SolveResponse(
            "sat", Assignment({1: True, 2: False}), fingerprint="abc",
            source="cache", winner=None, wall_time=0.25, from_cache=True,
            session="t", regime="loosening", detail="d",
        )
        rebuilt = response_from_wire(response_to_wire(response))
        assert rebuilt == response

    def test_unsat_response_round_trips_without_model(self):
        response = SolveResponse("unsat", source="cdcl", winner="cdcl")
        rebuilt = response_from_wire(response_to_wire(response))
        assert rebuilt.assignment is None and rebuilt.status == "unsat"
