"""repro serve: daemon round trips, error frames, cross-process cache.

The in-process tests drive a :class:`ServiceDaemon` on a background
thread through :class:`ServiceClient`; the subprocess tests boot the
real ``python -m repro serve`` CLI and assert the acceptance headline —
a solve + change + re-solve round trip, clean shutdown, and (with the
disk backend) a cache hit served *across daemon processes*.
"""

import json
import os
import socket as socket_mod
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cnf.clause import Clause
from repro.cnf.dimacs import write_dimacs
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_planted_ksat
from repro.core.change import AddClause, AddVariable, ChangeSet, RemoveClause
from repro.engine.config import EngineConfig
from repro.errors import ServiceError
from repro.service.client import ServiceClient
from repro.service.daemon import ServiceDaemon
from repro.service.requests import ChangeRequest, SolveRequest
from repro.service.service import SolverService

pytestmark = pytest.mark.skipif(
    not hasattr(socket_mod, "AF_UNIX"), reason="needs AF_UNIX sockets"
)

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def planted():
    return random_planted_ksat(12, 36, rng=6)


@pytest.fixture
def daemon(tmp_path):
    d = ServiceDaemon(
        str(tmp_path / "svc.sock"),
        SolverService(EngineConfig(jobs=1)),
        log_path=str(tmp_path / "daemon.log"),
    )
    thread = d.start()
    yield d
    d.shutdown()
    thread.join(timeout=10)
    assert not thread.is_alive()


class TestInProcessDaemon:
    def test_ping(self, daemon):
        with ServiceClient(daemon.socket_path) as client:
            assert client.ping()

    def test_solve_round_trip_ships_packed_bytes(self, daemon, planted):
        f, _ = planted
        with ServiceClient(daemon.socket_path) as client:
            response = client.solve(SolveRequest(formula=f, seed=0))
        assert response.status == "sat"
        assert f.is_satisfied(response.assignment)

    def test_session_solve_change_resolve_loop(self, daemon, planted):
        f, _ = planted
        with ServiceClient(daemon.socket_path) as client:
            opened = client.solve(SolveRequest(formula=f, session="t", seed=0))
            assert opened.status == "sat" and opened.session == "t"

            # Loosening change: revalidated server-side, no solver.
            victim = f.clauses[0]
            loosened = client.change(ChangeRequest(
                "t", ChangeSet([RemoveClause(victim), AddVariable()]), seed=0,
            ))
            assert loosened.source == "revalidation"
            assert loosened.regime == "loosening"

            # Tightening change: a real re-solve on the daemon.
            model = opened.assignment
            breaking = Clause([
                -v if model.get(v, False) else v
                for v in sorted(f.variables)[:2]
            ])
            tightened = client.change(ChangeRequest(
                "t", ChangeSet([AddClause(breaking)]), seed=0,
            ))
            assert tightened.regime == "tightening"
            assert tightened.status in ("sat", "unsat")

            stats = client.stats()
            assert stats["sessions"] == ["t"]
            assert client.close_session("t")
            assert client.stats()["sessions"] == []

    def test_error_frames_do_not_kill_the_connection(self, daemon):
        with ServiceClient(daemon.socket_path) as client:
            with pytest.raises(ServiceError, match="unknown session"):
                client.change(ChangeRequest("ghost", ChangeSet()))
            assert client.ping()          # same connection still serves

    def test_unsat_is_a_verdict_not_an_error(self, daemon):
        with ServiceClient(daemon.socket_path) as client:
            response = client.solve(
                SolveRequest(formula=CNFFormula([[1], [-1]]))
            )
        assert response.status == "unsat"

    def test_two_clients_share_the_daemon_cache(self, daemon, planted):
        f, _ = planted
        with ServiceClient(daemon.socket_path) as client:
            first = client.solve(SolveRequest(formula=f, seed=0))
            assert not first.from_cache
        with ServiceClient(daemon.socket_path) as client:
            second = client.solve(SolveRequest(formula=f, seed=0))
            assert second.from_cache

    def test_shutdown_op_stops_the_daemon(self, tmp_path):
        daemon = ServiceDaemon(
            str(tmp_path / "s.sock"), SolverService(EngineConfig(jobs=1))
        )
        thread = daemon.start()
        with ServiceClient(daemon.socket_path) as client:
            client.shutdown()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert daemon.service.closed
        assert not os.path.exists(daemon.socket_path)


class TestCliConnect:
    def test_solve_connect_routes_through_the_daemon(
        self, daemon, planted, tmp_path, capsys
    ):
        from repro.cli import main

        f, _ = planted
        cnf = tmp_path / "f.cnf"
        write_dimacs(f, cnf)
        stats_path = tmp_path / "stats.json"
        rc = main([
            "solve", str(cnf), "--connect", daemon.socket_path,
            "--stats-json", str(stats_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("s SATISFIABLE")
        assert "c engine: portfolio" in out
        # --stats-json in connect mode dumps the *daemon's* counters.
        import json

        stats = json.loads(stats_path.read_text())
        assert stats["engine"]["solves"] == 1

    def test_connect_unsat_exit_code(self, daemon, tmp_path, capsys):
        from repro.cli import main

        cnf = tmp_path / "unsat.cnf"
        write_dimacs(CNFFormula([[1], [-1]]), cnf)
        assert main(["solve", str(cnf), "--connect", daemon.socket_path]) == 1
        assert "UNSATISFIABLE" in capsys.readouterr().out

    def test_connect_timeout_outlives_the_deadline(
        self, daemon, planted, tmp_path, capsys, monkeypatch
    ):
        # The client socket must not give up before the daemon's solve
        # budget: no --deadline blocks indefinitely, an explicit one
        # gets transport slack on top.
        import repro.cli as cli_mod

        seen = []
        real_client = ServiceClient

        def spying_client(path, *, timeout=60.0):
            seen.append(timeout)
            return real_client(path, timeout=timeout)

        monkeypatch.setattr(
            "repro.service.client.ServiceClient", spying_client
        )
        f, _ = planted
        cnf = tmp_path / "f.cnf"
        write_dimacs(f, cnf)
        assert cli_mod.main(
            ["solve", str(cnf), "--connect", daemon.socket_path]
        ) == 0
        assert cli_mod.main([
            "solve", str(cnf), "--connect", daemon.socket_path,
            "--deadline", "120",
        ]) == 0
        capsys.readouterr()
        assert seen == [None, 150.0]


def _spawn_serve(socket_path, cache_dir, log_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--socket", str(socket_path),
            "--cache", "disk", "--cache-dir", str(cache_dir),
            "--jobs", "1", "--log-file", str(log_path),
        ],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if os.path.exists(socket_path):
            try:
                ServiceClient(str(socket_path)).close()
                return proc
            except OSError:
                pass
        if proc.poll() is not None:
            raise AssertionError(
                f"serve died early: {proc.stderr.read()}"
            )
        time.sleep(0.05)
    proc.kill()
    raise AssertionError("serve did not come up within 30s")


class TestCrossProcess:
    def test_serve_round_trip_with_persistent_cache_hit(self, tmp_path, planted):
        """The acceptance headline: two daemon *processes* in sequence
        over one disk cache; the second serves the first's verdict."""
        f, _ = planted
        sock = tmp_path / "serve.sock"
        cache_dir = tmp_path / "cache"
        log = tmp_path / "daemon.log"

        proc = _spawn_serve(sock, cache_dir, log)
        try:
            with ServiceClient(str(sock)) as client:
                cold = client.solve(SolveRequest(formula=f, seed=0))
                assert cold.status == "sat" and not cold.from_cache
                client.shutdown()
        finally:
            out, err = proc.communicate(timeout=30)
        assert proc.returncode == 0, err
        assert "listening" in out

        # Process two, same cache directory: a cross-process cache hit.
        proc = _spawn_serve(sock, cache_dir, log)
        try:
            with ServiceClient(str(sock)) as client:
                warm = client.solve(SolveRequest(formula=f, seed=0))
                assert warm.status == "sat"
                assert warm.from_cache, "expected a cross-process cache hit"
                stats = client.stats()
                assert stats["cache"]["hits"] >= 1
                assert stats["engine"]["solver_calls"] == 0
                client.shutdown()
        finally:
            out, err = proc.communicate(timeout=30)
        assert proc.returncode == 0, err
        # The forensics log is structured: one JSON record per event.
        records = [
            json.loads(line) for line in log.read_text().splitlines()
        ]
        solve_ops = [
            r for r in records if r["event"] == "op" and r["op"] == "solve"
        ]
        assert len(solve_ops) == 2           # one per daemon process
        assert all(r["ok"] for r in solve_ops)
        assert all(r["wall"] >= 0 for r in solve_ops)
        assert solve_ops[-1]["source"] == "cache"
        assert {r["event"] for r in records} >= {"listening", "op", "stopped"}

    def test_dimacs_path_request_served_from_daemon_host(self, tmp_path, planted):
        # The daemon reads a server-side DIMACS path: useful when client
        # and daemon share a filesystem and the instance is already on
        # disk (no bytes shipped at all).
        f, _ = planted
        cnf = tmp_path / "inst.cnf"
        write_dimacs(f, cnf)
        sock = tmp_path / "serve.sock"
        proc = _spawn_serve(sock, tmp_path / "cache", tmp_path / "log")
        try:
            with ServiceClient(str(sock)) as client:
                response = client.solve(
                    SolveRequest(dimacs_path=str(cnf), seed=0)
                )
                assert response.status == "sat"
                client.shutdown()
        finally:
            proc.communicate(timeout=30)
        assert proc.returncode == 0
