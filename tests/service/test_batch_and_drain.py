"""Wire-level solve_many, graceful drain, watch stream, counter safety."""

import os
import signal
import socket as socket_mod
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_planted_ksat
from repro.core.change import AddVariable, ChangeSet, RemoveClause
from repro.engine.config import EngineConfig
from repro.engine.engine import PortfolioEngine
from repro.errors import ServiceError
from repro.service.client import ServiceClient
from repro.service.daemon import ServiceDaemon
from repro.service.requests import ChangeRequest, SolveRequest
from repro.service.service import SolverService
from repro.workload.trace import read_trace

pytestmark = pytest.mark.skipif(
    not hasattr(socket_mod, "AF_UNIX"), reason="needs AF_UNIX sockets"
)

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def daemon(tmp_path):
    d = ServiceDaemon(
        str(tmp_path / "svc.sock"), SolverService(EngineConfig(jobs=1))
    )
    thread = d.start()
    yield d
    d.shutdown()
    thread.join(timeout=10)
    assert not thread.is_alive()


class TestWireBatch:
    def test_solve_many_round_trip_with_dedup(self, daemon):
        f1, _ = random_planted_ksat(12, 36, rng=1)
        f2, _ = random_planted_ksat(12, 36, rng=2)
        with ServiceClient(daemon.socket_path) as client:
            responses = client.solve_many(
                [f1, CNFFormula(f1.clauses), f2], seed=0
            )
        assert [r.status for r in responses] == ["sat", "sat", "sat"]
        assert responses[1].source == "batch-dedup"
        assert responses[0].fingerprint == responses[1].fingerprint
        assert responses[2].fingerprint != responses[0].fingerprint
        for f, r in zip((f1, f1, f2), responses):
            assert f.is_satisfied(r.assignment)

    def test_solve_many_empty_batch(self, daemon):
        with ServiceClient(daemon.socket_path) as client:
            assert client.solve_many([]) == []

    def test_malformed_lens_is_an_error_frame_not_a_crash(self, daemon):
        from repro.service.wire import recv_frame, send_frame

        f1, _ = random_planted_ksat(8, 20, rng=3)
        payload = f1.packed().to_bytes()
        with ServiceClient(daemon.socket_path) as client:
            send_frame(
                client._sock,
                {"op": "solve_many", "lens": [len(payload) + 5]},
                payload,
            )
            header, _ = recv_frame(client._sock)
            assert header["ok"] is False
            assert "lens" in header["error"]
        # The daemon survived: a fresh client still gets answers.
        with ServiceClient(daemon.socket_path) as client:
            assert client.ping()


class TestGracefulDrain:
    def test_max_requests_drains_and_stops(self, tmp_path):
        d = ServiceDaemon(
            str(tmp_path / "drain.sock"),
            SolverService(EngineConfig(jobs=1)),
            max_requests=2,
        )
        thread = d.start()
        f1, _ = random_planted_ksat(10, 30, rng=4)
        with ServiceClient(d.socket_path) as client:
            assert client.ping()           # pings do not consume budget
            r1 = client.solve(SolveRequest(formula=f1, seed=0))
            assert r1.status == "sat"
            r2 = client.solve(SolveRequest(formula=CNFFormula(f1.clauses), seed=0))
            assert r2.status == "sat"      # the budget-spending request completes
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert d.service.closed

    def test_idle_connections_do_not_stall_the_drain(self, tmp_path):
        """A client holding an open, silent connection must not pin the
        shutdown on the per-thread join timeout."""
        d = ServiceDaemon(
            str(tmp_path / "idle.sock"), SolverService(EngineConfig(jobs=1))
        )
        thread = d.start()
        idle = ServiceClient(d.socket_path)
        try:
            assert idle.ping()             # the connection is live...
            t0 = time.monotonic()          # ...and now just sits there
            d.shutdown()
            thread.join(timeout=5)
            assert not thread.is_alive()
            assert time.monotonic() - t0 < 3.0
        finally:
            idle.close()

    def test_max_requests_must_be_positive(self, tmp_path):
        with pytest.raises(ServiceError, match="max_requests"):
            ServiceDaemon(str(tmp_path / "x.sock"), max_requests=0)

    def test_sigterm_drains_flushes_recorder_and_exits_zero(self, tmp_path):
        """The CLI acceptance path: serve --record, traffic, SIGTERM."""
        sock = tmp_path / "term.sock"
        trace_path = tmp_path / "term.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--socket", str(sock), "--jobs", "1",
                "--record", str(trace_path),
            ],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            deadline = time.monotonic() + 30
            while not sock.exists():
                assert proc.poll() is None, proc.stderr.read()
                assert time.monotonic() < deadline
                time.sleep(0.05)
            f1, _ = random_planted_ksat(10, 30, rng=5)
            with ServiceClient(str(sock)) as client:
                assert client.solve(SolveRequest(formula=f1, seed=0)).status == "sat"
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0, (out, err)
        trace = read_trace(str(trace_path))
        assert [r.op for r in trace.records] == ["solve"]
        assert trace.records[0].response["status"] == "sat"


class TestWatchStream:
    """The subscribe/watch push-stream: frames under load, disconnect
    resilience, and drain responsiveness."""

    def test_frames_stream_while_load_runs(self, tmp_path):
        from repro.workload import build_scenario, client_factory, run_events

        d = ServiceDaemon(
            str(tmp_path / "watch.sock"),
            SolverService(EngineConfig(jobs=1)),
            monitor_interval=0.1,
        )
        thread = d.start()
        try:
            events = build_scenario("sat-mixed", seed=5, tenants=2, changes=3)
            load_errors: list[str] = []

            def load():
                results, _ = run_events(
                    events, client_factory(d.socket_path), concurrency=2
                )
                load_errors.extend(r.error for r in results if not r.ok)

            loader = threading.Thread(target=load)
            loader.start()
            with ServiceClient(d.socket_path) as client:
                frames = list(client.watch(interval=0.15, count=5))
                # The connection is still usable after the done frame.
                assert client.ping()
            loader.join(timeout=60)
            assert load_errors == []
            assert len(frames) == 5
            for frame in frames:
                assert frame["interval"] > 0
                assert frame["latency"]["count"] >= 0
            # The concurrent load showed up in at least one frame.
            assert sum(f["requests"] for f in frames) > 0
            assert any(f["rps"] > 0 for f in frames)
            # Cumulative totals are monotone across pushed frames.
            totals = [f["totals"].get("requests", 0) for f in frames]
            assert totals == sorted(totals)
        finally:
            d.shutdown()
            thread.join(timeout=10)
            assert not thread.is_alive()

    def test_disconnect_mid_stream_stalls_neither_accepts_nor_drain(
        self, tmp_path
    ):
        """A subscriber vanishing mid-stream must cost only its own
        handler thread — new connections keep being served and a
        subsequent drain finishes promptly."""
        d = ServiceDaemon(
            str(tmp_path / "gone.sock"),
            SolverService(EngineConfig(jobs=1)),
            monitor_interval=0.1,
        )
        thread = d.start()
        try:
            watcher = ServiceClient(d.socket_path)
            stream = watcher.watch(interval=0.1)   # unbounded stream
            assert next(stream) is not None        # ack consumed, one frame
            watcher.close()                        # vanish mid-stream
            # The accept loop still answers fresh clients...
            with ServiceClient(d.socket_path) as client:
                assert client.ping()
                f1, _ = random_planted_ksat(10, 30, rng=9)
                assert client.solve(SolveRequest(formula=f1, seed=0)).status == "sat"
        finally:
            # ...and the drain is not pinned on the dead subscriber.
            t0 = time.monotonic()
            d.shutdown()
            thread.join(timeout=10)
            assert not thread.is_alive()
            assert time.monotonic() - t0 < 5.0

    def test_drain_interrupts_an_idle_watch_stream(self, tmp_path):
        """Shutdown mid-interval ends the stream with a done frame
        instead of waiting out the subscriber's cadence."""
        d = ServiceDaemon(
            str(tmp_path / "drainwatch.sock"),
            SolverService(EngineConfig(jobs=1)),
            monitor_interval=0.1,
        )
        thread = d.start()
        watcher = ServiceClient(d.socket_path)
        try:
            stream = watcher.watch(interval=30.0)  # one frame per 30s
            shutdown_timer = threading.Timer(0.3, d.shutdown)
            shutdown_timer.start()
            t0 = time.monotonic()
            frames = list(stream)                  # ends on the drain
            assert time.monotonic() - t0 < 10.0
            assert frames == []                    # interval never elapsed
        finally:
            watcher.close()
            thread.join(timeout=10)
            assert not thread.is_alive()

    def test_bad_watch_parameters_are_error_frames(self, daemon):
        with ServiceClient(daemon.socket_path) as client:
            with pytest.raises(ServiceError, match="interval"):
                list(client.watch(interval="bogus"))
        with ServiceClient(daemon.socket_path) as client:
            with pytest.raises(ServiceError, match="count"):
                list(client.watch(count=0))
        # The daemon survived both.
        with ServiceClient(daemon.socket_path) as client:
            assert client.ping()

    def test_stats_frame_reports_windowed_rates_and_histogram(self, daemon):
        f1, _ = random_planted_ksat(10, 30, rng=8)
        with ServiceClient(daemon.socket_path) as client:
            assert client.solve(SolveRequest(formula=f1, seed=0)).status == "sat"
            daemon.monitor.sample()     # deterministic ring row
            frame = client.stats_frame(window=60.0, recent=10)
        assert frame["requests"] >= 1
        assert frame["rps"] > 0
        assert frame["latency_histogram"]["count"] >= 1
        assert frame["window"] > 0
        assert len(frame["series"]) >= 1
        assert frame["totals"]["requests"] >= 1

    def test_stats_op_carries_cache_info_and_metrics(self, daemon):
        f1, _ = random_planted_ksat(10, 30, rng=7)
        with ServiceClient(daemon.socket_path) as client:
            client.solve(SolveRequest(formula=f1, seed=0))
            stats = client.stats()
        cache = stats["cache"]
        assert cache["backend"] == "memory"
        assert cache["entries"] >= 1
        assert cache["bytes"] > 0
        assert cache["evictions"] == 0
        metrics = stats["metrics"]
        assert metrics["counters"]["requests"] >= 1
        assert metrics["histograms"]["solve_latency"]["count"] >= 1


class TestRecorderHook:
    def test_service_records_every_typed_op(self, tmp_path):
        from repro.workload.trace import TraceRecorder

        f1, witness = random_planted_ksat(10, 30, rng=6)
        path = tmp_path / "svc.jsonl"
        service = SolverService(
            EngineConfig(jobs=1), recorder=TraceRecorder(str(path))
        )
        service.solve(SolveRequest(formula=f1, session="t", seed=0))
        service.change(
            ChangeRequest("t", ChangeSet([RemoveClause(f1.clauses[0])]), seed=0)
        )
        service.solve_many([CNFFormula(f1.clauses)], seed=0)
        service.close_session("t")
        service.close()                    # flushes + closes the recorder
        trace = read_trace(str(path))
        assert [r.op for r in trace.records] == [
            "solve", "change", "solve_many", "close_session",
        ]
        assert all(r.wall >= 0 for r in trace.records)
        assert trace.records[1].response["regime"] == "loosening"
        assert trace.records[3].response["existed"] is True

    def test_failed_ops_are_not_recorded(self, tmp_path):
        from repro.workload.trace import TraceRecorder

        path = tmp_path / "err.jsonl"
        with SolverService(
            EngineConfig(jobs=1), recorder=TraceRecorder(str(path))
        ) as service:
            with pytest.raises(ServiceError):
                service.change(
                    ChangeRequest("ghost", ChangeSet([AddVariable()]), seed=0)
                )
            service.close_session("ghost")     # a miss is still an op
        trace = read_trace(str(path))
        assert [r.op for r in trace.records] == ["close_session"]
        assert trace.records[0].response["existed"] is False


class TestCounterSafetyUnderConcurrency:
    """The audit satellite: EngineStats mutation is lock-guarded."""

    def test_concurrent_submit_keeps_counters_consistent(self):
        with SolverService(EngineConfig(jobs=1, submit_workers=4)) as service:
            formulas = [
                random_planted_ksat(12, 36, rng=i)[0] for i in range(6)
            ]
            pending = []
            for round_index in range(4):
                for f in formulas:
                    pending.append(
                        service.submit(
                            SolveRequest(formula=CNFFormula(f.clauses), seed=0)
                        )
                    )
            snapshots = [service.stats() for _ in range(3)]   # racing reads
            responses = [p.result(timeout=60) for p in pending]
            assert all(r.status == "sat" for r in responses)
            stats = service.stats()["engine"]
        assert stats["solves"] == len(pending)
        # Every solve is answered by exactly one of the paths; a torn
        # increment would break this identity.  Concurrent identical
        # fingerprints may now coalesce (inflight_joins) instead of
        # hitting the cache — both count as exactly one answer path.
        assert stats["solves"] == (
            stats["cache_hits"] + stats["revalidations"] + stats["races"]
            + stats["batch_dedups"] + stats["inflight_joins"]
        )
        # Snapshots taken while submissions raced were read under the
        # engine's stats lock, so the identity must hold exactly in each
        # of them too.
        for snap in snapshots:
            engine = snap["engine"]
            assert engine["solves"] == (
                engine["cache_hits"] + engine["revalidations"] + engine["races"]
                + engine["batch_dedups"] + engine["inflight_joins"]
            )

    def test_two_services_sharing_one_engine_cannot_tear_counters(self):
        """Shared-engine embeddings have *different* service locks; the
        engine's own lock is what keeps the counters coherent."""
        with PortfolioEngine(jobs=1) as engine:
            services = [SolverService(engine=engine) for _ in range(2)]
            formulas = [random_planted_ksat(12, 36, rng=i)[0] for i in range(4)]
            errors: list[str] = []

            def hammer(service):
                try:
                    for _ in range(5):
                        for f in formulas:
                            response = service.solve(
                                SolveRequest(formula=CNFFormula(f.clauses), seed=0)
                            )
                            assert response.status == "sat"
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(repr(exc))

            threads = [
                threading.Thread(target=hammer, args=(s,)) for s in services
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert errors == []
            stats = engine.stats
            assert stats.solves == 2 * 5 * len(formulas)
            assert stats.solves == (
                stats.cache_hits + stats.revalidations + stats.races
                + stats.batch_dedups + stats.inflight_joins
            )
            for service in services:
                service.close()
