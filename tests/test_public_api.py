"""Public API surface tests: imports, __all__, error hierarchy."""

import importlib

import pytest

import repro
from repro import errors


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.8.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.cnf", "repro.ilp", "repro.sat", "repro.core",
            "repro.coloring", "repro.scheduling", "repro.bench", "repro.cli",
            "repro.engine", "repro.service", "repro.workload", "repro.obs",
        ],
    )
    def test_subpackages_import(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or obj is errors.ReproError

    def test_domain_buckets(self):
        assert issubclass(errors.DimacsError, errors.CNFError)
        assert issubclass(errors.InfeasibleError, errors.ILPError)
        assert issubclass(errors.PreservationError, errors.ECError)

    def test_catchable_as_base(self):
        from repro.cnf.clause import Clause

        with pytest.raises(errors.ReproError):
            Clause([1, -1])


class TestDocstrings:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.cnf.formula", "repro.cnf.mutations", "repro.cnf.families",
            "repro.ilp.model", "repro.ilp.branch_and_bound",
            "repro.ilp.simplex", "repro.ilp.heuristic",
            "repro.sat.encoding", "repro.sat.dpll",
            "repro.core.enabling", "repro.core.fast", "repro.core.preserving",
            "repro.core.flow", "repro.coloring.ec", "repro.scheduling.ec",
            "repro.engine.protocol", "repro.engine.adapters",
            "repro.engine.fingerprint", "repro.engine.cache",
            "repro.engine.portfolio", "repro.engine.engine",
            "repro.engine.session", "repro.engine.diskcache",
            "repro.service.requests", "repro.service.service",
            "repro.service.wire", "repro.service.daemon",
            "repro.service.client",
        ],
    )
    def test_modules_documented(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__) > 40

    def test_public_callables_documented(self):
        from repro.core import enabling, fast, preserving

        for mod in (enabling, fast, preserving):
            for name in dir(mod):
                obj = getattr(mod, name)
                if callable(obj) and not name.startswith("_") and obj.__module__ == mod.__name__:
                    assert obj.__doc__, f"{mod.__name__}.{name} lacks a docstring"
