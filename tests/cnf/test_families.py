"""Unit tests for the DIMACS-family stand-in generators."""

import pytest

from repro.cnf.families import (
    PAPER_INSTANCE_PARAMS,
    coloring_instance,
    f_instance,
    ii_instance,
    jnh_instance,
    make_instance,
    parity_instance,
)
from repro.errors import CNFError


class TestFamilyGenerators:
    @pytest.mark.parametrize(
        "maker", [parity_instance, ii_instance, jnh_instance, f_instance]
    )
    def test_exact_sizes_and_witness(self, maker):
        inst = maker(40, 150, seed=3)
        assert inst.formula.num_vars == 40
        assert inst.formula.num_clauses == 150
        inst.check()  # witness satisfies

    def test_deterministic(self):
        a = jnh_instance(30, 120, seed=7)
        b = jnh_instance(30, 120, seed=7)
        assert a.formula == b.formula

    def test_different_seeds_differ(self):
        a = f_instance(30, 120, seed=1)
        b = f_instance(30, 120, seed=2)
        assert a.formula != b.formula

    def test_parity_needs_three_vars(self):
        with pytest.raises(CNFError):
            parity_instance(2, 10)

    def test_parity_has_xor_structure(self):
        inst = parity_instance(30, 120, seed=1)
        hist = inst.formula.clause_length_histogram()
        assert hist.get(3, 0) > 0  # XOR clauses are width 3

    def test_jnh_mixed_widths(self):
        inst = jnh_instance(60, 300, seed=2)
        widths = set(inst.formula.clause_length_histogram())
        assert len(widths) >= 4  # genuinely mixed

    def test_f_is_3sat(self):
        inst = f_instance(50, 210, seed=2)
        assert set(inst.formula.clause_length_histogram()) == {3}


class TestColoringInstance:
    def test_size_formula(self):
        inst = coloring_instance(10, 3, 20, seed=1)
        assert inst.formula.num_vars == 30          # N * C
        assert inst.formula.num_clauses == 10 + 20 * 3  # N + E*C
        inst.check()

    def test_too_many_edges(self):
        with pytest.raises(CNFError):
            coloring_instance(4, 3, 100, seed=1)

    def test_needs_two_colors(self):
        with pytest.raises(CNFError):
            coloring_instance(5, 1, 2, seed=1)


class TestMakeInstance:
    def test_all_paper_names_generate_scaled(self):
        for name in PAPER_INSTANCE_PARAMS:
            inst = make_instance(name, seed=1, scale=0.05)
            inst.check()

    def test_paper_exact_sizes(self):
        inst = make_instance("par8-1-c", seed=1)
        assert inst.formula.num_vars == 64
        assert inst.formula.num_clauses == 254

    def test_coloring_exact_sizes(self):
        params = PAPER_INSTANCE_PARAMS["g250.15"]
        expected_vars = params["num_nodes"] * params["num_colors"]
        expected_clauses = params["num_nodes"] + params["num_edges"] * params["num_colors"]
        assert expected_vars == 3750
        assert expected_clauses == 233965

    def test_unknown_name(self):
        with pytest.raises(CNFError):
            make_instance("nonexistent")

    def test_bad_scale(self):
        with pytest.raises(CNFError):
            make_instance("f600", scale=0.0)
        with pytest.raises(CNFError):
            make_instance("f600", scale=1.5)
