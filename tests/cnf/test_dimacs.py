"""Unit tests for DIMACS CNF parsing and serialization."""

import io

import pytest

from repro.cnf.dimacs import parse_dimacs, read_dimacs, to_dimacs, write_dimacs
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_ksat
from repro.errors import DimacsError


GOOD = """\
c a comment
p cnf 3 2
1 -2 0
2 3 0
"""


class TestParse:
    def test_basic(self):
        f = parse_dimacs(GOOD)
        assert f.num_vars == 3 and f.num_clauses == 2

    def test_comments_and_blanks_ignored(self):
        f = parse_dimacs("c x\n\nc y\np cnf 2 1\n\n1 2 0\n")
        assert f.num_clauses == 1

    def test_clause_spanning_lines(self):
        f = parse_dimacs("p cnf 3 1\n1\n-2\n3 0\n")
        assert f.clause(0).literals == (1, -2, 3)

    def test_multiple_clauses_per_line(self):
        f = parse_dimacs("p cnf 2 2\n1 0 -2 0\n")
        assert f.num_clauses == 2

    def test_percent_terminator(self):
        f = parse_dimacs("p cnf 2 1\n1 2 0\n%\n0\n")
        assert f.num_clauses == 1

    def test_header_declares_unused_vars(self):
        f = parse_dimacs("p cnf 9 1\n1 2 0\n")
        assert f.num_vars == 9


class TestParseErrors:
    def test_missing_header(self):
        with pytest.raises(DimacsError):
            parse_dimacs("1 2 0\n")

    def test_duplicate_header(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 2 1\np cnf 2 1\n1 0\n")

    def test_malformed_header(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p sat 2 1\n1 0\n")

    def test_non_integer_token(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 2 1\n1 x 0\n")

    def test_literal_out_of_range(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 2 1\n1 5 0\n")

    def test_unterminated_clause(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 2 1\n1 2\n")

    def test_clause_count_mismatch(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf 2 5\n1 2 0\n")

    def test_negative_counts(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf -2 1\n1 0\n")


class TestRoundTrip:
    def test_roundtrip_small(self):
        f = CNFFormula([[1, -2], [2, 3]], num_vars=4)
        g = parse_dimacs(to_dimacs(f))
        assert g.num_vars == 4
        assert [c.literals for c in g.clauses] == [c.literals for c in f.clauses]

    def test_roundtrip_random(self):
        f = random_ksat(15, 50, rng=3)
        g = parse_dimacs(to_dimacs(f))
        assert g == f

    def test_comments_written(self):
        text = to_dimacs(CNFFormula([[1]]), comments=["hello"])
        assert text.startswith("c hello\n")

    def test_file_io(self, tmp_path):
        f = random_ksat(8, 20, rng=5)
        path = tmp_path / "x.cnf"
        write_dimacs(f, path)
        assert read_dimacs(path) == f

    def test_stream_io(self):
        f = CNFFormula([[1, 2]])
        buf = io.StringIO()
        write_dimacs(f, buf)
        assert parse_dimacs(buf.getvalue()) == f
