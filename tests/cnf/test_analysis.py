"""Unit tests for flexibility analysis (k-satisfaction, robustness)."""

import pytest

from repro.cnf.analysis import (
    clause_is_repairable,
    elimination_robustness,
    flexibility_report,
    flip_is_safe,
    fraction_k_satisfied,
    k_satisfaction_census,
    min_satisfaction_level,
    survives_elimination,
)
from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.errors import AssignmentError


class TestCensus:
    def test_census_counts(self):
        f = CNFFormula([[1, 2], [1, -2], [-1, 2]])
        a = Assignment({1: True, 2: True})
        assert k_satisfaction_census(f, a) == {2: 1, 1: 2}

    def test_min_level(self):
        f = CNFFormula([[1, 2], [-1, -2]])
        assert min_satisfaction_level(f, Assignment({1: True, 2: True})) == 0
        assert min_satisfaction_level(f, Assignment({1: True, 2: False})) == 1

    def test_min_level_empty_formula(self):
        assert min_satisfaction_level(CNFFormula(), Assignment({})) == 0

    def test_fraction_k_satisfied(self):
        f = CNFFormula([[1, 2], [1, -2]])
        a = Assignment({1: True, 2: True})
        assert fraction_k_satisfied(f, a, k=1) == 1.0
        assert fraction_k_satisfied(f, a, k=2) == 0.5
        assert fraction_k_satisfied(CNFFormula(), Assignment({}), k=2) == 1.0


class TestFlipSafety:
    def test_safe_flip(self):
        f = CNFFormula([[1, 2]])
        a = Assignment({1: True, 2: True})
        assert flip_is_safe(f, a, 1)  # clause still satisfied by v2

    def test_unsafe_flip(self):
        f = CNFFormula([[1, 2]])
        a = Assignment({1: True, 2: False})
        assert not flip_is_safe(f, a, 1)

    def test_repairable_clause(self):
        # (1+2) unsatisfied; flipping v2 to True repairs without damage.
        f = CNFFormula([[1, 2], [3]])
        a = Assignment({1: False, 2: False, 3: True})
        assert clause_is_repairable(f, a, 0)

    def test_unrepairable_when_flip_breaks_other(self):
        # Flipping v2 satisfies clause 0 but breaks (−2 ∨ 3); flipping v1
        # satisfies clause 0 but breaks the unit (−1).
        f = CNFFormula([[1, 2], [-2, 3], [-1]])
        a = Assignment({1: False, 2: False, 3: False})
        assert not clause_is_repairable(f, a, 0)


class TestPaperExample:
    """The §1 motivating example: solution E beats solution S."""

    def test_e_survives_everything(self, paper_formula, paper_solution_e):
        for var in paper_formula.variables:
            assert survives_elimination(paper_formula, paper_solution_e, var)
        assert elimination_robustness(paper_formula, paper_solution_e) == 1.0

    def test_s_is_less_robust(self, paper_formula, paper_solution_s, paper_solution_e):
        rs = elimination_robustness(paper_formula, paper_solution_s)
        re = elimination_robustness(paper_formula, paper_solution_e)
        assert rs < re

    def test_v3_elimination_repaired_by_v4(self, paper_formula, paper_solution_e):
        # The paper: eliminating v3 unsatisfies f4, but flipping v4 fixes it.
        assert survives_elimination(paper_formula, paper_solution_e, 3)


class TestReport:
    def test_report_fields(self, planted_small):
        f, p = planted_small
        rep = flexibility_report(f, p)
        assert rep.num_vars == 20 and rep.num_clauses == 60
        assert 0.0 <= rep.fraction_2_satisfied <= 1.0
        assert 0.0 <= rep.robustness <= 1.0
        assert rep.min_level >= 1  # p satisfies f
        assert rep.fragile_clauses == rep.census.get(1, 0)

    def test_report_without_robustness(self, planted_small):
        import math

        f, p = planted_small
        rep = flexibility_report(f, p, with_robustness=False)
        assert math.isnan(rep.robustness)

    def test_partial_assignment_rejected(self):
        f = CNFFormula([[1, 2]])
        with pytest.raises(AssignmentError):
            flexibility_report(f, Assignment({1: True}))
