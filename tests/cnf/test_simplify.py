"""Unit and property tests for CNF preprocessing."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cnf.assignment import Assignment
from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula
from repro.cnf.simplify import (
    eliminate_pure_literals,
    propagate_units,
    remove_subsumed,
    simplify,
)
from repro.sat.brute import brute_force_solve


class TestUnitPropagation:
    def test_chain(self):
        f = CNFFormula([[1], [-1, 2], [-2, 3]])
        res = propagate_units(f)
        assert res.forced.as_dict() == {1: True, 2: True, 3: True}
        assert res.formula.num_clauses == 0

    def test_conflict_detected(self):
        res = propagate_units(CNFFormula([[1], [-1]]))
        assert res.proven_unsat

    def test_derived_empty_clause(self):
        res = propagate_units(CNFFormula([[1], [2], [-1, -2]]))
        assert res.proven_unsat

    def test_no_units_noop(self):
        f = CNFFormula([[1, 2], [-1, -2]])
        res = propagate_units(f)
        assert len(res.forced) == 0
        assert res.formula.num_clauses == 2

    def test_shortened_clauses_survive(self):
        f = CNFFormula([[1], [-1, 2, 3]])
        res = propagate_units(f)
        assert res.formula.clauses[0] == Clause([2, 3])


class TestPureLiterals:
    def test_pure_positive(self):
        f = CNFFormula([[1, 2], [1, -2]])
        res = eliminate_pure_literals(f)
        assert res.forced.get(1) is True
        assert res.formula.num_clauses == 0

    def test_cascading_purity(self):
        # Fixing pure v1 deletes the clause that kept v2 impure.
        f = CNFFormula([[1, -2], [2, 3], [2, -3]])
        res = eliminate_pure_literals(f)
        assert res.forced.get(1) is True
        assert res.forced.get(2) is True

    def test_no_pure(self):
        f = CNFFormula([[1, 2], [-1, -2]])
        res = eliminate_pure_literals(f)
        assert len(res.forced) == 0


class TestSubsumption:
    def test_subset_subsumes(self):
        f = CNFFormula([[1, 2], [1, 2, 3]])
        res = remove_subsumed(f)
        assert res.formula.clauses == (Clause([1, 2]),)
        assert res.removed_clauses == 1

    def test_duplicates_collapse(self):
        f = CNFFormula([[1, 2], [2, 1]])
        assert remove_subsumed(f).formula.num_clauses == 1

    def test_variables_stay_active(self):
        f = CNFFormula([[1, 2], [1, 2, 3]])
        assert 3 in remove_subsumed(f).formula.variables


@st.composite
def small_formulas(draw):
    n_clauses = draw(st.integers(1, 10))
    cls = []
    for _ in range(n_clauses):
        width = draw(st.integers(1, 3))
        variables = draw(
            st.lists(st.integers(1, 6), min_size=width, max_size=width, unique=True)
        )
        signs = draw(st.lists(st.booleans(), min_size=width, max_size=width))
        cls.append(Clause([v if s else -v for v, s in zip(variables, signs)]))
    return CNFFormula(cls, num_vars=6)


class TestSimplifyPipeline:
    @settings(max_examples=50, deadline=None)
    @given(small_formulas())
    def test_equisatisfiable(self, f):
        res = simplify(f)
        original_sat = brute_force_solve(f) is not None
        if res.proven_unsat:
            assert not original_sat
            return
        model = brute_force_solve(res.formula)
        assert (model is not None) == original_sat
        if model is not None:
            lifted = res.lift(model)
            # Complete don't-cares arbitrarily.
            for var in f.variables:
                if var not in lifted:
                    lifted[var] = False
            assert f.is_satisfied(lifted)

    @settings(max_examples=30, deadline=None)
    @given(small_formulas())
    def test_never_grows(self, f):
        res = simplify(f)
        if not res.proven_unsat:
            assert res.formula.num_clauses <= f.num_clauses

    def test_fully_solves_horn_like(self):
        f = CNFFormula([[1], [-1, 2], [-2, 3], [-3, 4]])
        res = simplify(f)
        assert not res.proven_unsat
        assert res.formula.num_clauses == 0
        assert f.is_satisfied(res.forced)
