"""Unit tests for the immutable Clause type."""

import pytest

from repro.cnf.assignment import Assignment
from repro.cnf.clause import Clause
from repro.errors import ClauseError


class TestClauseConstruction:
    def test_normalizes_order(self):
        assert Clause([3, -1, 2]) == Clause([-1, 2, 3])

    def test_deduplicates(self):
        assert Clause([1, 1, 2]).literals == (1, 2)

    def test_tautology_rejected(self):
        with pytest.raises(ClauseError):
            Clause([1, -1, 2])

    def test_tautology_allowed_when_asked(self):
        cl = Clause([1, -1], allow_tautology=True)
        assert cl.is_tautology()

    def test_empty_clause(self):
        cl = Clause([])
        assert cl.is_empty() and len(cl) == 0

    def test_hashable_and_equal(self):
        assert hash(Clause([1, -2])) == hash(Clause([-2, 1]))
        assert len({Clause([1, -2]), Clause([-2, 1])}) == 1


class TestClauseQueries:
    def test_variables(self):
        assert Clause([3, -1, 2]).variables == (1, 2, 3)

    def test_contains_variable(self):
        cl = Clause([1, -2])
        assert cl.contains_variable(2) and not cl.contains_variable(3)

    def test_polarity_of(self):
        cl = Clause([1, -2])
        assert cl.polarity_of(1) == 1
        assert cl.polarity_of(2) == -1
        assert cl.polarity_of(3) is None

    def test_polarity_of_tautology_is_zero(self):
        cl = Clause([1, -1], allow_tautology=True)
        assert cl.polarity_of(1) == 0

    def test_is_unit(self):
        assert Clause([5]).is_unit()
        assert not Clause([5, 6]).is_unit()

    def test_contains_literal(self):
        cl = Clause([1, -2])
        assert -2 in cl and 2 not in cl


class TestWithoutVariable:
    def test_removes_both_polarities(self):
        cl = Clause([1, -2, 3])
        assert cl.without_variable(2).literals == (1, 3)

    def test_can_empty(self):
        assert Clause([4]).without_variable(4).is_empty()

    def test_noop_when_absent(self):
        cl = Clause([1, 2])
        assert cl.without_variable(9) == cl


class TestClauseEvaluation:
    def test_satisfied(self):
        cl = Clause([1, -2])
        assert cl.is_satisfied(Assignment({1: True, 2: True}))
        assert cl.is_satisfied(Assignment({1: False, 2: False}))
        assert not cl.is_satisfied(Assignment({1: False, 2: True}))

    def test_unassigned_does_not_satisfy(self):
        cl = Clause([1, 2])
        assert not cl.is_satisfied(Assignment({}))
        assert not cl.is_satisfied(Assignment({1: False}))

    def test_satisfaction_level(self):
        cl = Clause([1, 2, -3])
        a = Assignment({1: True, 2: True, 3: False})
        assert cl.satisfaction_level(a) == 3
        assert cl.satisfied_literals(a) == (1, 2, -3)

    def test_empty_clause_never_satisfied(self):
        assert not Clause([]).is_satisfied(Assignment({1: True}))
