"""Unit tests for the EC mutation operators."""

import pytest

from repro.cnf.generators import random_planted_ksat
from repro.cnf.mutations import (
    MutationLog,
    add_fresh_variables,
    add_random_clauses,
    eliminate_random_variables,
    remove_random_clauses,
    table2_trial,
    table3_trial,
)
from repro.errors import ChangeError
from repro.sat.dpll import dpll_solve


@pytest.fixture
def planted():
    return random_planted_ksat(30, 90, rng=5)


class TestAddRandomClauses:
    def test_count_and_log(self, planted):
        f, p = planted
        g, log = add_random_clauses(f, 7, rng=1)
        assert g.num_clauses == f.num_clauses + 7
        assert len(log.added_clauses) == 7
        assert f.num_clauses == 90  # original untouched

    def test_witness_constrained(self, planted):
        f, p = planted
        g, _ = add_random_clauses(f, 20, rng=1, satisfiable_with=p)
        assert g.is_satisfied(p)

    def test_no_variables_raises(self):
        from repro.cnf.formula import CNFFormula

        with pytest.raises(ChangeError):
            add_random_clauses(CNFFormula(), 1, rng=0)


class TestRemoveRandomClauses:
    def test_count(self, planted):
        f, _ = planted
        g, log = remove_random_clauses(f, 5, rng=2)
        assert g.num_clauses == 85
        assert len(log.removed_clauses) == 5

    def test_too_many(self, planted):
        f, _ = planted
        with pytest.raises(ChangeError):
            remove_random_clauses(f, 91, rng=2)

    def test_loosening_preserves_witness(self, planted):
        f, p = planted
        g, _ = remove_random_clauses(f, 10, rng=3)
        assert g.is_satisfied(p)


class TestAddFreshVariables:
    def test_fresh_ids(self, planted):
        f, _ = planted
        g, log = add_fresh_variables(f, 3)
        assert log.added_variables == [31, 32, 33]
        assert g.num_vars == 33


class TestEliminateRandomVariables:
    def test_no_empty_clause(self, planted):
        f, _ = planted
        g, log = eliminate_random_variables(f, 3, rng=4)
        assert not g.has_empty_clause()
        assert len(log.removed_variables) == 3
        assert g.num_vars == 27

    def test_satisfiability_vetting(self, planted):
        f, p = planted
        g, _ = eliminate_random_variables(f, 3, rng=4, keep_satisfiable_with=p)
        assert dpll_solve(g).satisfiable


class TestTableTrials:
    def test_table2_trial_shape(self, planted):
        f, p = planted
        g, log = table2_trial(f, p, rng=6)
        assert len(log.removed_variables) == 3
        assert len(log.added_clauses) == 10
        assert g.num_vars == 27
        assert dpll_solve(g).satisfiable

    def test_table3_trial_shape(self, planted):
        f, p = planted
        g, log = table3_trial(f, p, rng=6)
        assert len(log.added_variables) == 5
        assert len(log.removed_variables) == 5
        assert len(log.added_clauses) == 5
        assert len(log.removed_clauses) == 5
        assert g.num_vars == 30  # -5 +5
        assert dpll_solve(g).satisfiable

    def test_log_summary(self):
        log = MutationLog()
        assert "+0 clauses" in log.summary()
