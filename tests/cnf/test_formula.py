"""Unit tests for CNFFormula, including the four EC edit primitives."""

import pytest

from repro.cnf.assignment import Assignment
from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula
from repro.errors import ClauseError, VariableError


@pytest.fixture
def f():
    return CNFFormula([[1, 2], [-1, 3], [2, -3]])


class TestConstruction:
    def test_from_literal_lists(self, f):
        assert f.num_clauses == 3
        assert f.variables == (1, 2, 3)

    def test_num_vars_header(self):
        g = CNFFormula([[1]], num_vars=5)
        assert g.variables == (1, 2, 3, 4, 5)

    def test_header_too_small_rejected(self):
        with pytest.raises(VariableError):
            CNFFormula([[7]], num_vars=3)

    def test_empty_clause_rejected(self):
        with pytest.raises(ClauseError):
            CNFFormula([[]])

    def test_empty_formula(self):
        g = CNFFormula()
        assert g.num_vars == 0 and g.num_clauses == 0
        assert g.is_satisfied(Assignment({}))


class TestClauseEdits:
    def test_add_clause_activates_variables(self, f):
        f.add_clause([4, -5])
        assert 4 in f.variables and 5 in f.variables

    def test_remove_clause(self, f):
        f.remove_clause([1, 2])
        assert f.num_clauses == 2

    def test_remove_missing_clause_raises(self, f):
        with pytest.raises(ClauseError):
            f.remove_clause([9, 10])

    def test_remove_clause_keeps_variables_active(self, f):
        f.remove_clause([1, 2])
        assert 1 in f.variables  # still active (free) per EC semantics

    def test_remove_clause_at(self, f):
        removed = f.remove_clause_at(0)
        assert removed == Clause([1, 2])
        with pytest.raises(ClauseError):
            f.remove_clause_at(99)

    def test_duplicates_allowed(self):
        g = CNFFormula([[1, 2], [1, 2]])
        assert g.num_clauses == 2
        assert g.deduplicated().num_clauses == 1


class TestVariableEdits:
    def test_add_variable_fresh(self, f):
        v = f.add_variable()
        assert v == 4 and 4 in f.variables

    def test_add_existing_variable_raises(self, f):
        with pytest.raises(VariableError):
            f.add_variable(2)

    def test_remove_variable_strips_literals(self, f):
        touched = f.remove_variable(3)
        assert touched == 2
        assert 3 not in f.variables
        assert all(not cl.contains_variable(3) for cl in f.clauses)

    def test_remove_variable_can_empty_clause(self):
        g = CNFFormula([[1]])
        g.remove_variable(1)
        assert g.has_empty_clause()

    def test_remove_inactive_variable_raises(self, f):
        with pytest.raises(VariableError):
            f.remove_variable(9)


class TestEvaluation:
    def test_is_satisfied(self, f):
        assert f.is_satisfied(Assignment({1: True, 2: True, 3: True}))
        assert not f.is_satisfied(Assignment({1: False, 2: False, 3: True}))

    def test_unsatisfied_clauses(self, f):
        a = Assignment({1: False, 2: False, 3: True})
        bad = f.unsatisfied_clauses(a)
        assert bad == [Clause([1, 2]), Clause([2, -3])]
        assert f.unsatisfied_indices(a) == [0, 2]

    def test_satisfaction_levels(self, f):
        levels = f.satisfaction_levels(Assignment({1: True, 2: True, 3: True}))
        assert levels == [2, 1, 1]


class TestStructureQueries:
    def test_clauses_with_variable(self, f):
        assert f.clauses_with_variable(1) == [0, 1]

    def test_occurrence_counts(self, f):
        occ = f.occurrence_counts()
        assert occ[1] == 1 and occ[-1] == 1 and occ[2] == 2

    def test_pure_literals(self, f):
        assert f.pure_literals() == [2]

    def test_unused_variables(self):
        g = CNFFormula([[1]], num_vars=3)
        assert g.unused_variables() == [2, 3]

    def test_histogram_and_density(self, f):
        assert f.clause_length_histogram() == {2: 3}
        assert f.density() == pytest.approx(1.0)

    def test_density_empty(self):
        assert CNFFormula().density() == 0.0


class TestCopies:
    def test_copy_is_independent(self, f):
        g = f.copy()
        g.add_clause([1, 3])
        assert f.num_clauses == 3 and g.num_clauses == 4

    def test_restricted_to_clauses(self, f):
        sub = f.restricted_to_clauses([0, 2])
        assert sub.num_clauses == 2
        assert sub.variables == (1, 2, 3)

    def test_equality(self):
        a = CNFFormula([[1, 2], [-1, 3]])
        b = CNFFormula([[-1, 3], [1, 2]])
        assert a == b
