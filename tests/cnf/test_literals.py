"""Unit tests for DIMACS-style literal helpers."""

import pytest

from repro.cnf.literals import (
    check_literal,
    check_variable,
    complement,
    evaluate_literal,
    is_negative,
    is_positive,
    literal,
    literal_to_str,
    variable_of,
)
from repro.errors import LiteralError, VariableError


class TestLiteralConstruction:
    def test_positive_literal(self):
        assert literal(3) == 3

    def test_negative_literal(self):
        assert literal(3, positive=False) == -3

    def test_zero_variable_rejected(self):
        with pytest.raises(VariableError):
            literal(0)

    def test_negative_variable_rejected(self):
        with pytest.raises(VariableError):
            literal(-2)

    def test_bool_is_not_a_variable(self):
        with pytest.raises(VariableError):
            check_variable(True)


class TestLiteralValidation:
    def test_zero_literal_rejected(self):
        with pytest.raises(LiteralError):
            check_literal(0)

    def test_non_int_rejected(self):
        with pytest.raises(LiteralError):
            check_literal("3")

    def test_bool_rejected(self):
        with pytest.raises(LiteralError):
            check_literal(True)

    def test_valid_passthrough(self):
        assert check_literal(-17) == -17


class TestLiteralQueries:
    def test_variable_of(self):
        assert variable_of(5) == 5
        assert variable_of(-5) == 5

    def test_complement_involution(self):
        for lit in (1, -1, 42, -42):
            assert complement(complement(lit)) == lit

    def test_polarity_predicates(self):
        assert is_positive(9) and not is_negative(9)
        assert is_negative(-9) and not is_positive(-9)

    def test_to_str(self):
        assert literal_to_str(5) == "v5"
        assert literal_to_str(-5) == "v5'"


class TestEvaluateLiteral:
    @pytest.mark.parametrize(
        "lit,value,expected",
        [(1, True, True), (1, False, False), (-1, True, False), (-1, False, True)],
    )
    def test_truth_table(self, lit, value, expected):
        assert evaluate_literal(lit, value) is expected
