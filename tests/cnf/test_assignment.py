"""Unit tests for (partial) truth assignments."""

import pytest

from repro.cnf.assignment import Assignment
from repro.errors import AssignmentError


class TestConstruction:
    def test_from_mapping(self):
        a = Assignment({1: True, 2: False})
        assert a[1] is True and a[2] is False

    def test_from_literals(self):
        a = Assignment.from_literals([1, -2, 3])
        assert a.as_dict() == {1: True, 2: False, 3: True}

    def test_all_false_true(self):
        assert Assignment.all_false([1, 2]).as_dict() == {1: False, 2: False}
        assert Assignment.all_true([3]).as_dict() == {3: True}

    def test_rejects_non_bool(self):
        with pytest.raises(AssignmentError):
            Assignment({1: 1})

    def test_rejects_bad_variable(self):
        with pytest.raises(Exception):
            Assignment({0: True})


class TestAccess:
    def test_get_default(self):
        a = Assignment({1: True})
        assert a.get(2) is None
        assert a.get(2, False) is False

    def test_getitem_unassigned_raises(self):
        with pytest.raises(AssignmentError):
            Assignment({})[4]

    def test_contains_and_len(self):
        a = Assignment({1: True, 5: False})
        assert 5 in a and 2 not in a
        assert len(a) == 2
        assert list(a) == [1, 5]


class TestMutation:
    def test_flip_in_place(self):
        a = Assignment({1: True})
        a.flip(1)
        assert a[1] is False

    def test_flip_unassigned_raises(self):
        with pytest.raises(AssignmentError):
            Assignment({}).flip(3)

    def test_flipped_copy(self):
        a = Assignment({1: True})
        b = a.flipped(1)
        assert a[1] is True and b[1] is False

    def test_unassign(self):
        a = Assignment({1: True}).unassign(1)
        assert 1 not in a


class TestCombinators:
    def test_restricted_to(self):
        a = Assignment({1: True, 2: False, 3: True})
        assert a.restricted_to([1, 3]).as_dict() == {1: True, 3: True}

    def test_merged_with_overrides(self):
        base = Assignment({1: True, 2: True})
        patch = Assignment({2: False, 3: False})
        merged = base.merged_with(patch)
        assert merged.as_dict() == {1: True, 2: False, 3: False}
        # originals untouched
        assert base[2] is True

    def test_agreement(self):
        a = Assignment({1: True, 2: False, 3: True})
        b = Assignment({1: True, 2: True, 3: True})
        assert a.agreement_with(b) == 2
        assert a.agreement_fraction(b) == pytest.approx(2 / 3)

    def test_agreement_empty(self):
        assert Assignment({}).agreement_fraction(Assignment({1: True})) == 1.0

    def test_to_literals_roundtrip(self):
        a = Assignment({2: False, 7: True})
        assert Assignment.from_literals(a.to_literals()) == a

    def test_copy_independent(self):
        a = Assignment({1: True})
        b = a.copy()
        b.flip(1)
        assert a[1] is True
