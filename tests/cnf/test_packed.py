"""The packed flat-array kernel: construction, sync, wire format, digests.

The load-bearing property is **incremental consistency**: a
:class:`PackedCNF` built once and maintained through a randomized EC
mutation chain must stay literally identical (arrays, variables, empty
count, fingerprint) to a kernel rebuilt from scratch off the mutated
formula — and fp-v2 must equal its from-scratch oracle after every edit.
"""

from __future__ import annotations

import random

import pytest

from repro.cnf.assignment import Assignment
from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_ksat
from repro.cnf.packed import PackedCNF
from repro.engine.fingerprint import fingerprint_v2, fingerprint_v2_scratch
from repro.errors import CNFError


def assert_in_sync(formula: CNFFormula, packed: PackedCNF) -> None:
    """The incrementally maintained kernel equals a from-scratch rebuild."""
    rebuilt = PackedCNF.from_formula(formula)
    assert packed.lits == rebuilt.lits
    assert packed.offsets == rebuilt.offsets
    assert packed.variables == rebuilt.variables
    assert packed.has_empty_clause() == rebuilt.has_empty_clause()
    assert packed.fingerprint() == rebuilt.fingerprint()


class TestConstruction:
    def test_from_formula_layout(self):
        f = CNFFormula([[1, -2], [3], [-1, 2, -3]])
        p = PackedCNF.from_formula(f)
        assert p.num_clauses == 3
        assert list(p.offsets) == [0, 2, 3, 6]
        assert p.clause_literals(0) == (1, -2)
        assert p.clause_literals(1) == (3,)
        assert p.clause_literals(2) == (-1, 2, -3)
        assert p.variables == (1, 2, 3)

    def test_free_variables_carried(self):
        f = CNFFormula([[1, 2]], num_vars=5)
        p = PackedCNF.from_formula(f)
        assert p.variables == (1, 2, 3, 4, 5)

    def test_from_clauses_normalizes(self):
        p = PackedCNF.from_clauses([[2, -1, 2]])
        assert p.clause_literals(0) == (-1, 2)

    def test_to_formula_round_trip(self):
        f = random_ksat(8, 30, k=3, rng=1)
        g = PackedCNF.from_formula(f).to_formula()
        assert f == g

    def test_tautology_detection(self):
        p = PackedCNF.from_clauses([[1, -1, 2], [1, 2]])
        assert p.is_tautology_at(0) and not p.is_tautology_at(1)

    def test_is_satisfied_matches_formula(self):
        f = random_ksat(6, 20, k=3, rng=2)
        p = PackedCNF.from_formula(f)
        for seed in range(10):
            rng = random.Random(seed)
            a = Assignment({v: bool(rng.getrandbits(1)) for v in f.variables})
            assert p.is_satisfied(a) == f.is_satisfied(a)


class TestWireFormat:
    def test_round_trip(self):
        f = random_ksat(10, 40, k=3, rng=3)
        f.add_variable()                           # a free variable
        p = f.packed()
        q = PackedCNF.from_bytes(p.to_bytes())
        assert q == p
        assert q.variables == p.variables
        assert list(q.iter_clauses()) == list(p.iter_clauses())

    def test_round_trip_preserves_empty_clause(self):
        f = CNFFormula([[1], [1, 2]])
        f.remove_variable(1)                       # first clause empties
        q = PackedCNF.from_bytes(f.packed().to_bytes())
        assert q.has_empty_clause()

    def test_bad_magic_rejected(self):
        with pytest.raises(CNFError, match="magic|truncated"):
            PackedCNF.from_bytes(b"XXXX" + bytes(32))

    def test_truncated_rejected(self):
        payload = PackedCNF.from_formula(CNFFormula([[1, 2]])).to_bytes()
        with pytest.raises(CNFError, match="bytes|truncated"):
            PackedCNF.from_bytes(payload[:-2])

    def test_inconsistent_offsets_rejected(self):
        from array import array

        p = PackedCNF.from_formula(CNFFormula([[1, 2], [2, 3]]))
        good = p.to_bytes()
        # Corrupt the offset index in place: right length, wrong content.
        item = array("i").itemsize
        offsets_at = len(good) - item * (p.num_clauses + 1 + p.num_literals)
        mangled = bytearray(good)
        mangled[offsets_at : offsets_at + item] = array("i", [1]).tobytes()
        with pytest.raises(CNFError, match="offsets"):
            PackedCNF.from_bytes(bytes(mangled))

    def test_non_monotonic_offsets_rejected(self):
        from array import array

        p = PackedCNF.from_formula(CNFFormula([[1, 2], [2, 3]]))
        good = p.to_bytes()
        item = array("i").itemsize
        offsets_at = len(good) - item * (p.num_clauses + 1 + p.num_literals)
        mangled = bytearray(good)
        middle = offsets_at + item                   # offsets[1]: 2 -> 5 (> offsets[2] = 4)
        mangled[middle : middle + item] = array("i", [5]).tobytes()
        with pytest.raises(CNFError, match="monotonic"):
            PackedCNF.from_bytes(bytes(mangled))

    def test_empty_formula_round_trip(self):
        q = PackedCNF.from_bytes(PackedCNF.from_formula(CNFFormula()).to_bytes())
        assert q.num_clauses == 0 and q.num_vars == 0

    def test_fingerprint_survives_wire(self):
        f = random_ksat(9, 35, k=3, rng=4)
        p = f.packed()
        assert PackedCNF.from_bytes(p.to_bytes()).fingerprint() == p.fingerprint()


class TestIncrementalMaintenance:
    def test_add_clause_maintains(self):
        f = CNFFormula([[1, 2]])
        p = f.packed()
        f.add_clause([2, -3])
        assert p is f.packed()                     # maintained, not rebuilt
        assert_in_sync(f, p)

    def test_remove_clause_maintains(self):
        f = CNFFormula([[1, 2], [2, 3], [1, 2]])
        p = f.packed()
        f.remove_clause([2, 3])
        assert_in_sync(f, p)

    def test_remove_clause_at_negative_index(self):
        f = CNFFormula([[1, 2], [2, 3], [-1, 3]])
        p = f.packed()
        f.remove_clause_at(-2)
        assert_in_sync(f, p)

    def test_remove_variable_maintains(self):
        f = CNFFormula([[1, 2], [2, 3], [-2, -3], [1, 3]])
        p = f.packed()
        f.remove_variable(3)
        assert_in_sync(f, p)

    def test_elimination_to_empty_clause_tracked(self):
        f = CNFFormula([[1], [1, 2]])
        p = f.packed()
        f.remove_variable(1)
        assert p.has_empty_clause()
        assert_in_sync(f, p)

    def test_copy_is_independent(self):
        f = CNFFormula([[1, 2], [2, 3]])
        f.packed()
        g = f.copy()
        g.add_clause([-1, -3])
        assert f.packed().num_clauses == 2
        assert g.packed().num_clauses == 3
        assert_in_sync(f, f.packed())
        assert_in_sync(g, g.packed())

    @pytest.mark.parametrize("chain_seed", range(8))
    def test_randomized_mutation_chain_stays_in_sync(self, chain_seed):
        """The kernel tracks add/remove clause + add/eliminate variable."""
        rng = random.Random(chain_seed)
        f = random_ksat(rng.randint(4, 9), rng.randint(6, 25), k=3, rng=rng)
        p = f.packed()
        for _ in range(30):
            op = rng.randrange(4)
            if op == 0:
                vs = rng.sample(list(f.variables), k=min(3, f.num_vars))
                f.add_clause(Clause(v if rng.random() < 0.5 else -v for v in vs))
            elif op == 1 and f.num_clauses > 1:
                f.remove_clause_at(rng.randrange(f.num_clauses))
            elif op == 2:
                f.add_variable()
            elif op == 3 and f.num_vars > 2:
                victim = rng.choice(list(f.variables))
                try:
                    f.remove_variable(victim)
                except Exception:  # pragma: no cover - never empties here
                    raise
            assert p is f.packed()
            # fp-v2 incremental state equals the from-scratch oracle at
            # *every* step, not just at the end.
            assert fingerprint_v2(f) == fingerprint_v2_scratch(f)
        assert_in_sync(f, p)


class TestFingerprintV2:
    def test_clause_order_invariant(self):
        a = CNFFormula([[1, 2], [2, 3], [-1, 3]])
        b = CNFFormula([[-1, 3], [1, 2], [2, 3]])
        assert fingerprint_v2(a) == fingerprint_v2(b)

    def test_duplicate_invariant(self):
        a = CNFFormula([[1, 2], [2, 3]])
        b = CNFFormula([[1, 2], [2, 3], [1, 2], [1, 2]])
        assert fingerprint_v2(a) == fingerprint_v2(b)

    def test_free_variables_excluded(self):
        assert fingerprint_v2(CNFFormula([[1, 2]])) == fingerprint_v2(
            CNFFormula([[1, 2]], num_vars=7)
        )

    def test_differs_from_v1(self):
        from repro.engine.fingerprint import fingerprint

        f = CNFFormula([[1, 2]])
        assert fingerprint_v2(f) != fingerprint(f)

    def test_content_sensitivity(self):
        assert fingerprint_v2(CNFFormula([[1, 2]])) != fingerprint_v2(
            CNFFormula([[1, -2]])
        )

    def test_empty_clause_distinguished(self):
        plain = CNFFormula([[1, 2]])
        emptied = CNFFormula([[3], [1, 2]])
        emptied.remove_variable(3)
        assert fingerprint_v2(plain) != fingerprint_v2(emptied)

    def test_dedup_then_removal_of_one_duplicate(self):
        """Removing one of two identical clauses must not drop the digest."""
        f = CNFFormula([[1, 2], [1, 2], [2, 3]])
        fp_before = fingerprint_v2(f)
        f.remove_clause([1, 2])
        assert fingerprint_v2(f) == fp_before          # one copy remains
        assert fingerprint_v2(f) == fingerprint_v2_scratch(f)
        f.remove_clause([1, 2])
        assert fingerprint_v2(f) != fp_before          # now really gone
        assert fingerprint_v2(f) == fingerprint_v2_scratch(f)
