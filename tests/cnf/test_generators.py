"""Unit tests for the random formula generators."""

import random

import pytest

from repro.cnf.generators import (
    random_clause,
    random_ksat,
    random_mixed_width,
    random_planted_ksat,
)
from repro.errors import CNFError


class TestRandomClause:
    def test_width(self):
        cl = random_clause(range(1, 11), 4, rng=0)
        assert len(cl) == 4

    def test_width_exceeds_pool(self):
        with pytest.raises(CNFError):
            random_clause([1, 2], 3, rng=0)

    def test_deterministic_with_seed(self):
        a = random_clause(range(1, 20), 3, rng=random.Random(9))
        b = random_clause(range(1, 20), 3, rng=random.Random(9))
        assert a == b


class TestRandomKSat:
    def test_shape(self):
        f = random_ksat(30, 100, k=3, rng=1)
        assert f.num_vars == 30 and f.num_clauses == 100
        assert all(len(c) == 3 for c in f.clauses)

    def test_deterministic(self):
        assert random_ksat(10, 20, rng=4) == random_ksat(10, 20, rng=4)


class TestPlanted:
    def test_witness_satisfies(self):
        f, p = random_planted_ksat(40, 160, rng=2)
        assert f.is_satisfied(p)
        assert len(p) == 40

    def test_all_clause_widths(self):
        f, _ = random_planted_ksat(20, 50, k=4, rng=2)
        assert all(len(c) == 4 for c in f.clauses)


class TestMixedWidth:
    def test_width_distribution_support(self):
        f = random_mixed_width(30, 200, {2: 0.5, 5: 0.5}, rng=3)
        widths = {len(c) for c in f.clauses}
        assert widths <= {2, 5}
        assert len(widths) == 2  # both widths drawn at this sample size

    def test_planted_mixed(self):
        from repro.cnf.assignment import Assignment

        plant = Assignment({v: v % 2 == 0 for v in range(1, 16)})
        f = random_mixed_width(15, 60, {3: 1.0}, rng=5, planted=plant)
        assert f.is_satisfied(plant)

    def test_width_capped_at_num_vars(self):
        f = random_mixed_width(3, 10, {8: 1.0}, rng=1)
        assert all(len(c) <= 3 for c in f.clauses)
