"""Unit tests for graph-coloring engineering change."""

import networkx as nx
import pytest

from repro.coloring.ec import (
    coloring_flexibility,
    enable_coloring_ec,
    fast_coloring_ec,
    preserving_coloring_ec,
)
from repro.coloring.generators import random_colorable_graph
from repro.coloring.problem import GraphColoringProblem
from repro.errors import ECError, ModelError


@pytest.fixture
def small():
    g, planted = random_colorable_graph(12, 4, 20, rng=3)
    return GraphColoringProblem(g, 4), planted


class TestFlexibility:
    def test_planted_flexibility_in_range(self, small):
        prob, planted = small
        flex = coloring_flexibility(prob, planted)
        assert 0.0 <= flex <= 1.0

    def test_empty_graph_fully_flexible(self):
        prob = GraphColoringProblem(nx.Graph(), 3)
        assert coloring_flexibility(prob, {}) == 1.0

    def test_path_two_colors_inflexible(self):
        # A path with exactly 2 colors: middle node has no spare color.
        g = nx.path_graph(3)
        prob = GraphColoringProblem(g, 2)
        flex = coloring_flexibility(prob, {0: 1, 1: 2, 2: 1})
        assert flex == pytest.approx(0.0)


class TestEnabling:
    def test_objective_mode_maximizes_flexibility(self, small):
        prob, planted = small
        result = enable_coloring_ec(prob)
        assert result.succeeded
        assert prob.is_proper(result.coloring)
        assert result.flexibility >= coloring_flexibility(prob, planted) - 1e-9

    def test_constraint_mode_floor(self, small):
        prob, _ = small
        result = enable_coloring_ec(
            prob, mode="constraints", min_flexible_fraction=0.5
        )
        assert result.succeeded
        assert result.flexibility >= 0.5

    def test_bad_mode(self, small):
        prob, _ = small
        with pytest.raises(ECError):
            enable_coloring_ec(prob, mode="wishful")


class TestFastEC:
    def _add_conflicting_edges(self, g, coloring, count):
        g = g.copy()
        added = 0
        for u in g.nodes:
            for v in g.nodes:
                if u < v and not g.has_edge(u, v) and coloring[u] == coloring[v]:
                    g.add_edge(u, v)
                    added += 1
                    break
            if added >= count:
                break
        assert added == count
        return g

    def test_no_change_is_noop(self, small):
        prob, planted = small
        result = fast_coloring_ec(prob, planted)
        assert result.succeeded
        assert result.coloring == dict(planted)
        assert result.recolored_nodes == ()

    def test_edge_insertion_repaired_locally(self, small):
        prob, planted = small
        g2 = self._add_conflicting_edges(prob.graph, planted, 2)
        prob2 = GraphColoringProblem(g2, prob.num_colors)
        result = fast_coloring_ec(prob2, planted)
        assert result.succeeded
        assert prob2.is_proper(result.coloring)
        assert len(result.recolored_nodes) <= 4  # endpoints only

    def test_uncolored_node_gets_color(self, small):
        prob, planted = small
        partial = {n: c for n, c in planted.items() if n != 0}
        result = fast_coloring_ec(prob, partial)
        assert result.succeeded
        assert prob.is_proper(result.coloring)

    def test_impossible_instance_fails(self):
        g = nx.complete_graph(4)
        prob = GraphColoringProblem(g, 3)  # K4 needs 4 colors
        result = fast_coloring_ec(prob, {0: 1, 1: 2, 2: 3, 3: 3})
        assert not result.succeeded
        assert result.fell_back


class TestPreserving:
    def test_preserves_after_edge_insertion(self, small):
        prob, planted = small
        g2 = prob.graph.copy()
        # Add one conflicting edge.
        for u in g2.nodes:
            done = False
            for v in g2.nodes:
                if u < v and not g2.has_edge(u, v) and planted[u] == planted[v]:
                    g2.add_edge(u, v)
                    done = True
                    break
            if done:
                break
        prob2 = GraphColoringProblem(g2, prob.num_colors)
        result = preserving_coloring_ec(prob2, planted)
        assert result.succeeded
        assert prob2.is_proper(result.coloring)
        # Optimal preservation changes at most one endpoint.
        changed = sum(1 for n in planted if result.coloring[n] != planted[n])
        assert changed <= 1

    def test_pinned_nodes_kept(self, small):
        prob, planted = small
        pins = list(prob.graph.nodes)[:3]
        result = preserving_coloring_ec(prob, planted, preserve=pins)
        assert result.succeeded
        for n in pins:
            assert result.coloring[n] == planted[n]

    def test_pin_without_old_color_raises(self, small):
        prob, _ = small
        with pytest.raises(ECError):
            preserving_coloring_ec(prob, {}, preserve=[0])


class TestGenerators:
    def test_requested_sizes(self):
        g, coloring = random_colorable_graph(15, 3, 25, rng=1)
        assert g.number_of_nodes() == 15
        assert g.number_of_edges() == 25
        prob = GraphColoringProblem(g, 3)
        assert prob.is_proper(coloring)

    def test_impossible_edge_count(self):
        with pytest.raises(ModelError):
            random_colorable_graph(4, 2, 100, rng=1)

    def test_one_color_rejected(self):
        with pytest.raises(ModelError):
            random_colorable_graph(4, 1, 1, rng=1)
