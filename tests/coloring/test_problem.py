"""Unit tests for the graph-coloring ILP formulation."""

import networkx as nx
import pytest

from repro.coloring.problem import GraphColoringProblem, color_var_name
from repro.errors import ModelError
from repro.ilp.solver import solve
from repro.ilp.status import SolveStatus


@pytest.fixture
def triangle():
    g = nx.Graph([(0, 1), (1, 2), (0, 2)])
    return GraphColoringProblem(g, 3)


class TestConstruction:
    def test_self_loop_rejected(self):
        g = nx.Graph([(0, 0)])
        with pytest.raises(ModelError):
            GraphColoringProblem(g, 2)

    def test_zero_colors_rejected(self):
        with pytest.raises(ModelError):
            GraphColoringProblem(nx.Graph(), 0)


class TestILP:
    def test_triangle_needs_three_colors(self, triangle):
        sol = solve(triangle.to_ilp())
        assert sol.status is SolveStatus.OPTIMAL
        coloring = triangle.decode(sol)
        assert triangle.is_proper(coloring)
        assert len(set(coloring.values())) == 3

    def test_triangle_two_colors_infeasible(self):
        g = nx.Graph([(0, 1), (1, 2), (0, 2)])
        prob = GraphColoringProblem(g, 2)
        assert solve(prob.to_ilp()).status is SolveStatus.INFEASIBLE

    def test_atleast_one_variant(self, triangle):
        sol = solve(triangle.to_ilp(exactly_one=False))
        assert sol.status is SolveStatus.OPTIMAL

    def test_row_counts(self, triangle):
        m = triangle.to_ilp()
        # 3 one-color rows + 3 edges * 3 colors conflict rows
        assert m.num_constraints == 3 + 9
        assert m.num_vars == 9


class TestHelpers:
    def test_is_proper(self, triangle):
        assert triangle.is_proper({0: 1, 1: 2, 2: 3})
        assert not triangle.is_proper({0: 1, 1: 1, 2: 3})
        assert not triangle.is_proper({0: 1, 1: 2})        # missing node
        assert not triangle.is_proper({0: 1, 1: 2, 2: 9})  # bad palette

    def test_conflicted_edges(self, triangle):
        assert triangle.conflicted_edges({0: 1, 1: 1, 2: 2}) == [(0, 1)]

    def test_values_roundtrip(self, triangle):
        coloring = {0: 1, 1: 2, 2: 3}
        values = triangle.values_from_coloring(coloring)
        assert values[color_var_name(0, 1)] == 1.0
        assert values[color_var_name(0, 2)] == 0.0
        assert triangle.to_ilp().is_feasible(values)

    def test_decode_missing_color_raises(self, triangle):
        from repro.ilp.solution import Solution
        from repro.ilp.status import SolveStatus as S

        empty = Solution(S.OPTIMAL, values={
            color_var_name(n, c): 0.0 for n in range(3) for c in range(1, 4)
        })
        with pytest.raises(ModelError):
            triangle.decode(empty)
