"""IncrementalSession: the acceptance-criterion tests for incremental EC.

The headline assertion: a loosening-only ChangeSet is answered from
revalidation without invoking any solver, verified by counting solver
launches.
"""

import pytest

from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_planted_ksat, unsat_parity_pair
from repro.core.change import (
    AddClause,
    AddVariable,
    ChangeSet,
    RemoveClause,
    RemoveVariable,
)
from repro.engine.config import SolverConfig
from repro.engine.engine import PortfolioEngine
from repro.engine.session import IncrementalSession
from repro.errors import ECError


def _breaking_clause(formula, model, width=2):
    """A clause every literal of which is false under *model*."""
    lits = []
    for var in formula.variables:
        if model.is_assigned(var):
            lits.append(-var if model[var] else var)
        if len(lits) == width:
            break
    return Clause(lits)


@pytest.fixture
def session():
    f, _ = random_planted_ksat(20, 70, rng=8)
    with IncrementalSession(f, jobs=1) as s:
        yield s


class TestLooseningFastPath:
    def test_loosening_changeset_answered_without_any_solver(self, session):
        session.solve(seed=0)
        removed = session.formula.clauses[0]
        regime = session.apply_changes(
            ChangeSet([RemoveClause(removed), AddVariable()])
        )
        assert regime == "loosening"
        calls_before = session.solver_calls
        model = session.resolve(seed=0)
        assert session.solver_calls == calls_before          # zero launches
        assert session.history[-1].source == "revalidation"
        assert session.formula.is_satisfied(model)

    def test_chain_of_loosening_changes_never_solves(self, session):
        session.solve(seed=0)
        calls_before = session.solver_calls
        for _ in range(5):
            victim = session.formula.clauses[0]
            session.apply_changes(ChangeSet([RemoveClause(victim)]))
            session.resolve(seed=0)
        assert session.solver_calls == calls_before
        assert session.revalidations == 5


class TestTightening:
    def test_breaking_clause_triggers_resolve(self):
        with IncrementalSession(CNFFormula([[1, 2], [3, 4]]), jobs=1) as s:
            model = s.solve(seed=0)
            # Demand that v1 or v3 differ from the current model: breaks
            # the model, but the instance stays satisfiable by flipping v1.
            breaking = Clause(
                [-1 if model.get(1, False) else 1, -3 if model.get(3, False) else 3]
            )
            regime = s.apply_changes(ChangeSet([AddClause(breaking)]))
            assert regime == "tightening"
            calls_before = s.solver_calls
            new_model = s.resolve(seed=0)
            assert s.solver_calls > calls_before       # a real re-solve ran
            assert s.formula.is_satisfied(new_model)

    def test_harmless_tightening_revalidates_in_o_clauses(self, session):
        model = session.solve(seed=0)
        # A clause the current model already satisfies.
        var = next(iter(session.formula.variables))
        lit = var if model.get(var, False) else -var
        session.apply_changes(ChangeSet([AddClause(Clause([lit]))]))
        calls_before = session.solver_calls
        session.resolve(seed=0)
        assert session.solver_calls == calls_before
        assert session.history[-1].source == "revalidation"

    def test_remove_variable_is_tightening(self, session):
        session.solve(seed=0)
        var = next(iter(session.formula.variables))
        regime = session.apply_changes(ChangeSet([RemoveVariable(var)]))
        assert regime == "tightening"

    def test_unsat_after_tightening_raises(self):
        with IncrementalSession(CNFFormula([[1, 2]]), jobs=1) as s:
            s.solve()
            s.apply_changes(
                ChangeSet([AddClause(Clause([-1])), AddClause(Clause([-2]))])
            )
            with pytest.raises(ECError, match="unsatisfiable"):
                s.resolve()

    def test_failed_resolve_keeps_the_solution_suspect(self):
        # An UNSAT re-solve must not settle the pending tightening: a
        # later resolve has to re-check (and fail again), never serve
        # the stale pre-change model as a valid solution.
        with IncrementalSession(CNFFormula([[1, 2]]), jobs=1) as s:
            s.solve()
            s.apply_changes(
                ChangeSet([AddClause(Clause([-1])), AddClause(Clause([-2]))])
            )
            with pytest.raises(ECError, match="unsatisfiable"):
                s.resolve()
            with pytest.raises(ECError, match="unsatisfiable"):
                s.resolve()               # still unsatisfiable, still raises
            # ... and a loosening change that does NOT fix the conflict
            # must go through a real re-check, not the O(1) fast path.
            s.apply_changes(ChangeSet([AddVariable()]))
            with pytest.raises(ECError, match="unsatisfiable"):
                s.resolve()


class TestTighteningResolvePath:
    """The re-solve path: CDCL leads, DPLL backstops, UNSAT surfaces."""

    def test_tightening_resolve_won_by_cdcl_lead(self, session):
        model = session.solve(seed=0)
        session.apply_changes(
            ChangeSet([AddClause(_breaking_clause(session.formula, model))])
        )
        calls_before = session.solver_calls
        new_model = session.resolve(seed=0)
        assert session.solver_calls > calls_before
        # The session promotes CDCL to the lead slot on tightening races,
        # and the winner's name is surfaced in the history.
        assert session.history[-1].source == "cdcl"
        assert session.formula.is_satisfied(new_model)

    def test_cdcl_budget_exhaustion_falls_back_to_dpll(self):
        # A CDCL configured with a 1-conflict budget cannot refute the
        # parity contradiction; the complete DPLL backstop must still
        # deliver the UNSAT proof (not an "undecided" error).
        f, witness = random_planted_ksat(12, 30, rng=21)
        configs = [
            SolverConfig.make("cdcl", "cdcl", max_conflicts=1),
            SolverConfig.make("dpll", "dpll"),
        ]
        engine = PortfolioEngine(configs=configs, jobs=1)
        with IncrementalSession(f, engine=engine) as s:
            s.solve(seed=0)
            hard = unsat_parity_pair(8, rng=2)
            shift = s.formula.max_var
            for cl in hard.clauses:
                s.apply_changes(
                    ChangeSet([AddClause(Clause([
                        l + shift if l > 0 else l - shift for l in cl.literals
                    ]))])
                )
            with pytest.raises(ECError, match="unsatisfiable"):
                s.resolve(seed=0)

    def test_successive_tightening_chain_resolves_each_step(self, session):
        model = session.solve(seed=0)
        for _ in range(3):
            session.apply_changes(
                ChangeSet([AddClause(_breaking_clause(session.formula, model))])
            )
            model = session.resolve(seed=0)
            assert session.formula.is_satisfied(model)
        regimes = [s.regime for s in session.history if s.kind == "resolve"]
        assert regimes == ["tightening"] * 3

    def test_tightening_verdict_shared_via_engine_cache(self):
        # A second session over the same engine re-deriving the tightened
        # instance is answered by the fingerprint cache, not a new race.
        f, _ = random_planted_ksat(16, 50, rng=9)
        engine = PortfolioEngine(jobs=1)
        with IncrementalSession(f, engine=engine) as a:
            model = a.solve(seed=0)
            a.apply_changes(
                ChangeSet([AddClause(_breaking_clause(a.formula, model))])
            )
            a.resolve(seed=0)
            modified = a.formula.copy()
            calls = engine.stats.solver_calls
            b = IncrementalSession(modified, engine=engine)
            b.solve(seed=0)
            assert engine.stats.solver_calls == calls
            assert b.history[-1].source == "cache"


class TestLifecycle:
    def test_resolve_without_solve_raises(self, session):
        with pytest.raises(ECError, match="starting solution"):
            session.resolve()

    def test_original_formula_not_aliased(self):
        f, _ = random_planted_ksat(10, 30, rng=3)
        clauses_before = f.num_clauses
        with IncrementalSession(f, jobs=1) as s:
            s.solve()
            s.apply_changes(ChangeSet([RemoveClause(s.formula.clauses[0])]))
        assert f.num_clauses == clauses_before

    def test_history_records_regimes(self, session):
        session.solve(seed=0)
        session.apply_changes(ChangeSet([AddVariable()]))
        session.resolve(seed=0)
        kinds = [(step.kind, step.regime) for step in session.history]
        assert kinds == [("solve", ""), ("change", "loosening"),
                         ("resolve", "loosening")]


class TestIdempotentClose:
    """Double shutdown must be safe, and shared pools must survive a
    tenant leaving (the multi-tenant serving contract)."""

    def test_session_close_then_exit_is_safe(self):
        f, _ = random_planted_ksat(10, 30, rng=3)
        with IncrementalSession(f, jobs=1) as s:
            s.solve(seed=0)
            s.close()                     # explicit close inside the with
        s.close()                         # ... and once more for luck

    def test_engine_close_then_exit_is_safe(self):
        with PortfolioEngine(jobs=1) as engine:
            engine.close()
        engine.close()
        assert engine.closed

    def test_pool_double_shutdown_guarded(self):
        # A real pool (jobs=2): close twice, then __exit__ again.
        engine = PortfolioEngine(jobs=2)
        engine.portfolio.warm_up()
        engine.close()
        engine.close()
        engine.__exit__(None, None, None)

    def test_session_over_shared_engine_does_not_close_it(self):
        f, _ = random_planted_ksat(10, 30, rng=3)
        g, _ = random_planted_ksat(10, 30, rng=4)
        engine = PortfolioEngine(jobs=1)
        with IncrementalSession(f, engine=engine) as a:
            a.solve(seed=0)
        # Tenant a left; the shared engine still serves tenant b.
        assert not engine.closed
        with IncrementalSession(g, engine=engine) as b:
            assert engine.solve(g, seed=0).status == "sat"
            b.solve(seed=0)
        engine.close()
        assert engine.closed

    def test_session_close_releases_private_engine(self):
        f, _ = random_planted_ksat(10, 30, rng=3)
        s = IncrementalSession(f, jobs=1)
        s.solve(seed=0)
        engine = s.engine
        s.close()
        assert engine.closed
