"""SolutionCache: LRU behavior, copy semantics, statistics."""

import pytest

from repro.cnf.assignment import Assignment
from repro.engine.cache import SolutionCache


@pytest.fixture
def model():
    return Assignment({1: True, 2: False})


class TestBasics:
    def test_miss_then_hit(self, model):
        cache = SolutionCache()
        assert cache.get("fp1") is None
        cache.put("fp1", True, model, solver="dpll")
        entry = cache.get("fp1")
        assert entry.satisfiable and entry.solver == "dpll"
        assert entry.assignment.as_dict() == model.as_dict()
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_unsat_entry_needs_no_model(self):
        cache = SolutionCache()
        cache.put("fp", False)
        entry = cache.get("fp")
        assert entry.satisfiable is False and entry.assignment is None

    def test_sat_entry_requires_model(self):
        with pytest.raises(ValueError):
            SolutionCache().put("fp", True, None)

    def test_contains_and_len(self, model):
        cache = SolutionCache()
        cache.put("a", True, model)
        assert "a" in cache and "b" not in cache
        assert len(cache) == 1

    def test_invalidate_and_clear(self, model):
        cache = SolutionCache()
        cache.put("a", True, model)
        assert cache.invalidate("a") and not cache.invalidate("a")
        cache.put("b", True, model)
        cache.clear()
        assert len(cache) == 0


class TestIsolation:
    def test_cached_model_immune_to_caller_mutation(self, model):
        cache = SolutionCache()
        cache.put("fp", True, model)
        model.flip(1)                       # caller keeps mutating
        entry = cache.get("fp")
        assert entry.assignment[1] is True  # cache unaffected
        entry.assignment.flip(2)            # returned copy is also private
        assert cache.get("fp").assignment[2] is False


class TestLRU:
    def test_eviction_order(self, model):
        cache = SolutionCache(max_entries=2)
        cache.put("a", True, model)
        cache.put("b", True, model)
        cache.get("a")                      # refresh a; b is now LRU
        cache.put("c", True, model)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1

    def test_zero_capacity_disables(self, model):
        cache = SolutionCache(max_entries=0)
        cache.put("a", True, model)
        assert cache.get("a") is None

    def test_hit_rate(self, model):
        cache = SolutionCache()
        assert cache.stats.hit_rate == 0.0
        cache.put("a", True, model)
        cache.get("a")
        cache.get("zzz")
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_eviction_under_interleaved_hits(self, model):
        # Hits interleaved with stores: every get refreshes recency, so
        # the hot entry survives a full capacity's worth of cold inserts.
        cache = SolutionCache(max_entries=3)
        cache.put("hot", True, model)
        for i in range(6):
            cache.put(f"cold{i}", True, model)
            assert cache.get("hot") is not None      # keep it hot
        assert "hot" in cache
        assert len(cache) == 3
        # Only the two most recent cold entries survived alongside it.
        assert "cold5" in cache and "cold4" in cache
        assert cache.stats.evictions == 4

    def test_interleaved_hits_preserve_lru_order_not_insert_order(self, model):
        cache = SolutionCache(max_entries=2)
        cache.put("a", True, model)
        cache.put("b", True, model)
        cache.get("a")                       # recency now: b < a
        cache.put("c", True, model)          # evicts b (LRU), not a
        cache.get("a")                       # recency now: c < a
        cache.put("d", True, model)          # evicts c, not a
        assert "a" in cache and "d" in cache
        assert "b" not in cache and "c" not in cache

    def test_overwrite_same_fingerprint_does_not_evict(self, model):
        cache = SolutionCache(max_entries=2)
        cache.put("a", True, model)
        cache.put("b", True, model)
        cache.put("a", True, model, solver="newer")   # update, not insert
        assert len(cache) == 2 and cache.stats.evictions == 0
        assert cache.get("a").solver == "newer"
        assert "b" in cache
