"""DiskCache: the persistent fingerprint-keyed verdict backend."""

import json
import os

import pytest

from repro.cnf.assignment import Assignment
from repro.engine.cache import CacheBackend, SolutionCache
from repro.engine.diskcache import DiskCache


@pytest.fixture
def cache(tmp_path):
    return DiskCache(tmp_path / "cache", max_entries=8)


def _model(*lits):
    return Assignment.from_literals(lits)


class TestProtocol:
    def test_both_backends_satisfy_the_protocol(self, cache):
        assert isinstance(cache, CacheBackend)
        assert isinstance(SolutionCache(), CacheBackend)


class TestRoundTrip:
    def test_sat_entry_round_trips(self, cache):
        cache.put("fp1", True, _model(1, -2, 3), solver="cdcl")
        entry = cache.get("fp1")
        assert entry.satisfiable
        assert entry.assignment.as_dict() == {1: True, 2: False, 3: True}
        assert entry.solver == "cdcl"
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_unsat_entry_round_trips(self, cache):
        cache.put("fp2", False)
        entry = cache.get("fp2")
        assert not entry.satisfiable
        assert entry.assignment is None

    def test_miss_counts(self, cache):
        assert cache.get("nope") is None
        assert cache.stats.misses == 1

    def test_served_model_is_a_copy(self, cache):
        cache.put("fp", True, _model(1))
        first = cache.get("fp").assignment
        first.flip(1)
        assert cache.get("fp").assignment[1] is True

    def test_sat_without_model_rejected(self, cache):
        with pytest.raises(ValueError):
            cache.put("fp", True, None)

    def test_contains_len_invalidate_clear(self, cache):
        cache.put("a", True, _model(1))
        cache.put("b", False)
        assert "a" in cache and "b" in cache and len(cache) == 2
        assert cache.invalidate("a") and not cache.invalidate("a")
        cache.clear()
        assert len(cache) == 0 and "b" not in cache


class TestPersistence:
    def test_verdicts_survive_a_new_instance_over_the_same_dir(self, tmp_path):
        # The process-restart story: a second backend (a restarted
        # daemon) over the same directory serves the first one's work.
        first = DiskCache(tmp_path / "c")
        first.put("fp", True, _model(1, 2), solver="cdcl")
        second = DiskCache(tmp_path / "c")
        entry = second.get("fp")
        assert entry.satisfiable and entry.solver == "cdcl"

    def test_corrupt_entry_is_a_self_healing_miss(self, cache):
        cache.put("fp", True, _model(1))
        path = next(p for p in (cache.directory).iterdir())
        path.write_text("{not json", "utf-8")
        assert cache.get("fp") is None
        assert len(cache) == 0            # the torn file was unlinked

    @pytest.mark.parametrize("payload", [
        "null",                                      # JSON, but not a dict
        '{"fp": "fp", "sat": true, "lits": "abc"}',  # unusable model type
        '{"fp": "fp", "sat": true, "lits": null}',   # sat without a model
        '{"fp": "fp", "sat": true, "lits": [0]}',    # invalid literal
        '{"fp": "fp"}',                              # missing verdict
    ])
    def test_every_corruption_shape_is_a_self_healing_miss(self, cache, payload):
        (cache.directory / "fp.json").write_text(payload, "utf-8")
        assert cache.get("fp") is None
        assert "fp" not in cache          # unlinked, so no repeat crash
        # ... and the slot is immediately reusable.
        cache.put("fp", False)
        assert cache.get("fp").satisfiable is False

    def test_mismatched_fingerprint_is_a_miss_not_a_wrong_verdict(self, cache):
        # A payload filed under the wrong name (racing writers, manual
        # tampering) must never serve another instance's verdict — UNSAT
        # entries are trusted without revalidation, so this would be a
        # wrong answer, not just a stale model.
        cache.put("fp-b", False)
        os.rename(cache.directory / "fp-b.json", cache.directory / "fp-a.json")
        assert cache.get("fp-a") is None
        assert len(cache) == 0            # the mislabeled file was dropped

    def test_clear_removes_orphaned_temp_files(self, cache):
        cache.put("fp", False)
        orphan = cache.directory / ".put-crashed.tmp"
        orphan.write_text("half-written", "utf-8")
        cache.clear()
        assert not orphan.exists() and len(cache) == 0

    def test_writes_are_atomic_renames(self, cache, monkeypatch):
        # No entry file may ever exist in a half-written state: the
        # payload lands under a temp name and is os.replace()d in.
        seen = []
        real_replace = os.replace

        def spying_replace(src, dst):
            seen.append((str(src), str(dst)))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spying_replace)
        cache.put("fp", False)
        (src, dst) = seen[0]
        assert src.endswith(".tmp") and dst.endswith("fp.json")
        assert json.loads((cache.directory / "fp.json").read_text())["sat"] is False


class TestEviction:
    def test_lru_sweep_evicts_oldest_mtime_first(self, tmp_path):
        cache = DiskCache(tmp_path / "c", max_entries=3)
        for i in range(3):
            cache.put(f"fp{i}", False)
            # mtime granularity on some filesystems is coarse; force a
            # strictly increasing order instead of sleeping.
            os.utime(cache.directory / f"fp{i}.json", (i, i))
        cache.put("fp3", False)
        os.utime(cache.directory / "fp3.json", (10, 10))
        cache.put("fp4", False)          # pushes past capacity twice
        assert cache.stats.evictions >= 1
        assert "fp0" not in cache        # the oldest went first
        assert "fp3" in cache and "fp4" in cache

    def test_get_refreshes_lru_position(self, tmp_path):
        cache = DiskCache(tmp_path / "c", max_entries=2)
        cache.put("a", False)
        cache.put("b", False)
        os.utime(cache.directory / "a.json", (1, 1))
        os.utime(cache.directory / "b.json", (2, 2))
        got = cache.get("a")             # bumps a's mtime to now
        assert got is not None
        cache.put("c", False)            # evicts b, the stale one
        assert "a" in cache and "b" not in cache

    def test_zero_capacity_disables_caching(self, tmp_path):
        cache = DiskCache(tmp_path / "c", max_entries=0)
        cache.put("fp", False)
        assert cache.get("fp") is None
        assert len(cache) == 0
