"""Portfolio racing: quick slice, process pool, sequential fallback."""

import time
from dataclasses import dataclass

import pytest

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_planted_ksat
from repro.engine.config import SolverConfig, default_portfolio_configs
from repro.engine.portfolio import Portfolio, run_config
from repro.engine.protocol import SAT, SolverOutcome, UNKNOWN, UNSAT


@dataclass(frozen=True)
class SleepyAdapter:
    """Test double: blocks past any deadline, then answers ``sat``.

    Module-level so forked pool workers can rebuild it from its config.
    """

    name: str = "sleepy"
    complete: bool = True
    naptime: float = 0.4

    def solve(self, formula, *, deadline=None, seed=None, hint=None):
        time.sleep(self.naptime)
        return SolverOutcome(SAT, Assignment({1: True}), self.name, self.naptime)


@pytest.fixture(scope="module")
def sat_instance():
    f, _ = random_planted_ksat(25, 90, rng=4)
    return f


@pytest.fixture(scope="module")
def unsat_instance():
    return CNFFormula([[1, 2], [1, -2], [-1, 2], [-1, -2]])


class TestQuickSlice:
    def test_easy_instance_decided_without_pool(self, sat_instance):
        p = Portfolio(jobs=4)
        result = p.solve(sat_instance, seed=0)
        assert result.outcome.status == SAT
        assert result.via_quick_slice
        assert p._executor is None      # the pool was never created
        p.close()

    def test_unsat_decided_in_slice(self, unsat_instance):
        with Portfolio(jobs=4) as p:
            result = p.solve(unsat_instance, seed=0)
            assert result.outcome.status == UNSAT
            assert result.via_quick_slice


class TestProcessPoolRace:
    def test_pool_race_sat(self, sat_instance):
        with Portfolio(jobs=2, quick_slice=0.0) as p:
            result = p.solve(sat_instance, seed=0)
            assert result.outcome.status == SAT
            assert sat_instance.is_satisfied(result.outcome.assignment)
            assert result.winner is not None
            assert result.launched == len(p.configs)

    def test_pool_race_unsat(self, unsat_instance):
        with Portfolio(jobs=2, quick_slice=0.0) as p:
            result = p.solve(unsat_instance, seed=0)
            assert result.outcome.status == UNSAT

    def test_pool_reuse_across_races(self, sat_instance, unsat_instance):
        with Portfolio(jobs=2, quick_slice=0.0) as p:
            assert p.solve(sat_instance, seed=0).outcome.status == SAT
            assert p.solve(unsat_instance, seed=0).outcome.status == UNSAT
            assert p.solve(sat_instance, seed=1).outcome.status == SAT
            assert p.total_launched == 3 * len(p.configs)


class TestSequentialFallback:
    def test_jobs_one_never_forks(self, sat_instance):
        p = Portfolio(jobs=1, quick_slice=0.0)
        result = p.solve(sat_instance, seed=0)
        assert result.outcome.status == SAT
        assert p._executor is None
        # first definitive answer stops the scan
        assert result.launched <= len(p.configs)

    def test_parallel_deadline_enforced_by_parent(self):
        # More configs than workers: queued racers restart their own budget
        # when picked up, so only the parent's wait-loop cut keeps the race
        # inside the caller's deadline.
        hard, _ = random_planted_ksat(150, 640, rng=9)
        configs = [
            SolverConfig.make(
                f"ws{i}", "walksat", seed_offset=i,
                max_flips=10**9, max_restarts=10**6,
            )
            for i in range(4)
        ]
        with Portfolio(configs=configs, jobs=2, quick_slice=0.0) as p:
            t0 = time.perf_counter()
            result = p.solve(hard, deadline=0.3, seed=0)
            elapsed = time.perf_counter() - t0
        assert result.outcome.status in (SAT, UNKNOWN)
        assert elapsed < 2.0

    def test_deadline_all_unknown(self):
        hard, _ = random_planted_ksat(150, 640, rng=9)
        incomplete = [
            SolverConfig.make("ws-a", "walksat", max_flips=10**9),
            SolverConfig.make("ws-b", "walksat", seed_offset=7, max_flips=10**9),
        ]
        p = Portfolio(configs=incomplete, jobs=1, quick_slice=0.0)
        result = p.solve(hard, deadline=0.02, seed=0)
        # WalkSAT may get lucky within 20ms, but must never claim UNSAT.
        assert result.outcome.status in (SAT, UNKNOWN)

    def test_empty_lineup_rejected(self, sat_instance):
        with pytest.raises(ValueError):
            Portfolio(configs=[], quick_slice=0.0).solve(sat_instance)


class TestConfigs:
    def test_default_lineup_shape(self):
        configs = default_portfolio_configs()
        names = [c.name for c in configs]
        assert names[0] == "cdcl"           # complete lead for the quick slice
        assert names[1] == "dpll"           # chronological cross-check next
        assert len(names) == len(set(names))
        assert any(c.kind == "ilp-exact" for c in configs)

    def test_run_config_maps_crash_to_unknown(self, sat_instance):
        bad = SolverConfig.make("bad", "walksat", no_such_param=1)  # TypeError inside
        out = run_config(bad, sat_instance)
        assert out.status == UNKNOWN and "error" in out.detail

    def test_seed_offset_diversifies_deterministically(self, sat_instance):
        base = SolverConfig.make("ws", "walksat")
        off = SolverConfig.make("ws2", "walksat", seed_offset=50)
        a1 = run_config(base, sat_instance, seed=3)
        a2 = run_config(base, sat_instance, seed=3)
        b = run_config(off, sat_instance, seed=3)
        assert a1.assignment.as_dict() == a2.assignment.as_dict()
        assert a1.status == b.status == SAT


class TestLeadPromotion:
    def test_lead_takes_the_quick_slice(self, sat_instance):
        with Portfolio(jobs=1) as p:
            result = p.solve(sat_instance, seed=0, lead="dpll")
            assert result.via_quick_slice
            assert result.winner == "dpll"
        # ... and the portfolio's own ordering is untouched.
        assert p.configs[0].name == "cdcl"

    def test_unknown_lead_name_ignored(self, sat_instance):
        with Portfolio(jobs=1) as p:
            result = p.solve(sat_instance, seed=0, lead="no-such-solver")
            assert result.outcome.status == SAT
            assert result.winner == "cdcl"


class TestWinnerSurvivesCancellation:
    def test_drain_window_win_is_not_dropped(self, monkeypatch):
        # Both racers block past the deadline; the parent's wait loop cuts
        # the race, cancels, and then a racer crosses the line inside the
        # drain window.  Its verdict used to be discarded ("deadline
        # exceeded"); it must win and be credited by name.
        from repro.engine import adapters

        monkeypatch.setitem(adapters.ADAPTERS, "sleepy", SleepyAdapter)
        configs = [
            SolverConfig.make("sleepy", "sleepy"),
            SolverConfig.make("sleepy-2", "sleepy", naptime=0.5),
        ]
        f = CNFFormula([[1]])
        with Portfolio(configs=configs, jobs=2, quick_slice=0.0, drain=5.0) as p:
            result = p.solve(f, deadline=0.05, seed=0)
        assert result.outcome.status == SAT
        assert result.winner in ("sleepy", "sleepy-2")


class TestUnsatTrustGate:
    def test_incomplete_solver_cannot_win_with_unsat(self, sat_instance, monkeypatch):
        from dataclasses import dataclass

        from repro.engine import adapters
        from repro.engine.protocol import SolverOutcome

        @dataclass(frozen=True)
        class LyingAdapter:
            name: str = "liar"
            complete: bool = False     # incomplete: its UNSAT is no proof

            def solve(self, formula, *, deadline=None, seed=None, hint=None):
                return SolverOutcome(UNSAT, None, self.name, 0.0, "guess")

        monkeypatch.setitem(adapters.ADAPTERS, "liar", LyingAdapter)
        configs = [SolverConfig.make("liar", "liar")]
        p = Portfolio(configs=configs, jobs=1, quick_slice=0.0)
        result = p.solve(sat_instance, seed=0)
        assert result.outcome.status == UNKNOWN    # the guess did not win
        assert result.winner is None
