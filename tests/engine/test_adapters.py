"""Adapter contract tests: every backend behind one interface."""

import pytest

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_planted_ksat
from repro.engine.adapters import (
    ADAPTERS,
    BruteForceAdapter,
    DPLLAdapter,
    ExactILPAdapter,
    HeuristicILPAdapter,
    WalkSATAdapter,
    build_adapter,
)
from repro.engine.protocol import SAT, UNKNOWN, UNSAT, Solver
from repro.errors import ReproError

ALL = [
    DPLLAdapter(),
    WalkSATAdapter(),
    BruteForceAdapter(),
    ExactILPAdapter(),
    HeuristicILPAdapter(),
]
COMPLETE = [a for a in ALL if a.complete]


@pytest.fixture(scope="module")
def sat_instance():
    f, _w = random_planted_ksat(12, 36, rng=2)
    return f


@pytest.fixture(scope="module")
def unsat_instance():
    # pigeonhole-flavoured tiny UNSAT core.
    return CNFFormula([[1, 2], [1, -2], [-1, 2], [-1, -2]])


class TestContract:
    @pytest.mark.parametrize("adapter", ALL, ids=lambda a: a.name)
    def test_implements_protocol(self, adapter):
        assert isinstance(adapter, Solver)

    @pytest.mark.parametrize("adapter", ALL, ids=lambda a: a.name)
    def test_sat_outcome_carries_verified_model(self, adapter, sat_instance):
        out = adapter.solve(sat_instance, seed=0)
        assert out.status == SAT
        assert sat_instance.is_satisfied(out.assignment)
        assert out.solver == adapter.name

    @pytest.mark.parametrize("adapter", COMPLETE, ids=lambda a: a.name)
    def test_complete_adapters_prove_unsat(self, adapter, unsat_instance):
        out = adapter.solve(unsat_instance, seed=0)
        assert out.status == UNSAT and out.assignment is None

    def test_incomplete_walksat_reports_unknown_on_unsat(self, unsat_instance):
        out = WalkSATAdapter(max_flips=200, max_restarts=1).solve(
            unsat_instance, seed=0
        )
        assert out.status == UNKNOWN

    @pytest.mark.parametrize("adapter", ALL, ids=lambda a: a.name)
    def test_hint_accepted(self, adapter, sat_instance):
        hint = adapter.solve(sat_instance, seed=0).assignment
        out = adapter.solve(sat_instance, seed=0, hint=hint)
        assert out.status == SAT


class TestBudgets:
    def test_walksat_deadline_returns_unknown(self, unsat_instance):
        out = WalkSATAdapter(max_flips=10**9, max_restarts=10**6).solve(
            unsat_instance, deadline=0.01, seed=0
        )
        assert out.status == UNKNOWN

    def test_brute_oversize_returns_unknown(self):
        f, _ = random_planted_ksat(20, 40, rng=1)
        out = BruteForceAdapter(max_vars=10).solve(f)
        assert out.status == UNKNOWN and "exceeds" in out.detail

    def test_dpll_decision_budget_returns_unknown(self):
        f, _ = random_planted_ksat(30, 120, rng=5)
        out = DPLLAdapter(max_decisions=1).solve(f, seed=0)
        assert out.status in (UNKNOWN, SAT)  # 1 decision may suffice


class TestRegistry:
    def test_build_every_kind(self):
        for kind in ADAPTERS:
            adapter = build_adapter(kind)
            assert isinstance(adapter, Solver)

    def test_unknown_kind_raises(self):
        with pytest.raises(ReproError):
            build_adapter("cplex")
