"""Fingerprint invariants: canonical under every representation artifact.

Includes the DIMACS round-trip property the cache relies on:
``fingerprint(parse_dimacs(to_dimacs(f))) == fingerprint(f)``.
"""

import hypothesis.strategies as st
from hypothesis import given

from repro.cnf.clause import Clause
from repro.cnf.dimacs import parse_dimacs, to_dimacs
from repro.cnf.formula import CNFFormula
from repro.engine.fingerprint import fingerprint, normalized_clauses


@st.composite
def clauses(draw, max_var=8, max_width=4):
    """A non-tautological, non-empty clause."""
    width = draw(st.integers(1, max_width))
    variables = draw(
        st.lists(
            st.integers(1, max_var), min_size=width, max_size=width, unique=True
        )
    )
    signs = draw(st.lists(st.booleans(), min_size=width, max_size=width))
    return Clause([v if s else -v for v, s in zip(variables, signs)])


@st.composite
def formulas(draw, max_var=8, max_clauses=12):
    cls = draw(st.lists(clauses(max_var=max_var), min_size=0, max_size=max_clauses))
    return CNFFormula(cls, num_vars=max_var)


class TestFingerprintProperties:
    @given(formulas())
    def test_dimacs_roundtrip_stable(self, f):
        assert fingerprint(parse_dimacs(to_dimacs(f))) == fingerprint(f)

    @given(formulas(), st.randoms(use_true_random=False))
    def test_clause_order_irrelevant(self, f, rnd):
        shuffled = list(f.clauses)
        rnd.shuffle(shuffled)
        assert fingerprint(CNFFormula(shuffled)) == fingerprint(f)

    @given(formulas(), st.randoms(use_true_random=False))
    def test_literal_order_irrelevant(self, f, rnd):
        reordered = []
        for cl in f.clauses:
            lits = list(cl.literals)
            rnd.shuffle(lits)
            reordered.append(Clause(lits))
        assert fingerprint(CNFFormula(reordered)) == fingerprint(f)

    @given(formulas())
    def test_duplicate_clauses_irrelevant(self, f):
        doubled = CNFFormula(list(f.clauses) + list(f.clauses))
        assert fingerprint(doubled) == fingerprint(f)

    @given(formulas())
    def test_deterministic_across_rebuilds(self, f):
        rebuilt = CNFFormula([Clause(cl.literals) for cl in f.clauses])
        assert fingerprint(rebuilt) == fingerprint(f)


class TestFingerprintDiscrimination:
    def test_added_clause_changes_fingerprint(self):
        f = CNFFormula([[1, 2], [-1, 3]])
        g = f.copy()
        g.add_clause([2, 3])
        assert fingerprint(f) != fingerprint(g)

    def test_polarity_changes_fingerprint(self):
        assert fingerprint(CNFFormula([[1, 2]])) != fingerprint(CNFFormula([[1, -2]]))

    def test_free_variables_do_not_matter(self):
        # Free variables are don't-cares; a cached model transfers.
        narrow = CNFFormula([[1, 3]])
        wide = CNFFormula([[1, 3]], num_vars=9)
        assert fingerprint(narrow) == fingerprint(wide)

    def test_empty_formula(self):
        assert fingerprint(CNFFormula()) == fingerprint(CNFFormula(num_vars=5))

    def test_normalized_clauses_sorted_and_unique(self):
        f = CNFFormula([[2, 1], [1, 2], [-3]])
        assert normalized_clauses(f) == ((-3,), (1, 2))
