"""PR 7 concurrency semantics: single-flight coalescing + overlapping races.

The engine-level contract under concurrent load:

* identical fingerprints coalesce — one race, N-1 ``inflight_joins``,
  each joiner owning an independent copy of the model;
* distinct fingerprints overlap end-to-end (no engine-wide lock), both
  in-process (quick slice) and over the shared worker pool;
* the stats identity ``solves == cache_hits + revalidations + races +
  batch_dedups + inflight_joins`` holds exactly at any observation point.
"""

import threading
import time

import pytest

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_planted_ksat
from repro.engine.adapters import ADAPTERS, build_adapter
from repro.engine.config import SolverConfig
from repro.engine.engine import PortfolioEngine


class SlowAdapter:
    """A correct solver that takes its time: sleeps (releasing the GIL),
    then delegates to DPLL — so overlap is measurable deterministically."""

    complete = True

    def __init__(self, name="slow", delay=0.15):
        self.name = name
        self.delay = float(delay)

    def solve(self, formula, *, deadline=None, seed=None, hint=None):
        time.sleep(self.delay)
        return build_adapter("dpll", name=self.name).solve(
            formula, deadline=deadline, seed=seed, hint=hint
        )


@pytest.fixture
def slow_kind(monkeypatch):
    monkeypatch.setitem(ADAPTERS, "slow", SlowAdapter)
    return "slow"


def slow_engine(delay, jobs=1):
    return PortfolioEngine(
        configs=[SolverConfig.make("slow", "slow", delay=delay)],
        jobs=jobs,
        quick_slice=10.0,   # the in-process slice always decides
    )


def run_threads(n, fn):
    barrier = threading.Barrier(n)
    results: list = [None] * n
    errors: list = []

    def work(i):
        barrier.wait()
        try:
            results[i] = fn(i)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(repr(exc))

    threads = [threading.Thread(target=work, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert errors == []
    return results


class TestSingleFlight:
    def test_same_fingerprint_one_race_n_minus_one_joins(self, slow_kind):
        f, _ = random_planted_ksat(12, 36, rng=3)
        n = 4
        with slow_engine(delay=0.3) as engine:
            results = run_threads(
                n, lambda i: engine.solve(CNFFormula(f.clauses), seed=0)
            )
            stats = engine.stats_snapshot()
        assert all(r.status == "sat" for r in results)
        assert all(f.is_satisfied(r.assignment) for r in results)
        assert stats["solves"] == n
        assert stats["races"] == 1
        assert stats["inflight_joins"] == n - 1
        sources = sorted(r.source for r in results)
        assert sources.count("inflight-join") == n - 1
        # Every caller owns its model: mutating one must not leak into
        # the others (or into the cached copy).
        assert len({id(r.assignment) for r in results}) == n
        victim = next(r for r in results if r.source == "inflight-join")
        var = min(f.variables)
        victim.assignment[var] = not victim.assignment[var]
        for other in results:
            if other is not victim:
                assert f.is_satisfied(other.assignment)

    def test_joiner_after_completion_hits_cache_not_join(self, slow_kind):
        f, _ = random_planted_ksat(10, 30, rng=4)
        with slow_engine(delay=0.01) as engine:
            first = engine.solve(CNFFormula(f.clauses), seed=0)
            second = engine.solve(CNFFormula(f.clauses), seed=0)
            stats = engine.stats_snapshot()
        assert first.source != "inflight-join"
        assert second.source == "cache"
        assert stats["inflight_joins"] == 0
        assert engine._inflight == {}

    def test_leader_error_propagates_to_joiners(self, slow_kind):
        f, _ = random_planted_ksat(10, 30, rng=5)
        boom = RuntimeError("leader exploded")
        engine = slow_engine(delay=0.3)
        original = engine.portfolio.solve

        def exploding(*args, **kwargs):
            time.sleep(0.3)
            raise boom

        engine.portfolio.solve = exploding
        try:
            outcomes = run_threads(3, lambda i: _capture(
                lambda: engine.solve(CNFFormula(f.clauses), seed=0)
            ))
            # Leader and joiners all observe the failure; the in-flight
            # table is clean so the next query starts a fresh race.
            assert all(isinstance(o, RuntimeError) for o in outcomes)
            assert engine._inflight == {}
            engine.portfolio.solve = original
            recovered = engine.solve(CNFFormula(f.clauses), seed=0)
            assert recovered.status == "sat"
        finally:
            engine.close()


def _capture(fn):
    try:
        return fn()
    except Exception as exc:
        return exc


class TestDistinctFingerprintOverlap:
    def test_in_process_queries_overlap(self, slow_kind):
        delay, n = 0.2, 3
        instances = [random_planted_ksat(12, 36, rng=i)[0] for i in range(n)]
        with slow_engine(delay=delay) as engine:
            t0 = time.perf_counter()
            results = run_threads(n, lambda i: engine.solve(instances[i], seed=0))
            wall = time.perf_counter() - t0
            stats = engine.stats_snapshot()
        assert all(r.status == "sat" for r in results)
        assert stats["races"] == n and stats["inflight_joins"] == 0
        # Serialized execution would take >= n * delay; overlapping
        # sleeps (the GIL is released) must beat that with real margin.
        assert wall < (n - 1) * delay

    def test_pool_races_share_one_executor(self):
        n = 3
        instances = [random_planted_ksat(12, 36, rng=10 + i)[0] for i in range(n)]
        with PortfolioEngine(jobs=2, quick_slice=0.0) as engine:
            engine.warm_up()
            results = run_threads(n, lambda i: engine.solve(instances[i], seed=0))
            stats = engine.stats_snapshot()
            portfolio = engine.portfolio
            # Every slot comes home once the leftover racers are reaped.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                with portfolio._lock:
                    if len(portfolio._free) == portfolio._slot_count:
                        break
                time.sleep(0.02)
            with portfolio._lock:
                assert len(portfolio._free) == portfolio._slot_count
                assert portfolio._active == 0
                assert portfolio._generation == 0   # never torn down
        assert all(r.status == "sat" for r in results)
        assert stats["races"] == n
        assert stats["transport_bytes"] > 0


class TestStatsInvariantUnderLoad:
    def test_identity_holds_under_concurrent_mixed_load(self):
        sat_instances = [
            random_planted_ksat(10, 30, rng=20 + i)[0] for i in range(3)
        ]
        with PortfolioEngine(jobs=1) as engine:
            def mixed(i):
                for round_index in range(4):
                    # Same instances from every thread: some solves race,
                    # some coalesce, some hit the cache — all paths live.
                    f = sat_instances[(i + round_index) % len(sat_instances)]
                    engine.solve(CNFFormula(f.clauses), seed=0)
                engine.solve_many(
                    [CNFFormula(sat_instances[0].clauses),
                     CNFFormula(sat_instances[0].clauses)],
                    seed=0,
                )

            run_threads(6, mixed)
            stats = engine.stats_snapshot()
        assert stats["solves"] == 6 * (4 + 2)
        assert stats["solves"] == (
            stats["cache_hits"] + stats["revalidations"] + stats["races"]
            + stats["batch_dedups"] + stats["inflight_joins"]
        )
