"""PortfolioEngine: cache hits, hint revalidation, race fallback."""

import pytest

from repro.cnf.dimacs import parse_dimacs, to_dimacs
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_planted_ksat
from repro.engine.cache import SolutionCache
from repro.engine.engine import PortfolioEngine


@pytest.fixture
def engine():
    # jobs=1 keeps these unit tests in-process; pool racing is covered by
    # test_portfolio.py.
    with PortfolioEngine(jobs=1) as eng:
        yield eng


@pytest.fixture(scope="module")
def sat_instance():
    f, _ = random_planted_ksat(18, 60, rng=6)
    return f


class TestCachePath:
    def test_repeat_query_hits_cache_without_solving(self, engine, sat_instance):
        first = engine.solve(sat_instance)
        assert first.status == "sat" and not first.from_cache
        calls = engine.stats.solver_calls
        second = engine.solve(sat_instance)
        assert second.from_cache and second.source == "cache"
        assert engine.stats.solver_calls == calls
        assert sat_instance.is_satisfied(second.assignment)

    def test_reordered_formula_hits_same_entry(self, engine, sat_instance):
        engine.solve(sat_instance)
        calls = engine.stats.solver_calls
        reordered = CNFFormula(list(reversed(sat_instance.clauses)))
        assert engine.solve(reordered).from_cache
        assert engine.stats.solver_calls == calls

    def test_dimacs_roundtrip_hits_same_entry(self, engine, sat_instance):
        engine.solve(sat_instance)
        calls = engine.stats.solver_calls
        again = parse_dimacs(to_dimacs(sat_instance))
        assert engine.solve(again).from_cache
        assert engine.stats.solver_calls == calls

    def test_unsat_verdict_cached(self, engine):
        unsat = CNFFormula([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        assert engine.solve(unsat).status == "unsat"
        second = engine.solve(unsat)
        assert second.status == "unsat" and second.from_cache

    def test_use_cache_false_bypasses(self, engine, sat_instance):
        engine.solve(sat_instance)
        result = engine.solve(sat_instance, use_cache=False)
        assert not result.from_cache

    def test_poisoned_entry_dropped_and_resolved(self, engine, sat_instance):
        from repro.cnf.assignment import Assignment
        from repro.engine.fingerprint import fingerprint_v2

        # The engine keys its cache by fp-v2, so the poison must too.
        fp = fingerprint_v2(sat_instance)
        bogus = Assignment({v: False for v in sat_instance.variables})
        if sat_instance.is_satisfied(bogus):  # pragma: no cover - paranoia
            pytest.skip("bogus assignment accidentally satisfies")
        engine.cache.put(fp, True, bogus, solver="poison")
        result = engine.solve(sat_instance)
        assert result.status == "sat" and not result.from_cache
        assert sat_instance.is_satisfied(result.assignment)


class TestRevalidationPath:
    def test_valid_hint_short_circuits_solvers(self, engine, sat_instance):
        model = engine.solve(sat_instance).assignment
        loosened = sat_instance.copy()
        loosened.remove_clause_at(0)
        calls = engine.stats.solver_calls
        result = engine.solve(loosened, hint=model)
        assert result.status == "sat" and result.source == "revalidation"
        assert engine.stats.solver_calls == calls
        # ... and the revalidated model was cached for next time.
        assert engine.solve(loosened).from_cache

    def test_stale_hint_falls_through_to_race(self, engine):
        f = CNFFormula([[1], [2]])
        from repro.cnf.assignment import Assignment

        stale = Assignment({1: True, 2: False})
        result = engine.solve(f, hint=stale)
        assert result.status == "sat"
        assert result.source not in ("cache", "revalidation")
        assert f.is_satisfied(result.assignment)


class TestSharedCache:
    def test_two_engines_one_cache(self, sat_instance):
        shared = SolutionCache()
        with PortfolioEngine(jobs=1, cache=shared) as a:
            a.solve(sat_instance)
        with PortfolioEngine(jobs=1, cache=shared) as b:
            result = b.solve(sat_instance)
            assert result.from_cache
            assert b.stats.solver_calls == 0


class TestWinnerMetadata:
    def test_race_surfaces_winner(self, engine, sat_instance):
        result = engine.solve(sat_instance, use_cache=False)
        assert result.winner == "cdcl"          # the default lead
        assert result.source == result.winner

    def test_cache_hit_has_no_winner(self, engine, sat_instance):
        engine.solve(sat_instance)
        cached = engine.solve(sat_instance)
        assert cached.from_cache and cached.winner is None

    def test_revalidation_has_no_winner(self, engine, sat_instance):
        model = engine.solve(sat_instance).assignment
        loosened = sat_instance.copy()
        loosened.remove_clause_at(0)
        result = engine.solve(loosened, hint=model)
        assert result.source == "revalidation" and result.winner is None

    def test_lead_override_forwarded_to_race(self, engine, sat_instance):
        result = engine.solve(sat_instance, use_cache=False, lead="dpll")
        assert result.winner == "dpll"


class TestHintOutranksCache:
    def test_valid_hint_beats_older_cached_model(self, engine):
        from repro.cnf.assignment import Assignment

        f = CNFFormula([[1, 2], [2, 3]])
        first = engine.solve(f)                      # caches some model M1
        other = Assignment({1: False, 2: True, 3: False})
        assert f.is_satisfied(other)
        assert other.as_dict() != first.assignment.as_dict()
        result = engine.solve(f, hint=other)
        assert result.source == "revalidation"
        assert result.assignment.as_dict() == other.as_dict()


class TestSolveMany:
    def test_results_in_input_order(self, engine):
        sat = CNFFormula([[1, 2], [2, 3]])
        unsat = CNFFormula([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        results = engine.solve_many([sat, unsat])
        assert [r.status for r in results] == ["sat", "unsat"]
        assert sat.is_satisfied(results[0].assignment)

    def test_intra_batch_dedup_skips_repeat_queries(self, engine, sat_instance):
        # Three semantically identical formulas: the original, a clause
        # reordering, and a DIMACS round trip.
        variants = [
            sat_instance,
            CNFFormula(list(reversed(sat_instance.clauses))),
            parse_dimacs(to_dimacs(sat_instance)),
        ]
        results = engine.solve_many(variants)
        assert engine.stats.batch_dedups == 2
        assert [r.source for r in results[1:]] == ["batch-dedup", "batch-dedup"]
        assert all(r.status == "sat" for r in results)
        for variant, result in zip(variants, results):
            assert variant.is_satisfied(result.assignment)

    def test_dedup_results_own_their_models(self, engine, sat_instance):
        # Mutating one batch result's assignment must not leak into its
        # dedup siblings (same invariant as SolutionCache's per-hit copy).
        results = engine.solve_many([sat_instance, sat_instance.copy()])
        first, second = results
        var = sat_instance.variables[0]
        first.assignment[var] = not first.assignment.get(var)
        assert second.assignment.get(var) != first.assignment.get(var)

    def test_dedup_even_with_cache_bypassed(self, engine, sat_instance):
        results = engine.solve_many(
            [sat_instance, sat_instance.copy()], use_cache=False
        )
        assert engine.stats.batch_dedups == 1
        assert results[1].source == "batch-dedup"

    def test_unique_instances_each_race(self, engine):
        a = CNFFormula([[1, 2]])
        b = CNFFormula([[1, -2]])
        races = engine.stats.races
        engine.solve_many([a, b], use_cache=False)
        assert engine.stats.races == races + 2

    def test_empty_batch(self, engine):
        assert engine.solve_many([]) == []


def _tiny_cache(backend, tmp_path):
    """A capacity-1 cache of the requested backend kind."""
    if backend == "disk":
        from repro.engine.diskcache import DiskCache

        return DiskCache(tmp_path / "cache", max_entries=1)
    return SolutionCache(max_entries=1)


@pytest.mark.parametrize("backend", ["memory", "disk"])
class TestEvictionInterleavedWithBatch:
    """Cache eviction racing solve_many's dedup (both cache backends).

    A capacity-1 cache guarantees every distinct instance evicts its
    predecessor *mid-batch*; a repeat whose cache entry is long gone
    must be re-answered (by batch dedup or a re-solve), never KeyError.
    """

    def test_entry_evicted_mid_batch_still_answered(self, backend, tmp_path):
        a, _ = random_planted_ksat(10, 30, rng=31)
        b, _ = random_planted_ksat(10, 30, rng=32)
        c, _ = random_planted_ksat(10, 30, rng=33)
        with PortfolioEngine(jobs=1, cache=_tiny_cache(backend, tmp_path)) as eng:
            # b evicts a's entry, c evicts b's — yet the repeats of a and
            # b later in the batch are still answered correctly.
            results = eng.solve_many([a, b, a.copy(), c, b.copy()])
            assert [r.status for r in results] == ["sat"] * 5
            assert eng.stats.batch_dedups == 2
            assert results[2].source == "batch-dedup"
            assert results[4].source == "batch-dedup"
            assert eng.cache.stats.evictions >= 2
            assert len(eng.cache) == 1
            for formula, result in zip([a, b, a, c, b], results):
                assert formula.is_satisfied(result.assignment)

    def test_next_batch_re_solves_evicted_entries(self, backend, tmp_path):
        a, _ = random_planted_ksat(10, 30, rng=34)
        b, _ = random_planted_ksat(10, 30, rng=35)
        with PortfolioEngine(jobs=1, cache=_tiny_cache(backend, tmp_path)) as eng:
            eng.solve_many([a, b])            # b's store evicted a
            races = eng.stats.races
            second = eng.solve_many([a.copy()])
            # A fresh batch cannot dedup against the old one; the evicted
            # entry forces a genuine re-solve (a race, not a cache hit).
            assert second[0].status == "sat" and not second[0].from_cache
            assert eng.stats.races == races + 1
            assert eng.stats.batch_dedups == 0

    def test_eviction_interleaved_with_unsat_entries(self, backend, tmp_path):
        sat, _ = random_planted_ksat(8, 24, rng=36)
        unsat = CNFFormula([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        with PortfolioEngine(jobs=1, cache=_tiny_cache(backend, tmp_path)) as eng:
            results = eng.solve_many([unsat, sat, unsat.copy(), sat.copy()])
            assert [r.status for r in results] == ["unsat", "sat", "unsat", "sat"]
            assert eng.stats.batch_dedups == 2
