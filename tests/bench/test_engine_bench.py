"""The CDCL-vs-DPLL comparisons of the engine bench (fast sizes)."""

from repro.bench.engine import (
    VersusRow,
    bench_unsat_row,
    format_versus_table,
    parity_change_chain,
    unsat_family_instances,
)
from repro.sat.cdcl import cdcl_solve


class TestParityChangeChain:
    def test_base_is_satisfied_by_witness(self):
        base, witness, changes = parity_change_chain(6, seed=3)
        assert base.is_satisfied(witness)
        assert len(changes) == 6

    def test_all_steps_sat_until_the_contradiction(self):
        base, witness, changes = parity_change_chain(6, seed=3)
        formula = base
        for cs in changes[:-1]:
            formula = cs.apply_to(formula)
            # Intermediate steps stay consistent with the planted witness.
            assert formula.is_satisfied(witness)
        formula = changes[-1].apply_to(formula)
        assert not formula.is_satisfied(witness)
        assert cdcl_solve(formula, seed=0).satisfiable is False

    def test_chain_is_deterministic(self):
        a = parity_change_chain(6, seed=3)
        b = parity_change_chain(6, seed=3)
        assert a[0] == b[0]
        assert [len(cs) for cs in a[2]] == [len(cs) for cs in b[2]]

    def test_full_chain_reproduces_unsat_parity_pair(self):
        from repro.cnf.generators import unsat_parity_pair

        base, _witness, changes = parity_change_chain(6, seed=3)
        formula = base
        for cs in changes:
            formula = cs.apply_to(formula)
        assert formula == unsat_parity_pair(6, rng=3)


class TestUnsatRows:
    def test_pinned_instances_are_unsat(self):
        for name, formula in unsat_family_instances("ci"):
            assert cdcl_solve(formula, seed=0).satisfiable is False, name

    def test_bench_unsat_row_records_both_verdicts(self):
        from repro.cnf.generators import unsat_parity_pair

        row = bench_unsat_row("tiny", unsat_parity_pair(6, rng=1))
        assert row.dpll_verdict == "unsat" and row.cdcl_verdict == "unsat"
        assert row.dpll > 0 and row.cdcl > 0 and row.cdcl_speedup > 0

    def test_versus_table_renders(self):
        row = VersusRow("x", 10, 20, dpll=0.1, cdcl=0.01, cdcl_speedup=10.0)
        table = format_versus_table([row], "unsat-family")
        assert "x" in table and "10.0x" in table


class TestServiceExperiment:
    def test_bench_service_smoke(self):
        """Experiment 8 at toy sizes: the disk-backed re-solve path must
        be hit-only, and the shared-pool path must race once per tenant
        (the loosening re-solves are revalidated, never raced)."""
        from repro.bench.engine import bench_service
        from repro.bench.registry import BenchInstance
        from repro.cnf.generators import random_planted_ksat

        instances = []
        for i in range(2):
            f, w = random_planted_ksat(10, 30, rng=50 + i)
            instances.append(
                BenchInstance(f"svc-{i}", "ci", f, w, "planted")
            )
        result = bench_service(instances, jobs=1, seed=0)
        assert result["sessions"] == 2
        assert result["disk_hits"] == 2
        assert result["shared_wall"] > 0 and result["disk_speedup"] > 0
        # One race per tenant's initial solve; the loosening change is
        # answered by the session's O(1) revalidation path.
        assert result["shared_races"] == 2
