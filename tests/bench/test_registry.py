"""Unit tests for the benchmark registry."""

import pytest

from repro.bench.registry import (
    SUITE_LARGE,
    SUITE_SMALL,
    current_tier,
    load_instance,
    suite,
)
from repro.errors import ReproError


class TestSuites:
    def test_row_order_matches_paper(self):
        assert SUITE_SMALL[0] == "par8-1-c"
        assert SUITE_SMALL[-1] == "f600"
        assert SUITE_LARGE[-1] == "g250.29"

    def test_small_suite_loads(self):
        instances = suite("small", tier="ci")
        assert len(instances) == 8
        for inst in instances:
            assert inst.formula.is_satisfied(inst.witness)

    def test_unknown_block(self):
        with pytest.raises(ReproError):
            suite("medium")

    def test_all_block_length(self):
        names = [i.name for i in suite("all", tier="ci")]
        assert len(names) == 13


class TestLoadInstance:
    def test_ci_is_smaller_than_paper_size(self):
        ci = load_instance("f600", tier="ci")
        assert ci.num_vars < 600

    def test_deterministic(self):
        a = load_instance("jnh1", tier="ci")
        b = load_instance("jnh1", tier="ci")
        assert a.formula == b.formula

    def test_solve_method_policy(self):
        small = load_instance("par8-1-c", tier="ci")
        assert small.solve_method == "exact"

    def test_paper_tier_sizes(self):
        inst = load_instance("par8-1-c", tier="paper")
        assert inst.num_vars == 64 and inst.num_clauses == 254

    def test_paper_tier_large_uses_heuristic(self):
        # par32-5 has 3176 vars at paper size: heuristic per the paper.
        from repro.bench.registry import EXACT_VARS_LIMIT, _SEEDS  # noqa: F401

        inst = load_instance("par32-5-c", tier="paper")
        assert inst.solve_method == "heuristic"


class TestTierSelection:
    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert current_tier() == "ci"

    def test_env_paper(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        assert current_tier() == "paper"

    def test_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "jumbo")
        with pytest.raises(ReproError):
            current_tier()
