"""Fast-lane perf smoke: the packed path must not regress the object path.

Not a benchmark — a guard.  The packed entry points exist to make the
hot paths cheaper, so the CI-size DIMACS families must solve through
``solve_packed`` at least as fast as through the object wrappers (which
pay the same solve *plus* kernel construction), within a generous noise
margin, and the wire transport must stay cheaper than pickling the
object graph.  The full comparison with real numbers lives in
``repro bench engine`` (experiment 6, nightly lane).
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.bench.registry import load_instance
from repro.cnf.formula import CNFFormula
from repro.cnf.packed import PackedCNF
from repro.engine.adapters import CDCLAdapter

#: CI-tier families the smoke test covers (kept tiny: two rows, one solver).
_FAMILIES = ("par8-1-c", "ii8a1")

#: The packed path may be at most this much slower than the object path
#: before the smoke test fails.  Both sides are sub-millisecond at CI
#: sizes, so a single scheduler hiccup can invert them; the margin only
#: needs to catch a real structural regression (an accidental re-pack or
#: copy in the hot path shows up as 2x+), while exact behavioral parity
#: is asserted separately on the solvers' deterministic work counters.
_NOISE_MARGIN = 3.0


def _best_of(n: int, fn, *args, **kwargs) -> float:
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.mark.parametrize("name", _FAMILIES)
def test_packed_and_object_paths_do_identical_work(name):
    """The flake-proof parity check: identical deterministic search.

    The object entry point is a thin wrapper over the packed core, so
    with the same seed both paths must take the *same* decisions and hit
    the same conflicts — a counter mismatch means the paths diverged
    (a re-pack bug, a clause-order change), with zero timing noise.
    """
    from repro.sat.cdcl import cdcl_solve, cdcl_solve_packed

    inst = load_instance(name, "ci")
    obj = cdcl_solve(CNFFormula(inst.formula.clauses), seed=0)
    pak = cdcl_solve_packed(inst.formula.packed(), seed=0)
    assert obj.satisfiable is pak.satisfiable is True
    assert (obj.decisions, obj.propagations, obj.conflicts) == (
        pak.decisions, pak.propagations, pak.conflicts,
    )
    assert obj.assignment.as_dict() == pak.assignment.as_dict()


@pytest.mark.parametrize("name", _FAMILIES)
def test_packed_solve_no_regression_vs_object(name):
    inst = load_instance(name, "ci")
    packed = inst.formula.packed()
    adapter = CDCLAdapter()

    verdicts = set()
    # One cold formula per round (built outside the timer) so the
    # object-path wrapper re-packs on every timed call.
    colds = [CNFFormula(inst.formula.clauses) for _ in range(3)]

    def solve_cold():
        verdicts.add(adapter.solve(colds.pop(), seed=0).status)

    def solve_packed():
        verdicts.add(adapter.solve_packed(packed, seed=0).status)

    t_object = _best_of(3, solve_cold)
    t_packed = _best_of(3, solve_packed)

    assert verdicts == {"sat"}, f"{name}: paths disagree ({verdicts})"
    assert t_packed <= t_object * _NOISE_MARGIN, (
        f"{name}: packed path regressed — {t_packed * 1e3:.2f}ms packed vs "
        f"{t_object * 1e3:.2f}ms object"
    )


@pytest.mark.parametrize("name", _FAMILIES)
def test_wire_transport_cheaper_than_pickle(name):
    inst = load_instance(name, "ci")
    cold = CNFFormula(inst.formula.clauses)
    packed = inst.formula.packed()

    payload = packed.to_bytes()
    blob = pickle.dumps(cold)
    assert len(payload) < len(blob), (
        f"{name}: wire payload ({len(payload)}B) not smaller than the "
        f"pickled object graph ({len(blob)}B)"
    )

    # The true ratio is ~10x in pickle's disfavour; the noise margin only
    # absorbs scheduler hiccups on microsecond-scale timings.
    t_pickle = _best_of(3, lambda: pickle.loads(pickle.dumps(cold)))
    t_wire = _best_of(3, lambda: PackedCNF.from_bytes(packed.to_bytes()))
    assert t_wire <= t_pickle * _NOISE_MARGIN, (
        f"{name}: wire round trip ({t_wire * 1e6:.0f}us) slower than "
        f"pickle round trip ({t_pickle * 1e6:.0f}us)"
    )
