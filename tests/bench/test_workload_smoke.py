"""Fast-lane workload smoke: bench plumbing + CLI record/replay loop.

The heavyweight sweep runs nightly (``benchmarks/bench_workload.py``
uploading ``BENCH_workload.json``); this guard keeps the fast lane
honest — a tiny in-process record → replay round trip and a minimal
bench invocation must stay green on every push.
"""

import json

import pytest

from repro.bench.workload import (
    bench_replay_fidelity,
    bench_run,
    format_workload_table,
    main as workload_bench_main,
)
from repro.cli import main as cli_main


class TestBenchWorkload:
    def test_bench_run_produces_percentiles_and_counters(self):
        report = bench_run(
            "sat-mixed", tenants=2, changes=3, seed=0, jobs=1
        )
        assert report.errors == 0
        assert report.throughput > 0
        for key in ("mean", "p50", "p90", "p99", "max"):
            assert key in report.latency
        engine = report.counters["engine"]
        assert engine["solves"] > 0

    def test_replay_fidelity_segment(self):
        fidelity = bench_replay_fidelity(tenants=2, changes=3, seed=0, jobs=1)
        assert fidelity["mismatches"] == 0
        assert fidelity["records"] > 0

    def test_table_renders_every_run(self):
        reports = [
            bench_run("sat-loosening", tenants=2, changes=3, seed=0, jobs=1)
        ]
        table = format_workload_table(reports)
        assert "sat-loosening" in table
        assert "ev/s" in table

    def test_main_writes_the_artifact(self, tmp_path):
        out = tmp_path / "BENCH_workload.json"
        rc = workload_bench_main(
            ["--tier", "ci", "--scenarios", "sat-mixed,tenant-churn",
             "--jobs", "1", "--out", str(out)]
        )
        assert rc == 0
        artifact = json.loads(out.read_text())
        assert artifact["bench"] == "workload"
        assert {r["scenario"] for r in artifact["runs"]} == {
            "sat-mixed", "tenant-churn"
        }
        assert artifact["replay"]["mismatches"] == 0
        assert artifact["open_loop"]["lateness"]["p99"] >= 0


class TestCliLoop:
    def test_loadgen_record_then_replay_verifies(self, tmp_path, capsys):
        trace = tmp_path / "cli.jsonl"
        report = tmp_path / "cli.json"
        rc = cli_main([
            "loadgen", "scheduling-precedence", "--tenants", "2",
            "--changes", "3", "--jobs", "1",
            "--record", str(trace), "--out", str(report),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "errors 0" in out
        assert json.loads(report.read_text())["errors"] == 0

        rc = cli_main(["replay", str(trace), "--jobs", "1"])
        assert rc == 0
        assert "0 mismatches" in capsys.readouterr().out

    def test_replay_exits_nonzero_on_mismatch(self, tmp_path, capsys):
        trace = tmp_path / "cli.jsonl"
        rc = cli_main([
            "loadgen", "sat-tightening", "--tenants", "1", "--changes", "2",
            "--jobs", "1", "--record", str(trace),
        ])
        assert rc == 0
        text = trace.read_text()
        assert '"status":"sat"' in text
        trace.write_text(text.replace('"status":"sat"', '"status":"unsat"'))
        rc = cli_main(["replay", str(trace), "--jobs", "1"])
        assert rc == 1
        assert "mismatch" in capsys.readouterr().out

    def test_loadgen_open_loop(self, tmp_path, capsys):
        rc = cli_main([
            "loadgen", "sat-loosening", "--tenants", "2", "--changes", "3",
            "--jobs", "1", "--rate", "300",
        ])
        assert rc == 0
        assert "lateness" in capsys.readouterr().out
