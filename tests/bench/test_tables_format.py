"""Unit tests for the table formatters (no solving involved)."""

from repro.bench.runner import Table1Row, Table2Row, Table3Row
from repro.bench.tables import format_table1, format_table2, format_table3


def _t1(name="a", sc=0.5, of=1.5, feasible=True):
    return Table1Row(
        name=name, num_vars=10, num_clauses=20, orig_runtime=1.0,
        sc_normalized=sc, of_normalized=of, sc_feasible=feasible,
    )


class TestTable1Format:
    def test_average_and_median(self):
        text = format_table1([_t1(sc=0.5, of=1.0), _t1("b", sc=1.5, of=3.0)])
        assert "1.00" in text  # sc average
        assert "2.00" in text  # of average

    def test_infeasible_marker(self):
        text = format_table1([_t1(feasible=False)])
        assert "0.50*" in text
        assert "infeasible" in text

    def test_no_marker_when_all_feasible(self):
        text = format_table1([_t1()])
        assert "*" not in text.replace("0.50", "")


class TestTable2Format:
    def test_columns(self):
        row = Table2Row(
            name="x", num_vars=30, num_clauses=100, orig_runtime=2.0,
            avg_sub_vars=5.5, avg_sub_clauses=20.25, new_normalized=0.01,
        )
        text = format_table2([row])
        assert "5.5/20.2" in text or "5.5/20.3" in text
        assert "0.0100" in text


class TestTable3Format:
    def test_percentages(self):
        row = Table3Row(
            name="x", num_vars=30, num_clauses=100,
            preserved_original=72.5, preserved_with_ec=98.25,
        )
        text = format_table3([row])
        assert "72.5" in text and "98.2" in text
        assert "average" in text and "median" in text
