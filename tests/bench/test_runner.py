"""Unit tests for the table runners and formatters (tiny instances)."""

import pytest

from repro.bench.registry import BenchInstance
from repro.bench.runner import (
    summarize,
    table1_row,
    table2_row,
    table3_row,
)
from repro.bench.tables import format_table1, format_table2, format_table3
from repro.cnf.generators import random_planted_ksat


@pytest.fixture(scope="module")
def tiny():
    """A tiny but non-trivial planted instance wrapped as a bench row."""
    formula, witness = random_planted_ksat(18, 54, rng=42)
    return BenchInstance(
        name="tiny", tier="ci", formula=formula, witness=witness, family="f"
    )


class TestTable1:
    def test_row_fields(self, tiny):
        row = table1_row(tiny, support="chained")
        assert row.name == "tiny"
        assert row.orig_runtime > 0
        assert row.sc_normalized > 0 and row.of_normalized > 0
        assert row.solver == "exact"

    def test_formatting(self, tiny):
        row = table1_row(tiny, support="chained")
        text = format_table1([row])
        assert "tiny" in text and "average" in text and "median" in text


class TestTable2:
    def test_row_fields(self, tiny):
        row = table2_row(tiny, trials=2, seed=1)
        assert row.trials == 2
        assert row.avg_sub_vars <= tiny.num_vars
        assert row.avg_sub_clauses <= tiny.num_clauses + 10
        assert row.new_normalized > 0

    def test_subproblem_bounded_by_modified_instance(self, tiny):
        # At 18 variables the affected set percolates to nearly the whole
        # instance (shrinkage shows at realistic sizes; see benchmarks/),
        # but it can never exceed the modified instance itself.
        row = table2_row(tiny, trials=2, seed=1)
        assert row.avg_sub_clauses <= tiny.num_clauses + 10
        assert row.avg_sub_vars <= tiny.num_vars

    def test_formatting(self, tiny):
        row = table2_row(tiny, trials=2, seed=1)
        text = format_table2([row])
        assert "Ave #V/C" in text and "tiny" in text


class TestTable3:
    def test_row_fields(self, tiny):
        row = table3_row(tiny, trials=2, seed=1)
        assert 0 <= row.preserved_original <= 100
        assert 0 <= row.preserved_with_ec <= 100

    def test_preserving_beats_oblivious(self, tiny):
        row = table3_row(tiny, trials=2, seed=1)
        assert row.preserved_with_ec >= row.preserved_original - 1e-9

    def test_formatting(self, tiny):
        row = table3_row(tiny, trials=2, seed=1)
        text = format_table3([row])
        assert "%Sol" in text and "tiny" in text


class TestSummarize:
    def test_mean_median(self):
        mean, median = summarize([1.0, 2.0, 6.0])
        assert mean == pytest.approx(3.0)
        assert median == pytest.approx(2.0)

    def test_empty(self):
        import math

        mean, median = summarize([])
        assert math.isnan(mean) and math.isnan(median)
