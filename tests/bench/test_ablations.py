"""Unit tests for the ablation runner."""

import pytest

from repro.bench.ablations import AblationRow, format_ablations, run_ablations


class TestAblations:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_ablations("ii8a1", tier="ci")

    def test_every_group_has_two_variants(self, rows):
        from collections import Counter

        counts = Counter(r.group for r in rows)
        assert set(counts) == {
            "enabling-support", "presolve", "ec-warm-start",
            "root-cuts", "lp-backend",
        }
        assert all(v == 2 for v in counts.values())

    def test_paired_variants_reach_same_objective(self, rows):
        by_group: dict[str, list[AblationRow]] = {}
        for r in rows:
            by_group.setdefault(r.group, []).append(r)
        for group, pair in by_group.items():
            if group == "enabling-support":
                continue  # different formulations, same instance
            a, b = pair
            assert a.objective == pytest.approx(b.objective, abs=1e-6), group

    def test_formatting(self, rows):
        text = format_ablations(rows, "ii8a1")
        assert "enabling-support" in text
        assert "lp-backend" in text
        assert "seconds" in text
