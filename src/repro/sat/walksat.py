"""WalkSAT local search for satisfiable CNF instances.

Incomplete but fast; the EC harness uses it to find fresh witnesses on the
large table rows (where the paper used its heuristic ILP solver) and the
test suite uses it as a second opinion against DPLL.

The flip loop reads clauses from the :class:`~repro.cnf.packed.PackedCNF`
flat arrays (:func:`walksat_solve_packed`): clause *ci* is the index
range ``lits[offsets[ci]:offsets[ci + 1]]``, so entry allocates no
per-clause tuples.  :func:`walksat_solve` is a thin wrapper over the
formula's cached kernel.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import _rng
from repro.cnf.packed import PackedCNF

#: How many flips happen between wall-clock deadline checks.
_DEADLINE_STRIDE = 256


@dataclass
class WalkSATResult:
    """Outcome of a WalkSAT run."""

    satisfiable: bool | None       # None = budget exhausted (unknown)
    assignment: Assignment | None = None
    flips: int = 0
    restarts: int = 0


def walksat_solve(
    formula: CNFFormula,
    max_flips: int = 100_000,
    max_restarts: int = 10,
    noise: float = 0.5,
    rng: int | random.Random | None = 0,
    initial: Assignment | None = None,
    *,
    seed: int | random.Random | None = None,
    deadline: float | None = None,
) -> WalkSATResult:
    """Run WalkSAT with the classic break-count move selection.

    A thin wrapper over :func:`walksat_solve_packed` on the formula's
    cached packed kernel; see there for the argument semantics.
    """
    return walksat_solve_packed(
        formula.packed(),
        max_flips=max_flips,
        max_restarts=max_restarts,
        noise=noise,
        rng=rng,
        initial=initial,
        seed=seed,
        deadline=deadline,
    )


def walksat_solve_packed(
    packed: PackedCNF,
    max_flips: int = 100_000,
    max_restarts: int = 10,
    noise: float = 0.5,
    rng: int | random.Random | None = 0,
    initial: Assignment | None = None,
    *,
    seed: int | random.Random | None = None,
    deadline: float | None = None,
) -> WalkSATResult:
    """Run WalkSAT over the packed kernel's flat clause arrays.

    Args:
        noise: probability of a random walk move when every candidate flip
            breaks some clause.
        initial: starting assignment for the first restart (EC warm start).
        seed: engine-convention alias for ``rng``; when given it takes
            precedence, so every solver entry point shares one seeding
            convention.  Identical seeds give identical runs.
        deadline: wall-clock budget in seconds for this call; on expiry the
            search stops with ``satisfiable=None``.

    Returns:
        ``satisfiable=True`` with a model, or ``satisfiable=None`` if the
        budget ran out (WalkSAT can never prove UNSAT).
    """
    rng = _rng(rng if seed is None else seed)
    t0 = time.perf_counter()
    if packed.has_empty_clause():
        return WalkSATResult(False)
    variables = list(packed.variables)
    num_clauses = packed.num_clauses
    if not variables or num_clauses == 0:
        return WalkSATResult(True, Assignment({v: False for v in variables}))
    flat = packed.lits
    offsets = packed.offsets
    occurs: dict[int, list[int]] = {v: [] for v in variables}
    for ci in range(num_clauses):
        for k in range(offsets[ci], offsets[ci + 1]):
            occurs[abs(flat[k])].append(ci)

    result = WalkSATResult(None)
    for restart in range(max_restarts):
        if deadline is not None and time.perf_counter() - t0 > deadline:
            return result
        result.restarts += 1
        if initial is not None and restart == 0:
            value = {v: bool(initial.get(v, rng.random() < 0.5)) for v in variables}
        else:
            value = {v: bool(rng.getrandbits(1)) for v in variables}

        def true_count(ci: int) -> int:
            total = 0
            for k in range(offsets[ci], offsets[ci + 1]):
                lit = flat[k]
                if value[abs(lit)] if lit > 0 else not value[abs(lit)]:
                    total += 1
            return total

        counts = [true_count(ci) for ci in range(num_clauses)]
        unsat = {ci for ci, k in enumerate(counts) if k == 0}

        def flip(var: int) -> None:
            value[var] = not value[var]
            for ci in occurs[var]:
                counts[ci] = true_count(ci)
                if counts[ci] == 0:
                    unsat.add(ci)
                else:
                    unsat.discard(ci)

        for flip_no in range(max_flips):
            if (
                deadline is not None
                and flip_no % _DEADLINE_STRIDE == 0
                and time.perf_counter() - t0 > deadline
            ):
                return result
            if not unsat:
                return WalkSATResult(
                    True,
                    Assignment(value),
                    flips=result.flips,
                    restarts=result.restarts,
                )
            ci = rng.choice(tuple(unsat))

            def break_count(var: int) -> int:
                broken = 0
                for cj in occurs[var]:
                    if counts[cj] == 1:
                        # The single true literal must be the one we flip.
                        for k in range(offsets[cj], offsets[cj + 1]):
                            lit = flat[k]
                            if abs(lit) == var and (
                                value[var] if lit > 0 else not value[var]
                            ):
                                broken += 1
                                break
                return broken

            candidates = [
                abs(flat[k]) for k in range(offsets[ci], offsets[ci + 1])
            ]
            breaks = {v: break_count(v) for v in set(candidates)}
            best = min(breaks.values())
            if best == 0:
                var = rng.choice([v for v, b in breaks.items() if b == 0])
            elif rng.random() < noise:
                var = rng.choice(candidates)
            else:
                var = rng.choice([v for v, b in breaks.items() if b == best])
            flip(var)
            result.flips += 1
    return result
