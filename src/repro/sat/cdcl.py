"""A conflict-driven clause-learning (CDCL) SAT solver.

The portfolio member that dominates on hard *tightened* EC instances:
every clause-adding engineering change makes the instance harder, and an
UNSAT-heavy change chain forces chronological DPLL (:mod:`repro.sat.dpll`)
into exponential re-exploration of the same conflicts.  CDCL learns a new
clause from every conflict instead, so refutations that take DPLL
thousands of backtracks are found in a handful of restarts.

Implementation — the classic MiniSat recipe, kept dependency-free:

* **two-watched-literal propagation** — only clauses whose watched
  literal just became false are visited, and backtracking never touches
  the watch lists;
* **1-UIP conflict analysis** — each conflict is resolved backwards along
  the implication trail until a single literal of the current decision
  level remains (the first unique implication point), yielding an
  asserting clause and a backjump level;
* **learned-clause minimization** — literals whose reason antecedents are
  already implied by the rest of the learned clause are removed
  (recursive self-subsumption), shortening what gets stored and watched;
* **VSIDS branching** — per-variable activities bumped along every
  conflict resolution and decayed geometrically, served from a lazy
  max-heap; ties (and the initial order) are seed-shuffled so portfolio
  races diversify deterministically;
* **Luby restarts** — search restarts after ``restart_base * luby(i)``
  conflicts, keeping learned clauses and saved phases;
* **learned-clause DB reduction** — when the learned database outgrows
  its budget the least active half is dropped (binary and reason clauses
  are kept), so memory and propagation cost stay bounded on long runs.

The entry points mirror :mod:`repro.sat.dpll`: ``cdcl_solve(formula,
polarity_hint, *, deadline=, seed=)`` and a configurable
:class:`CDCLSolver`, both returning a :class:`CDCLResult`.  The problem
clauses are loaded straight from the :class:`~repro.cnf.packed.PackedCNF`
flat arrays (``cdcl_solve_packed`` / :meth:`CDCLSolver.solve_packed`);
the object-based entry points are thin wrappers over the formula's
cached kernel.
"""

from __future__ import annotations

import heapq
import random
import time
from dataclasses import dataclass

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.cnf.packed import PackedCNF
from repro.errors import CNFError

#: How many conflicts happen between wall-clock deadline checks.
_DEADLINE_STRIDE = 128

#: Activity magnitude that triggers rescaling (vars and clauses alike).
_RESCALE_LIMIT = 1e100


def luby(i: int) -> int:
    """The *i*-th (1-based) term of the Luby restart sequence.

    1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ... — the universally
    optimal restart schedule for Las-Vegas searches.
    """
    if i < 1:
        raise CNFError(f"luby index must be >= 1, got {i}")
    while True:
        k = (i + 1).bit_length() - 1
        if (1 << k) == i + 1:
            return 1 << (k - 1) if k > 0 else 1
        i -= (1 << k) - 1


@dataclass
class CDCLResult:
    """Outcome of a CDCL solve."""

    satisfiable: bool | None       # None = gave up (budget / deadline)
    assignment: Assignment | None = None
    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    learned: int = 0               # clauses learned (before any deletion)
    restarts: int = 0
    deleted: int = 0               # learned clauses dropped by DB reduction


class _Clause:
    """One clause in the solver's database (original or learned).

    ``lits`` holds internal literal codes (``2*v`` positive, ``2*v + 1``
    negative) with the two watched literals at positions 0 and 1.
    Deletion is lazy: reduced clauses are flagged and dropped from each
    watch list the next time propagation walks it.
    """

    __slots__ = ("lits", "learnt", "activity", "deleted")

    def __init__(self, lits: list[int], learnt: bool = False):
        self.lits = lits
        self.learnt = learnt
        self.activity = 0.0
        self.deleted = False


@dataclass
class CDCLSolver:
    """Configurable conflict-driven clause-learning search.

    Args:
        max_conflicts: conflict budget; None/0 means unlimited.
        restart_base: conflicts per Luby unit (restart ``i`` fires after
            ``restart_base * luby(i)`` conflicts since the last restart).
        var_decay: VSIDS geometric decay factor per conflict.
        clause_decay: learned-clause activity decay factor per conflict.
        max_learnts_factor: learned-DB budget as a multiple of the
            original clause count (with a small absolute floor).
    """

    max_conflicts: int = 0
    restart_base: int = 64
    var_decay: float = 0.95
    clause_decay: float = 0.999
    max_learnts_factor: float = 1.5

    def solve(
        self,
        formula: CNFFormula,
        polarity_hint: Assignment | None = None,
        *,
        deadline: float | None = None,
        seed: int | None = None,
    ) -> CDCLResult:
        """Search for a satisfying assignment of *formula*.

        A thin wrapper: fetches the formula's cached packed kernel and
        delegates to :meth:`solve_packed`.

        Args:
            polarity_hint: preferred initial phase per variable (EC hands
                the previous solution here; phase saving takes over after
                the first flip).
            deadline: wall-clock budget in seconds for this call; on
                expiry the search stops with ``satisfiable=None``.
            seed: deterministic diversification of the initial VSIDS
                order; identical seeds give identical runs, and None keeps
                the index order.
        """
        return self.solve_packed(
            formula.packed(), polarity_hint, deadline=deadline, seed=seed
        )

    def solve_packed(
        self,
        packed: PackedCNF,
        polarity_hint: Assignment | None = None,
        *,
        deadline: float | None = None,
        seed: int | None = None,
    ) -> CDCLResult:
        """Search the packed kernel directly (flat-array clause loading)."""
        t0 = time.perf_counter()
        result = CDCLResult(None)
        if packed.has_empty_clause():
            result.satisfiable = False
            return result
        variables = list(packed.variables)
        nvars = len(variables)
        index_of = {v: i for i, v in enumerate(variables)}

        # -- internal state -------------------------------------------------
        assigns: list[int] = [-1] * nvars          # -1 unassigned, 0/1 value
        level: list[int] = [0] * nvars
        reason: list[_Clause | None] = [None] * nvars
        saved_phase: list[bool] = [
            (polarity_hint.get(v, True) if polarity_hint is not None else True)
            for v in variables
        ]
        activity: list[float] = [0.0] * nvars
        if seed is not None:
            rnd = random.Random(seed)
            activity = [rnd.random() * 1e-6 for _ in range(nvars)]
        var_inc = 1.0
        cla_inc = 1.0

        trail: list[int] = []                       # literal codes, in order
        trail_lim: list[int] = []                   # trail length per level
        qhead = 0

        watches: list[list[_Clause]] = [[] for _ in range(2 * nvars)]
        clauses: list[_Clause] = []
        learnts: list[_Clause] = []

        seen: list[bool] = [False] * nvars

        def lit_code(lit: int) -> int:
            return 2 * index_of[abs(lit)] + (lit < 0)

        def lit_value(code: int) -> bool | None:
            a = assigns[code >> 1]
            if a < 0:
                return None
            return bool(a) ^ bool(code & 1)

        def enqueue(code: int, why: _Clause | None) -> None:
            v = code >> 1
            assigns[v] = (code & 1) ^ 1
            saved_phase[v] = not (code & 1)
            level[v] = len(trail_lim)
            reason[v] = why
            trail.append(code)

        def attach(clause: _Clause) -> None:
            # Watch lists are indexed by the watched literal itself; a list
            # is walked exactly when its literal becomes false.
            watches[clause.lits[0]].append(clause)
            watches[clause.lits[1]].append(clause)

        # -- load the problem clauses straight off the flat arrays ---------
        # Clause literals are duplicate-free and (variable, polarity)-sorted
        # (the PackedCNF invariant), so no per-clause dedup pass is needed
        # and tautologies show up as adjacent complementary literals.
        flat = packed.lits
        offsets = packed.offsets
        for ci in range(len(offsets) - 1):
            start, end = offsets[ci], offsets[ci + 1]
            if end - start == 1:
                code = lit_code(flat[start])
                val = lit_value(code)
                if val is False:
                    result.satisfiable = False
                    return result
                if val is None:
                    enqueue(code, None)
                continue
            if packed.is_tautology_at(ci):
                continue
            clause = _Clause([lit_code(flat[k]) for k in range(start, end)])
            clauses.append(clause)
            attach(clause)
        if not clauses and not trail:
            result.satisfiable = True
            result.assignment = Assignment({v: False for v in variables})
            return result
        max_learnts = max(100.0, len(clauses) * self.max_learnts_factor)

        # -- propagation ---------------------------------------------------
        def propagate() -> _Clause | None:
            nonlocal qhead
            while qhead < len(trail):
                false_lit = trail[qhead] ^ 1
                qhead += 1
                wl = watches[false_lit]
                kept: list[_Clause] = []
                i = 0
                n = len(wl)
                while i < n:
                    c = wl[i]
                    i += 1
                    if c.deleted:
                        continue                    # lazy DB-reduction drop
                    lits = c.lits
                    if lits[0] == false_lit:
                        lits[0], lits[1] = lits[1], lits[0]
                    first = lits[0]
                    if lit_value(first) is True:
                        kept.append(c)
                        continue
                    for k in range(2, len(lits)):
                        if lit_value(lits[k]) is not False:
                            lits[1], lits[k] = lits[k], lits[1]
                            watches[lits[1]].append(c)
                            break
                    else:
                        kept.append(c)
                        if lit_value(first) is False:
                            # Conflict: keep the rest of the watch list.
                            while i < n:
                                if not wl[i].deleted:
                                    kept.append(wl[i])
                                i += 1
                            watches[false_lit] = kept
                            qhead = len(trail)
                            return c
                        result.propagations += 1
                        enqueue(first, c)
                watches[false_lit] = kept
            return None

        # -- activities ----------------------------------------------------
        def bump_var(v: int) -> None:
            nonlocal var_inc
            activity[v] += var_inc
            if activity[v] > _RESCALE_LIMIT:
                for u in range(nvars):
                    activity[u] *= 1e-100
                var_inc *= 1e-100

        def bump_clause(c: _Clause) -> None:
            nonlocal cla_inc
            c.activity += cla_inc
            if c.activity > _RESCALE_LIMIT:
                for lc in learnts:
                    lc.activity *= 1e-100
                cla_inc *= 1e-100

        # Lazy max-heap over (-activity, var); stale entries are skipped.
        order_heap: list[tuple[float, int]] = [
            (-activity[v], v) for v in range(nvars)
        ]
        heapq.heapify(order_heap)

        def push_order(v: int) -> None:
            heapq.heappush(order_heap, (-activity[v], v))

        def pick_branch_var() -> int | None:
            while order_heap:
                neg_act, v = heapq.heappop(order_heap)
                if assigns[v] < 0 and -neg_act == activity[v]:
                    return v
            # Heap exhausted by stale entries; rebuild from scratch.
            rest = [v for v in range(nvars) if assigns[v] < 0]
            if not rest:
                return None
            for v in rest:
                push_order(v)
            return pick_branch_var()

        # -- conflict analysis (1-UIP + recursive minimization) ------------
        def analyze(confl: _Clause) -> tuple[list[int], int]:
            learnt: list[int] = [0]                 # slot 0 for the UIP
            path = 0
            p: int | None = None
            index = len(trail) - 1
            to_clear: list[int] = []
            while True:
                if confl.learnt:
                    bump_clause(confl)
                start = 0 if p is None else 1
                for q in confl.lits[start:]:
                    v = q >> 1
                    if not seen[v] and level[v] > 0:
                        seen[v] = True
                        to_clear.append(v)
                        bump_var(v)
                        push_order(v)
                        if level[v] >= len(trail_lim):
                            path += 1
                        else:
                            learnt.append(q)
                while not seen[trail[index] >> 1]:
                    index -= 1
                p = trail[index]
                index -= 1
                pv = p >> 1
                seen[pv] = False
                path -= 1
                if path == 0:
                    break
                confl = reason[pv]
            learnt[0] = p ^ 1

            # Minimization: a literal is redundant when its whole reason is
            # already implied by the rest of the learned clause (checked
            # recursively, conservatively failing on decision literals).
            def redundant(code: int) -> bool:
                stack = [code]
                top = len(to_clear)
                while stack:
                    why = reason[stack.pop() >> 1]
                    for q in why.lits[1:]:
                        v = q >> 1
                        if not seen[v] and level[v] > 0:
                            if reason[v] is None:
                                for u in to_clear[top:]:
                                    seen[u] = False
                                del to_clear[top:]
                                return False
                            seen[v] = True
                            to_clear.append(v)
                            stack.append(q)
                return True

            learnt = [learnt[0]] + [
                q
                for q in learnt[1:]
                if reason[q >> 1] is None or not redundant(q)
            ]
            for v in to_clear:
                seen[v] = False

            if len(learnt) == 1:
                return learnt, 0
            # Backjump to the second-highest level; its literal watches slot 1.
            hi = max(range(1, len(learnt)), key=lambda i: level[learnt[i] >> 1])
            learnt[1], learnt[hi] = learnt[hi], learnt[1]
            return learnt, level[learnt[1] >> 1]

        def cancel_until(lvl: int) -> None:
            nonlocal qhead
            if len(trail_lim) <= lvl:
                return
            bound = trail_lim[lvl]
            for code in reversed(trail[bound:]):
                v = code >> 1
                assigns[v] = -1
                reason[v] = None
                push_order(v)
            del trail[bound:]
            del trail_lim[lvl:]
            qhead = bound

        def reduce_db() -> None:
            """Drop the least active half of the learned clauses."""
            nonlocal learnts
            learnts.sort(key=lambda c: c.activity)
            keep: list[_Clause] = []
            budget = len(learnts) // 2
            for i, c in enumerate(learnts):
                locked = reason[c.lits[0] >> 1] is c
                if len(c.lits) <= 2 or locked or i >= budget:
                    keep.append(c)
                else:
                    c.deleted = True
                    result.deleted += 1
            learnts = keep

        # -- main search loop ----------------------------------------------
        restart_num = 0
        conflicts_since_restart = 0
        restart_limit = self.restart_base * luby(1)
        while True:
            confl = propagate()
            if confl is not None:
                result.conflicts += 1
                conflicts_since_restart += 1
                if not trail_lim:
                    result.satisfiable = False
                    return result
                learnt, back_level = analyze(confl)
                cancel_until(back_level)
                if len(learnt) == 1:
                    enqueue(learnt[0], None)
                else:
                    clause = _Clause(learnt, learnt=True)
                    clause.activity = cla_inc
                    learnts.append(clause)
                    attach(clause)
                    enqueue(learnt[0], clause)
                result.learned += 1
                var_inc /= self.var_decay
                cla_inc /= self.clause_decay

                if self.max_conflicts and result.conflicts >= self.max_conflicts:
                    return result      # satisfiable=None: budget exhausted
                if (
                    deadline is not None
                    and result.conflicts % _DEADLINE_STRIDE == 0
                    and time.perf_counter() - t0 > deadline
                ):
                    return result      # satisfiable=None: deadline hit
                if conflicts_since_restart >= restart_limit:
                    restart_num += 1
                    result.restarts += 1
                    conflicts_since_restart = 0
                    restart_limit = self.restart_base * luby(restart_num + 1)
                    cancel_until(0)
                if len(learnts) >= max_learnts:
                    reduce_db()
                    max_learnts *= 1.1
            else:
                v = pick_branch_var()
                if v is None:
                    result.satisfiable = True
                    result.assignment = Assignment(
                        {
                            var: bool(assigns[index_of[var]])
                            if assigns[index_of[var]] >= 0
                            else saved_phase[index_of[var]]
                            for var in variables
                        }
                    )
                    return result
                if (
                    deadline is not None
                    and result.decisions % _DEADLINE_STRIDE == 0
                    and time.perf_counter() - t0 > deadline
                ):
                    return result      # satisfiable=None: deadline hit
                result.decisions += 1
                trail_lim.append(len(trail))
                enqueue(2 * v + (0 if saved_phase[v] else 1), None)

    # ------------------------------------------------------------------
    def is_satisfiable(self, formula: CNFFormula) -> bool:
        """Convenience wrapper raising if the budget ran out."""
        res = self.solve(formula)
        if res.satisfiable is None:
            raise CNFError("CDCL budget exhausted before a verdict")
        return res.satisfiable


def cdcl_solve(
    formula: CNFFormula,
    polarity_hint: Assignment | None = None,
    max_conflicts: int = 0,
    *,
    deadline: float | None = None,
    seed: int | None = None,
) -> CDCLResult:
    """One-shot CDCL solve of *formula*."""
    return CDCLSolver(max_conflicts=max_conflicts).solve(
        formula, polarity_hint, deadline=deadline, seed=seed
    )


def cdcl_solve_packed(
    packed: PackedCNF,
    polarity_hint: Assignment | None = None,
    max_conflicts: int = 0,
    *,
    deadline: float | None = None,
    seed: int | None = None,
) -> CDCLResult:
    """One-shot CDCL solve of a packed kernel (no formula objects)."""
    return CDCLSolver(max_conflicts=max_conflicts).solve_packed(
        packed, polarity_hint, deadline=deadline, seed=seed
    )
