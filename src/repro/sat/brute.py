"""Exhaustive SAT enumeration for small formulas (test oracle)."""

from __future__ import annotations

import itertools
import time
from typing import Iterator

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.errors import CNFError

#: Enumeration guard: 2^22 assignments is the most the oracle will scan.
MAX_BRUTE_VARS = 22

#: How many assignments are scanned between wall-clock deadline checks.
_DEADLINE_STRIDE = 4096


def _check_size(formula: CNFFormula) -> list[int]:
    variables = list(formula.variables)
    if len(variables) > MAX_BRUTE_VARS:
        raise CNFError(
            f"brute force limited to {MAX_BRUTE_VARS} variables, got {len(variables)}"
        )
    return variables


def all_satisfying_assignments(
    formula: CNFFormula, *, deadline: float | None = None
) -> Iterator[Assignment]:
    """Yield every total satisfying assignment (lexicographic order).

    Args:
        deadline: wall-clock budget in seconds for the whole enumeration.

    Raises:
        CNFError: if the deadline expires before the scan completes (a
            partial enumeration would silently look like "few models").
    """
    variables = _check_size(formula)
    t0 = time.perf_counter()
    for scanned, bits in enumerate(
        itertools.product((False, True), repeat=len(variables))
    ):
        if (
            deadline is not None
            and scanned % _DEADLINE_STRIDE == 0
            and time.perf_counter() - t0 > deadline
        ):
            raise CNFError("brute-force enumeration hit its deadline")
        assignment = Assignment(dict(zip(variables, bits)))
        if formula.is_satisfied(assignment):
            yield assignment


def brute_force_solve(
    formula: CNFFormula,
    *,
    deadline: float | None = None,
    seed: int | None = None,
) -> Assignment | None:
    """First satisfying assignment, or None if UNSAT.

    Args:
        deadline: wall-clock budget in seconds (raises
            :class:`~repro.errors.CNFError` on expiry).
        seed: accepted for the uniform solver convention; enumeration is
            deterministic, so the seed has no effect.
    """
    del seed  # enumeration order is fixed; kept for signature uniformity
    return next(all_satisfying_assignments(formula, deadline=deadline), None)


def count_models(formula: CNFFormula) -> int:
    """Number of total satisfying assignments."""
    return sum(1 for _ in all_satisfying_assignments(formula))


def max_agreement_model(
    formula: CNFFormula, reference: Assignment
) -> tuple[Assignment | None, int]:
    """The model agreeing with *reference* on the most variables.

    This is the brute-force oracle for preserving EC: the optimal value of
    the paper's ``max sum Z_i`` objective.

    Returns:
        (best model or None, agreement count; -1 when UNSAT).
    """
    best: Assignment | None = None
    best_score = -1
    for model in all_satisfying_assignments(formula):
        score = reference.agreement_with(model)
        if score > best_score:
            best, best_score = model, score
    return best, best_score
