"""Exhaustive SAT enumeration for small formulas (test oracle)."""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.errors import CNFError

#: Enumeration guard: 2^22 assignments is the most the oracle will scan.
MAX_BRUTE_VARS = 22


def _check_size(formula: CNFFormula) -> list[int]:
    variables = list(formula.variables)
    if len(variables) > MAX_BRUTE_VARS:
        raise CNFError(
            f"brute force limited to {MAX_BRUTE_VARS} variables, got {len(variables)}"
        )
    return variables


def all_satisfying_assignments(formula: CNFFormula) -> Iterator[Assignment]:
    """Yield every total satisfying assignment (lexicographic order)."""
    variables = _check_size(formula)
    for bits in itertools.product((False, True), repeat=len(variables)):
        assignment = Assignment(dict(zip(variables, bits)))
        if formula.is_satisfied(assignment):
            yield assignment


def brute_force_solve(formula: CNFFormula) -> Assignment | None:
    """First satisfying assignment, or None if UNSAT."""
    return next(all_satisfying_assignments(formula), None)


def count_models(formula: CNFFormula) -> int:
    """Number of total satisfying assignments."""
    return sum(1 for _ in all_satisfying_assignments(formula))


def max_agreement_model(
    formula: CNFFormula, reference: Assignment
) -> tuple[Assignment | None, int]:
    """The model agreeing with *reference* on the most variables.

    This is the brute-force oracle for preserving EC: the optimal value of
    the paper's ``max sum Z_i`` objective.

    Returns:
        (best model or None, agreement count; -1 when UNSAT).
    """
    best: Assignment | None = None
    best_score = -1
    for model in all_satisfying_assignments(formula):
        score = reference.agreement_with(model)
        if score > best_score:
            best, best_score = model, score
    return best, best_score
