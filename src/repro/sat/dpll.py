"""A complete DPLL SAT solver.

Used as independent ground truth for the ILP route (a satisfying ILP
solution must decode to a model; an INFEASIBLE ILP must match an UNSAT
verdict here) and as a general witness generator.

Implementation: iterative trail-based search with two watched literals,
MOMS-flavoured static branching order refreshed on restarts-free
chronological backtracking, and phase saving.  No clause learning — the
instances this reproduction solves exactly are small enough that plain
DPLL with good propagation is sufficient, and the simplicity keeps the
solver auditable.

The inner loops consume the :class:`~repro.cnf.packed.PackedCNF` flat
arrays directly (:meth:`DPLLSolver.solve_packed` /
:func:`dpll_solve_packed`): clause *ci* is the index range
``lits[starts[ci]:ends[ci]]``, so no per-clause objects or tuples are
allocated on entry.  The object-based entry points are thin wrappers
fetching the formula's cached kernel.
"""

from __future__ import annotations

import random
import time
from array import array
from dataclasses import dataclass, field

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.cnf.packed import PackedCNF
from repro.errors import CNFError

#: How many decisions happen between wall-clock deadline checks.
_DEADLINE_STRIDE = 64


@dataclass
class DPLLResult:
    """Outcome of a DPLL solve."""

    satisfiable: bool | None       # None = gave up (budget)
    assignment: Assignment | None = None
    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0


@dataclass
class DPLLSolver:
    """Configurable DPLL search.

    Args:
        max_decisions: budget; None/0 means unlimited.
    """

    max_decisions: int = 0
    _clauses: list[tuple[int, ...]] = field(default_factory=list, repr=False)

    def solve(
        self,
        formula: CNFFormula,
        polarity_hint: Assignment | None = None,
        *,
        deadline: float | None = None,
        seed: int | None = None,
    ) -> DPLLResult:
        """Search for a satisfying assignment of *formula*.

        A thin wrapper: fetches the formula's cached packed kernel and
        delegates to :meth:`solve_packed`.

        Args:
            polarity_hint: preferred initial phase per variable (EC hands
                the previous solution here, which makes re-solves of lightly
                modified instances nearly free).
            deadline: wall-clock budget in seconds for this call; on expiry
                the search stops with ``satisfiable=None``.
            seed: deterministic tie-break shuffle for the static branching
                order (DPLL is otherwise deterministic; identical seeds give
                identical runs, and None keeps the legacy order).
        """
        return self.solve_packed(
            formula.packed(), polarity_hint, deadline=deadline, seed=seed
        )

    def solve_packed(
        self,
        packed: PackedCNF,
        polarity_hint: Assignment | None = None,
        *,
        deadline: float | None = None,
        seed: int | None = None,
    ) -> DPLLResult:
        """Search the packed kernel directly (flat-array inner loops)."""
        t0 = time.perf_counter()
        if packed.has_empty_clause():
            return DPLLResult(False)
        flat = packed.lits
        # Non-tautological clause spans, as parallel start/end arrays.
        starts = array("i")
        ends = array("i")
        for ci in range(packed.num_clauses):
            if not packed.is_tautology_at(ci):
                s, e = packed.clause_bounds(ci)
                starts.append(s)
                ends.append(e)
        num_clauses = len(starts)
        variables = list(packed.variables)
        if not num_clauses:
            model = Assignment({v: False for v in variables})
            return DPLLResult(True, model)

        # value: var -> True/False/None
        value: dict[int, bool | None] = {v: None for v in variables}
        phase: dict[int, bool] = {
            v: (polarity_hint.get(v, True) if polarity_hint is not None else True)
            for v in variables
        }

        # Two watched literals per clause (unit clauses watch twice).
        watches: dict[int, list[int]] = {}
        watched: list[list[int]] = []
        for ci in range(num_clauses):
            s, e = starts[ci], ends[ci]
            w = [flat[s], flat[e - 1] if e - s > 1 else flat[s]]
            watched.append(w)
            for lit in set(w):
                watches.setdefault(lit, []).append(ci)

        def lit_value(lit: int) -> bool | None:
            v = value[abs(lit)]
            if v is None:
                return None
            return v if lit > 0 else not v

        trail: list[tuple[int, bool]] = []  # (var, is_decision)
        result = DPLLResult(None)

        def assign(var: int, val: bool, decision: bool) -> int | None:
            """Assign and propagate; returns a conflicting clause id or None."""
            value[var] = val
            phase[var] = val
            trail.append((var, decision))
            queue = [-var if val else var]  # literals that became false
            while queue:
                false_lit = queue.pop()
                for ci in list(watches.get(false_lit, ())):
                    w = watched[ci]
                    if false_lit not in w:
                        continue
                    other = w[0] if w[1] == false_lit else w[1]
                    if lit_value(other) is True:
                        continue
                    # Look for a replacement watch in the flat span.
                    replacement = None
                    for k in range(starts[ci], ends[ci]):
                        lit = flat[k]
                        if lit != other and lit != false_lit and lit_value(lit) is not False:
                            replacement = lit
                            break
                    if replacement is not None:
                        idx = 0 if w[0] == false_lit else 1
                        w[idx] = replacement
                        watches[false_lit].remove(ci)
                        watches.setdefault(replacement, []).append(ci)
                        continue
                    ov = lit_value(other)
                    if ov is None:
                        # Unit: other must be true.
                        result.propagations += 1
                        ovar, ophase = abs(other), other > 0
                        value[ovar] = ophase
                        phase[ovar] = ophase
                        trail.append((ovar, False))
                        queue.append(-ovar if ophase else ovar)
                    elif ov is False:
                        return ci
            return None

        def backtrack() -> int | None:
            """Undo to the last decision; return its variable (or None)."""
            while trail:
                var, was_decision = trail.pop()
                value[var] = None
                if was_decision:
                    return var
            return None

        # Static branching order: most frequent in the shortest clauses.
        # A seed shuffles the pre-sort order, changing only how score ties
        # break (sorted() is stable) — deterministic diversification for
        # portfolio racing.
        score: dict[int, float] = {v: 0.0 for v in variables}
        for ci in range(num_clauses):
            s, e = starts[ci], ends[ci]
            w = 2.0 ** (-(e - s))
            for k in range(s, e):
                score[abs(flat[k])] += w
        if seed is not None:
            random.Random(seed).shuffle(variables)
        order = sorted(variables, key=lambda v: -score[v])

        # Initial unit propagation via fake assignments on unit clauses.
        for ci in range(num_clauses):
            if ends[ci] - starts[ci] == 1:
                lit = flat[starts[ci]]
                lv = lit_value(lit)
                if lv is False:
                    return DPLLResult(False, conflicts=result.conflicts)
                if lv is None:
                    if assign(abs(lit), lit > 0, decision=False) is not None:
                        return DPLLResult(False, conflicts=result.conflicts)

        flipped: dict[int, bool] = {}  # decision var -> already tried both?
        while True:
            branch_var = next((v for v in order if value[v] is None), None)
            if branch_var is None:
                model = Assignment({v: bool(value[v]) for v in variables})
                result.satisfiable = True
                result.assignment = model
                return result
            if self.max_decisions and result.decisions >= self.max_decisions:
                return result  # satisfiable=None: budget exhausted
            if (
                deadline is not None
                and result.decisions % _DEADLINE_STRIDE == 0
                and time.perf_counter() - t0 > deadline
            ):
                return result  # satisfiable=None: deadline hit
            result.decisions += 1
            conflict = assign(branch_var, phase[branch_var], decision=True)
            flipped[branch_var] = False
            while conflict is not None:
                result.conflicts += 1
                var = backtrack()
                while var is not None and flipped.get(var, True):
                    flipped.pop(var, None)
                    var = backtrack()
                if var is None:
                    result.satisfiable = False
                    return result
                flipped[var] = True
                # phase[var] still holds the value just undone; try the other.
                conflict = assign(var, not phase[var], decision=True)

    # ------------------------------------------------------------------
    def is_satisfiable(self, formula: CNFFormula) -> bool:
        """Convenience wrapper raising if the budget ran out."""
        res = self.solve(formula)
        if res.satisfiable is None:
            raise CNFError("DPLL budget exhausted before a verdict")
        return res.satisfiable


def dpll_solve(
    formula: CNFFormula,
    polarity_hint: Assignment | None = None,
    max_decisions: int = 0,
    *,
    deadline: float | None = None,
    seed: int | None = None,
) -> DPLLResult:
    """One-shot DPLL solve of *formula*."""
    return DPLLSolver(max_decisions=max_decisions).solve(
        formula, polarity_hint, deadline=deadline, seed=seed
    )


def dpll_solve_packed(
    packed: PackedCNF,
    polarity_hint: Assignment | None = None,
    max_decisions: int = 0,
    *,
    deadline: float | None = None,
    seed: int | None = None,
) -> DPLLResult:
    """One-shot DPLL solve of a packed kernel (no formula objects)."""
    return DPLLSolver(max_decisions=max_decisions).solve_packed(
        packed, polarity_hint, deadline=deadline, seed=seed
    )
