"""SAT substrate: set cover, SAT<->ILP encoding, and SAT solvers.

The paper routes SAT through the set-cover ILP formulation (§3); this
subpackage implements that route plus independent SAT solvers used for
ground truth, witnesses, and cross-checks:

* :mod:`repro.sat.setcover` -- the set cover problem and its ILP form;
* :mod:`repro.sat.encoding` -- SAT -> set cover -> 0-1 ILP, and decoding
  ILP solutions back to truth assignments;
* :mod:`repro.sat.dpll` -- a complete DPLL solver (unit propagation,
  watched literals, MOMS-style branching);
* :mod:`repro.sat.cdcl` -- a conflict-driven clause-learning solver
  (1-UIP learning, VSIDS, Luby restarts, clause-DB reduction);
* :mod:`repro.sat.walksat` -- WalkSAT local search for satisfiable
  instances;
* :mod:`repro.sat.brute` -- exhaustive enumeration for tests.
"""

from repro.sat.setcover import SetCoverProblem
from repro.sat.encoding import SATEncoding, decode_values, encode_sat
from repro.sat.cdcl import CDCLSolver, cdcl_solve, cdcl_solve_packed
from repro.sat.dpll import DPLLSolver, dpll_solve, dpll_solve_packed
from repro.sat.walksat import walksat_solve, walksat_solve_packed
from repro.sat.brute import all_satisfying_assignments, brute_force_solve, count_models

__all__ = [
    "CDCLSolver",
    "DPLLSolver",
    "SATEncoding",
    "SetCoverProblem",
    "all_satisfying_assignments",
    "brute_force_solve",
    "cdcl_solve",
    "cdcl_solve_packed",
    "count_models",
    "decode_values",
    "dpll_solve",
    "dpll_solve_packed",
    "encode_sat",
    "walksat_solve",
    "walksat_solve_packed",
]
