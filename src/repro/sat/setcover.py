"""The set cover problem and its ILP formulation.

The paper uses set cover as the intermediate step between SAT and ILP
(§3): elements are clauses, subsets are literals.  The class here is also
usable standalone, which the tests exploit to validate the ILP layer on a
second NP-hard problem.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.errors import ModelError
from repro.ilp.expr import LinExpr
from repro.ilp.model import ILPModel
from repro.ilp.solution import Solution


class SetCoverProblem:
    """Cover a finite set with as few subsets as possible.

    Args:
        universe: the elements that must be covered.
        subsets: mapping subset-name -> iterable of elements.

    Raises:
        ModelError: if some universe element appears in no subset (the
            instance would be trivially infeasible).
    """

    def __init__(
        self,
        universe: Iterable[Hashable],
        subsets: Mapping[Hashable, Iterable[Hashable]],
    ):
        self.universe: tuple[Hashable, ...] = tuple(dict.fromkeys(universe))
        self.subsets: dict[Hashable, frozenset] = {
            name: frozenset(elems) for name, elems in subsets.items()
        }
        covered = set()
        for elems in self.subsets.values():
            covered |= elems
        missing = [e for e in self.universe if e not in covered]
        if missing:
            raise ModelError(
                f"elements {missing[:5]!r} are not covered by any subset"
            )

    def to_ilp(self, weights: Mapping[Hashable, float] | None = None) -> ILPModel:
        """Build the 0-1 ILP: minimize selected subsets s.t. full coverage.

        Following the paper: one binary ``x_i`` per subset, a ``>= 1`` row
        per element; the objective is the (optionally weighted) number of
        selected subsets.  The paper states it as ``max`` with ``c`` a
        negative identity vector — identical to the ``min`` form used here.
        """
        model = ILPModel("set-cover")
        xs = {name: model.add_binary(f"s::{name}") for name in self.subsets}
        for element in self.universe:
            covering = [xs[name] for name, elems in self.subsets.items() if element in elems]
            model.add_constraint(
                LinExpr.sum(covering) >= 1, name=f"cover::{element}"
            )
        w = weights or {}
        model.set_objective(
            LinExpr.sum(float(w.get(name, 1.0)) * xs[name] for name in self.subsets),
            sense="min",
        )
        return model

    def decode(self, solution: Solution) -> list[Hashable]:
        """Subset names selected by an ILP solution."""
        chosen = []
        for name in self.subsets:
            if solution.rounded(f"s::{name}") == 1:
                chosen.append(name)
        return chosen

    def is_cover(self, selection: Iterable[Hashable]) -> bool:
        """True if the named subsets cover the universe."""
        covered: set = set()
        for name in selection:
            try:
                covered |= self.subsets[name]
            except KeyError:
                raise ModelError(f"unknown subset {name!r}") from None
        return all(e in covered for e in self.universe)

    def greedy_cover(self) -> list[Hashable]:
        """Classic ln(n)-approximation; used as a heuristic warm start."""
        uncovered = set(self.universe)
        chosen: list[Hashable] = []
        while uncovered:
            best = max(self.subsets, key=lambda nm: len(self.subsets[nm] & uncovered))
            gain = len(self.subsets[best] & uncovered)
            if gain == 0:  # pragma: no cover - guarded by constructor
                raise ModelError("universe not coverable")
            chosen.append(best)
            uncovered -= self.subsets[best]
        return chosen

    def __repr__(self) -> str:
        return f"SetCoverProblem(|U|={len(self.universe)}, |C|={len(self.subsets)})"
