"""SAT -> set cover -> 0-1 ILP, exactly as in §3 of the paper.

For a formula over variables ``v_1..v_n``:

* binary ``x_i`` (named ``pos::v``) selects the uncomplemented literal of
  ``v_i``; binary ``x_{i+n}`` (named ``neg::v``) the complemented one;
* every clause (set-cover element) yields a coverage row: the sum of the
  selected literals appearing in it must be >= 1 (constraint (5) with ``b``
  the identity vector);
* consistency rows ``x_i + x_{i+n} <= 1`` (constraint (6)) forbid choosing
  both polarities;
* the objective minimizes the number of selected literals (the set-cover
  objective with ``c`` a negative identity vector under ``max``).

A solution decodes to a *partial* assignment: a variable with neither
polarity selected is a don't care, which fast EC later recycles ("we try
and recover as many DC variables from the initial solution as possible").
"""

from __future__ import annotations

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.errors import ModelError
from repro.ilp.expr import LinExpr
from repro.ilp.model import ILPModel
from repro.ilp.solution import Solution


def pos_name(var: int) -> str:
    """ILP variable name for the uncomplemented literal of *var*."""
    return f"pos::{var}"


def neg_name(var: int) -> str:
    """ILP variable name for the complemented literal of *var*."""
    return f"neg::{var}"


def literal_name(lit: int) -> str:
    """ILP variable name selecting literal *lit*."""
    return pos_name(lit) if lit > 0 else neg_name(-lit)


class SATEncoding:
    """The ILP encoding of a CNF formula plus decode helpers.

    Attributes:
        formula: the encoded CNF formula (not copied).
        model: the 0-1 ILP; clause rows are named ``clause::<index>``.
    """

    def __init__(self, formula: CNFFormula, model: ILPModel):
        self.formula = formula
        self.model = model

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, formula: CNFFormula, minimize_literals: bool = True) -> "SATEncoding":
        """Encode *formula* per the paper's set-cover route.

        Args:
            minimize_literals: keep the set-cover objective (min selected
                literals).  EC variants replace the objective afterwards.
        """
        model = ILPModel("sat")
        for var in formula.variables:
            model.add_binary(pos_name(var))
            model.add_binary(neg_name(var))
        for index, clause in enumerate(formula.clauses):
            if clause.is_empty():
                raise ModelError(f"clause {index} is empty; formula is unsatisfiable")
            row = LinExpr.sum(
                model.var(literal_name(lit)) for lit in clause
            )
            model.add_constraint(row >= 1, name=f"clause::{index}")
        for var in formula.variables:
            model.add_constraint(
                model.var(pos_name(var)) + model.var(neg_name(var)) <= 1,
                name=f"consistency::{var}",
            )
        if minimize_literals:
            model.set_objective(
                LinExpr.sum(
                    model.var(nm)
                    for var in formula.variables
                    for nm in (pos_name(var), neg_name(var))
                ),
                sense="min",
            )
        return cls(formula, model)

    # ------------------------------------------------------------------
    def decode(self, solution: Solution, default: bool | None = None) -> Assignment:
        """Decode an ILP solution into a (possibly partial) assignment.

        Args:
            default: value given to don't-care variables; None leaves them
                unassigned.

        Raises:
            ModelError: if both polarities of some variable are selected
                (solver bug — the consistency rows forbid it).
        """
        assignment = Assignment()
        for var in self.formula.variables:
            pos = solution.rounded(pos_name(var))
            neg = solution.rounded(neg_name(var))
            if pos and neg:
                raise ModelError(f"both polarities selected for v{var}")
            if pos:
                assignment[var] = True
            elif neg:
                assignment[var] = False
            elif default is not None:
                assignment[var] = default
        return assignment

    def values_from_assignment(
        self, assignment: Assignment, unassigned_to_zero: bool = True
    ) -> dict[str, float]:
        """Encode a truth assignment as ILP variable values (warm starts)."""
        values: dict[str, float] = {}
        for var in self.formula.variables:
            val = assignment.get(var)
            if val is None:
                if not unassigned_to_zero:
                    raise ModelError(f"variable v{var} unassigned")
                values[pos_name(var)] = 0.0
                values[neg_name(var)] = 0.0
            else:
                values[pos_name(var)] = 1.0 if val else 0.0
                values[neg_name(var)] = 0.0 if val else 1.0
        return values

    def __repr__(self) -> str:
        return (
            f"SATEncoding(vars={self.formula.num_vars} -> {self.model.num_vars}, "
            f"clauses={self.formula.num_clauses}, rows={self.model.num_constraints})"
        )


def encode_sat(formula: CNFFormula, minimize_literals: bool = True) -> SATEncoding:
    """Convenience wrapper for :meth:`SATEncoding.build`."""
    return SATEncoding.build(formula, minimize_literals=minimize_literals)


def decode_values(
    encoding: SATEncoding, solution: Solution, default: bool | None = False
) -> Assignment:
    """Decode with don't-cares defaulted (False unless told otherwise)."""
    return encoding.decode(solution, default=default)
