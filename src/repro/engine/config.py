"""Picklable solver configurations and the default portfolio line-up.

A :class:`SolverConfig` is pure data — (name, kind, params, seed offset) —
so it crosses the process boundary cheaply and the worker builds the
actual adapter on its side.  The default portfolio orders configurations
by expected decisiveness: clause-learning CDCL leads (it powers the
in-process quick slice and dominates hard tightened instances),
chronological DPLL follows as the simpler complete cross-check,
diversified WalkSAT configurations chase satisfiable instances, and the
paper's ILP route brings up the rear as both a cross-check and the
historical baseline.  List order is also stagger order: earlier racers
start sooner on oversubscribed hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.adapters import build_adapter


@dataclass(frozen=True)
class SolverConfig:
    """One racer in the portfolio.

    Attributes:
        name: unique display name within the portfolio.
        kind: adapter kind (see :data:`repro.engine.adapters.ADAPTERS`).
        params: adapter constructor parameters.
        seed_offset: added to the race seed so identical adapters with
            different offsets explore different trajectories.
    """

    name: str
    kind: str
    params: tuple[tuple[str, object], ...] = ()
    seed_offset: int = 0

    @classmethod
    def make(cls, name: str, kind: str, seed_offset: int = 0, **params) -> "SolverConfig":
        """Build a config from keyword parameters."""
        return cls(name, kind, tuple(sorted(params.items())), seed_offset)

    def build(self):
        """Instantiate this configuration's adapter."""
        return build_adapter(self.kind, name=self.name, **dict(self.params))

    @property
    def complete(self) -> bool:
        """Whether this kind's ``unsat`` verdicts are proofs.

        Unknown kinds count as incomplete, so the race can never trust an
        UNSAT from a racer it does not recognize.
        """
        from repro.engine.adapters import ADAPTERS

        return bool(getattr(ADAPTERS.get(self.kind), "complete", False))


def default_portfolio_configs(diversify: int = 2) -> list[SolverConfig]:
    """The standard race line-up.

    Args:
        diversify: number of extra WalkSAT configurations with distinct
            seeds/noise (0 keeps just the core quartet).
    """
    configs = [SolverConfig.make("cdcl", "cdcl")]
    configs.append(SolverConfig.make("dpll", "dpll"))
    configs.append(SolverConfig.make("walksat", "walksat"))
    for i in range(max(0, diversify - 1)):
        configs.append(
            SolverConfig.make(
                f"walksat-d{i + 1}",
                "walksat",
                seed_offset=101 + i,
                noise=0.3 + 0.2 * (i % 2),
            )
        )
    configs.append(SolverConfig.make("ilp-heuristic", "ilp-heuristic"))
    configs.append(SolverConfig.make("ilp-exact", "ilp-exact"))
    return configs
