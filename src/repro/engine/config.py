"""Engine and solver configuration objects.

Two layers of configuration live here:

* :class:`SolverConfig` — one racer in the portfolio line-up, pure data
  so it crosses the process boundary cheaply;
* :class:`EngineConfig` — the engine-level knobs (pool width, quick
  slice, line-up, and the **cache backend** selection) consumed by
  :meth:`~repro.engine.engine.PortfolioEngine.from_config` and by the
  :class:`~repro.service.SolverService` facade, so a daemon, a CLI call,
  and a library embedding all describe an engine the same way.

Solver line-up notes:

A :class:`SolverConfig` is pure data — (name, kind, params, seed offset) —
so it crosses the process boundary cheaply and the worker builds the
actual adapter on its side.  The default portfolio orders configurations
by expected decisiveness: clause-learning CDCL leads (it powers the
in-process quick slice and dominates hard tightened instances),
chronological DPLL follows as the simpler complete cross-check,
diversified WalkSAT configurations chase satisfiable instances, and the
paper's ILP route brings up the rear as both a cross-check and the
historical baseline.  List order is also stagger order: earlier racers
start sooner on oversubscribed hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.adapters import build_adapter
from repro.engine.cache import CacheBackend, SolutionCache

#: Default in-process budget (seconds) for the lead solver before fan-out
#: (re-exported by :mod:`repro.engine.portfolio`, which consumes it).
DEFAULT_QUICK_SLICE = 0.05

#: Recognized cache backend selectors for :class:`EngineConfig`.
CACHE_BACKENDS = ("memory", "disk", "none")


@dataclass(frozen=True)
class SolverConfig:
    """One racer in the portfolio.

    Attributes:
        name: unique display name within the portfolio.
        kind: adapter kind (see :data:`repro.engine.adapters.ADAPTERS`).
        params: adapter constructor parameters.
        seed_offset: added to the race seed so identical adapters with
            different offsets explore different trajectories.
    """

    name: str
    kind: str
    params: tuple[tuple[str, object], ...] = ()
    seed_offset: int = 0

    @classmethod
    def make(cls, name: str, kind: str, seed_offset: int = 0, **params) -> "SolverConfig":
        """Build a config from keyword parameters."""
        return cls(name, kind, tuple(sorted(params.items())), seed_offset)

    def build(self):
        """Instantiate this configuration's adapter."""
        return build_adapter(self.kind, name=self.name, **dict(self.params))

    @property
    def complete(self) -> bool:
        """Whether this kind's ``unsat`` verdicts are proofs.

        Unknown kinds count as incomplete, so the race can never trust an
        UNSAT from a racer it does not recognize.
        """
        from repro.engine.adapters import ADAPTERS

        return bool(getattr(ADAPTERS.get(self.kind), "complete", False))


def default_portfolio_configs(diversify: int = 2) -> list[SolverConfig]:
    """The standard race line-up.

    Args:
        diversify: number of extra WalkSAT configurations with distinct
            seeds/noise (0 keeps just the core quartet).
    """
    configs = [SolverConfig.make("cdcl", "cdcl")]
    configs.append(SolverConfig.make("dpll", "dpll"))
    configs.append(SolverConfig.make("walksat", "walksat"))
    for i in range(max(0, diversify - 1)):
        configs.append(
            SolverConfig.make(
                f"walksat-d{i + 1}",
                "walksat",
                seed_offset=101 + i,
                noise=0.3 + 0.2 * (i % 2),
            )
        )
    configs.append(SolverConfig.make("ilp-heuristic", "ilp-heuristic"))
    configs.append(SolverConfig.make("ilp-exact", "ilp-exact"))
    return configs


@dataclass(frozen=True)
class EngineConfig:
    """Engine-level configuration: pool, line-up, and cache backend.

    Attributes:
        jobs: process-pool width (``None`` = auto, ``<= 1`` = in-process
            sequential race).
        quick_slice: lead-solver in-process budget before fan-out.
        configs: portfolio line-up override (``None`` = the default).
        cache: cache backend selector — ``"memory"`` (the in-process
            LRU :class:`~repro.engine.cache.SolutionCache`), ``"disk"``
            (the persistent :class:`~repro.engine.diskcache.DiskCache`,
            shared across processes and restarts; requires
            ``cache_dir``), or ``"none"`` (caching disabled).
        cache_dir: directory for the disk backend.
        cache_entries: backend capacity (LRU eviction beyond it).
        submit_workers: thread-pool width for
            :meth:`~repro.service.SolverService.submit` (engine access
            is still serialized; this bounds queued concurrency).
        chaos: fault-injection plan spec (see
            :meth:`repro.faults.FaultPlan.from_spec`), installed
            process-globally — with env-var propagation to pool workers
            — when the engine is built from this config.  ``None``
            (production default) injects nothing.
    """

    jobs: int | None = None
    quick_slice: float = DEFAULT_QUICK_SLICE
    configs: tuple[SolverConfig, ...] | None = None
    cache: str = "memory"
    cache_dir: str | None = None
    cache_entries: int = 4096
    submit_workers: int = 2
    chaos: str | None = None

    def __post_init__(self) -> None:
        if self.cache not in CACHE_BACKENDS:
            raise ValueError(
                f"unknown cache backend {self.cache!r} "
                f"(expected one of {CACHE_BACKENDS})"
            )
        if self.cache == "disk" and not self.cache_dir:
            raise ValueError("cache='disk' requires cache_dir")
        if self.chaos is not None:
            from repro.faults import FaultError, FaultPlan

            try:
                FaultPlan.from_spec(self.chaos)
            except FaultError as exc:
                raise ValueError(f"invalid chaos spec: {exc}") from None

    def build_cache(self) -> CacheBackend:
        """Instantiate the configured cache backend."""
        if self.cache == "disk":
            from repro.engine.diskcache import DiskCache

            return DiskCache(self.cache_dir, max_entries=self.cache_entries)
        if self.cache == "none":
            return SolutionCache(max_entries=0)
        return SolutionCache(max_entries=self.cache_entries)
