"""Canonical, content-addressed CNF formula fingerprints.

The solution cache must recognize "the same instance" across sessions,
clause reorderings, literal reorderings, and duplicated clauses — all of
which are artifacts of how a formula was built, not of what it means.  The
fingerprint therefore hashes the *normalized clause set*:

* each clause contributes its literal tuple (already deduplicated and
  order-normalized by :class:`~repro.cnf.clause.Clause`);
* the clause collection is deduplicated and sorted, so neither clause
  order nor multiplicity matters;
* free variables (active but occurring in no clause) are excluded: they
  are don't-cares and cannot affect satisfiability, which also makes the
  fingerprint stable under the DIMACS round-trip (the format cannot
  express gaps in the variable range).

Two formulas with equal fingerprints are satisfied by exactly the same
assignments over their clause variables, so a cached model for one is a
model for the other.

Two digest versions coexist:

* **fp-v1** (:func:`fingerprint`) — the original sort-then-SHA-256 over
  the whole normalized clause set, O(n log n) per call, now memoized on
  the formula with dirty-flag invalidation;
* **fp-v2** (:func:`fingerprint_v2`) — an order-independent 2048-bit
  combine of per-clause SHAKE-256 digests (see
  :mod:`repro.cnf.packed` for the collision-resistance rationale)
  maintained *incrementally* by the formula's packed kernel: each EC
  edit updates the running digest in O(changed clauses), so
  re-fingerprinting along a change chain is O(1) per query.
  The v1 invariants (clause order, multiplicity, free variables, DIMACS
  round-trip) all carry over; the two versions tag their digests
  differently and never collide.  The engine keys its cache with fp-v2.
"""

from __future__ import annotations

import hashlib

from repro.cnf.formula import CNFFormula
from repro.cnf.packed import FP2_VERSION, _DIGEST_BYTES, _DIGEST_MOD, clause_digest

#: Version tag mixed into every v1 digest so a future normalization change
#: invalidates old fingerprints instead of silently colliding with them.
_VERSION = b"repro-cnf-fp-v1"


def normalized_clauses(formula: CNFFormula) -> tuple[tuple[int, ...], ...]:
    """The canonical clause-set form the fingerprint hashes.

    A sorted tuple of distinct literal tuples; the empty clause (from
    variable elimination) is kept — it makes the instance unsatisfiable
    and must be distinguished.  Memoized on the formula (EC edits
    invalidate the memo).
    """
    cached = formula._normalized_cache
    if cached is None:
        cached = tuple(sorted({cl.literals for cl in formula.clauses}))
        formula._normalized_cache = cached
    return cached


def fingerprint(formula: CNFFormula) -> str:
    """Hex SHA-256 fp-v1 fingerprint of *formula*'s normalized clause set.

    Invariants (property-tested in ``tests/engine/test_fingerprint.py``):

    * permuting clauses or literals never changes the fingerprint;
    * duplicate clauses never change the fingerprint;
    * ``fingerprint(parse_dimacs(to_dimacs(f))) == fingerprint(f)``.

    Memoized on the formula: repeated calls between EC edits are O(1).
    """
    cached = formula._fingerprint_cache
    if cached is None:
        h = hashlib.sha256(_VERSION)
        for lits in normalized_clauses(formula):
            h.update(b"|")
            h.update(",".join(map(str, lits)).encode("ascii"))
        cached = h.hexdigest()
        formula._fingerprint_cache = cached
    return cached


def fingerprint_v2(formula: CNFFormula) -> str:
    """Hex fp-v2 fingerprint, served from the incremental digest state.

    The first call on a formula builds the packed kernel's per-clause
    digest multiset in O(clauses); afterwards every EC edit maintains it
    in O(changed clauses), so a change chain pays O(1) per re-query
    instead of a full re-sort + re-hash.  Satisfies the same invariants
    as fp-v1 (verified against :func:`fingerprint_v2_scratch` by the
    property suite).
    """
    return formula.packed().fingerprint()


def fingerprint_v2_scratch(formula: CNFFormula) -> str:
    """fp-v2 recomputed from scratch — the incremental path's oracle."""
    distinct = {cl.literals for cl in formula.clauses}
    total = 0
    for lits in distinct:
        total = (total + clause_digest(lits)) % _DIGEST_MOD
    h = hashlib.sha256(FP2_VERSION)
    h.update(len(distinct).to_bytes(8, "big"))
    h.update(total.to_bytes(_DIGEST_BYTES, "big"))
    return h.hexdigest()
