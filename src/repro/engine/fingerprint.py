"""Canonical, content-addressed CNF formula fingerprints.

The solution cache must recognize "the same instance" across sessions,
clause reorderings, literal reorderings, and duplicated clauses — all of
which are artifacts of how a formula was built, not of what it means.  The
fingerprint therefore hashes the *normalized clause set*:

* each clause contributes its literal tuple (already deduplicated and
  order-normalized by :class:`~repro.cnf.clause.Clause`);
* the clause collection is deduplicated and sorted, so neither clause
  order nor multiplicity matters;
* free variables (active but occurring in no clause) are excluded: they
  are don't-cares and cannot affect satisfiability, which also makes the
  fingerprint stable under the DIMACS round-trip (the format cannot
  express gaps in the variable range).

Two formulas with equal fingerprints are satisfied by exactly the same
assignments over their clause variables, so a cached model for one is a
model for the other.
"""

from __future__ import annotations

import hashlib

from repro.cnf.formula import CNFFormula

#: Version tag mixed into every digest so a future normalization change
#: invalidates old fingerprints instead of silently colliding with them.
_VERSION = b"repro-cnf-fp-v1"


def normalized_clauses(formula: CNFFormula) -> tuple[tuple[int, ...], ...]:
    """The canonical clause-set form the fingerprint hashes.

    A sorted tuple of distinct literal tuples; the empty clause (from
    variable elimination) is kept — it makes the instance unsatisfiable
    and must be distinguished.
    """
    return tuple(sorted({cl.literals for cl in formula.clauses}))


def fingerprint(formula: CNFFormula) -> str:
    """Hex SHA-256 fingerprint of *formula*'s normalized clause set.

    Invariants (property-tested in ``tests/engine/test_fingerprint.py``):

    * permuting clauses or literals never changes the fingerprint;
    * duplicate clauses never change the fingerprint;
    * ``fingerprint(parse_dimacs(to_dimacs(f))) == fingerprint(f)``.
    """
    h = hashlib.sha256(_VERSION)
    for lits in normalized_clauses(formula):
        h.update(b"|")
        h.update(",".join(map(str, lits)).encode("ascii"))
    return h.hexdigest()
