"""Persistent on-disk verdict cache: one file per fingerprint.

The in-memory :class:`~repro.engine.cache.SolutionCache` dies with the
process, which wastes every verdict a daemon computed once it restarts
and makes the cache invisible to sibling processes.  :class:`DiskCache`
is the persistent sibling behind the same
:class:`~repro.engine.cache.CacheBackend` protocol:

* **layout** — one JSON file per verdict, named ``<fp-v2>.json`` (the
  fingerprint is already a fixed-width hex digest, so it doubles as a
  safe filename); the payload stores the verdict, the model as signed
  DIMACS literals, and the producing solver;
* **atomic writes** — each ``put`` writes a temp file in the cache
  directory and ``os.replace``\\ s it into place, so a concurrent reader
  (another engine process over the same directory) sees either the old
  file or the new one, never a torn write;
* **mtime LRU** — a ``get`` hit touches the file's mtime; when a ``put``
  pushes the entry count past ``max_entries`` the sweep unlinks the
  oldest-mtime files first, so the eviction order matches the in-memory
  LRU's semantics across process restarts;
* **self-healing** — an unreadable or corrupt entry (torn by a crash,
  truncated disk) is treated as a miss and unlinked, never an error.

The cache is safe for multiple processes on one host (atomic replace +
unlink tolerate racing sweeps); it deliberately does no locking — a lost
store or a double eviction only costs a future re-solve, never a wrong
answer, because the engine revalidates every served model.

**Degraded mode** — a failing disk (ENOSPC, EIO, a yanked mount) must
never raise out of ``put`` into the solve path: the verdict was already
computed, and losing persistence is strictly better than failing the
request.  On any ``OSError`` during a store the cache counts a
``stats.errors``, parks itself in a memory-only window
(``reprobe_interval`` seconds), and stores the verdict into a small
in-process :class:`~repro.engine.cache.SolutionCache` overlay instead;
``get`` consults the overlay after a disk miss, so verdicts stored while
degraded are still served.  After the window expires the next ``put``
re-probes the disk — a recovered filesystem promotes the cache back to
persistent operation automatically.  :meth:`health` reports the degraded
flag, the error count, and the overlay size for the daemon's ``health``
op.

**Replication hooks** — verdicts are content-addressed by fp-v2, which
makes cross-node cache replication idempotent by construction: merging
the same entry twice is a no-op, and two nodes that independently solved
the same instance produced byte-identical verdict files.  The cache
keeps an append-only journal (``_journal.log``, one fingerprint per
line; its name dodges the ``.json`` suffix so no entry scan counts it)
whose line count is a monotone **sync cursor**.  :meth:`entries_since`
streams entries past a cursor (the daemon's ``sync`` op),
:meth:`merge_entry` applies one replicated entry with the same
readable-or-absent integrity stance as ``get`` — and journals it, so
sync is transitive across chains of peers.  The journal is best-effort
like everything else here: a lost append only costs a peer a future
re-solve, never a wrong answer.
"""

from __future__ import annotations

import errno
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import faults
from repro.cnf.assignment import Assignment
from repro.engine.cache import CacheEntry, CacheStats, SolutionCache
from repro.errors import CNFError

#: Suffix of finished entry files; temp files use a different one so the
#: sweep and ``__len__`` never count half-written entries.
_SUFFIX = ".json"
_TMP_SUFFIX = ".tmp"
#: Append-only fingerprint journal backing the sync cursor; the name
#: must not end in ``_SUFFIX`` so entry scans never count it.
_JOURNAL_NAME = "_journal.log"
#: Fingerprints are hex digests; anything else is not content-addressed
#: and (since they double as filenames) not safe to join into a path.
_FP_CHARS = frozenset("0123456789abcdef")


@dataclass
class DiskCache:
    """Fingerprint-keyed persistent verdict store (see module docstring).

    Args:
        directory: cache directory, created on first use.
        max_entries: capacity; oldest-mtime entries are swept first.
            ``0`` disables caching entirely (every get misses).
    """

    directory: str | Path
    max_entries: int = 4096
    stats: CacheStats = field(default_factory=CacheStats)
    #: Seconds a failed store parks the cache in memory-only mode before
    #: the next put re-probes the disk.
    reprobe_interval: float = 5.0

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        # Approximate entry count so the steady-state put path is O(1):
        # initialized from a scan on the first store, bumped per put
        # (overwrites inflate it, sibling processes drift it), and
        # resynced from a real scan whenever it crosses capacity.
        self._approx_count: int | None = None
        # Degraded-mode state: the monotonic instant until which stores
        # bypass the disk, and the lazily built in-memory overlay that
        # holds verdicts stored while degraded.  Mutated without a lock
        # like the rest of this class — the engine serializes cache
        # calls under its own narrow lock, and a racing double-build of
        # the overlay would only cost a lost store.
        self._degraded_until = 0.0
        self._overlay: SolutionCache | None = None
        # Cached journal line count (the sync cursor); None until first
        # read.  Best-effort like _approx_count: concurrent writers may
        # drift it and entries_since resyncs it from the file.
        self._journal_len: int | None = None

    # ------------------------------------------------------------------
    def _path(self, fp: str) -> Path:
        return self.directory / f"{fp}{_SUFFIX}"

    def _entry_paths(self) -> list[Path]:
        # Temp files end in a different suffix, so this never counts a
        # half-written entry.
        return [
            p for p in self.directory.iterdir() if p.name.endswith(_SUFFIX)
        ]

    # ------------------------------------------------------------------
    def get(self, fp: str) -> CacheEntry | None:
        """Look up a verdict, refreshing the file's mtime on a hit."""
        path = self._path(fp)
        try:
            raw = json.loads(path.read_text("utf-8"))
            if not isinstance(raw, dict) or raw.get("fp") != fp:
                # Not an entry at all, or a payload filed under the wrong
                # name (e.g. two writers racing): it must not serve
                # another instance's verdict — UNSAT entries are trusted
                # without revalidation.
                raise ValueError("not this fingerprint's entry")
            satisfiable = bool(raw["sat"])
            # Materialize the model inside the try: a malformed "lits"
            # value is one more corruption to self-heal, not a crash.
            assignment = (
                Assignment.from_literals(raw["lits"]) if satisfiable else None
            )
        except FileNotFoundError:
            return self._get_overlay(fp)
        except (OSError, ValueError, KeyError, TypeError, CNFError):
            # Torn or corrupt entry (including literals the Assignment
            # constructor rejects): drop it and report a miss.
            self._unlink(path)
            return self._get_overlay(fp)
        try:
            os.utime(path, None)            # refresh the LRU position
        except OSError:
            pass                            # raced with a sweep: still a hit
        self.stats.hits += 1
        return CacheEntry(
            fingerprint=fp,
            satisfiable=satisfiable,
            assignment=assignment,
            solver=raw.get("solver", ""),
        )

    def _get_overlay(self, fp: str) -> CacheEntry | None:
        """Disk-miss fallback: serve the degraded-mode overlay, if any."""
        if self._overlay is not None:
            entry = self._overlay.get(fp)
            if entry is not None:
                self.stats.hits += 1
                return entry
        self.stats.misses += 1
        return None

    def _put_overlay(
        self,
        fp: str,
        satisfiable: bool,
        assignment: Assignment | None,
        solver: str,
    ) -> None:
        if self._overlay is None:
            # Small on purpose: the overlay is a crutch for a failing
            # disk, not a second full cache tier.
            self._overlay = SolutionCache(
                max_entries=min(256, max(1, self.max_entries))
            )
        self._overlay.put(fp, satisfiable, assignment, solver)
        self.stats.stores += 1

    @property
    def degraded(self) -> bool:
        """Whether stores currently bypass the disk (memory-only window)."""
        return time.monotonic() < self._degraded_until

    def put(
        self,
        fp: str,
        satisfiable: bool,
        assignment: Assignment | None = None,
        solver: str = "",
    ) -> None:
        """Store a verdict atomically (no-op when capacity is 0).

        I/O failures degrade instead of raising: see the module
        docstring.  Only genuine programming errors (a satisfiable entry
        without a model) still raise.
        """
        if self.max_entries <= 0:
            return
        if satisfiable and assignment is None:
            raise ValueError("a satisfiable entry requires a model")
        if self.degraded:
            self._put_overlay(fp, satisfiable, assignment, solver)
            return
        payload = json.dumps({
            "fp": fp,
            "sat": satisfiable,
            "lits": list(assignment.to_literals()) if satisfiable else None,
            "solver": solver,
        })
        try:
            self._write_entry(fp, payload)
        except OSError:
            # A full or failing disk must not fail the solve that already
            # produced this verdict: count it, park in memory-only mode
            # until the re-probe window expires, keep serving.
            self.stats.errors += 1
            self._degraded_until = time.monotonic() + self.reprobe_interval
            self._put_overlay(fp, satisfiable, assignment, solver)
            return
        self.stats.stores += 1
        self._journal_append(fp)
        if self._approx_count is None:
            self._approx_count = len(self._entry_paths())
        else:
            self._approx_count += 1
        # Only scan the directory when the (over-)estimate says we may be
        # past capacity; the scan resyncs the estimate either way.
        if self._approx_count > self.max_entries:
            self._sweep()

    def _write_entry(self, fp: str, payload: str) -> None:
        """Temp-file + atomic-replace store (the only disk-write path).

        The ``cache.put.io`` / ``cache.put.torn`` fault points live here:
        the first simulates ENOSPC before anything lands on disk, the
        second a writer crashing *after* publishing a truncated entry —
        the worst case the self-healing reader must absorb.
        """
        if faults.fire("cache.put.io") is not None:
            raise OSError(errno.ENOSPC, "chaos: no space left on device")
        if faults.fire("cache.put.torn") is not None:
            self._path(fp).write_text(
                payload[: max(1, len(payload) // 3)], encoding="utf-8"
            )
            raise OSError(errno.EIO, "chaos: torn write")
        # mkstemp guarantees a unique temp name even with many writers
        # (threads or processes) sharing one directory; the os.replace
        # into the final name is the atomic publish.
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=".put-", suffix=_TMP_SUFFIX
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, self._path(fp))
        except BaseException:
            self._unlink(Path(tmp))
            raise

    def _sweep(self) -> None:
        """Unlink oldest-mtime entries until back under capacity."""
        paths = self._entry_paths()
        self._approx_count = len(paths)
        if len(paths) <= self.max_entries:
            return
        def _mtime(p: Path) -> float:
            try:
                return p.stat().st_mtime
            except OSError:               # raced with another sweep
                return float("-inf")
        paths.sort(key=_mtime)
        for victim in paths[: len(paths) - self.max_entries]:
            if self._unlink(victim):
                self.stats.evictions += 1
                self._approx_count -= 1

    @staticmethod
    def _unlink(path: Path) -> bool:
        try:
            path.unlink()
            return True
        except OSError:
            return False

    # ------------------------------------------------------------------
    # Replication: journal cursor, entry streaming, idempotent merge.

    @property
    def _journal_path(self) -> Path:
        return self.directory / _JOURNAL_NAME

    def _ensure_journal(self) -> None:
        """Bootstrap the journal for a pre-journal cache directory.

        A directory populated before replication existed has entries but
        no journal; seeding it (oldest mtime first, matching the LRU's
        notion of age) lets a new peer pull the whole backlog instead of
        only post-upgrade verdicts.
        """
        if self._journal_len is not None or self._journal_path.exists():
            return
        paths = self._entry_paths()
        if not paths:
            self._journal_len = 0
            return
        def _mtime(p: Path) -> float:
            try:
                return p.stat().st_mtime
            except OSError:
                return float("-inf")
        paths.sort(key=_mtime)
        fps = [p.name[: -len(_SUFFIX)] for p in paths]
        try:
            self._journal_path.write_text(
                "".join(fp + "\n" for fp in fps), encoding="utf-8"
            )
            self._journal_len = len(fps)
        except OSError:
            self._journal_len = 0

    def sync_cursor(self) -> int:
        """The journal's current length — a monotone replication cursor."""
        self._ensure_journal()
        if self._journal_len is None:
            try:
                with open(self._journal_path, encoding="utf-8") as fh:
                    self._journal_len = sum(1 for _ in fh)
            except OSError:
                self._journal_len = 0
        return self._journal_len

    def _journal_append(self, fp: str) -> None:
        """Record one stored fingerprint (best-effort: a failed append
        only hides this entry from peers, it never fails the store)."""
        self.sync_cursor()          # make sure the count is initialized
        try:
            with open(self._journal_path, "a", encoding="utf-8") as fh:
                fh.write(fp + "\n")
            self._journal_len += 1
        except OSError:
            pass

    def entries_since(self, cursor: int, *, limit: int = 256) -> tuple[int, list[dict]]:
        """One replication page: ``(next_cursor, entries)`` past *cursor*.

        Walks the journal, deduplicates fingerprints within the page,
        and materializes each one that is still readable — evicted,
        invalidated, or torn entries are silently skipped (the peer
        either already has them or never needed them).  A cursor past
        the journal's end (a peer that outlived a cleared cache) clamps
        to the end instead of erroring.
        """
        self._ensure_journal()
        try:
            with open(self._journal_path, encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except OSError:
            lines = []
        self._journal_len = len(lines)
        cursor = max(0, int(cursor))
        if cursor >= len(lines):
            return len(lines), []
        end = min(len(lines), cursor + max(1, int(limit)))
        seen: set[str] = set()
        entries: list[dict] = []
        for raw_fp in lines[cursor:end]:
            fp = raw_fp.strip()
            if not fp or fp in seen:
                continue
            seen.add(fp)
            raw = self._load_raw(fp)
            if raw is not None:
                entries.append(raw)
        return end, entries

    def _load_raw(self, fp: str) -> dict | None:
        """Read one entry as its wire-able dict, or None if unreadable."""
        try:
            raw = json.loads(self._path(fp).read_text("utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(raw, dict) or raw.get("fp") != fp or "sat" not in raw:
            return None
        sat = bool(raw["sat"])
        lits = raw.get("lits")
        if sat and not isinstance(lits, list):
            return None
        return {
            "fp": fp,
            "sat": sat,
            "lits": lits if sat else None,
            "solver": str(raw.get("solver", "")),
        }

    def merge_entry(self, entry: dict) -> bool:
        """Apply one replicated entry; True iff it landed as a new file.

        The fingerprint arrives off the wire and doubles as a filename,
        so anything that is not a plausible hex digest is rejected (a
        hostile ``../``-shaped "fingerprint" must not escape the cache
        directory).  Already-present entries are skipped — that is what
        makes blind re-merging of a re-pulled page idempotent.  Merged
        entries are journalled like local stores, so replication is
        transitive across chains of peers.
        """
        fp = entry.get("fp") if isinstance(entry, dict) else None
        if (
            not isinstance(fp, str)
            or not 8 <= len(fp) <= 256
            or not set(fp) <= _FP_CHARS
        ):
            return False
        sat = bool(entry.get("sat"))
        lits = entry.get("lits")
        if sat and (
            not isinstance(lits, list)
            or not lits
            or not all(isinstance(l, int) and l != 0 for l in lits)
        ):
            return False
        if self.max_entries <= 0 or self.degraded:
            return False
        if fp in self:
            return False
        payload = json.dumps({
            "fp": fp,
            "sat": sat,
            "lits": lits if sat else None,
            "solver": str(entry.get("solver", "")),
        })
        try:
            self._write_entry(fp, payload)
        except OSError:
            self.stats.errors += 1
            self._degraded_until = time.monotonic() + self.reprobe_interval
            return False
        self.stats.stores += 1
        self._journal_append(fp)
        if self._approx_count is None:
            self._approx_count = len(self._entry_paths())
        else:
            self._approx_count += 1
        if self._approx_count > self.max_entries:
            self._sweep()
        return True

    # ------------------------------------------------------------------
    def invalidate(self, fp: str) -> bool:
        """Drop one entry; returns whether it existed."""
        existed = self._unlink(self._path(fp))
        if existed and self._approx_count is not None:
            self._approx_count -= 1
        return existed

    def clear(self) -> None:
        """Drop every entry, plus any orphaned temp file a crashed
        writer left behind (statistics are kept).  The journal resets
        with the entries — peers holding an old cursor simply clamp."""
        for path in self.directory.iterdir():
            if path.name.endswith((_SUFFIX, _TMP_SUFFIX)):
                self._unlink(path)
        self._unlink(self._journal_path)
        self._journal_len = 0
        self._approx_count = 0

    def info(self) -> dict:
        """Entry count, on-disk bytes, and evictions (one stat pass;
        entries unlinked by a racing sweep simply don't count)."""
        entries = 0
        size = 0
        for path in self._entry_paths():
            try:
                size += path.stat().st_size
            except OSError:
                continue
            entries += 1
        return {
            "backend": "disk",
            "entries": entries,
            "bytes": size,
            "evictions": self.stats.evictions,
        }

    def health(self) -> dict:
        """Degraded-mode flags for the daemon's ``health`` op."""
        return {
            "backend": "disk",
            "degraded": self.degraded,
            "errors": self.stats.errors,
            "overlay_entries": (
                len(self._overlay) if self._overlay is not None else 0
            ),
            "sync_cursor": self.sync_cursor(),
        }

    def __contains__(self, fp: str) -> bool:
        return self._path(fp).exists()

    def __len__(self) -> int:
        return len(self._entry_paths())
