"""The :class:`PortfolioEngine` facade: cache -> revalidate -> race.

Query path for ``engine.solve(formula, hint=previous_solution)``:

1. **Hint revalidation** — if the caller's previous solution already
   satisfies the formula (every loosening EC lands here), it is adopted
   and cached; no solver runs.  The hint outranks the cache so a
   still-valid current solution is never churned for an older cached
   model — minimal perturbation is the EC objective.
2. **Fingerprint lookup** — a content-addressed
   :class:`~repro.engine.cache.SolutionCache` hit answers repeated (and
   round-tripped, reordered, re-derived) instances without any solving.
   Cached models are still revalidated in O(clauses) before being served.
3. **Portfolio race** — otherwise the configured
   :class:`~repro.engine.portfolio.Portfolio` races its solvers, and any
   trusted verdict (verified model, or UNSAT from a complete solver) is
   cached for the next query.

``EngineStats.solver_calls`` counts actual solver launches, so tests and
benchmarks can assert that steps 1-2 never touched a solver.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, replace
from typing import Iterable

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.engine.cache import CacheBackend, SolutionCache
from repro.engine.config import EngineConfig, SolverConfig
from repro.engine.fingerprint import fingerprint_v2
from repro.engine.portfolio import DEFAULT_QUICK_SLICE, Portfolio
from repro.engine.protocol import SAT, UNSAT, SolverOutcome
from repro.obs.metrics import LATENCY_HISTOGRAM, MetricsRegistry

#: EngineStats fields mirrored into the metrics registry per query.
_METRIC_FIELDS = (
    "cache_hits", "revalidations", "races", "solver_calls",
    "batch_dedups", "transport_bytes",
)


@dataclass
class EngineStats:
    """Counters for one engine's lifetime."""

    solves: int = 0              # total engine.solve() calls
    cache_hits: int = 0          # answered from the fingerprint cache
    revalidations: int = 0       # answered by revalidating the hint
    races: int = 0               # portfolio races actually run
    solver_calls: int = 0        # solver runs that actually started
    batch_dedups: int = 0        # solve_many() queries answered intra-batch
    transport_bytes: int = 0     # wire payload bytes shipped to race workers

    def snapshot(self) -> dict:
        """A plain-dict copy of the counters (JSON-able, diffable).

        The workload driver takes one snapshot before and one after a
        run and reports the difference, so per-run cache/transport
        counters survive on a long-lived shared engine.
        """
        return asdict(self)


@dataclass
class EngineResult:
    """What the engine returned for one query."""

    status: str                  # "sat" | "unsat" | "unknown"
    assignment: Assignment | None
    fingerprint: str
    source: str                  # "cache" | "revalidation" | name of winner | "portfolio"
    wall_time: float
    from_cache: bool = False
    outcome: SolverOutcome | None = None
    #: Name of the solver configuration that decided the race (None when
    #: the answer came from the cache / hint revalidation, or when every
    #: racer came back undecided).  Unlike ``source`` this survives
    #: cancellation: a racer crossing the line during the post-deadline
    #: drain window is still credited.
    winner: str | None = None

    @property
    def satisfiable(self) -> bool | None:
        """Tri-state satisfiability (None = undecided)."""
        if self.status == SAT:
            return True
        if self.status == UNSAT:
            return False
        return None


class PortfolioEngine:
    """Cache-fronted portfolio solver, the engine behind
    ``ECFlow.resolve(strategy="portfolio")`` and ``repro solve --engine
    portfolio``.

    Args:
        configs: portfolio line-up override.
        jobs: process-pool width (``<= 1`` = in-process sequential race).
        cache: shared :class:`~repro.engine.cache.CacheBackend` (a
            private in-memory :class:`SolutionCache` by default; pass a
            :class:`~repro.engine.diskcache.DiskCache` for persistence,
            or build either via :meth:`from_config`).
        quick_slice: lead-solver in-process budget, see
            :class:`~repro.engine.portfolio.Portfolio`.
        metrics: a :class:`~repro.obs.metrics.MetricsRegistry` to
            publish live counters and latency observations into (a
            private one by default).  Unlike :attr:`stats`, the
            registry has its own narrow lock, so samplers and ``repro
            stats`` readers never queue behind a running race.
    """

    def __init__(
        self,
        configs: list[SolverConfig] | None = None,
        jobs: int | None = None,
        cache: CacheBackend | None = None,
        quick_slice: float = DEFAULT_QUICK_SLICE,
        metrics: MetricsRegistry | None = None,
    ):
        self.portfolio = Portfolio(configs=configs, jobs=jobs, quick_slice=quick_slice)
        self.cache = cache if cache is not None else SolutionCache()
        self.stats = EngineStats()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Serializes whole queries (the portfolio's cancellation event is
        # per-race state — interleaved races would corrupt each other)
        # and therefore also guards every EngineStats/cache-stats
        # increment.  The SolverService facade holds its own lock *and*
        # this one (re-entrant, consistent order: service -> engine), so
        # two services or sessions sharing one engine from different
        # threads — each with a different service lock — still cannot
        # race a query or tear a counter update.
        self.lock = threading.RLock()
        self._closed = False

    @classmethod
    def from_config(cls, config: EngineConfig | None = None) -> "PortfolioEngine":
        """Build an engine (pool width, line-up, cache backend) from an
        :class:`~repro.engine.config.EngineConfig`."""
        config = config if config is not None else EngineConfig()
        return cls(
            configs=list(config.configs) if config.configs is not None else None,
            jobs=config.jobs,
            cache=config.build_cache(),
            quick_slice=config.quick_slice,
        )

    # ------------------------------------------------------------------
    def solve(
        self,
        formula: CNFFormula,
        *,
        deadline: float | None = None,
        seed: int | None = None,
        hint: Assignment | None = None,
        use_cache: bool = True,
        lead: str | None = None,
    ) -> EngineResult:
        """Answer a satisfiability query through cache, hint, then race.

        Args:
            lead: per-race lead-solver override forwarded to
                :meth:`Portfolio.solve` (e.g. ``"cdcl"`` on tightening
                engineering changes).
        """
        with self.lock:
            before = [getattr(self.stats, f) for f in _METRIC_FIELDS]
            result = self._solve_locked(
                formula, deadline=deadline, seed=seed, hint=hint,
                use_cache=use_cache, lead=lead,
            )
            deltas = {
                f: getattr(self.stats, f) - b
                for f, b in zip(_METRIC_FIELDS, before)
            }
        # Published OUTSIDE the engine lock: the registry's own narrow
        # lock is the only thing a live reader contends with.
        deltas["solves"] = 1
        self.metrics.bump(
            counts={k: v for k, v in deltas.items() if v},
            observe={LATENCY_HISTOGRAM: result.wall_time},
        )
        return result

    def _solve_locked(
        self,
        formula: CNFFormula,
        *,
        deadline: float | None,
        seed: int | None,
        hint: Assignment | None,
        use_cache: bool,
        lead: str | None,
    ) -> EngineResult:
        """The cache -> hint -> race pipeline (caller holds the lock)."""
        t0 = time.perf_counter()
        self.stats.solves += 1
        # fp-v2 is incrementally maintained on the formula's packed
        # kernel: the first query pays O(clauses) once, every query after
        # an EC edit pays O(changed clauses).  Still skipped entirely
        # when the caller bypasses the cache.
        fp = fingerprint_v2(formula) if use_cache else ""

        # The hint is checked BEFORE the cache: both are O(clauses), and a
        # still-valid current solution must win over an older cached model
        # — serving the cache here would churn the very solution the EC
        # methodology tries to preserve.
        if hint is not None and formula.is_satisfied(hint):
            self.stats.revalidations += 1
            model = hint.copy()
            if use_cache:
                self.cache.put(fp, True, model, solver="revalidation")
            return EngineResult(
                SAT, model, fp, "revalidation", time.perf_counter() - t0
            )

        if use_cache:
            entry = self.cache.get(fp)
            if entry is not None:
                if entry.satisfiable and formula.is_satisfied(entry.assignment):
                    self.stats.cache_hits += 1
                    return EngineResult(
                        SAT, entry.assignment, fp, "cache",
                        time.perf_counter() - t0, from_cache=True,
                    )
                if not entry.satisfiable:
                    self.stats.cache_hits += 1
                    return EngineResult(
                        UNSAT, None, fp, "cache",
                        time.perf_counter() - t0, from_cache=True,
                    )
                # A cached model that no longer verifies means a hash
                # collision or an upstream bug; drop it and fall through.
                self.cache.invalidate(fp)

        self.stats.races += 1
        result = self.portfolio.solve(
            formula, deadline=deadline, seed=seed, hint=hint, lead=lead
        )
        # Racers cancelled before their solver started are excluded;
        # racers abandoned mid-run still count, so this is exact for the
        # zero-solver paths and an upper bound on completed runs.
        self.stats.solver_calls += result.executed
        self.stats.transport_bytes += result.transport_bytes
        outcome = result.outcome
        if use_cache and outcome.is_definitive:
            self.cache.put(
                fp, outcome.status == SAT, outcome.assignment, solver=outcome.solver
            )
        return EngineResult(
            outcome.status,
            outcome.assignment,
            fp,
            result.winner or "portfolio",
            time.perf_counter() - t0,
            outcome=outcome,
            winner=result.winner,
        )

    # ------------------------------------------------------------------
    def solve_many(
        self,
        formulas: Iterable[CNFFormula],
        *,
        deadline: float | None = None,
        seed: int | None = None,
        use_cache: bool = True,
        lead: str | None = None,
    ) -> list[EngineResult]:
        """Answer a batch of queries with one pool warm-up and batch dedup.

        Bench sweeps and offline workloads hand over whole directories of
        instances; solving them through one engine shares a single
        (lazily started) worker pool and fingerprint cache across the
        batch, and this entry point additionally deduplicates by fp-v2
        fingerprint *within the batch*: repeats of an instance reuse the
        already-computed :class:`EngineResult` directly (``source=
        "batch-dedup"``), skipping even the cache round trip and its
        O(clauses) revalidation.  The pool spins up at most once, on the
        first query that actually fans out — easy batches decided by the
        quick slice never pay process-spawn latency.

        Args:
            deadline: per-instance wall-clock budget (not a batch total).
            deadline/seed/use_cache/lead: forwarded to :meth:`solve`.

        Returns:
            One :class:`EngineResult` per formula, in input order.
        """
        formulas = list(formulas)
        with self.lock:
            results: list[EngineResult] = []
            first_by_fp: dict[str, int] = {}
            for formula in formulas:
                fp = fingerprint_v2(formula)
                prior = first_by_fp.get(fp)
                if prior is not None:
                    self.stats.batch_dedups += 1
                    # Mirror the dedup into the live registry (no latency
                    # observation — nothing was served, just aliased).
                    self.metrics.bump(counts={"solves": 1, "batch_dedups": 1})
                    first = results[prior]
                    results.append(
                        replace(
                            first,
                            # Each result owns its model: callers mutate
                            # assignments freely (flips, don't-care recovery)
                            # and must not corrupt their batch siblings —
                            # the same invariant SolutionCache.get keeps.
                            assignment=(
                                first.assignment.copy()
                                if first.assignment is not None
                                else None
                            ),
                            source="batch-dedup",
                            from_cache=True,
                            wall_time=0.0,
                        )
                    )
                    continue
                result = self.solve(
                    formula,
                    deadline=deadline,
                    seed=seed,
                    use_cache=use_cache,
                    lead=lead,
                )
                first_by_fp[fp] = len(results)
                results.append(result)
            return results

    # ------------------------------------------------------------------
    def warm_up(self) -> None:
        """Pre-start the worker pool (benchmark hygiene)."""
        self.portfolio.warm_up()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (the engine stays queryable —
        the pool is rebuilt lazily — but owners should not reuse it)."""
        return self._closed

    def close(self) -> None:
        """Release the worker pool.

        Idempotent: an explicit ``close()`` followed by the context
        manager's ``__exit__`` (or any further close) is safe — the
        second call finds no pool and does nothing.
        """
        self._closed = True
        self.portfolio.close()

    def __enter__(self) -> "PortfolioEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
