"""The :class:`PortfolioEngine` facade: coalesce -> cache -> revalidate -> race.

Query path for ``engine.solve(formula, hint=previous_solution)``:

1. **Single-flight coalescing** — an fp-v2 identical query already being
   solved by another thread is *joined*, not re-run: the caller parks on
   the in-flight entry and receives an independently-owned copy of the
   leader's result (``source="inflight-join"``).  This generalizes
   :meth:`~PortfolioEngine.solve_many`'s intra-batch dedup across
   requests and threads.
2. **Hint revalidation** — if the caller's previous solution already
   satisfies the formula (every loosening EC lands here), it is adopted
   and cached; no solver runs.  The hint outranks the cache so a
   still-valid current solution is never churned for an older cached
   model — minimal perturbation is the EC objective.
3. **Fingerprint lookup** — a content-addressed
   :class:`~repro.engine.cache.SolutionCache` hit answers repeated (and
   round-tripped, reordered, re-derived) instances without any solving.
   Cached models are still revalidated in O(clauses) before being served.
4. **Portfolio race** — otherwise the configured
   :class:`~repro.engine.portfolio.Portfolio` races its solvers, and any
   trusted verdict (verified model, or UNSAT from a complete solver) is
   cached for the next query.

Concurrency model (PR 7): the engine no longer serializes queries.
Distinct fingerprints race *concurrently* over the portfolio's shared
process pool — each race owns per-query
:class:`~repro.engine.portfolio.RaceHandle` state, and a scheduler
apportions pool workers between live races.  ``self.lock`` shrank to a
narrow mutex guarding only shared mutable state with no thread-safety of
its own: the :class:`EngineStats` counters (merged as per-query deltas
after each solve), the cache's LRU order, and the in-flight table.  It
is **never held across solver execution**.

``EngineStats.solver_calls`` counts actual solver launches, so tests and
benchmarks can assert that steps 1-3 never touched a solver.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Iterable

from repro import faults
from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.engine.cache import CacheBackend, SolutionCache
from repro.engine.config import EngineConfig, SolverConfig
from repro.engine.fingerprint import fingerprint_v2
from repro.engine.portfolio import DEFAULT_QUICK_SLICE, Portfolio
from repro.engine.protocol import SAT, UNSAT, SolverOutcome
from repro.obs import tracing
from repro.obs.metrics import LATENCY_HISTOGRAM, MetricsRegistry


@dataclass
class EngineStats:
    """Counters for one engine's lifetime.

    Invariant (every query is answered exactly one way)::

        solves == cache_hits + revalidations + races
                  + batch_dedups + inflight_joins

    The CDCL search-effort counters (``propagations``/``conflicts``/
    ``restarts``) sit *outside* that invariant: they sum the structured
    :attr:`~repro.engine.protocol.SolverOutcome.stats` of every racer
    that reported any — solver effort spent, not queries answered —
    so ``repro stats`` shows where search time went even with tracing
    disabled.
    """

    solves: int = 0              # total queries answered (any path below)
    cache_hits: int = 0          # answered from the fingerprint cache
    revalidations: int = 0       # answered by revalidating the hint
    races: int = 0               # portfolio races actually run
    solver_calls: int = 0        # solver runs that actually started
    batch_dedups: int = 0        # solve_many() queries answered intra-batch
    inflight_joins: int = 0      # queries coalesced onto a concurrent twin
    transport_bytes: int = 0     # wire payload bytes shipped to race workers
    propagations: int = 0        # CDCL unit propagations across all racers
    conflicts: int = 0           # CDCL conflicts across all racers
    restarts: int = 0            # CDCL restarts across all racers

    def snapshot(self) -> dict:
        """A plain-dict copy of the counters (JSON-able, diffable).

        The workload driver takes one snapshot before and one after a
        run and reports the difference, so per-run cache/transport
        counters survive on a long-lived shared engine.
        """
        return asdict(self)


#: EngineStats fields a query delta may carry (and the metrics registry
#: mirrors).  Deltas are accumulated lock-free per query, then merged
#: into ``engine.stats`` in one short critical section.
_DELTA_FIELDS = (
    "solves", "cache_hits", "revalidations", "races", "solver_calls",
    "batch_dedups", "inflight_joins", "transport_bytes",
    "propagations", "conflicts", "restarts",
)


@dataclass
class _InFlight:
    """One pending fingerprint in the single-flight table.

    The first thread to install an entry is the *leader* and runs the
    real pipeline; everyone else parks on ``event`` and copies the
    leader's result (or re-raises its error) when it fires.
    """

    event: threading.Event = field(default_factory=threading.Event)
    result: "EngineResult | None" = None
    error: BaseException | None = None
    joiners: int = 0
    #: The leader's ``engine.solve`` span id (when tracing is live) —
    #: joiners tag their ``inflight.join`` spans with it so a coalesced
    #: request's trace points at the race that actually answered it.
    span_id: str | None = None


@dataclass
class EngineResult:
    """What the engine returned for one query."""

    status: str                  # "sat" | "unsat" | "unknown"
    assignment: Assignment | None
    fingerprint: str
    source: str                  # "cache" | "revalidation" | "inflight-join" | winner | "portfolio"
    wall_time: float
    from_cache: bool = False
    outcome: SolverOutcome | None = None
    #: Name of the solver configuration that decided the race (None when
    #: the answer came from the cache / hint revalidation, or when every
    #: racer came back undecided).  Unlike ``source`` this survives
    #: cancellation: a racer crossing the line during the post-deadline
    #: drain window is still credited.
    winner: str | None = None

    @property
    def satisfiable(self) -> bool | None:
        """Tri-state satisfiability (None = undecided)."""
        if self.status == SAT:
            return True
        if self.status == UNSAT:
            return False
        return None


class PortfolioEngine:
    """Cache-fronted portfolio solver, the engine behind
    ``ECFlow.resolve(strategy="portfolio")`` and ``repro solve --engine
    portfolio``.

    Thread-safe, and deliberately *concurrent*: callers on distinct
    fingerprints overlap end-to-end (their races share one process pool),
    while callers on the same fingerprint coalesce through the
    single-flight in-flight table — one race, N answers.

    Args:
        configs: portfolio line-up override.
        jobs: process-pool width (``<= 1`` = in-process sequential race).
        cache: shared :class:`~repro.engine.cache.CacheBackend` (a
            private in-memory :class:`SolutionCache` by default; pass a
            :class:`~repro.engine.diskcache.DiskCache` for persistence,
            or build either via :meth:`from_config`).
        quick_slice: lead-solver in-process budget, see
            :class:`~repro.engine.portfolio.Portfolio`.
        metrics: a :class:`~repro.obs.metrics.MetricsRegistry` to
            publish live counters and latency observations into (a
            private one by default).  Unlike :attr:`stats`, the
            registry has its own narrow lock, so samplers and ``repro
            stats`` readers never queue behind a running race.
    """

    def __init__(
        self,
        configs: list[SolverConfig] | None = None,
        jobs: int | None = None,
        cache: CacheBackend | None = None,
        quick_slice: float = DEFAULT_QUICK_SLICE,
        metrics: MetricsRegistry | None = None,
    ):
        self.portfolio = Portfolio(configs=configs, jobs=jobs, quick_slice=quick_slice)
        self.cache = cache if cache is not None else SolutionCache()
        self.stats = EngineStats()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Narrow mutex over shared mutable state that is not thread-safe
        # by itself: EngineStats merges, the cache's LRU bookkeeping, and
        # the in-flight table.  Never held while a solver (or the
        # portfolio) runs — concurrency across queries is the point.
        # RLock so legacy callers that wrapped engine calls in
        # ``with engine.lock:`` keep working.
        self.lock = threading.RLock()
        self._inflight: dict[str, _InFlight] = {}
        self._closed = False

    @classmethod
    def from_config(cls, config: EngineConfig | None = None) -> "PortfolioEngine":
        """Build an engine (pool width, line-up, cache backend) from an
        :class:`~repro.engine.config.EngineConfig`.

        A ``config.chaos`` fault-plan spec is installed process-globally
        here, with env-var propagation so pool workers spawned later
        adopt the same plan — this is the ``repro serve --chaos`` path.
        """
        config = config if config is not None else EngineConfig()
        if config.chaos:
            faults.install(config.chaos, propagate=True)
        return cls(
            configs=list(config.configs) if config.configs is not None else None,
            jobs=config.jobs,
            cache=config.build_cache(),
            quick_slice=config.quick_slice,
        )

    # ------------------------------------------------------------------
    def _merge_delta(self, delta: dict) -> None:
        """Fold one query's counter delta into the shared stats."""
        with self.lock:
            for key, value in delta.items():
                if value:
                    setattr(self.stats, key, getattr(self.stats, key) + value)

    def stats_snapshot(self) -> dict:
        """A consistent (non-torn) copy of :attr:`stats`."""
        with self.lock:
            return self.stats.snapshot()

    # ------------------------------------------------------------------
    def solve(
        self,
        formula: CNFFormula,
        *,
        deadline: float | None = None,
        seed: int | None = None,
        hint: Assignment | None = None,
        use_cache: bool = True,
        lead: str | None = None,
    ) -> EngineResult:
        """Answer a satisfiability query: coalesce, then cache/hint/race.

        Args:
            lead: per-race lead-solver override forwarded to
                :meth:`Portfolio.solve` (e.g. ``"cdcl"`` on tightening
                engineering changes).
        """
        t0 = time.perf_counter()
        # fp-v2 is incrementally maintained on the formula's packed
        # kernel: the first query pays O(clauses) once, every query after
        # an EC edit pays O(changed clauses).  Skipped entirely when the
        # caller bypasses the cache — which also opts out of coalescing
        # (no fingerprint, no coalescing key).
        fp = fingerprint_v2(formula) if use_cache else ""

        flight: _InFlight | None = None
        if use_cache:
            with self.lock:
                flight = self._inflight.get(fp)
                if flight is None:
                    flight = _InFlight()
                    self._inflight[fp] = flight
                    leader = True
                else:
                    flight.joiners += 1
                    leader = False
            if not leader:
                return self._join(flight, fp, t0)

        delta = dict.fromkeys(_DELTA_FIELDS, 0)
        try:
            with tracing.stage("engine.solve") as sp:
                if sp is not None and flight is not None:
                    flight.span_id = sp.span_id
                result = self._solve_pipeline(
                    formula, fp, deadline=deadline, seed=seed, hint=hint,
                    use_cache=use_cache, lead=lead, delta=delta, t0=t0,
                )
                if sp is not None:
                    sp.tags["source"] = result.source
                    sp.tags["status"] = result.status
        except BaseException as exc:
            self._finish_flight(fp, flight, None, exc)
            raise
        self._finish_flight(fp, flight, result, None)
        self._merge_delta(delta)
        # Published OUTSIDE the engine lock: the registry's own narrow
        # lock is the only thing a live reader contends with.
        self.metrics.bump(
            counts={k: v for k, v in delta.items() if v},
            observe={LATENCY_HISTOGRAM: result.wall_time},
        )
        return result

    def _join(self, flight: _InFlight, fp: str, t0: float) -> EngineResult:
        """Park on a concurrent identical query and copy its answer."""
        # The stage covers the whole park: its duration IS the time this
        # request spent waiting on the leader's race.  The leader tag is
        # set after the event fires — the leader may not have opened its
        # span yet when the joiner arrives.
        with tracing.stage("inflight.join") as sp:
            flight.event.wait()
            if sp is not None and flight.span_id is not None:
                sp.tags["leader"] = flight.span_id
        if flight.error is not None:
            raise flight.error
        base = flight.result
        wall = time.perf_counter() - t0
        self._merge_delta({"solves": 1, "inflight_joins": 1})
        self.metrics.bump(
            counts={"solves": 1, "inflight_joins": 1},
            observe={LATENCY_HISTOGRAM: wall},
        )
        return replace(
            base,
            # Each joiner owns its model: callers mutate assignments
            # freely (flips, don't-care recovery) and must not corrupt
            # the leader's copy — the same invariant SolutionCache.get
            # keeps.  The raw SolverOutcome stays with the leader for the
            # same reason.
            assignment=(
                base.assignment.copy() if base.assignment is not None else None
            ),
            source="inflight-join",
            from_cache=True,
            outcome=None,
            wall_time=wall,
        )

    def _finish_flight(
        self,
        fp: str,
        flight: _InFlight | None,
        result: "EngineResult | None",
        error: BaseException | None,
    ) -> None:
        """Retire the in-flight entry and release any parked joiners."""
        if flight is None:
            return
        with self.lock:
            self._inflight.pop(fp, None)
        flight.result = result
        flight.error = error
        flight.event.set()

    def _solve_pipeline(
        self,
        formula: CNFFormula,
        fp: str,
        *,
        deadline: float | None,
        seed: int | None,
        hint: Assignment | None,
        use_cache: bool,
        lead: str | None,
        delta: dict,
        t0: float,
    ) -> EngineResult:
        """The hint -> cache -> race pipeline (leader path).

        Counter changes go into *delta* (merged by the caller in one
        critical section); ``self.lock`` is taken only around individual
        cache operations, never across solving.
        """
        delta["solves"] += 1

        # The hint is checked BEFORE the cache: both are O(clauses), and a
        # still-valid current solution must win over an older cached model
        # — serving the cache here would churn the very solution the EC
        # methodology tries to preserve.  One ``cache.lookup`` stage spans
        # both checks; its ``tier`` tag records which answered.
        with tracing.stage("cache.lookup") as sp:
            if hint is not None and formula.is_satisfied(hint):
                delta["revalidations"] += 1
                model = hint.copy()
                if use_cache:
                    with self.lock:
                        self.cache.put(fp, True, model, solver="revalidation")
                if sp is not None:
                    sp.tags["tier"] = "revalidation"
                return EngineResult(
                    SAT, model, fp, "revalidation", time.perf_counter() - t0
                )

            if use_cache:
                with self.lock:
                    entry = self.cache.get(fp)
                if entry is not None:
                    if entry.satisfiable and formula.is_satisfied(entry.assignment):
                        delta["cache_hits"] += 1
                        if sp is not None:
                            sp.tags["tier"] = "hit-sat"
                        return EngineResult(
                            SAT, entry.assignment, fp, "cache",
                            time.perf_counter() - t0, from_cache=True,
                        )
                    if not entry.satisfiable:
                        delta["cache_hits"] += 1
                        if sp is not None:
                            sp.tags["tier"] = "hit-unsat"
                        return EngineResult(
                            UNSAT, None, fp, "cache",
                            time.perf_counter() - t0, from_cache=True,
                        )
                    # A cached model that no longer verifies means a hash
                    # collision or an upstream bug; drop it and fall through.
                    with self.lock:
                        self.cache.invalidate(fp)
                    if sp is not None:
                        sp.tags["tier"] = "invalidated"
                elif sp is not None:
                    sp.tags["tier"] = "miss"
            elif sp is not None:
                sp.tags["tier"] = "bypass"

        delta["races"] += 1
        result = self.portfolio.solve(
            formula, deadline=deadline, seed=seed, hint=hint, lead=lead
        )
        # Racers cancelled before their solver started are excluded;
        # racers abandoned mid-run still count, so this is exact for the
        # zero-solver paths and an upper bound on completed runs.
        delta["solver_calls"] += result.executed
        delta["transport_bytes"] += result.transport_bytes
        # Search-effort counters: sum every racer's structured stats —
        # effort spent across the whole race, not just the winner's.
        for raced in result.outcomes:
            st = raced.stats
            if st:
                delta["propagations"] += int(st.get("propagations", 0) or 0)
                delta["conflicts"] += int(st.get("conflicts", 0) or 0)
                delta["restarts"] += int(st.get("restarts", 0) or 0)
        outcome = result.outcome
        if use_cache and outcome.is_definitive:
            with self.lock:
                self.cache.put(
                    fp, outcome.status == SAT, outcome.assignment,
                    solver=outcome.solver,
                )
        return EngineResult(
            outcome.status,
            outcome.assignment,
            fp,
            result.winner or "portfolio",
            time.perf_counter() - t0,
            outcome=outcome,
            winner=result.winner,
        )

    # ------------------------------------------------------------------
    def solve_many(
        self,
        formulas: Iterable[CNFFormula],
        *,
        deadline: float | None = None,
        seed: int | None = None,
        use_cache: bool = True,
        lead: str | None = None,
    ) -> list[EngineResult]:
        """Answer a batch of queries with one pool warm-up and batch dedup.

        Bench sweeps and offline workloads hand over whole directories of
        instances; solving them through one engine shares a single
        (lazily started) worker pool and fingerprint cache across the
        batch, and this entry point additionally deduplicates by fp-v2
        fingerprint *within the batch*: repeats of an instance reuse the
        already-computed :class:`EngineResult` directly (``source=
        "batch-dedup"``), skipping even the cache round trip and its
        O(clauses) revalidation.  The pool spins up at most once, on the
        first query that actually fans out — easy batches decided by the
        quick slice never pay process-spawn latency.

        The batch does NOT serialize the engine: concurrent callers (other
        batches, single queries) interleave freely between this batch's
        queries, coalescing with them through the in-flight table when
        fingerprints collide.

        Args:
            deadline: per-instance wall-clock budget (not a batch total).
            deadline/seed/use_cache/lead: forwarded to :meth:`solve`.

        Returns:
            One :class:`EngineResult` per formula, in input order.
        """
        formulas = list(formulas)
        results: list[EngineResult] = []
        first_by_fp: dict[str, int] = {}
        for formula in formulas:
            fp = fingerprint_v2(formula)
            prior = first_by_fp.get(fp)
            if prior is not None:
                # Merged + mirrored OUTSIDE any engine-wide lock (there is
                # none left to hold): stats under the narrow mutex, the
                # registry under its own.
                self._merge_delta({"solves": 1, "batch_dedups": 1})
                self.metrics.bump(counts={"solves": 1, "batch_dedups": 1})
                first = results[prior]
                results.append(
                    replace(
                        first,
                        # Each result owns its model: callers mutate
                        # assignments freely (flips, don't-care recovery)
                        # and must not corrupt their batch siblings —
                        # the same invariant SolutionCache.get keeps.
                        assignment=(
                            first.assignment.copy()
                            if first.assignment is not None
                            else None
                        ),
                        source="batch-dedup",
                        from_cache=True,
                        wall_time=0.0,
                    )
                )
                continue
            result = self.solve(
                formula,
                deadline=deadline,
                seed=seed,
                use_cache=use_cache,
                lead=lead,
            )
            first_by_fp[fp] = len(results)
            results.append(result)
        return results

    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Degradation snapshot: pool generation/fallbacks, cache
        degraded flags, and in-flight table depth (the daemon's
        ``health`` op rides this)."""
        cache = self.cache
        if hasattr(cache, "health"):
            cache_health = cache.health()
        else:
            cache_health = {
                "backend": type(cache).__name__,
                "degraded": False,
                "errors": cache.stats.errors,
            }
        with self.lock:
            inflight = len(self._inflight)
        return {
            "pool": self.portfolio.health(),
            "cache": cache_health,
            "inflight_fingerprints": inflight,
        }

    def warm_up(self) -> None:
        """Pre-start the worker pool (benchmark hygiene)."""
        self.portfolio.warm_up()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (the engine stays queryable —
        the pool is rebuilt lazily — but owners should not reuse it)."""
        return self._closed

    def close(self) -> None:
        """Release the worker pool.

        Idempotent: an explicit ``close()`` followed by the context
        manager's ``__exit__`` (or any further close) is safe — the
        second call finds no pool and does nothing.
        """
        self._closed = True
        self.portfolio.close()

    def __enter__(self) -> "PortfolioEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
