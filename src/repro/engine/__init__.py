"""Parallel portfolio solver engine with fingerprint caching.

The paper's EC thesis is that successive specification changes should be
*cheap* to absorb.  This subpackage industrialises that idea into an
engine suitable for serving many queries:

* :mod:`repro.engine.protocol`    -- the uniform ``Solver`` interface and
  ``SolverOutcome`` result record every backend adapts to;
* :mod:`repro.engine.adapters`    -- adapters giving CDCL, DPLL, WalkSAT,
  brute force, and both ILP solvers one ``solve(formula, *, deadline,
  seed)`` entry point;
* :mod:`repro.engine.fingerprint` -- canonical, order-insensitive formula
  fingerprints (normalized-clause hashes);
* :mod:`repro.engine.cache`       -- the :class:`CacheBackend` protocol and
  the content-addressed in-memory LRU :class:`SolutionCache`;
* :mod:`repro.engine.diskcache`   -- :class:`DiskCache`, the persistent
  fingerprint-keyed file backend (atomic writes, mtime LRU) shared
  across processes and restarts;
* :mod:`repro.engine.config`      -- picklable solver configurations, the
  default portfolio line-up, and the engine-level :class:`EngineConfig`
  (pool width, quick slice, cache backend selection);
* :mod:`repro.engine.portfolio`   -- the :class:`Portfolio` runner racing
  N configurations across a process pool with deadline / cancellation
  semantics;
* :mod:`repro.engine.engine`      -- the :class:`PortfolioEngine` facade
  combining cache, hint revalidation, and the portfolio race;
* :mod:`repro.engine.session`     -- :class:`IncrementalSession`, the
  successive-EC driver that classifies change sets and revalidates
  instead of re-solving whenever the change only loosens the instance.
"""

from repro.engine.adapters import (
    BruteForceAdapter,
    CDCLAdapter,
    DPLLAdapter,
    ExactILPAdapter,
    HeuristicILPAdapter,
    WalkSATAdapter,
    build_adapter,
)
from repro.engine.cache import CacheBackend, CacheEntry, CacheStats, SolutionCache
from repro.engine.config import (
    EngineConfig,
    SolverConfig,
    default_portfolio_configs,
)
from repro.engine.diskcache import DiskCache
from repro.engine.engine import EngineResult, EngineStats, PortfolioEngine
from repro.engine.fingerprint import fingerprint, fingerprint_v2
from repro.engine.portfolio import Portfolio, PortfolioResult
from repro.engine.protocol import SAT, UNKNOWN, UNSAT, Solver, SolverOutcome
from repro.engine.session import IncrementalSession

__all__ = [
    "BruteForceAdapter",
    "CDCLAdapter",
    "CacheBackend",
    "CacheEntry",
    "CacheStats",
    "DPLLAdapter",
    "DiskCache",
    "EngineConfig",
    "EngineResult",
    "EngineStats",
    "ExactILPAdapter",
    "HeuristicILPAdapter",
    "IncrementalSession",
    "Portfolio",
    "PortfolioEngine",
    "PortfolioResult",
    "SAT",
    "SolutionCache",
    "Solver",
    "SolverConfig",
    "SolverOutcome",
    "UNKNOWN",
    "UNSAT",
    "WalkSATAdapter",
    "build_adapter",
    "default_portfolio_configs",
    "fingerprint",
    "fingerprint_v2",
]
