"""Race N solver configurations; first definitive answer wins.

Strategy (classic parallel-portfolio with a twist for serial hardware):

1. **Quick slice** — the lead configuration (complete DPLL by default)
   runs *in-process* for a short budget.  Easy instances — the vast
   majority in an EC workload — are decided here at sequential-solver
   speed, with zero pool overhead.  This is what keeps the portfolio "no
   slower than the best single sequential solver" even on one core.
2. **Fan-out** — undecided instances are raced across a
   ``concurrent.futures`` process pool.  Each worker receives the
   instance as the packed kernel's raw wire bytes
   (:meth:`~repro.cnf.packed.PackedCNF.to_bytes` — flat literal arrays
   plus a clause-offset index), not a pickled ``CNFFormula`` object
   graph; deserialization is a couple of C-level array copies, and
   solvers with a ``solve_packed`` entry point consume the arrays
   directly.  Workers start staggered (so on oversubscribed hardware
   the lead solver runs nearly uncontended) and poll a shared
   cancellation event while waiting, so not-yet-started losers stop
   cheaply once a winner crosses the line; losers already mid-solve
   cannot be interrupted and are terminated with the pool (rebuilt
   lazily for the next race).  The ``deadline`` is enforced both inside
   each worker and by the parent's wait loop.

An ``unsat`` outcome only wins if its solver is complete; ``sat``
outcomes are verified models (see :mod:`repro.engine.adapters`), so the
race can never return a wrong answer, only ``unknown``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.cnf.packed import PackedCNF
from repro.engine.config import (
    DEFAULT_QUICK_SLICE,
    SolverConfig,
    default_portfolio_configs,
)
from repro.engine.protocol import SAT, SolverOutcome, UNKNOWN, UNSAT

#: Worker-side cancellation event, installed by :func:`_init_worker`.
_CANCEL = None


def _init_worker(cancel_event) -> None:
    """Pool initializer: adopt the shared cancellation event."""
    global _CANCEL
    _CANCEL = cancel_event


def run_config(
    config: SolverConfig,
    formula: CNFFormula,
    *,
    deadline: float | None = None,
    seed: int | None = None,
    hint: Assignment | None = None,
) -> SolverOutcome:
    """Run one configuration, mapping any crash to an ``unknown`` outcome.

    The effective solver seed is ``(seed or 0) + config.seed_offset`` so a
    single race seed still diversifies identical adapters.
    """
    t0 = time.perf_counter()
    try:
        adapter = config.build()
        return adapter.solve(
            formula,
            deadline=deadline,
            seed=(0 if seed is None else seed) + config.seed_offset,
            hint=hint,
        )
    except Exception as exc:  # a crashed racer must not kill the race
        return SolverOutcome(
            UNKNOWN, None, config.name, time.perf_counter() - t0, f"error: {exc!r}"
        )


def run_packed(
    config: SolverConfig,
    packed: PackedCNF,
    *,
    deadline: float | None = None,
    seed: int | None = None,
    hint: Assignment | None = None,
) -> SolverOutcome:
    """Run one configuration on a packed kernel.

    Adapters with a ``solve_packed`` entry point consume the flat arrays
    directly; the rest (brute force, the ILP routes) get a materialized
    formula.  Crashes map to ``unknown`` exactly as in :func:`run_config`.
    """
    t0 = time.perf_counter()
    try:
        adapter = config.build()
        solve_packed = getattr(adapter, "solve_packed", None)
        effective = (0 if seed is None else seed) + config.seed_offset
        if solve_packed is not None:
            return solve_packed(packed, deadline=deadline, seed=effective, hint=hint)
        return adapter.solve(
            packed.to_formula(), deadline=deadline, seed=effective, hint=hint
        )
    except Exception as exc:  # a crashed racer must not kill the race
        return SolverOutcome(
            UNKNOWN, None, config.name, time.perf_counter() - t0, f"error: {exc!r}"
        )


def _race_entry(
    config: SolverConfig,
    payload: bytes,
    deadline: float | None,
    seed: int | None,
    hint: Assignment | None,
    stagger: float,
) -> SolverOutcome:
    """Worker-side entry: staggered, cancellable start, then the solver.

    *payload* is the packed kernel's wire bytes — two array copies to
    deserialize, no clause objects.
    """
    t0 = time.perf_counter()
    waited = 0.0
    while waited < stagger:
        if _CANCEL is not None and _CANCEL.is_set():
            return SolverOutcome(UNKNOWN, None, config.name, 0.0, "cancelled")
        step = min(0.01, stagger - waited)
        time.sleep(step)
        waited += step
    if _CANCEL is not None and _CANCEL.is_set():
        return SolverOutcome(UNKNOWN, None, config.name, 0.0, "cancelled")
    packed = PackedCNF.from_bytes(payload)
    remaining = None
    if deadline is not None:
        remaining = max(0.0, deadline - (time.perf_counter() - t0))
    return run_packed(config, packed, deadline=remaining, seed=seed, hint=hint)


def _trusted(config: SolverConfig, out: SolverOutcome) -> bool:
    """Can the race stop on this outcome?

    A ``sat`` always can (models are verified); an ``unsat`` only counts
    as a proof when the producing configuration is complete.
    """
    if out.status == SAT:
        return True
    return out.status == UNSAT and config.complete


@dataclass
class PortfolioResult:
    """What a race produced.

    ``launched`` counts submissions; ``executed`` excludes racers that
    were cancelled before their solver ever started (``executed`` still
    includes racers terminated mid-run, so it is exact for the
    zero-solver paths and an upper bound otherwise).
    """

    outcome: SolverOutcome
    winner: str | None
    launched: int
    wall_time: float
    outcomes: list[SolverOutcome] = field(default_factory=list)
    via_quick_slice: bool = False
    executed: int = 0
    #: Per-worker payload size in bytes (0 when the race never fanned out
    #: to the pool — quick-slice wins and sequential scans ship nothing).
    transport_bytes: int = 0


class Portfolio:
    """A reusable racer over a fixed list of solver configurations.

    Args:
        configs: race line-up (default: :func:`default_portfolio_configs`).
        jobs: process-pool width; ``<= 1`` disables the pool and runs the
            line-up sequentially in-process (first definitive answer wins).
            Default: ``min(4, os.cpu_count())``.
        quick_slice: in-process lead-solver budget in seconds before
            fanning out (0 disables the quick slice).
        stagger: delay between worker starts; ``None`` auto-selects 0 on
            machines with at least ``jobs`` cores and 50 ms otherwise.
        drain: how long (seconds) a cancelled race waits for already-
            running racers to cross the line before terminating them; a
            definitive answer arriving inside this window still wins.

    The process pool is created lazily and reused across calls; use the
    portfolio as a context manager (or call :meth:`close`) to release it.
    """

    def __init__(
        self,
        configs: list[SolverConfig] | None = None,
        jobs: int | None = None,
        quick_slice: float = DEFAULT_QUICK_SLICE,
        stagger: float | None = None,
        drain: float = 0.1,
    ):
        self.configs = list(configs) if configs is not None else default_portfolio_configs()
        cores = os.cpu_count() or 1
        self.jobs = min(4, cores) if jobs is None else jobs
        self.quick_slice = quick_slice
        self.stagger = (0.0 if cores >= max(self.jobs, 2) else 0.05) if stagger is None else stagger
        self.drain = drain
        self.total_launched = 0
        self._executor: ProcessPoolExecutor | None = None
        self._cancel = None

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            methods = mp.get_all_start_methods()
            ctx = mp.get_context("fork" if "fork" in methods else methods[0])
            self._cancel = ctx.Event()
            self._executor = ProcessPoolExecutor(
                max_workers=max(1, self.jobs),
                mp_context=ctx,
                initializer=_init_worker,
                initargs=(self._cancel,),
            )
        return self._executor

    def warm_up(self) -> None:
        """Spin up the worker pool ahead of the first race (benchmarks)."""
        if self.jobs > 1:
            executor = self._ensure_pool()
            wait([executor.submit(os.getpid) for _ in range(self.jobs)])

    def close(self) -> None:
        """Tear the worker pool down (safe to call repeatedly).

        Running workers are terminated: a mid-solve racer cannot be
        interrupted cooperatively, and letting it run to completion would
        block interpreter exit on the pool's atexit join.
        """
        self._terminate_pool()

    def _terminate_pool(self) -> None:
        executor, self._executor = self._executor, None
        cancel, self._cancel = self._cancel, None
        if executor is None:
            return
        if cancel is not None:
            cancel.set()
        # ProcessPoolExecutor exposes no public kill; fall back to leaving
        # the workers alone if the private handle ever disappears.
        procs = dict(getattr(executor, "_processes", None) or {})
        executor.shutdown(wait=False, cancel_futures=True)
        for proc in procs.values():
            if proc.is_alive():
                proc.terminate()

    def __enter__(self) -> "Portfolio":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def solve(
        self,
        formula: CNFFormula,
        *,
        deadline: float | None = None,
        seed: int | None = None,
        hint: Assignment | None = None,
        lead: str | None = None,
    ) -> PortfolioResult:
        """Race the line-up on *formula*; see the module docstring.

        Args:
            lead: name of the configuration to move to the front for this
                race only — it takes the quick slice and the zero-stagger
                slot (the session stages CDCL ahead of DPLL on tightening
                changes this way).  Unknown names are ignored.

        Returns an ``unknown`` result only when every configuration came
        back undecided within its budget.
        """
        if not self.configs:
            raise ValueError("portfolio has no solver configurations")
        t0 = time.perf_counter()
        configs = self.configs
        if lead is not None:
            promoted = [c for c in configs if c.name == lead]
            if promoted:
                configs = promoted + [c for c in configs if c.name != lead]
        outcomes: list[SolverOutcome] = []
        launched = 0

        # Phase 1: in-process quick slice on the lead configuration.
        if self.quick_slice > 0:
            slice_budget = (
                self.quick_slice if deadline is None else min(self.quick_slice, deadline)
            )
            first = configs[0]
            launched += 1
            out = run_config(
                first, formula, deadline=slice_budget, seed=seed, hint=hint
            )
            outcomes.append(out)
            if _trusted(first, out):
                self.total_launched += launched
                return PortfolioResult(
                    out, first.name, launched, time.perf_counter() - t0,
                    outcomes, via_quick_slice=True, executed=launched,
                )

        remaining = None
        if deadline is not None:
            remaining = max(0.0, deadline - (time.perf_counter() - t0))

        # Phase 2: fan out (or fall back to a sequential scan).
        if self.jobs <= 1:
            winner = None
            for config in configs:
                if deadline is not None:
                    remaining = max(0.0, deadline - (time.perf_counter() - t0))
                    if remaining == 0.0:
                        break
                launched += 1
                out = run_config(
                    config, formula, deadline=remaining, seed=seed, hint=hint
                )
                outcomes.append(out)
                if _trusted(config, out):
                    winner = out
                    break
            self.total_launched += launched
            final = winner or _best_unknown(outcomes)
            return PortfolioResult(
                final, winner.solver if winner else None, launched,
                time.perf_counter() - t0, outcomes, executed=launched,
            )

        # Ship the packed kernel's raw bytes to every worker: building the
        # payload is one call on the formula's cached kernel, and each
        # worker pays two array copies instead of unpickling an object
        # graph of clause instances.
        payload = formula.packed().to_bytes()

        def _submit_all():
            executor = self._ensure_pool()
            self._cancel.clear()
            return {
                executor.submit(
                    _race_entry, config, payload, remaining, seed, hint,
                    i * self.stagger,
                ): config
                for i, config in enumerate(configs)
            }

        try:
            futures = _submit_all()
        except BrokenExecutor:
            # An idle worker died between races; rebuild the pool once.
            self._terminate_pool()
            futures = _submit_all()
        launched += len(futures)
        self.total_launched += launched

        winner: SolverOutcome | None = None
        timed_out = False
        pool_broken = False
        pending = set(futures)
        while pending and winner is None:
            # The parent enforces the deadline too: queued tasks only start
            # their own budget when a worker picks them up, so with more
            # configs than workers the race would otherwise overshoot.
            timeout = None
            if deadline is not None:
                timeout = max(0.0, deadline - (time.perf_counter() - t0)) + 0.05
            done, pending = wait(
                pending, return_when=FIRST_COMPLETED, timeout=timeout
            )
            if not done:
                timed_out = True
                break
            for fut in done:
                try:
                    out = fut.result()
                except BrokenExecutor as exc:
                    pool_broken = True
                    out = SolverOutcome(
                        UNKNOWN, None, futures[fut].name, 0.0, f"worker error: {exc!r}"
                    )
                except Exception as exc:  # worker died (OOM, signal, ...)
                    out = SolverOutcome(
                        UNKNOWN, None, futures[fut].name, 0.0, f"worker error: {exc!r}"
                    )
                outcomes.append(out)
                if winner is None and _trusted(futures[fut], out):
                    winner = out
        not_run = 0
        if pending:
            self._cancel.set()
            for fut in pending:
                if fut.cancel():       # still queued: its solver never ran
                    not_run += 1
            # Give cancelled workers a beat to drain (they poll the event
            # every 10 ms while staggered); racers already mid-solve cannot
            # be interrupted, so terminate them and rebuild the pool lazily
            # on the next race rather than let losers burn CPU.
            live = {fut for fut in pending if not fut.cancelled()}
            done, still_running = wait(live, timeout=self.drain)
            for fut in done:
                try:
                    out = fut.result()
                except Exception:
                    continue
                outcomes.append(out)
                if out.detail == "cancelled":   # bailed during the stagger
                    not_run += 1
                elif winner is None and _trusted(futures[fut], out):
                    # A racer crossed the line inside the drain window (the
                    # deadline cut us loose, not an earlier winner): its
                    # verdict is just as trustworthy, so it still wins
                    # instead of being dropped on the floor.
                    winner = out
                    timed_out = False
            if still_running:
                self._terminate_pool()
        if pool_broken:
            # A dead worker poisons the whole executor: rebuild lazily so
            # the next race degrades to "unknown", not BrokenProcessPool.
            self._terminate_pool()

        if winner is None and timed_out:
            final = SolverOutcome(UNKNOWN, None, "portfolio", 0.0, "deadline exceeded")
        else:
            final = winner or _best_unknown(outcomes)
        return PortfolioResult(
            final, winner.solver if winner else None, launched,
            time.perf_counter() - t0, outcomes, executed=launched - not_run,
            transport_bytes=len(payload),
        )


def _best_unknown(outcomes: list[SolverOutcome]) -> SolverOutcome:
    """Aggregate an all-unknown race into one outcome."""
    detail = "; ".join(
        f"{o.solver}: {o.detail or o.status}" for o in outcomes
    )
    return SolverOutcome(UNKNOWN, None, "portfolio", 0.0, detail or "no outcomes")
