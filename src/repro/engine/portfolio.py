"""Race N solver configurations; first definitive answer wins.

Strategy (classic parallel-portfolio with a twist for serial hardware):

1. **Quick slice** — the lead configuration (complete DPLL by default)
   runs *in-process* for a short budget.  Easy instances — the vast
   majority in an EC workload — are decided here at sequential-solver
   speed, with zero pool overhead.  This is what keeps the portfolio "no
   slower than the best single sequential solver" even on one core.
2. **Fan-out** — undecided instances are raced across a
   ``concurrent.futures`` process pool.  Each worker receives the
   instance as the packed kernel's raw wire bytes
   (:meth:`~repro.cnf.packed.PackedCNF.to_bytes` — flat literal arrays
   plus a clause-offset index), not a pickled ``CNFFormula`` object
   graph; deserialization is a couple of C-level array copies, and
   solvers with a ``solve_packed`` entry point consume the arrays
   directly.

The pool is **shared between concurrent races**.  Where the pre-PR-7
design kept one engine-global cancellation event (forcing the engine to
serialize whole queries), every race now leases a :class:`RaceHandle`:
a private cancellation *slot* out of a fixed slot array the workers
inherit at pool start, plus the set of futures the race submitted.
Concurrent races over distinct instances therefore overlap on one
executor, and a scheduler apportions worker submissions: a race running
alone bursts its whole line-up at once (the historical behaviour), while
N concurrent races each trickle ``jobs / N`` racers at a time so no
single query can bury the others' leads at the back of the pool queue.

Workers start staggered (so on oversubscribed hardware the lead solver
runs nearly uncontended) and poll their race's cancellation slot while
waiting, so not-yet-started losers stop cheaply once a winner crosses
the line.  Losers already mid-solve cannot be interrupted; instead of
blocking the winning caller (or tearing down the shared pool under
sibling races), their slot is handed to a lazy reaper that releases it
once the stragglers finish — and only if zombies linger with *no* race
active does the pool get terminated and rebuilt.  The ``deadline`` is
enforced both inside each worker and by the parent's wait loop.

An ``unsat`` outcome only wins if its solver is complete; ``sat``
outcomes are verified models (see :mod:`repro.engine.adapters`), so the
race can never return a wrong answer, only ``unknown``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field

from repro import faults
from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.cnf.packed import PackedCNF
from repro.engine.config import (
    DEFAULT_QUICK_SLICE,
    SolverConfig,
    default_portfolio_configs,
)
from repro.engine.protocol import SAT, SolverOutcome, UNKNOWN, UNSAT
from repro.obs import tracing

#: Worker-side cancellation slot array, installed by :func:`_init_worker`.
#: Each concurrently running race owns one slot for its lifetime.
_CANCEL_SLOTS = None


def _init_worker(cancel_slots) -> None:
    """Pool initializer: adopt the shared per-race cancellation slots."""
    global _CANCEL_SLOTS
    _CANCEL_SLOTS = cancel_slots


def _slot_cancelled(slot) -> bool:
    """Whether the race owning *slot* has been cancelled (worker side)."""
    if slot is None or _CANCEL_SLOTS is None:
        return False
    return _CANCEL_SLOTS[slot].is_set()


def run_config(
    config: SolverConfig,
    formula: CNFFormula,
    *,
    deadline: float | None = None,
    seed: int | None = None,
    hint: Assignment | None = None,
) -> SolverOutcome:
    """Run one configuration, mapping any crash to an ``unknown`` outcome.

    The effective solver seed is ``(seed or 0) + config.seed_offset`` so a
    single race seed still diversifies identical adapters.
    """
    t0 = time.perf_counter()
    try:
        adapter = config.build()
        return adapter.solve(
            formula,
            deadline=deadline,
            seed=(0 if seed is None else seed) + config.seed_offset,
            hint=hint,
        )
    except Exception as exc:  # a crashed racer must not kill the race
        return SolverOutcome(
            UNKNOWN, None, config.name, time.perf_counter() - t0, f"error: {exc!r}"
        )


def run_packed(
    config: SolverConfig,
    packed: PackedCNF,
    *,
    deadline: float | None = None,
    seed: int | None = None,
    hint: Assignment | None = None,
) -> SolverOutcome:
    """Run one configuration on a packed kernel.

    Adapters with a ``solve_packed`` entry point consume the flat arrays
    directly; the rest (brute force, the ILP routes) get a materialized
    formula.  Crashes map to ``unknown`` exactly as in :func:`run_config`.
    """
    t0 = time.perf_counter()
    try:
        adapter = config.build()
        solve_packed = getattr(adapter, "solve_packed", None)
        effective = (0 if seed is None else seed) + config.seed_offset
        if solve_packed is not None:
            return solve_packed(packed, deadline=deadline, seed=effective, hint=hint)
        return adapter.solve(
            packed.to_formula(), deadline=deadline, seed=effective, hint=hint
        )
    except Exception as exc:  # a crashed racer must not kill the race
        return SolverOutcome(
            UNKNOWN, None, config.name, time.perf_counter() - t0, f"error: {exc!r}"
        )


def _race_entry(
    config: SolverConfig,
    payload: bytes,
    deadline: float | None,
    seed: int | None,
    hint: Assignment | None,
    stagger: float,
    slot: int | None = None,
) -> SolverOutcome:
    """Worker-side entry: staggered, cancellable start, then the solver.

    *payload* is the packed kernel's wire bytes — two array copies to
    deserialize, no clause objects.  *slot* selects which race's
    cancellation event this worker polls; racing queries never observe
    each other's cancellations.
    """
    t0 = time.perf_counter()
    waited = 0.0
    while waited < stagger:
        if _slot_cancelled(slot):
            return SolverOutcome(UNKNOWN, None, config.name, 0.0, "cancelled")
        step = min(0.01, stagger - waited)
        time.sleep(step)
        waited += step
    if _slot_cancelled(slot):
        return SolverOutcome(UNKNOWN, None, config.name, 0.0, "cancelled")
    chaos = _worker_chaos(config, slot, t0)
    if chaos is not None:
        return chaos
    packed = PackedCNF.from_bytes(payload)
    remaining = None
    if deadline is not None:
        remaining = max(0.0, deadline - (time.perf_counter() - t0))
    return run_packed(config, packed, deadline=remaining, seed=seed, hint=hint)


def _worker_chaos(
    config: SolverConfig, slot: int | None, t0: float
) -> SolverOutcome | None:
    """Worker-side fault points (active only under an installed plan).

    ``worker.kill`` SIGKILLs this worker mid-task — the real crash the
    pool's BrokenExecutor recovery and the engine's solo fallback exist
    for.  ``worker.hang`` simulates a racer stuck past every budget: it
    sleeps the point's ``delay`` (default 5 s), polling its race's
    cancellation slot like a well-behaved stagger wait, then returns
    undecided.
    """
    if faults.fire("worker.kill") is not None:
        os.kill(os.getpid(), 9)  # SIGKILL: no cleanup, no excuses
    hang = faults.fire("worker.hang")
    if hang is not None:
        budget = hang.delay or 5.0
        waited = 0.0
        while waited < budget:
            if _slot_cancelled(slot):
                return SolverOutcome(
                    UNKNOWN, None, config.name, 0.0, "cancelled"
                )
            time.sleep(min(0.02, budget - waited))
            waited += 0.02
        return SolverOutcome(
            UNKNOWN, None, config.name, time.perf_counter() - t0,
            "chaos: hang",
        )
    return None


def _trusted(config: SolverConfig, out: SolverOutcome) -> bool:
    """Can the race stop on this outcome?

    A ``sat`` always can (models are verified); an ``unsat`` only counts
    as a proof when the producing configuration is complete.
    """
    if out.status == SAT:
        return True
    return out.status == UNSAT and config.complete


@dataclass
class PortfolioResult:
    """What a race produced.

    ``launched`` counts submissions; ``executed`` excludes racers that
    were cancelled before their solver ever started (``executed`` still
    includes racers terminated or abandoned mid-run, so it is exact for
    the zero-solver paths and an upper bound otherwise).
    """

    outcome: SolverOutcome
    winner: str | None
    launched: int
    wall_time: float
    outcomes: list[SolverOutcome] = field(default_factory=list)
    via_quick_slice: bool = False
    executed: int = 0
    #: Per-worker payload size in bytes (0 when the race never fanned out
    #: to the pool — quick-slice wins and sequential scans ship nothing).
    transport_bytes: int = 0


class RaceHandle:
    """Per-race mutable state over the shared executor.

    Everything that used to be engine-global (and forced whole-query
    serialization) lives here instead: the cancellation event — one
    *slot* of the pool's shared slot array, leased for this race — the
    futures this race submitted, and the pool generation the lease
    belongs to (a terminated/rebuilt pool invalidates old handles).
    """

    __slots__ = ("slot", "generation", "futures", "_portfolio", "_executor")

    def __init__(
        self,
        portfolio: "Portfolio",
        executor: ProcessPoolExecutor,
        slot: int,
        generation: int,
    ):
        self._portfolio = portfolio
        self._executor = executor
        self.slot = slot
        self.generation = generation
        self.futures: dict[Future, SolverConfig] = {}

    def submit(
        self,
        config: SolverConfig,
        payload: bytes,
        deadline: float | None,
        seed: int | None,
        hint: Assignment | None,
        stagger: float,
    ) -> Future:
        """Submit one racer bound to this race's cancellation slot."""
        fut = self._executor.submit(
            _race_entry, config, payload, deadline, seed, hint, stagger, self.slot
        )
        self.futures[fut] = config
        return fut

    def cancel(self) -> None:
        """Tell this race's not-yet-solving workers to stand down."""
        self._portfolio._set_cancel(self)


class Portfolio:
    """A reusable racer over a fixed list of solver configurations.

    Thread-safe: any number of threads may call :meth:`solve`
    concurrently; distinct races overlap on one shared process pool,
    each owning a private :class:`RaceHandle` (cancellation slot +
    futures).  See the module docstring for the scheduling policy.

    Args:
        configs: race line-up (default: :func:`default_portfolio_configs`).
        jobs: process-pool width; ``<= 1`` disables the pool and runs the
            line-up sequentially in-process (first definitive answer wins).
            Default: ``min(4, os.cpu_count())``.
        quick_slice: in-process lead-solver budget in seconds before
            fanning out (0 disables the quick slice).
        stagger: delay between worker starts; ``None`` auto-selects 0 on
            machines with at least ``jobs`` cores and 50 ms otherwise.
        drain: how long (seconds) a race that hit its *deadline* waits
            for already-running racers to cross the line; a definitive
            answer arriving inside this window still wins.  Races ended
            by a winner skip this wait — leftovers go to the reaper.
        reap_patience: how long abandoned mid-solve losers may clog
            workers before an *idle* portfolio terminates the pool
            (rebuilt lazily) to reclaim them.

    The process pool is created lazily and reused across calls; use the
    portfolio as a context manager (or call :meth:`close`) to release it.
    """

    def __init__(
        self,
        configs: list[SolverConfig] | None = None,
        jobs: int | None = None,
        quick_slice: float = DEFAULT_QUICK_SLICE,
        stagger: float | None = None,
        drain: float = 0.1,
        reap_patience: float = 2.0,
    ):
        self.configs = list(configs) if configs is not None else default_portfolio_configs()
        cores = os.cpu_count() or 1
        self.jobs = min(4, cores) if jobs is None else jobs
        self.quick_slice = quick_slice
        self.stagger = (0.0 if cores >= max(self.jobs, 2) else 0.05) if stagger is None else stagger
        self.drain = drain
        self.reap_patience = reap_patience
        self.total_launched = 0
        #: Mid-solve losers abandoned past ``reap_patience`` (cumulative);
        #: each one cost a pool rebuild to reclaim its worker.
        self.leaked = 0
        #: Races the broken-pool in-process fallback decided (cumulative):
        #: the pool died under them and the parent solved solo instead of
        #: returning ``unknown``.
        self.solo_fallbacks = 0
        self._executor: ProcessPoolExecutor | None = None
        # One lock/condition guards pool lifetime, the slot free-list,
        # the reap queue, and the active-race count.  It is never held
        # while waiting on solver futures.
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._events: list | None = None     # per-slot cancellation events
        self._free: list[int] = []           # free slot indices
        self._reaping: list[tuple[int, list[Future], float]] = []
        self._generation = 0                 # bumped on every pool teardown
        self._active = 0                     # races currently in fan-out
        self._slot_count = max(8, 2 * max(1, self.jobs))

    # ------------------------------------------------------------------
    # pool + slot lifecycle (all *_locked helpers need self._lock held)
    # ------------------------------------------------------------------
    def _ensure_pool_locked(self) -> ProcessPoolExecutor:
        if self._executor is None:
            methods = mp.get_all_start_methods()
            ctx = mp.get_context("fork" if "fork" in methods else methods[0])
            self._events = [ctx.Event() for _ in range(self._slot_count)]
            self._free = list(range(self._slot_count))
            self._reaping = []
            self._executor = ProcessPoolExecutor(
                max_workers=max(1, self.jobs),
                mp_context=ctx,
                initializer=_init_worker,
                initargs=(self._events,),
            )
        return self._executor

    def _terminate_pool_locked(self) -> None:
        executor, self._executor = self._executor, None
        events, self._events = self._events, None
        self._free = []
        self._reaping = []
        self._generation += 1
        self._cond.notify_all()
        if executor is None:
            return
        if events is not None:
            for event in events:
                event.set()
        # ProcessPoolExecutor exposes no public kill; fall back to leaving
        # the workers alone if the private handle ever disappears.
        procs = dict(getattr(executor, "_processes", None) or {})
        executor.shutdown(wait=False, cancel_futures=True)
        # Wait for the management thread to process the shutdown wakeup:
        # it prunes already-cancelled work items (races cancel losers) and
        # then clears _cancel_pending_futures.  Terminating workers before
        # that prune makes its broken-pool cleanup set_exception() on
        # cancelled futures — an InvalidStateError that kills the thread
        # mid-cleanup and leaks its queues.
        deadline = time.monotonic() + 1.0
        while (
            getattr(executor, "_cancel_pending_futures", False)
            and time.monotonic() < deadline
        ):
            time.sleep(0.005)
        for proc in procs.values():
            if proc.is_alive():
                proc.terminate()

    def _reap_locked(self) -> None:
        """Release slots whose abandoned futures have since finished.

        A slot's cancellation event stays set until every straggler is
        gone, so a reused slot can never un-cancel a stale worker.  If
        zombies outlive ``reap_patience`` while *no* race is active, the
        pool is terminated (rebuilt lazily) to reclaim their workers.
        """
        if self._events is None:
            self._reaping = []
            return
        still: list[tuple[int, list[Future], float]] = []
        now = time.monotonic()
        for slot, futs, since in self._reaping:
            live = [f for f in futs if not f.done()]
            if not live:
                self._events[slot].clear()
                self._free.append(slot)
                self._cond.notify()
            elif now - since > self.reap_patience and self._active == 0:
                self.leaked += len(live)
                self._terminate_pool_locked()
                return
            else:
                still.append((slot, live, since))
        self._reaping = still

    def _begin_race(self) -> RaceHandle:
        """Lease a cancellation slot over the (lazily built) shared pool."""
        with self._cond:
            while True:
                executor = self._ensure_pool_locked()
                self._reap_locked()
                if self._executor is None:   # reaper just tore it down
                    continue
                if self._free:
                    slot = self._free.pop()
                    self._active += 1
                    return RaceHandle(self, executor, slot, self._generation)
                # Every slot is leased (concurrent races plus unreaped
                # leftovers): wait for one, re-reaping on each wake.
                self._cond.wait(0.05)

    def _end_race(self, handle: RaceHandle) -> None:
        """Return a race's slot — directly, or via the reaper when the
        race abandoned still-running futures."""
        with self._cond:
            self._active -= 1
            if handle.generation != self._generation or self._events is None:
                return
            live = [
                f for f in handle.futures if not f.done() and not f.cancelled()
            ]
            if live:
                self._reaping.append((handle.slot, live, time.monotonic()))
            else:
                self._events[handle.slot].clear()
                self._free.append(handle.slot)
                self._cond.notify()
                return
        # Outside the lock (a done future runs its callback inline): when
        # the stragglers finish, the slot comes home immediately instead
        # of waiting for the next race to trip the reaper.
        for fut in live:
            fut.add_done_callback(lambda _f: self._reap())

    def _reap(self) -> None:
        """Opportunistic reap (future done-callbacks and idle cleanup)."""
        with self._cond:
            self._reap_locked()

    def _set_cancel(self, handle: RaceHandle) -> None:
        with self._lock:
            if handle.generation == self._generation and self._events is not None:
                self._events[handle.slot].set()

    def _rebuild_if_solo(self) -> bool:
        """After a ``BrokenExecutor``: terminate the dead pool for a lazy
        rebuild, but only when the caller is the only active race —
        sibling races degrade to ``unknown`` on their own terms."""
        with self._cond:
            if self._active > 1:
                return False
            self._terminate_pool_locked()
            return True

    def _share(self, total: int) -> int:
        """How many racers this race may have in flight right now.

        Alone: the whole line-up (burst submission, the historical
        behaviour).  With N concurrent races: ``jobs / N`` (min 1), so
        every query keeps a lead racer moving instead of queueing whole
        line-ups behind each other.
        """
        with self._lock:
            active = self._active
        if active <= 1:
            return total
        return max(1, self.jobs // active)

    def _note_launched(self, n: int) -> None:
        with self._lock:
            self.total_launched += n

    @property
    def generation(self) -> int:
        """Pool generation: bumped once per pool teardown/rebuild cycle.

        The chaos harness asserts on it — a worker SIGKILL mid-race must
        advance it exactly once, not once per orphaned future.
        """
        with self._lock:
            return self._generation

    def health(self) -> dict:
        """Pool liveness/degradation snapshot (the daemon ``health`` op)."""
        with self._lock:
            return {
                "generation": self._generation,
                "pool_alive": self._executor is not None,
                "active_races": self._active,
                "free_slots": len(self._free),
                "reaping": len(self._reaping),
                "leaked": self.leaked,
                "solo_fallbacks": self.solo_fallbacks,
                "total_launched": self.total_launched,
                "jobs": self.jobs,
            }

    # ------------------------------------------------------------------
    def warm_up(self) -> None:
        """Spin up the worker pool ahead of the first race (benchmarks)."""
        if self.jobs > 1:
            with self._lock:
                executor = self._ensure_pool_locked()
            wait([executor.submit(os.getpid) for _ in range(self.jobs)])

    def close(self) -> None:
        """Tear the worker pool down (safe to call repeatedly).

        Running workers are terminated: a mid-solve racer cannot be
        interrupted cooperatively, and letting it run to completion would
        block interpreter exit on the pool's atexit join.
        """
        with self._cond:
            self._terminate_pool_locked()

    def __enter__(self) -> "Portfolio":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def solve(
        self,
        formula: CNFFormula,
        *,
        deadline: float | None = None,
        seed: int | None = None,
        hint: Assignment | None = None,
        lead: str | None = None,
    ) -> PortfolioResult:
        """Race the line-up on *formula*; see the module docstring.

        Safe to call from any number of threads at once — each call runs
        its own race over the shared pool.

        Args:
            lead: name of the configuration to move to the front for this
                race only — it takes the quick slice and the zero-stagger
                slot (the session stages CDCL ahead of DPLL on tightening
                changes this way).  Unknown names are ignored.

        Returns an ``unknown`` result only when every configuration came
        back undecided within its budget.
        """
        if not self.configs:
            raise ValueError("portfolio has no solver configurations")
        t0 = time.perf_counter()
        configs = self.configs
        if lead is not None:
            promoted = [c for c in configs if c.name == lead]
            if promoted:
                configs = promoted + [c for c in configs if c.name != lead]
        outcomes: list[SolverOutcome] = []
        launched = 0

        # Phase 1: in-process quick slice on the lead configuration.
        if self.quick_slice > 0:
            slice_budget = (
                self.quick_slice if deadline is None else min(self.quick_slice, deadline)
            )
            first = configs[0]
            launched += 1
            with tracing.stage("quick_slice", solver=first.name) as sp:
                out = run_config(
                    first, formula, deadline=slice_budget, seed=seed, hint=hint
                )
                if sp is not None:
                    sp.tags["status"] = out.status
            outcomes.append(out)
            if _trusted(first, out):
                self._note_launched(launched)
                return PortfolioResult(
                    out, first.name, launched, time.perf_counter() - t0,
                    outcomes, via_quick_slice=True, executed=launched,
                )

        remaining = None
        if deadline is not None:
            remaining = max(0.0, deadline - (time.perf_counter() - t0))

        # Phase 2: fan out (or fall back to a sequential scan).
        if self.jobs <= 1:
            winner = None
            for config in configs:
                if deadline is not None:
                    remaining = max(0.0, deadline - (time.perf_counter() - t0))
                    if remaining == 0.0:
                        break
                launched += 1
                with tracing.stage("solve", solver=config.name) as sp:
                    out = run_config(
                        config, formula, deadline=remaining, seed=seed, hint=hint
                    )
                    if sp is not None:
                        sp.tags["status"] = out.status
                outcomes.append(out)
                if _trusted(config, out):
                    winner = out
                    break
            self._note_launched(launched)
            final = winner or _best_unknown(outcomes)
            return PortfolioResult(
                final, winner.solver if winner else None, launched,
                time.perf_counter() - t0, outcomes, executed=launched,
            )

        # Ship the packed kernel's raw bytes to every worker: building the
        # payload is one call on the formula's cached kernel, and each
        # worker pays two array copies instead of unpickling an object
        # graph of clause instances.
        payload = formula.packed().to_bytes()
        handle = self._begin_race()
        pending: set[Future] = set()
        winner: SolverOutcome | None = None
        timed_out = False
        pool_broken = False
        retried = False
        not_run = 0
        next_config = 0
        # Workers never ship spans back across the process boundary; the
        # parent reconstructs `pool.wait` (its own clock) and `solve`
        # (the winner's wall_time) as synthetic spans at race end,
        # parented on whatever stage is active right now (engine.solve).
        trace_tracer, trace_ctx = tracing.active()
        wait_t0 = time.monotonic()
        first_done: float | None = None
        try:
            while True:
                # Top up this race's apportioned share of the pool.
                if winner is None and not timed_out and not pool_broken:
                    share = self._share(len(configs))
                    while next_config < len(configs) and len(pending) < share:
                        config = configs[next_config]
                        try:
                            fut = handle.submit(
                                config, payload, remaining, seed, hint,
                                next_config * self.stagger,
                            )
                        except BrokenExecutor:
                            # An idle worker died between races; rebuild
                            # the pool once if nobody else is racing on it.
                            if (
                                not retried
                                and not pending
                                and self._rebuild_if_solo()
                            ):
                                retried = True
                                self._end_race(handle)
                                handle = self._begin_race()
                                continue
                            pool_broken = True
                            break
                        pending.add(fut)
                        launched += 1
                        next_config += 1
                if winner is not None or not pending:
                    break
                # The parent enforces the deadline too: queued tasks only
                # start their own budget when a worker picks them up, so
                # with more configs than workers the race would otherwise
                # overshoot.
                timeout = None
                if deadline is not None:
                    timeout = max(0.0, deadline - (time.perf_counter() - t0)) + 0.05
                done, pending = wait(
                    pending, return_when=FIRST_COMPLETED, timeout=timeout
                )
                if done and first_done is None:
                    first_done = time.monotonic()
                if not done:
                    timed_out = True
                    break
                for fut in done:
                    try:
                        out = fut.result()
                    except BrokenExecutor as exc:
                        pool_broken = True
                        out = SolverOutcome(
                            UNKNOWN, None, handle.futures[fut].name, 0.0,
                            f"worker error: {exc!r}",
                        )
                    except Exception as exc:  # worker died (OOM, signal, ...)
                        out = SolverOutcome(
                            UNKNOWN, None, handle.futures[fut].name, 0.0,
                            f"worker error: {exc!r}",
                        )
                    outcomes.append(out)
                    if winner is None and _trusted(handle.futures[fut], out):
                        winner = out
            self._note_launched(launched)

            if pending:
                handle.cancel()
                for fut in pending:
                    if fut.cancel():       # still queued: its solver never ran
                        not_run += 1
                live = {fut for fut in pending if not fut.cancelled()}
                if winner is None and live:
                    # The deadline cut us loose, not an earlier winner:
                    # give running racers the drain window to cross the
                    # line — a definitive verdict arriving now is just as
                    # trustworthy, so it still wins instead of being
                    # dropped on the floor.
                    done, _still = wait(live, timeout=self.drain)
                    if done and first_done is None:
                        first_done = time.monotonic()
                    for fut in done:
                        try:
                            out = fut.result()
                        except Exception:
                            continue
                        outcomes.append(out)
                        if out.detail == "cancelled":   # bailed in the stagger
                            not_run += 1
                        elif winner is None and _trusted(handle.futures[fut], out):
                            winner = out
                            timed_out = False
                # Anything still running is a mid-solve loser: it cannot
                # be interrupted, and terminating the shared pool would
                # kill sibling races — the reaper (via _end_race) holds
                # its slot until it finishes, and only tears the pool
                # down if zombies linger while the portfolio is idle.
        finally:
            self._end_race(handle)
        if pool_broken:
            # A dead worker poisons the whole executor: once no sibling
            # race is left on it, rebuild lazily so the next race degrades
            # to "unknown", not BrokenProcessPool.
            with self._cond:
                if self._active == 0:
                    self._terminate_pool_locked()

        if winner is None and pool_broken:
            # Last resort: the pool died under this race before any racer
            # produced a trusted verdict.  Solve solo in the parent
            # process — immune to worker SIGKILLs by construction — with
            # whatever deadline budget is left, so a broken pool degrades
            # to a slower correct answer instead of "unknown".
            solo_budget = None
            if deadline is not None:
                solo_budget = max(0.0, deadline - (time.perf_counter() - t0))
            if solo_budget is None or solo_budget > 0.0:
                first = configs[0]
                launched += 1
                out = run_config(
                    first, formula, deadline=solo_budget, seed=seed, hint=hint
                )
                outcomes.append(out)
                with self._lock:
                    self.solo_fallbacks += 1
                    self.total_launched += 1
                if _trusted(first, out):
                    winner = out
                    timed_out = False

        if winner is None and timed_out:
            final = SolverOutcome(UNKNOWN, None, "portfolio", 0.0, "deadline exceeded")
        else:
            final = winner or _best_unknown(outcomes)
        if trace_tracer is not None and trace_ctx is not None:
            if first_done is not None:
                trace_tracer.record(
                    "pool.wait",
                    parent=trace_ctx,
                    start=wait_t0,
                    duration=first_done - wait_t0,
                    tags={"launched": launched},
                )
            if winner is not None:
                trace_tracer.record(
                    "solve",
                    parent=trace_ctx,
                    duration=winner.wall_time,
                    tags={"solver": winner.solver, **(winner.stats or {})},
                )
        return PortfolioResult(
            final, winner.solver if winner else None, launched,
            time.perf_counter() - t0, outcomes, executed=launched - not_run,
            transport_bytes=len(payload),
        )


def _best_unknown(outcomes: list[SolverOutcome]) -> SolverOutcome:
    """Aggregate an all-unknown race into one outcome."""
    detail = "; ".join(
        f"{o.solver}: {o.detail or o.status}" for o in outcomes
    )
    return SolverOutcome(UNKNOWN, None, "portfolio", 0.0, detail or "no outcomes")
