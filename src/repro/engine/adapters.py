"""Adapters giving every backend the uniform :class:`Solver` interface.

Each adapter is a small picklable dataclass wrapping one of the repo's
solvers behind ``solve(formula, *, deadline, seed, hint)``.  Satisfiable
results are verified against the formula before being reported (see
:func:`repro.engine.protocol.verified_sat`), and ``unsat`` is only emitted
by complete solvers whose verdict is a proof.

Solvers with flat-array inner loops additionally expose
``solve_packed(packed, *, deadline, seed, hint)`` taking a
:class:`~repro.cnf.packed.PackedCNF` directly — the entry point portfolio
workers use after deserializing the raw-bytes race payload, skipping the
object graph entirely (models are verified against the packed arrays;
``verified_sat`` only needs ``is_satisfied``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.cnf.packed import PackedCNF
from repro.engine.protocol import SolverOutcome, UNKNOWN, UNSAT, verified_sat
from repro.errors import ReproError
from repro.ilp.status import SolveStatus
from repro.sat.brute import MAX_BRUTE_VARS, brute_force_solve
from repro.sat.cdcl import CDCLSolver
from repro.sat.dpll import dpll_solve, dpll_solve_packed
from repro.sat.encoding import encode_sat
from repro.sat.walksat import walksat_solve, walksat_solve_packed


@dataclass(frozen=True)
class CDCLAdapter:
    """Complete clause-learning search; the hint becomes the initial phase.

    The portfolio's default lead: on hard tightened EC instances its
    learned clauses dominate chronological DPLL by orders of magnitude,
    and on easy instances it costs the same unit propagation.
    """

    name: str = "cdcl"
    complete: bool = True
    max_conflicts: int = 0
    restart_base: int = 64

    def solve(
        self,
        formula: CNFFormula,
        *,
        deadline: float | None = None,
        seed: int | None = None,
        hint: Assignment | None = None,
    ) -> SolverOutcome:
        """Run CDCL under the engine contract."""
        return self.solve_packed(
            formula.packed(), deadline=deadline, seed=seed, hint=hint
        )

    def solve_packed(
        self,
        packed: PackedCNF,
        *,
        deadline: float | None = None,
        seed: int | None = None,
        hint: Assignment | None = None,
    ) -> SolverOutcome:
        """Run CDCL on a packed kernel (the worker-side race entry)."""
        t0 = time.perf_counter()
        res = CDCLSolver(
            max_conflicts=self.max_conflicts, restart_base=self.restart_base
        ).solve_packed(packed, polarity_hint=hint, deadline=deadline, seed=seed)
        wall = time.perf_counter() - t0
        # Structured search-effort counters ride every outcome (SAT,
        # UNSAT, or exhausted) so the engine can aggregate solver effort
        # and solve spans can annotate it — `detail` stays human-only.
        stats = {
            "propagations": res.propagations,
            "conflicts": res.conflicts,
            "restarts": res.restarts,
        }
        if res.satisfiable is True:
            return verified_sat(
                packed, res.assignment, self.name, wall,
                f"conflicts={res.conflicts} restarts={res.restarts}",
                stats,
            )
        if res.satisfiable is False:
            return SolverOutcome(
                UNSAT, None, self.name, wall, f"learned={res.learned}", stats
            )
        return SolverOutcome(
            UNKNOWN, None, self.name, wall, "budget exhausted", stats
        )


@dataclass(frozen=True)
class DPLLAdapter:
    """Complete DPLL search; the hint becomes the initial phase."""

    name: str = "dpll"
    complete: bool = True
    max_decisions: int = 0

    def solve(
        self,
        formula: CNFFormula,
        *,
        deadline: float | None = None,
        seed: int | None = None,
        hint: Assignment | None = None,
    ) -> SolverOutcome:
        """Run DPLL under the engine contract."""
        return self.solve_packed(
            formula.packed(), deadline=deadline, seed=seed, hint=hint
        )

    def solve_packed(
        self,
        packed: PackedCNF,
        *,
        deadline: float | None = None,
        seed: int | None = None,
        hint: Assignment | None = None,
    ) -> SolverOutcome:
        """Run DPLL on a packed kernel (the worker-side race entry)."""
        t0 = time.perf_counter()
        res = dpll_solve_packed(
            packed,
            polarity_hint=hint,
            max_decisions=self.max_decisions,
            deadline=deadline,
            seed=seed,
        )
        wall = time.perf_counter() - t0
        if res.satisfiable is True:
            return verified_sat(packed, res.assignment, self.name, wall)
        if res.satisfiable is False:
            return SolverOutcome(UNSAT, None, self.name, wall)
        return SolverOutcome(UNKNOWN, None, self.name, wall, "budget exhausted")


@dataclass(frozen=True)
class WalkSATAdapter:
    """Incomplete local search; fast on satisfiable instances."""

    name: str = "walksat"
    complete: bool = False
    max_flips: int = 200_000
    max_restarts: int = 10
    noise: float = 0.5
    use_hint: bool = True

    def solve(
        self,
        formula: CNFFormula,
        *,
        deadline: float | None = None,
        seed: int | None = None,
        hint: Assignment | None = None,
    ) -> SolverOutcome:
        """Run WalkSAT under the engine contract."""
        return self.solve_packed(
            formula.packed(), deadline=deadline, seed=seed, hint=hint
        )

    def solve_packed(
        self,
        packed: PackedCNF,
        *,
        deadline: float | None = None,
        seed: int | None = None,
        hint: Assignment | None = None,
    ) -> SolverOutcome:
        """Run WalkSAT on a packed kernel (the worker-side race entry)."""
        t0 = time.perf_counter()
        res = walksat_solve_packed(
            packed,
            max_flips=self.max_flips,
            max_restarts=self.max_restarts,
            noise=self.noise,
            initial=hint if self.use_hint else None,
            seed=0 if seed is None else seed,
            deadline=deadline,
        )
        wall = time.perf_counter() - t0
        if res.satisfiable is True:
            return verified_sat(
                packed, res.assignment, self.name, wall, f"flips={res.flips}"
            )
        if res.satisfiable is False:
            # Only for trivially-false formulas (empty clause) — still a proof.
            return SolverOutcome(UNSAT, None, self.name, wall)
        return SolverOutcome(UNKNOWN, None, self.name, wall, "budget exhausted")


@dataclass(frozen=True)
class BruteForceAdapter:
    """Exhaustive enumeration; only sensible for tiny formulas."""

    name: str = "brute"
    complete: bool = True
    max_vars: int = min(MAX_BRUTE_VARS, 16)

    def solve(
        self,
        formula: CNFFormula,
        *,
        deadline: float | None = None,
        seed: int | None = None,
        hint: Assignment | None = None,
    ) -> SolverOutcome:
        """Enumerate assignments under the engine contract."""
        t0 = time.perf_counter()
        if formula.num_vars > self.max_vars:
            return SolverOutcome(
                UNKNOWN, None, self.name, 0.0,
                f"{formula.num_vars} vars exceeds brute limit {self.max_vars}",
            )
        try:
            model = brute_force_solve(formula, deadline=deadline, seed=seed)
        except ReproError as exc:
            return SolverOutcome(
                UNKNOWN, None, self.name, time.perf_counter() - t0, str(exc)
            )
        wall = time.perf_counter() - t0
        if model is None:
            return SolverOutcome(UNSAT, None, self.name, wall)
        return verified_sat(formula, model, self.name, wall)


@dataclass(frozen=True)
class ExactILPAdapter:
    """The paper's route: SAT -> set cover -> 0-1 ILP, branch and bound."""

    name: str = "ilp-exact"
    complete: bool = True

    def solve(
        self,
        formula: CNFFormula,
        *,
        deadline: float | None = None,
        seed: int | None = None,
        hint: Assignment | None = None,
    ) -> SolverOutcome:
        """Solve the set-cover ILP encoding exactly."""
        from repro.ilp.solver import solve

        t0 = time.perf_counter()
        if formula.has_empty_clause():
            return SolverOutcome(UNSAT, None, self.name, 0.0, "empty clause")
        encoding = encode_sat(formula)
        warm = encoding.values_from_assignment(hint) if hint is not None else None
        solution = solve(
            encoding.model,
            method="exact",
            warm_start=warm,
            deadline=deadline,
            seed=seed,
        )
        wall = time.perf_counter() - t0
        if solution.status.has_solution:
            return verified_sat(
                formula,
                encoding.decode(solution, default=False),
                self.name,
                wall,
                f"status={solution.status.value}",
            )
        if solution.status is SolveStatus.INFEASIBLE:
            return SolverOutcome(UNSAT, None, self.name, wall)
        return SolverOutcome(
            UNKNOWN, None, self.name, wall, f"status={solution.status.value}"
        )


@dataclass(frozen=True)
class HeuristicILPAdapter:
    """The ILP encoding solved by weighted iterative improvement."""

    name: str = "ilp-heuristic"
    complete: bool = False
    max_flips: int = 200_000
    max_restarts: int = 10

    def solve(
        self,
        formula: CNFFormula,
        *,
        deadline: float | None = None,
        seed: int | None = None,
        hint: Assignment | None = None,
    ) -> SolverOutcome:
        """Search the set-cover ILP encoding heuristically."""
        from repro.ilp.solver import solve

        t0 = time.perf_counter()
        if formula.has_empty_clause():
            return SolverOutcome(UNSAT, None, self.name, 0.0, "empty clause")
        encoding = encode_sat(formula)
        warm = encoding.values_from_assignment(hint) if hint is not None else None
        solution = solve(
            encoding.model,
            method="heuristic",
            warm_start=warm,
            deadline=deadline,
            seed=0 if seed is None else seed,
            max_flips=self.max_flips,
            max_restarts=self.max_restarts,
            stop_on_first_feasible=True,
        )
        wall = time.perf_counter() - t0
        if solution.status.has_solution:
            return verified_sat(
                formula, encoding.decode(solution, default=False), self.name, wall
            )
        return SolverOutcome(UNKNOWN, None, self.name, wall, "budget exhausted")


#: Adapter constructors by configuration kind.
ADAPTERS = {
    "cdcl": CDCLAdapter,
    "dpll": DPLLAdapter,
    "walksat": WalkSATAdapter,
    "brute": BruteForceAdapter,
    "ilp-exact": ExactILPAdapter,
    "ilp-heuristic": HeuristicILPAdapter,
}


def build_adapter(kind: str, **params):
    """Instantiate the adapter for a configuration *kind*.

    Raises:
        ReproError: on an unknown kind.
    """
    try:
        cls = ADAPTERS[kind]
    except KeyError:
        raise ReproError(
            f"unknown solver kind {kind!r} (expected one of {sorted(ADAPTERS)})"
        ) from None
    return cls(**params)
