"""Content-addressed caches of solver verdicts.

Keys are formula fingerprints (:mod:`repro.engine.fingerprint`), values
are verdicts: a verified model for satisfiable instances, or a proven
UNSAT marker.  Successive-EC workloads revisit instances constantly —
loosening changes restore earlier formulas, benchmark suites repeat rows,
and production query streams are heavily skewed — so repeated queries
should cost a hash plus an O(clauses) revalidation, never a solver run.

Two implementations sit behind the :class:`CacheBackend` protocol:

* :class:`SolutionCache` (here) — the in-memory LRU, fastest, dies with
  the process;
* :class:`~repro.engine.diskcache.DiskCache` — fingerprint-keyed files
  with atomic writes and an mtime-based LRU sweep, shared across
  processes and daemon restarts.

Select one via :class:`~repro.engine.config.EngineConfig` (``cache=
"memory" | "disk" | "none"``) or inject any object satisfying the
protocol into :class:`~repro.engine.engine.PortfolioEngine`.

Assignments are copied on the way in and out: callers mutate assignments
freely (flips, don't-care recovery) and must not corrupt cached entries.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.cnf.assignment import Assignment


@dataclass
class CacheStats:
    """Counters describing cache effectiveness."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stores: int = 0
    #: I/O failures a persistent backend absorbed (degraded-mode stores
    #: count here, not as exceptions into the solve path).
    errors: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when the cache was never queried)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


@dataclass
class CacheEntry:
    """One cached verdict."""

    fingerprint: str
    satisfiable: bool
    assignment: Assignment | None = None   # a model when satisfiable
    solver: str = ""                       # config that produced it
    hits: int = 0                          # times this entry was served


@runtime_checkable
class CacheBackend(Protocol):
    """What the engine needs from a verdict cache.

    Implementations must copy assignments on ``put`` and hand out copies
    from ``get`` (callers mutate models freely), keep a :class:`CacheStats`
    on ``stats``, and treat a zero/absent capacity as "caching disabled"
    (every ``get`` misses, every ``put`` is a no-op).
    """

    stats: CacheStats

    def get(self, fp: str) -> CacheEntry | None:
        """Look up a verdict by fingerprint (None on a miss)."""
        ...

    def put(
        self,
        fp: str,
        satisfiable: bool,
        assignment: Assignment | None = None,
        solver: str = "",
    ) -> None:
        """Store a verdict."""
        ...

    def invalidate(self, fp: str) -> bool:
        """Drop one entry; returns whether it existed."""
        ...

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        ...

    def info(self) -> dict:
        """Introspection snapshot: ``backend`` name, ``entries`` count,
        (approximate) resident ``bytes``, and lifetime ``evictions``."""
        ...

    def __contains__(self, fp: str) -> bool: ...

    def __len__(self) -> int: ...


@dataclass
class SolutionCache:
    """An LRU mapping ``fingerprint -> CacheEntry``.

    Args:
        max_entries: capacity; the least recently used entry is evicted
            first.  ``0`` disables caching entirely (every get misses).
    """

    max_entries: int = 4096
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: OrderedDict[str, CacheEntry] = field(
        default_factory=OrderedDict, repr=False
    )

    def get(self, fp: str) -> CacheEntry | None:
        """Look up a verdict, refreshing its LRU position on a hit.

        The returned entry carries a *copy* of the cached assignment.
        """
        entry = self._entries.get(fp)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(fp)
        self.stats.hits += 1
        entry.hits += 1
        return CacheEntry(
            fingerprint=entry.fingerprint,
            satisfiable=entry.satisfiable,
            assignment=entry.assignment.copy() if entry.assignment else None,
            solver=entry.solver,
            hits=entry.hits,
        )

    def put(
        self,
        fp: str,
        satisfiable: bool,
        assignment: Assignment | None = None,
        solver: str = "",
    ) -> None:
        """Store a verdict (no-op when capacity is 0)."""
        if self.max_entries <= 0:
            return
        if satisfiable and assignment is None:
            raise ValueError("a satisfiable entry requires a model")
        self._entries[fp] = CacheEntry(
            fingerprint=fp,
            satisfiable=satisfiable,
            assignment=assignment.copy() if assignment else None,
            solver=solver,
        )
        self._entries.move_to_end(fp)
        self.stats.stores += 1
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self, fp: str) -> bool:
        """Drop one entry; returns whether it existed."""
        return self._entries.pop(fp, None) is not None

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._entries.clear()

    def info(self) -> dict:
        """Entry count, approximate resident bytes, and evictions.

        The byte size is an estimate (per-entry object overhead plus
        ~48 bytes per assigned variable for the model's dict slots) —
        good enough to watch a cache grow toward capacity, not an
        allocator-exact audit.
        """
        size = 0
        for fp, entry in self._entries.items():
            size += 120 + len(fp)
            if entry.assignment is not None:
                size += 48 * len(entry.assignment.assigned_variables())
        return {
            "backend": "memory",
            "entries": len(self._entries),
            "bytes": size,
            "evictions": self.stats.evictions,
        }

    def __contains__(self, fp: str) -> bool:
        return fp in self._entries

    def __len__(self) -> int:
        return len(self._entries)
