"""The uniform solver interface every backend adapts to.

The repo grew four independent satisfiability routes (DPLL, WalkSAT,
exhaustive enumeration, and the SAT->set-cover->0-1-ILP encoding solved by
branch and bound or iterative improvement), each with its own calling
convention.  The engine needs to race and cache them interchangeably, so
this module fixes one contract:

* ``solve(formula, *, deadline=None, seed=None, hint=None)`` returns a
  :class:`SolverOutcome`;
* ``deadline`` is a wall-clock budget in **seconds for this call** (not an
  absolute timestamp — budgets survive pickling into worker processes);
* ``seed`` makes any randomized search deterministic; deterministic
  solvers accept and may ignore it;
* ``hint`` is a previous assignment used as a warm start / phase hint;
* a ``sat`` outcome always carries a *verified* model; ``unsat`` may only
  be produced by a complete solver that proved it; everything else
  (budget exhausted, deadline hit, solver error) is ``unknown``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula

#: Outcome status values.
SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


@dataclass(frozen=True)
class SolverOutcome:
    """The result of one solver run under the engine contract.

    Attributes:
        status: ``"sat"`` | ``"unsat"`` | ``"unknown"``.
        assignment: a verified model when ``status == "sat"``, else None.
        solver: name of the configuration that produced the outcome.
        wall_time: seconds spent inside the solver call.
        detail: free-form diagnostics (budget kind, fallback notes, ...).
        stats: optional structured search-effort counters (e.g. CDCL's
            ``propagations``/``conflicts``/``restarts``) — machine-
            readable where ``detail`` is free-form.  Crosses the worker
            process boundary with the outcome, feeds ``EngineStats``
            aggregation and solve-span annotations; ``None`` from
            solvers that do not count anything.
    """

    status: str
    assignment: Assignment | None = None
    solver: str = ""
    wall_time: float = 0.0
    detail: str = ""
    stats: dict | None = None

    @property
    def is_definitive(self) -> bool:
        """True for ``sat``/``unsat`` — an answer the race can stop on."""
        return self.status in (SAT, UNSAT)

    def __post_init__(self):
        if self.status not in (SAT, UNSAT, UNKNOWN):
            raise ValueError(f"invalid solver status {self.status!r}")


@runtime_checkable
class Solver(Protocol):
    """Anything the portfolio can race.

    Implementations must be picklable (they cross a process boundary) and
    deterministic given (formula, seed).

    The call contract, shared by every adapter and relied on by the
    differential test harness:

    * ``deadline`` is a **relative** wall-clock budget in seconds for
      this call, not an absolute timestamp (budgets survive pickling
      into worker processes).  On expiry the solver returns ``unknown``;
      it never raises.  ``None`` means unlimited.
    * ``seed`` makes any randomized choice deterministic: two calls with
      the same (formula, seed) must produce the same outcome.  Complete
      solvers may use it only for diversification (branching order);
      ``None`` selects each solver's legacy default order.
    * ``hint`` is a previous assignment used as a warm start / initial
      phase.  A hint must never change the *verdict*, only how fast a
      model is found; solvers are free to ignore it.
    * ``sat`` outcomes always carry a model verified against the exact
      formula argument; ``unsat`` may only be returned when
      ``complete`` is True (the verdict is a proof); everything else —
      budget exhausted, deadline hit, internal error — is ``unknown``.
    """

    #: Display / telemetry name.
    name: str
    #: Whether an ``unsat`` verdict from this solver is a proof.
    complete: bool

    def solve(
        self,
        formula: CNFFormula,
        *,
        deadline: float | None = None,
        seed: int | None = None,
        hint: Assignment | None = None,
    ) -> SolverOutcome:
        """Solve *formula* within the wall-clock budget ``deadline``."""
        ...


def verified_sat(
    formula,
    assignment: Assignment | None,
    solver: str,
    wall_time: float,
    detail: str = "",
    stats: dict | None = None,
) -> SolverOutcome:
    """Build a ``sat`` outcome, downgrading to ``unknown`` on a bad model.

    Every adapter funnels its satisfiable results through this check so a
    buggy backend can never poison the cache with a non-model.  *formula*
    is anything with ``is_satisfied(assignment)`` — a
    :class:`~repro.cnf.formula.CNFFormula` or a
    :class:`~repro.cnf.packed.PackedCNF` (packed adapters verify against
    the flat arrays without materializing clause objects).
    """
    if assignment is not None and formula.is_satisfied(assignment):
        return SolverOutcome(SAT, assignment, solver, wall_time, detail, stats)
    return SolverOutcome(
        UNKNOWN, None, solver, wall_time,
        detail or "model failed verification", stats,
    )
