"""Incremental EC sessions: classify changes, revalidate, re-solve.

The paper's §5 taxonomy — removing clauses / adding variables *loosens*
an instance, adding clauses / removing variables *tightens* it — becomes
an execution policy here:

* a **loosening-only** :class:`~repro.core.change.ChangeSet` can never
  invalidate the current solution, so the session answers in O(1)
  without touching the cache or launching any solver; a tightening
  batch that happens not to break the solution is caught by an
  O(clauses) revalidation;
* a **tightening** batch goes to the shared engine with the previous
  solution as hint, which both warm-starts the racers and lets the
  engine short-circuit when the change happened not to break the
  solution after all.  Tightening races lead with the clause-learning
  CDCL solver (staggered ahead of chronological DPLL): every added
  clause makes the instance harder, and on the UNSAT-heavy end of a
  change chain learning dominates by orders of magnitude.

Sessions are tenants of the :class:`~repro.service.SolverService`
facade: every engine query goes through
:meth:`~repro.service.service.SolverService.query`, so N sessions share
one pool, one verdict cache, and one single-flight in-flight table —
queries from *different* sessions overlap end-to-end, coalescing only
when their fingerprints collide (the multi-tenant serving model; the
service's session table is where named sessions live).  Each session
carries its own re-entrant lock, so one session's change → resolve
sequence is atomic while its siblings keep running.  The legacy
constructor shapes still work —
``IncrementalSession(f, jobs=1)`` builds a private service, and
``IncrementalSession(f, engine=e)`` wraps a shared engine the session
will *not* close.

The session keeps the running formula, the current solution, and a
history of (regime, source) pairs for inspection.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.core.change import ChangeSet
from repro.engine.engine import PortfolioEngine
from repro.engine.protocol import SAT, UNSAT
from repro.errors import ECError

if TYPE_CHECKING:  # pragma: no cover - typing-only import (cycle guard)
    from repro.service.requests import SolveResponse
    from repro.service.service import SolverService


@dataclass
class SessionStep:
    """One entry of the session history."""

    kind: str          # 'solve' | 'change' | 'resolve'
    regime: str = ""   # 'loosening' | 'tightening' | ''
    source: str = ""   # engine source ('cache', 'revalidation', winner, ...)


class IncrementalSession:
    """Drive successive engineering changes through the service layer.

    Args:
        formula: the original specification.
        engine: a shared :class:`PortfolioEngine` to ride (the session
            wraps it in a service facade and will **not** close it).
        jobs: pool width for the private service created when neither
            ``engine`` nor ``service`` is given.
        service: an existing :class:`~repro.service.SolverService` to
            ride (how the service's own named sessions are built).
    """

    def __init__(
        self,
        formula: CNFFormula,
        engine: PortfolioEngine | None = None,
        *,
        jobs: int | None = None,
        service: "SolverService | None" = None,
    ):
        from repro.service.service import SolverService

        self.formula = formula.copy()
        if service is not None:
            self._service = service
            self._owns_service = False
        elif engine is not None:
            self._service = SolverService(engine=engine)
            # The wrapper is ours, but it does not own the engine, so
            # closing it never tears down the shared pool.
            self._owns_service = True
        else:
            from repro.engine.config import EngineConfig

            self._service = SolverService(EngineConfig(jobs=jobs))
            self._owns_service = True
        self.assignment: Assignment | None = None
        self.history: list[SessionStep] = []
        # Guards this session's own state (formula, current solution,
        # history, pending-regime flags) so threads sharing one session
        # see consistent change → resolve sequences.  Re-entrant because
        # the service layer locks the session around its own calls into
        # these methods.  Engine concurrency is unaffected: the lock is
        # per-session, and the engine path below it takes no service- or
        # engine-wide lock.
        self.lock = threading.RLock()
        # Idempotent-retry memory: the last change_id the service applied
        # to this session and the response it produced, so a retried
        # change (client reconnect after a dropped wire) replays instead
        # of mutating the formula twice.  One slot suffices — the client
        # serializes changes per session and only ever retries the last.
        self.last_change_id: str | None = None
        self.last_change_response = None
        # Same contract for the solve that *opened* this session: the
        # open mutates the session table, so a retried opening solve
        # must replay the recorded response, not hit "already exists".
        self.open_id: str | None = None
        self.open_response = None
        self.revalidations = 0
        self._pending_regime = ""
        # True when some tightening change landed after the last accepted
        # solution; only then can the solution have been invalidated.
        self._tightening_pending = False
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def service(self) -> "SolverService":
        """The service facade this session queries through."""
        return self._service

    @property
    def engine(self) -> PortfolioEngine:
        """The shared engine behind the service (stats, cache access)."""
        return self._service.engine

    @property
    def solver_calls(self) -> int:
        """Solver runs the engine launched (shared across tenants)."""
        return self.engine.stats.solver_calls

    # ------------------------------------------------------------------
    def query(
        self,
        *,
        deadline: float | None = None,
        seed: int | None = None,
        use_cache: bool = True,
        lead: str | None = None,
    ) -> "SolveResponse":
        """Full engine query of the current specification (non-raising).

        The serving-layer primitive: UNSAT/undecided come back as a
        response status.  A satisfiable answer is adopted as the
        session's current solution.  The session's own solution is the
        hint; ``use_cache``/``lead`` forward to the engine.
        """
        with self.lock:
            response = self._service.query(
                self.formula, deadline=deadline, seed=seed,
                hint=self.assignment, use_cache=use_cache, lead=lead,
            )
            if response.status == SAT:
                self.assignment = response.assignment
                self._tightening_pending = False
            self.history.append(SessionStep("solve", source=response.source))
            return response

    def solve(
        self, *, deadline: float | None = None, seed: int | None = None
    ) -> Assignment:
        """Solve the current specification from scratch (cache permitting).

        Raises:
            ECError: when the instance is unsatisfiable or undecided
                within the deadline.
        """
        return self._accept(self.query(deadline=deadline, seed=seed))

    def apply_changes(self, changes: ChangeSet | Iterable) -> str:
        """Install a change batch; returns its regime.

        Returns:
            ``"loosening"`` when no change in the batch can invalidate the
            current solution, else ``"tightening"``.
        """
        if not isinstance(changes, ChangeSet):
            changes = ChangeSet.from_changes(changes)
        with self.lock:
            self.formula = changes.apply_to(self.formula)
            regime = "loosening" if changes.is_loosening_only else "tightening"
            self._pending_regime = regime
            if regime == "tightening":
                self._tightening_pending = True
            self.history.append(SessionStep("change", regime=regime))
            return regime

    def resolve_query(
        self, *, deadline: float | None = None, seed: int | None = None
    ) -> "SolveResponse":
        """Re-solve after :meth:`apply_changes` (non-raising).

        Loosening-only batches are answered by revalidating the current
        solution (no engine contact at all); tightening batches go
        through the service with the previous solution as warm start and
        CDCL promoted to the lead slot.

        Raises:
            ECError: without a starting solution (the §5 policy is
                defined relative to one).
        """
        from repro.service.requests import SolveResponse

        with self.lock:
            return self._resolve_query_locked(
                SolveResponse, deadline=deadline, seed=seed
            )

    def _resolve_query_locked(
        self, SolveResponse, *, deadline: float | None, seed: int | None
    ) -> "SolveResponse":
        if self.assignment is None:
            raise ECError("no starting solution; call solve() first")
        regime = self._pending_regime
        # §5 fast path: loosening changes (clause removal, variable
        # addition) provably keep the solution valid, so an all-loosening
        # chain resolves in O(1) — no check, no fingerprint, no solver.
        # Tightening may or may not have broken the solution; there an
        # O(clauses) revalidation is still far cheaper than any solver.
        survived = not self._tightening_pending or self.formula.is_satisfied(
            self.assignment
        )
        if survived:
            self._tightening_pending = False
            self.revalidations += 1
            self.history.append(
                SessionStep("resolve", regime=regime, source="revalidation")
            )
            self._pending_regime = ""
            return SolveResponse(
                SAT, assignment=self.assignment, source="revalidation",
                regime=regime,
            )
        response = self._service.query(
            self.formula, deadline=deadline, seed=seed, hint=self.assignment,
            lead="cdcl",
        )
        if response.status == SAT:
            # Only a satisfiable answer settles the pending tightening:
            # after an UNSAT/undecided response the stored solution is
            # still suspect, and a later resolve must re-check it rather
            # than serve it as valid.
            self.assignment = response.assignment
            self._tightening_pending = False
            self._pending_regime = ""
        self.history.append(
            SessionStep("resolve", regime=regime, source=response.source)
        )
        return response.with_context(regime=regime)

    def resolve(
        self, *, deadline: float | None = None, seed: int | None = None
    ) -> Assignment:
        """Re-solve after :meth:`apply_changes`.

        Raises:
            ECError: without a starting solution, or when the modified
                instance is unsatisfiable / undecided.
        """
        return self._accept(self.resolve_query(deadline=deadline, seed=seed))

    # ------------------------------------------------------------------
    def _accept(self, response: "SolveResponse") -> Assignment:
        if response.status == SAT:
            return response.assignment
        if response.status == UNSAT:
            raise ECError("instance is unsatisfiable")
        raise ECError(
            "engine could not decide the instance within its budget "
            f"({response.detail or 'no detail'})"
        )

    def close(self) -> None:
        """Release what the session owns (idempotent).

        A private service (and its engine pool) is closed; a shared
        engine or service injected at construction is left running — the
        whole point of multi-tenant sessions is that one tenant leaving
        must not tear down the pool under its siblings.  Calling
        ``close()`` explicitly and then leaving a ``with`` block is safe.
        """
        if self._closed:
            return
        self._closed = True
        if self._owns_service:
            self._service.close()

    def __enter__(self) -> "IncrementalSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
