"""Incremental EC sessions: classify changes, revalidate, re-solve.

The paper's §5 taxonomy — removing clauses / adding variables *loosens*
an instance, adding clauses / removing variables *tightens* it — becomes
an execution policy here:

* a **loosening-only** :class:`~repro.core.change.ChangeSet` can never
  invalidate the current solution, so the session answers in O(1)
  without touching the cache or launching any solver; a tightening
  batch that happens not to break the solution is caught by an
  O(clauses) revalidation;
* a **tightening** batch goes to the :class:`PortfolioEngine` with the
  previous solution as hint, which both warm-starts the racers and lets
  the engine short-circuit when the change happened not to break the
  solution after all.  Tightening races lead with the clause-learning
  CDCL solver (staggered ahead of chronological DPLL): every added
  clause makes the instance harder, and on the UNSAT-heavy end of a
  change chain learning dominates by orders of magnitude.

The session keeps the running formula, the current solution, and a
history of (regime, source) pairs for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.core.change import ChangeSet
from repro.engine.engine import EngineResult, PortfolioEngine
from repro.engine.protocol import SAT, UNSAT
from repro.errors import ECError


@dataclass
class SessionStep:
    """One entry of the session history."""

    kind: str          # 'solve' | 'change' | 'resolve'
    regime: str = ""   # 'loosening' | 'tightening' | ''
    source: str = ""   # engine source ('cache', 'revalidation', winner, ...)


class IncrementalSession:
    """Drive successive engineering changes through the engine.

    Args:
        formula: the original specification.
        engine: a shared :class:`PortfolioEngine` (a private one with the
            given ``jobs`` is created when omitted).
        jobs: forwarded to the private engine when one is created.
    """

    def __init__(
        self,
        formula: CNFFormula,
        engine: PortfolioEngine | None = None,
        *,
        jobs: int | None = None,
    ):
        self.formula = formula.copy()
        self.engine = engine if engine is not None else PortfolioEngine(jobs=jobs)
        self.assignment: Assignment | None = None
        self.history: list[SessionStep] = []
        self.revalidations = 0
        self._pending_regime = ""
        # True when some tightening change landed after the last accepted
        # solution; only then can the solution have been invalidated.
        self._tightening_pending = False

    # ------------------------------------------------------------------
    @property
    def solver_calls(self) -> int:
        """Solver runs the engine launched on this session's behalf."""
        return self.engine.stats.solver_calls

    # ------------------------------------------------------------------
    def solve(
        self, *, deadline: float | None = None, seed: int | None = None
    ) -> Assignment:
        """Solve the current specification from scratch (cache permitting).

        Raises:
            ECError: when the instance is unsatisfiable or undecided
                within the deadline.
        """
        result = self.engine.solve(
            self.formula, deadline=deadline, seed=seed, hint=self.assignment
        )
        self.assignment = self._accept(result)
        self._tightening_pending = False
        self.history.append(SessionStep("solve", source=result.source))
        return self.assignment

    def apply_changes(self, changes: ChangeSet | Iterable) -> str:
        """Install a change batch; returns its regime.

        Returns:
            ``"loosening"`` when no change in the batch can invalidate the
            current solution, else ``"tightening"``.
        """
        if not isinstance(changes, ChangeSet):
            changes = ChangeSet.from_changes(changes)
        self.formula = changes.apply_to(self.formula)
        regime = "loosening" if changes.is_loosening_only else "tightening"
        self._pending_regime = regime
        if regime == "tightening":
            self._tightening_pending = True
        self.history.append(SessionStep("change", regime=regime))
        return regime

    def resolve(
        self, *, deadline: float | None = None, seed: int | None = None
    ) -> Assignment:
        """Re-solve after :meth:`apply_changes`.

        Loosening-only batches are answered by revalidating the current
        solution (no solver launches); tightening batches race the
        portfolio with the previous solution as warm start and CDCL
        promoted to the lead slot.

        Raises:
            ECError: without a starting solution, or when the modified
                instance is unsatisfiable / undecided.
        """
        if self.assignment is None:
            raise ECError("no starting solution; call solve() first")
        # §5 fast path: loosening changes (clause removal, variable
        # addition) provably keep the solution valid, so an all-loosening
        # chain resolves in O(1) — no check, no fingerprint, no solver.
        # Tightening may or may not have broken the solution; there an
        # O(clauses) revalidation is still far cheaper than any solver.
        survived = not self._tightening_pending or self.formula.is_satisfied(
            self.assignment
        )
        if survived:
            self._tightening_pending = False
            self.revalidations += 1
            self.history.append(
                SessionStep(
                    "resolve", regime=self._pending_regime, source="revalidation"
                )
            )
            self._pending_regime = ""
            return self.assignment
        result = self.engine.solve(
            self.formula, deadline=deadline, seed=seed, hint=self.assignment,
            lead="cdcl",
        )
        self.assignment = self._accept(result)
        self._tightening_pending = False
        self.history.append(
            SessionStep("resolve", regime=self._pending_regime, source=result.source)
        )
        self._pending_regime = ""
        return self.assignment

    # ------------------------------------------------------------------
    def _accept(self, result: EngineResult) -> Assignment:
        if result.status == SAT:
            return result.assignment
        if result.status == UNSAT:
            raise ECError("instance is unsatisfiable")
        raise ECError(
            "engine could not decide the instance within its budget "
            f"({result.outcome.detail if result.outcome else 'no detail'})"
        )

    def close(self) -> None:
        """Release the engine's worker pool."""
        self.engine.close()

    def __enter__(self) -> "IncrementalSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
