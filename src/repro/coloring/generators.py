"""Random colorable graphs with a planted proper coloring."""

from __future__ import annotations

import random

import networkx as nx

from repro.cnf.generators import _rng
from repro.errors import ModelError


def random_colorable_graph(
    num_nodes: int,
    num_colors: int,
    num_edges: int,
    rng: int | random.Random | None = 0,
) -> tuple[nx.Graph, dict[int, int]]:
    """Random graph guaranteed k-colorable, plus its planted coloring.

    Nodes are ``0..num_nodes-1``; only non-monochromatic edges (under a
    hidden random coloring) are drawn, mirroring how the DIMACS ``g``
    instances were produced.

    Returns:
        (graph, planted_coloring with colors in 1..num_colors).

    Raises:
        ModelError: if the requested edge count cannot be reached.
    """
    rng = _rng(rng)
    if num_colors < 2:
        raise ModelError("need at least 2 colors to draw any edge")
    coloring = {node: rng.randrange(1, num_colors + 1) for node in range(num_nodes)}
    graph = nx.Graph()
    graph.add_nodes_from(range(num_nodes))
    max_possible = sum(
        1
        for u in range(num_nodes)
        for v in range(u + 1, num_nodes)
        if coloring[u] != coloring[v]
    )
    if num_edges > max_possible:
        raise ModelError(
            f"{num_edges} edges requested but only {max_possible} are "
            f"non-monochromatic under the planted coloring"
        )
    attempts = 0
    while graph.number_of_edges() < num_edges:
        attempts += 1
        if attempts > 200 * num_edges + 1000:
            raise ModelError("edge sampling stalled; lower num_edges")
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u == v or coloring[u] == coloring[v] or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)
    return graph, coloring
