"""Graph-coloring engineering change — the paper's second domain.

§8 of the paper: "In addition to validating the new ILP-based engineering
change approach on SAT benchmarks, we conducted comprehensive
experimentation on the graph coloring problem."  The data lives in the
unpublished tech report [6]; this subpackage rebuilds the domain from the
generic methodology:

* :mod:`repro.coloring.problem` -- k-coloring as a 0-1 ILP;
* :mod:`repro.coloring.generators` -- random colorable graphs;
* :mod:`repro.coloring.ec` -- enabling / fast / preserving EC for
  coloring (edge insertion is the canonical engineering change).
"""

from repro.coloring.problem import GraphColoringProblem
from repro.coloring.generators import random_colorable_graph
from repro.coloring.ec import (
    ColoringECResult,
    coloring_flexibility,
    enable_coloring_ec,
    fast_coloring_ec,
    preserving_coloring_ec,
)

__all__ = [
    "ColoringECResult",
    "GraphColoringProblem",
    "coloring_flexibility",
    "enable_coloring_ec",
    "fast_coloring_ec",
    "preserving_coloring_ec",
    "random_colorable_graph",
]
