"""Graph k-coloring as a 0-1 ILP.

Variables ``x[node, color]`` select a color per node; rows force exactly
one color per node and forbid monochromatic edges.  The decode/verify
helpers keep the EC layers free of index bookkeeping.
"""

from __future__ import annotations

from typing import Hashable, Mapping

import networkx as nx

from repro.errors import ModelError
from repro.ilp.constraint import Sense
from repro.ilp.expr import LinExpr
from repro.ilp.model import ILPModel
from repro.ilp.solution import Solution


def color_var_name(node: Hashable, color: int) -> str:
    """ILP variable name for "node gets color"."""
    return f"col::{node}::{color}"


class GraphColoringProblem:
    """k-colorability of an undirected graph.

    Args:
        graph: any networkx graph (self-loops are rejected — a self-loop
            is never colorable).
        num_colors: the available palette ``1..num_colors``.
    """

    def __init__(self, graph: nx.Graph, num_colors: int):
        if num_colors < 1:
            raise ModelError(f"need at least one color, got {num_colors}")
        loops = list(nx.selfloop_edges(graph))
        if loops:
            raise ModelError(f"graph has self-loops (first: {loops[0]}); uncolorable")
        self.graph = graph
        self.num_colors = num_colors

    @property
    def colors(self) -> range:
        return range(1, self.num_colors + 1)

    # ------------------------------------------------------------------
    def to_ilp(self, exactly_one: bool = True) -> ILPModel:
        """Build the coloring ILP.

        Args:
            exactly_one: use ``== 1`` color rows; with False, ``>= 1``
                (set-cover style, as the paper's SAT translation of the
                ``g`` instances does) — conflict rows then do the pruning.
        """
        model = ILPModel("coloring")
        for node in self.graph.nodes:
            for color in self.colors:
                model.add_binary(color_var_name(node, color))
        for node in self.graph.nodes:
            row = LinExpr.sum(
                model.var(color_var_name(node, color)) for color in self.colors
            )
            if exactly_one:
                model.add_constraint(
                    row.__eq__(1.0), name=f"one_color::{node}"
                )
            else:
                model.add_constraint(row >= 1, name=f"one_color::{node}")
        for u, v in self.graph.edges:
            for color in self.colors:
                model.add_constraint(
                    model.var(color_var_name(u, color))
                    + model.var(color_var_name(v, color))
                    <= 1,
                    name=f"edge::{u}::{v}::{color}",
                )
        # Feasibility problem; a constant-0 objective keeps solvers honest.
        model.set_objective(LinExpr(), sense="min")
        return model

    # ------------------------------------------------------------------
    def decode(self, solution: Solution) -> dict[Hashable, int]:
        """Extract the node -> color mapping from an ILP solution."""
        coloring: dict[Hashable, int] = {}
        for node in self.graph.nodes:
            chosen = [
                color
                for color in self.colors
                if solution.rounded(color_var_name(node, color)) == 1
            ]
            if not chosen:
                raise ModelError(f"node {node!r} received no color")
            coloring[node] = chosen[0]
        return coloring

    def values_from_coloring(
        self, coloring: Mapping[Hashable, int]
    ) -> dict[str, float]:
        """Encode a coloring as ILP values (warm starts)."""
        values: dict[str, float] = {}
        for node in self.graph.nodes:
            for color in self.colors:
                values[color_var_name(node, color)] = float(
                    coloring.get(node) == color
                )
        return values

    def is_proper(self, coloring: Mapping[Hashable, int]) -> bool:
        """True if *coloring* colors every node and no edge is monochromatic."""
        for node in self.graph.nodes:
            color = coloring.get(node)
            if color is None or color not in self.colors:
                return False
        return all(coloring[u] != coloring[v] for u, v in self.graph.edges)

    def conflicted_edges(
        self, coloring: Mapping[Hashable, int]
    ) -> list[tuple[Hashable, Hashable]]:
        """Edges whose endpoints share a color under *coloring*."""
        return [
            (u, v)
            for u, v in self.graph.edges
            if coloring.get(u) is not None and coloring.get(u) == coloring.get(v)
        ]

    def __repr__(self) -> str:
        return (
            f"GraphColoringProblem(nodes={self.graph.number_of_nodes()}, "
            f"edges={self.graph.number_of_edges()}, colors={self.num_colors})"
        )
