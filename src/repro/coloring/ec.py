"""Engineering change for graph coloring.

The canonical coloring EC is *edge insertion* (two modules become
conflicting after a specification change); node insertion/deletion and
edge deletion follow the same loosening/tightening split as SAT:

* deleting edges or adding isolated nodes never invalidates a coloring;
* adding edges or deleting nodes (with reconnection) can.

The three EC components map directly:

* **enabling** — prefer colorings where nodes have *slack*: an alternate
  color not used by any neighbour.  Implemented with an auxiliary
  indicator per (node, spare color) and an objective/constraint on the
  number of flexible nodes, mirroring §5's 2-satisfiability.
* **fast** — after adding edges, re-color only the affected region (the
  conflict endpoints plus neighbours without slack), mirroring Figure 2.
* **preserving** — maximize the number of nodes keeping their old color
  (hard-pin a user-specified set), mirroring §7.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping

import networkx as nx

from repro.cnf.generators import _rng
from repro.coloring.problem import GraphColoringProblem, color_var_name
from repro.errors import ECError
from repro.ilp.expr import LinExpr
from repro.ilp.solution import Solution, SolveStats
from repro.ilp.variable import VarType


def coloring_flexibility(
    problem: GraphColoringProblem, coloring: Mapping[Hashable, int]
) -> float:
    """Fraction of nodes with at least one free alternate color.

    The coloring analogue of the 2-satisfied clause fraction: a node is
    *flexible* when some other color is absent from its neighbourhood, so
    a future conflicting edge at this node can be fixed locally.
    """
    nodes = list(problem.graph.nodes)
    if not nodes:
        return 1.0
    flexible = 0
    for node in nodes:
        neighbour_colors = {coloring[nb] for nb in problem.graph.neighbors(node)}
        spare = [
            c
            for c in problem.colors
            if c != coloring[node] and c not in neighbour_colors
        ]
        if spare:
            flexible += 1
    return flexible / len(nodes)


@dataclass
class ColoringECResult:
    """Outcome of a coloring EC operation."""

    coloring: dict[Hashable, int] | None
    solution: Solution | None = None
    recolored_nodes: tuple[Hashable, ...] = ()
    preserved_fraction: float = 0.0
    flexibility: float = 0.0
    fell_back: bool = False
    stats: SolveStats = field(default_factory=SolveStats)

    @property
    def succeeded(self) -> bool:
        return self.coloring is not None


# ----------------------------------------------------------------------
# enabling
# ----------------------------------------------------------------------
def enable_coloring_ec(
    problem: GraphColoringProblem,
    mode: str = "objective",
    flexibility_weight: float = 1.0,
    min_flexible_fraction: float = 0.0,
    method: str = "exact",
    **solver_options,
) -> ColoringECResult:
    """Solve the coloring so as many nodes as possible have a spare color.

    Args:
        mode: ``'objective'`` rewards flexible nodes; ``'constraints'``
            requires at least ``min_flexible_fraction`` of nodes flexible.
        flexibility_weight: objective weight per flexible node.
        min_flexible_fraction: constraint-mode floor (0..1).

    The ILP adds per (node, color != assigned) an indicator
    ``spare[n, c] <= 1 - x[nb, c]`` for every neighbour ``nb``, and a node
    indicator ``flex[n] <= sum_c spare[n, c]`` — the exact analogue of the
    SAT support variables ``W`` and ``Z``.
    """
    from repro.ilp.solver import solve

    model = problem.to_ilp(exactly_one=True)
    flex_terms = []
    for node in problem.graph.nodes:
        neighbours = list(problem.graph.neighbors(node))
        spares = []
        for color in problem.colors:
            spare = model.add_var(
                f"spare::{node}::{color}", VarType.CONTINUOUS, 0.0, 1.0
            )
            # Spare color must differ from the node's own assignment...
            model.add_constraint(
                spare + model.var(color_var_name(node, color)) <= 1,
                name=f"spare_self::{node}::{color}",
            )
            # ...and be unused by every neighbour.
            for nb in neighbours:
                model.add_constraint(
                    spare + model.var(color_var_name(nb, color)) <= 1,
                    name=f"spare_nb::{node}::{nb}::{color}",
                )
            spares.append(spare)
        flex = model.add_var(f"flex::{node}", VarType.BINARY, 0.0, 1.0)
        model.add_constraint(
            LinExpr.sum(spares) >= flex, name=f"flex::{node}"
        )
        flex_terms.append(flex.to_expr())
    total_flex = LinExpr.sum(flex_terms)
    if mode == "objective":
        model.set_objective(flexibility_weight * total_flex, sense="max")
    elif mode == "constraints":
        floor = min_flexible_fraction * problem.graph.number_of_nodes()
        model.add_constraint(total_flex >= floor, name="flex_floor")
        model.set_objective(total_flex, sense="max")
    else:
        raise ECError(f"mode must be 'objective' or 'constraints', got {mode!r}")

    solution = solve(model, method=method, **solver_options)
    if not solution.status.has_solution:
        return ColoringECResult(None, solution, stats=solution.stats)
    coloring = problem.decode(solution)
    return ColoringECResult(
        coloring,
        solution,
        flexibility=coloring_flexibility(problem, coloring),
        stats=solution.stats,
    )


# ----------------------------------------------------------------------
# fast
# ----------------------------------------------------------------------
def fast_coloring_ec(
    problem: GraphColoringProblem,
    old_coloring: Mapping[Hashable, int],
    method: str = "exact",
    allow_fallback: bool = True,
    **solver_options,
) -> ColoringECResult:
    """Repair a coloring after the graph changed, touching few nodes.

    The affected region is the Figure-2 analogue: endpoints of
    monochromatic edges plus any uncolored nodes.  The region sub-ILP is
    solved with all outside colors frozen; the merge is proper by
    construction (outside-outside edges were proper before the change and
    region-outside edges are constrained explicitly).  When freezing makes
    the sub-ILP infeasible — local repair cannot exist — the full problem
    is re-solved (``allow_fallback``), preserving as a warm start.
    """
    from repro.ilp.solver import solve

    conflicts = problem.conflicted_edges(old_coloring)
    missing = [n for n in problem.graph.nodes if n not in old_coloring]
    if not conflicts and not missing:
        return ColoringECResult(dict(old_coloring), None)

    region: set[Hashable] = set(missing)
    for u, v in conflicts:
        region.add(u)
        region.add(v)

    sub_nodes = sorted(region, key=repr)
    sub_problem = GraphColoringProblem(
        problem.graph.subgraph(region).copy(), problem.num_colors
    )
    model = sub_problem.to_ilp(exactly_one=True)
    # Forbid colors taken by frozen outside neighbours.
    for node in sub_nodes:
        for nb in problem.graph.neighbors(node):
            if nb in region:
                continue
            used = old_coloring.get(nb)
            if used is not None and used in problem.colors:
                model.add_constraint(
                    model.var(color_var_name(node, used)) <= 0,
                    name=f"frozen::{node}::{used}",
                )
    solution = solve(model, method=method, **solver_options)
    if solution.status.has_solution:
        sub_coloring = sub_problem.decode(solution)
        merged = {n: c for n, c in old_coloring.items() if n not in region}
        merged.update(sub_coloring)
        if not problem.is_proper(merged):
            raise ECError("fast coloring EC merged an improper coloring")
        return ColoringECResult(
            merged,
            solution,
            recolored_nodes=tuple(sub_nodes),
            preserved_fraction=_preserved(old_coloring, merged),
            stats=solution.stats,
        )
    if not allow_fallback:
        return ColoringECResult(None, solution, stats=solution.stats)
    full = solve(problem.to_ilp(), method=method, **solver_options)
    if not full.status.has_solution:
        return ColoringECResult(None, full, fell_back=True, stats=full.stats)
    coloring = problem.decode(full)
    return ColoringECResult(
        coloring,
        full,
        recolored_nodes=tuple(problem.graph.nodes),
        preserved_fraction=_preserved(old_coloring, coloring),
        fell_back=True,
        stats=full.stats,
    )


# ----------------------------------------------------------------------
# preserving
# ----------------------------------------------------------------------
def preserving_coloring_ec(
    problem: GraphColoringProblem,
    old_coloring: Mapping[Hashable, int],
    preserve: Iterable[Hashable] = (),
    method: str = "exact",
    **solver_options,
) -> ColoringECResult:
    """Re-color maximizing the number of nodes that keep their color."""
    from repro.ilp.solver import solve

    model = problem.to_ilp(exactly_one=True)
    terms = []
    for node in problem.graph.nodes:
        old = old_coloring.get(node)
        if old is not None and old in problem.colors:
            terms.append(model.var(color_var_name(node, old)).to_expr())
    for node in preserve:
        old = old_coloring.get(node)
        if old is None:
            raise ECError(f"cannot pin node {node!r}: it has no old color")
        model.add_constraint(
            model.var(color_var_name(node, old)).to_expr() >= 1,
            name=f"pin::{node}",
        )
    model.set_objective(LinExpr.sum(terms), sense="max")
    solution = solve(model, method=method, **solver_options)
    if not solution.status.has_solution:
        return ColoringECResult(None, solution, stats=solution.stats)
    coloring = problem.decode(solution)
    return ColoringECResult(
        coloring,
        solution,
        preserved_fraction=_preserved(old_coloring, coloring),
        stats=solution.stats,
    )


def _preserved(
    old: Mapping[Hashable, int], new: Mapping[Hashable, int]
) -> float:
    common = [n for n in new if n in old]
    if not common:
        return 1.0
    return sum(1 for n in common if old[n] == new[n]) / len(common)
