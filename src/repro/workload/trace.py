"""Versioned request-trace format: record real streams, replay them.

A trace is JSONL — one JSON object per line, human-greppable — whose
first line is a format/version header and whose remaining lines each
capture **one request/response pair with timing**::

    {"format": "repro-workload-trace", "version": 1, "meta": {...}}
    {"seq": 0, "at": 0.0012, "wall": 0.0048, "op": "solve",
     "header": {...wire header...}, "payload": "<base64 packed bytes>",
     "response": {...wire response header...}}

The ``header``/``payload``/``response`` fields are exactly the frames of
:mod:`repro.service.wire` (payload base64-armoured so binary packed-CNF
bytes survive JSONL): the trace codec cannot drift from the daemon
protocol because it *is* the daemon protocol, persisted.  Round-tripping
is lossless by construction — :func:`read_trace` hands back byte-equal
payloads and dict-equal headers, and :func:`record_to_event` rebuilds
the typed request records through the same ``*_from_wire`` codecs the
daemon uses.

Three ways traces are produced:

* **server-side** — ``repro serve --record PATH`` installs a
  :class:`TraceRecorder` on the :class:`~repro.service.service.
  SolverService`; every typed op (solve / change / close_session /
  solve_many) is appended after it completes, with its service-side
  wall time;
* **driver-side** — ``repro loadgen --record PATH`` writes the stream
  the load driver executed (works against both in-process services and
  remote daemons);
* **by hand** — any JSONL writer emitting this schema.

``repro replay TRACE`` then re-executes the stream and verifies each
response against the recorded one (status, fingerprint, model).
"""

from __future__ import annotations

import base64
import json
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.service.requests import ChangeRequest, SolveRequest, SolveResponse
from repro.service.wire import (
    batch_request_from_wire,
    batch_request_to_wire,
    change_request_from_wire,
    change_request_to_wire,
    response_to_wire,
    solve_request_from_wire,
    solve_request_to_wire,
)
from repro.workload.scenarios import WorkloadEvent

#: Trace file magic / schema version (bump on incompatible changes).
TRACE_FORMAT = "repro-workload-trace"
TRACE_VERSION = 1


class TraceError(ReproError):
    """A malformed trace file or an unserializable record."""


@dataclass(frozen=True)
class TraceRecord:
    """One recorded request/response pair.

    Attributes:
        seq: zero-based record index (write order).
        at: seconds since trace start when the request completed.
        wall: service-side handling time in seconds.
        op: the wire op (``solve`` / ``change`` / ``close_session`` /
            ``solve_many``).
        header: the request's wire header.
        payload: the request's binary payload (packed CNF bytes).
        response: the response's wire header (``results`` list for
            ``solve_many``).
    """

    seq: int
    at: float
    wall: float
    op: str
    header: dict
    payload: bytes = b""
    response: dict = field(default_factory=dict)


# ----------------------------------------------------------------------
# event <-> wire codecs (shared by the recorder and the replay driver)
# ----------------------------------------------------------------------
def event_to_wire(event: WorkloadEvent) -> tuple[str, dict, bytes]:
    """(op, wire header, payload) for one workload event.

    This is the determinism oracle: two scenario streams are identical
    iff their events serialize to identical (op, header, payload)
    triples.
    """
    if event.kind == "solve":
        header, payload = solve_request_to_wire(event.request)
        return "solve", header, payload
    if event.kind == "change":
        return "change", change_request_to_wire(event.request), b""
    if event.kind == "close_session":
        return (
            "close_session",
            {"op": "close_session", "session": event.session},
            b"",
        )
    if event.kind == "solve_many":
        header, payload = batch_request_to_wire(
            list(event.formulas), **(event.options or {})
        )
        return "solve_many", header, payload
    raise TraceError(f"unserializable event kind {event.kind!r}")


def record_to_event(record: TraceRecord) -> WorkloadEvent:
    """Rebuild the typed workload event a trace record captured."""
    if record.op == "solve":
        return WorkloadEvent(
            "solve",
            request=solve_request_from_wire(record.header, record.payload),
            at=record.at,
        )
    if record.op == "change":
        return WorkloadEvent(
            "change", request=change_request_from_wire(record.header), at=record.at
        )
    if record.op == "close_session":
        return WorkloadEvent(
            "close_session", session=record.header.get("session", ""), at=record.at
        )
    if record.op == "solve_many":
        formulas, options = batch_request_from_wire(record.header, record.payload)
        return WorkloadEvent(
            "solve_many", formulas=tuple(formulas), options=options, at=record.at
        )
    raise TraceError(f"unknown trace op {record.op!r}")


def expected_outcomes(record: TraceRecord) -> list[dict]:
    """The recorded per-response verification tuples for one record.

    Each entry is ``{"status", "fingerprint", "literals"}`` for solve-
    like ops (one for solve/change, one per batch item for solve_many)
    or ``{"existed"}`` for close_session — what a replay must reproduce.
    """
    def outcome(response: dict) -> dict:
        return {
            "status": response.get("status", ""),
            "fingerprint": response.get("fingerprint", ""),
            "literals": (
                tuple(response["literals"])
                if response.get("literals") is not None
                else None
            ),
        }

    if record.op == "close_session":
        return [{"existed": bool(record.response.get("existed", False))}]
    if record.op == "solve_many":
        return [outcome(r) for r in record.response.get("results", [])]
    return [outcome(record.response)]


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------
class TraceRecorder:
    """Append-only, thread-safe trace writer.

    The :class:`~repro.service.service.SolverService` calls the
    ``record_*`` hooks after each typed op completes; the load driver
    calls :meth:`record` directly with pre-serialized frames.  Records
    are flushed per line (a killed daemon loses at most the in-flight
    record), and ``close()`` is idempotent.

    Arrival offsets are measured from the *first record*, not from
    recorder construction — a daemon idle for an hour before its first
    client must not bake an hour of dead air into the trace (open-loop
    replay sleeps those offsets back).

    Args:
        path: trace file to create (truncates an existing file).
        meta: JSON-able context stored in the version line (scenario
            name, daemon config, ...).
    """

    def __init__(self, path: str, *, meta: dict | None = None):
        self.path = str(path)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._lock = threading.Lock()
        self._t0: float | None = None
        self._seq = 0
        self._closed = False
        self._fh.write(
            json.dumps(
                {"format": TRACE_FORMAT, "version": TRACE_VERSION, "meta": meta or {}},
                separators=(",", ":"),
            )
            + "\n"
        )
        self._fh.flush()

    @property
    def count(self) -> int:
        """Records written so far."""
        return self._seq

    def record(
        self,
        op: str,
        header: dict,
        payload: bytes = b"",
        response: dict | None = None,
        wall: float = 0.0,
        at: float | None = None,
    ) -> None:
        """Append one request/response pair (thread-safe)."""
        line: dict = {
            "seq": 0,  # seq and at are patched under the lock
            "at": 0.0,
            "wall": round(wall, 6),
            "op": op,
            "header": header,
        }
        if payload:
            line["payload"] = base64.b64encode(payload).decode("ascii")
        line["response"] = response or {}
        now = time.monotonic()
        with self._lock:
            if self._closed:
                raise TraceError(f"trace recorder {self.path!r} is closed")
            if self._t0 is None:
                self._t0 = now
            line["at"] = round(at if at is not None else now - self._t0, 6)
            line["seq"] = self._seq
            self._seq += 1
            self._fh.write(json.dumps(line, separators=(",", ":")) + "\n")
            self._fh.flush()

    # -- SolverService hooks -------------------------------------------
    def record_solve(
        self, request: SolveRequest, response: SolveResponse, wall: float
    ) -> None:
        header, payload = solve_request_to_wire(request)
        self.record("solve", header, payload, response_to_wire(response), wall)

    def record_change(
        self, request: ChangeRequest, response: SolveResponse, wall: float
    ) -> None:
        self.record(
            "change",
            change_request_to_wire(request),
            b"",
            response_to_wire(response),
            wall,
        )

    def record_close_session(self, name: str, existed: bool, wall: float) -> None:
        self.record(
            "close_session",
            {"op": "close_session", "session": name},
            b"",
            {"ok": True, "existed": existed},
            wall,
        )

    def record_solve_many(
        self,
        formulas: list,
        options: dict,
        responses: list[SolveResponse],
        wall: float,
    ) -> None:
        header, payload = batch_request_to_wire(formulas, **options)
        self.record(
            "solve_many",
            header,
            payload,
            {"ok": True, "results": [response_to_wire(r) for r in responses]},
            wall,
        )

    # ------------------------------------------------------------------
    def flush(self) -> None:
        with self._lock:
            if not self._closed:
                self._fh.flush()

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------
@dataclass
class Trace:
    """A parsed trace: version line plus ordered records."""

    version: int
    meta: dict
    records: list[TraceRecord]

    def events(self) -> list[WorkloadEvent]:
        """The replayable stream (recorded arrival offsets in ``at``)."""
        return [record_to_event(r) for r in self.records]

    def __len__(self) -> int:
        return len(self.records)


def read_trace(path: str) -> Trace:
    """Parse a trace file.

    Raises:
        TraceError: missing/foreign version line, an unsupported
            version, or a malformed record line.
    """
    records: list[TraceRecord] = []
    with open(path, "r", encoding="utf-8") as fh:
        first = fh.readline()
        if not first.strip():
            raise TraceError(f"{path}: empty trace file")
        try:
            head = json.loads(first)
        except json.JSONDecodeError as exc:
            raise TraceError(f"{path}: malformed version line: {exc}") from None
        if not isinstance(head, dict) or head.get("format") != TRACE_FORMAT:
            raise TraceError(f"{path}: not a {TRACE_FORMAT} file")
        version = head.get("version")
        if version != TRACE_VERSION:
            raise TraceError(
                f"{path}: unsupported trace version {version!r} "
                f"(this reader speaks {TRACE_VERSION})"
            )
        for lineno, line in enumerate(fh, start=2):
            if not line.strip():
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"{path}:{lineno}: malformed record: {exc}") from None
            try:
                records.append(
                    TraceRecord(
                        seq=int(obj["seq"]),
                        at=float(obj.get("at", 0.0)),
                        wall=float(obj.get("wall", 0.0)),
                        op=str(obj["op"]),
                        header=obj["header"],
                        payload=(
                            base64.b64decode(obj["payload"])
                            if obj.get("payload")
                            else b""
                        ),
                        response=obj.get("response", {}),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise TraceError(
                    f"{path}:{lineno}: incomplete record ({exc})"
                ) from None
    return Trace(version=version, meta=head.get("meta", {}), records=records)
