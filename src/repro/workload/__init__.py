"""Workload subsystem: scenario generation, trace record/replay, load.

The measurement substrate for every scale direction of the ROADMAP's
north star — before a cache shard, a parallel execution path, or a new
transport can claim a win, it has to move the numbers this package
produces:

* :mod:`repro.workload.scenarios` — seeded, parameterized generators of
  EC *request streams* (not just formulas) over the SAT, graph-coloring,
  and scheduling domains, plus multi-tenant churn;
* :mod:`repro.workload.trace`     — the versioned JSONL-with-packed-
  bytes trace schema, the :class:`TraceRecorder` hook ``repro serve
  --record`` installs on the service, and the lossless reader;
* :mod:`repro.workload.runner`    — the closed/open-loop load driver
  behind ``repro loadgen`` / ``repro replay`` / ``repro bench
  workload``, with byte-level replay verification.
"""

from repro.workload.runner import (
    EventResult,
    LoadReport,
    client_factory,
    coalesce_batches,
    inprocess_factory,
    latency_summary,
    replay_trace,
    run_closed,
    run_events,
    run_open,
    summarize,
    verify_results,
    write_trace_from_run,
)
from repro.workload.scenarios import (
    SCENARIOS,
    WorkloadEvent,
    build_scenario,
)
from repro.workload.trace import (
    TRACE_VERSION,
    Trace,
    TraceError,
    TraceRecord,
    TraceRecorder,
    event_to_wire,
    read_trace,
    record_to_event,
)

__all__ = [
    "EventResult",
    "LoadReport",
    "SCENARIOS",
    "TRACE_VERSION",
    "Trace",
    "TraceError",
    "TraceRecord",
    "TraceRecorder",
    "WorkloadEvent",
    "build_scenario",
    "client_factory",
    "coalesce_batches",
    "event_to_wire",
    "inprocess_factory",
    "latency_summary",
    "read_trace",
    "record_to_event",
    "replay_trace",
    "run_closed",
    "run_events",
    "run_open",
    "summarize",
    "verify_results",
    "write_trace_from_run",
]
