"""Closed/open-loop load driver and trace replay verification.

The runner executes a :class:`~repro.workload.scenarios.WorkloadEvent`
stream against a *target* — an in-process
:class:`~repro.service.service.SolverService` or a ``repro serve``
daemon through :class:`~repro.service.client.ServiceClient` — and
reports throughput, latency percentiles, and the engine/cache counter
deltas the run produced.  Two load models:

* **closed-loop** (:func:`run_closed`) — N workers, each owning one
  connection, issuing its next request the moment the previous answer
  arrives; offered load adapts to service speed (the classic
  benchmarking loop).  Events sharing an ordering ``key`` (a session
  name) are pinned to one worker, so a change can never overtake the
  open that creates its session.
* **open-loop** (:func:`run_open`) — requests are *dispatched on a
  schedule* regardless of completions: a seeded Poisson arrival process
  at ``--rate`` λ, or the trace's own recorded offsets (scaled by
  ``speed``).  Per-key ordering is kept by chaining each event on its
  predecessor's future; the report separates service latency from
  *lateness* (how far behind schedule dispatch fell — the open-loop
  overload signal a closed loop structurally cannot show).

Replay (:func:`replay_trace`) re-executes a recorded trace and verifies
every response against the recorded one — status, fingerprint, and
model literals must match byte-for-byte (``repro replay``'s exit code
rides on it).  With ``batch_segments=True`` consecutive stateless solve
records are coalesced into wire-level ``solve_many`` batches.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.cnf.packed import PackedCNF
from repro.errors import ReproError
from repro.obs.histogram import LatencyHistogram
from repro.service.requests import SolveRequest, SolveResponse
from repro.service.wire import response_to_wire
from repro.workload.scenarios import WorkloadEvent
from repro.workload.trace import (
    Trace,
    TraceRecorder,
    event_to_wire,
    expected_outcomes,
    record_to_event,
)


# ----------------------------------------------------------------------
# targets
# ----------------------------------------------------------------------
class InProcessTarget:
    """Adapter lending a shared :class:`SolverService` to one worker.

    ``close()`` is a no-op: the service outlives the run (its owner
    closes it), while socket targets really do close per-worker
    connections — the runner treats both uniformly.
    """

    def __init__(self, service):
        self._service = service

    def solve(self, request) -> SolveResponse:
        return self._service.solve(request)

    def change(self, request) -> SolveResponse:
        return self._service.change(request)

    def close_session(self, name: str) -> bool:
        return self._service.close_session(name)

    def solve_many(self, formulas, **options) -> list[SolveResponse]:
        return self._service.solve_many(formulas, **options)

    def stats(self) -> dict:
        return self._service.stats()

    def close(self) -> None:
        pass


def inprocess_factory(service):
    """A target factory lending *service* to every worker."""
    return lambda: InProcessTarget(service)


def client_factory(
    address: str,
    *,
    timeout: float | None = 300.0,
    auth_token: str | None = None,
):
    """A target factory opening one daemon connection per worker.

    *address* takes anything :func:`~repro.service.address.parse_address`
    does — a Unix socket path, ``unix://PATH``, or ``tcp://HOST:PORT``
    (a single node or a ``repro route`` front-end); *auth_token* falls
    back to ``$REPRO_AUTH_TOKEN`` inside the client.
    """
    from repro.service.client import ServiceClient

    return lambda: ServiceClient(address, timeout=timeout, auth_token=auth_token)


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
@dataclass
class EventResult:
    """Outcome of one executed workload event."""

    index: int
    kind: str
    ok: bool = True
    error: str = ""
    latency: float = 0.0          # service time (request -> response)
    started: float = 0.0          # offset from run start at dispatch
    due: float | None = None      # open-loop schedule slot (None = closed)
    responses: tuple[SolveResponse, ...] = ()
    existed: bool | None = None   # close_session outcome

    @property
    def lateness(self) -> float:
        """Seconds behind schedule (0 for closed-loop / on-time)."""
        if self.due is None:
            return 0.0
        return max(0.0, self.started - self.due)


def _run_one(
    target, event: WorkloadEvent, index: int, t0: float, due: float | None = None
) -> EventResult:
    """Execute one event, capturing latency and any service error."""
    started = time.perf_counter() - t0
    result = EventResult(index=index, kind=event.kind, started=started, due=due)
    call_t0 = time.perf_counter()
    try:
        if event.kind == "solve":
            result.responses = (target.solve(event.request),)
        elif event.kind == "change":
            result.responses = (target.change(event.request),)
        elif event.kind == "close_session":
            result.existed = target.close_session(event.session)
        elif event.kind == "solve_many":
            result.responses = tuple(
                target.solve_many(list(event.formulas), **(event.options or {}))
            )
        else:  # pragma: no cover - WorkloadEvent validates kinds
            raise ReproError(f"unknown event kind {event.kind!r}")
    except (ReproError, OSError) as exc:
        result.ok = False
        result.error = f"{type(exc).__name__}: {exc}"
    result.latency = time.perf_counter() - call_t0
    return result


def run_closed(
    events: list[WorkloadEvent],
    target_factory,
    *,
    concurrency: int = 1,
) -> tuple[list[EventResult], float]:
    """Closed-loop execution: per-worker back-to-back requests.

    Events are partitioned by ordering key — all events of one session
    land on one worker (in stream order); keyless events round-robin.

    Returns:
        (per-event results in stream order, wall seconds).
    """
    workers = max(1, concurrency)
    assignments: list[list[int]] = [[] for _ in range(workers)]
    key_worker: dict[str, int] = {}
    stateless = 0
    for i, event in enumerate(events):
        key = event.key
        if key is None:
            assignments[stateless % workers].append(i)
            stateless += 1
        else:
            w = key_worker.setdefault(key, len(key_worker) % workers)
            assignments[w].append(i)
    results: list[EventResult | None] = [None] * len(events)
    t0 = time.perf_counter()

    def work(indices: list[int]) -> None:
        try:
            target = target_factory()
        except (ReproError, OSError) as exc:
            # A worker that cannot reach the daemon (dead socket, spent
            # connect budget) fails its share of events, not the run.
            started = time.perf_counter() - t0
            for i in indices:
                results[i] = EventResult(
                    index=i, kind=events[i].kind, ok=False,
                    error=f"{type(exc).__name__}: {exc}", started=started,
                )
            return
        try:
            for i in indices:
                results[i] = _run_one(target, events[i], i, t0)
        finally:
            target.close()

    threads = [
        threading.Thread(target=work, args=(idx,), daemon=True)
        for idx in assignments
        if idx
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = max(time.perf_counter() - t0, 1e-9)
    final = [
        r
        if r is not None
        else EventResult(i, events[i].kind, ok=False, error="worker died")
        for i, r in enumerate(results)
    ]
    return final, wall


def run_open(
    events: list[WorkloadEvent],
    target_factory,
    *,
    rate: float | None = None,
    speed: float = 1.0,
    max_workers: int = 16,
    seed: int = 0,
) -> tuple[list[EventResult], float]:
    """Open-loop execution: dispatch on a schedule, not on completions.

    Args:
        rate: Poisson arrival rate in events/second (seeded, so a rerun
            offers the identical schedule); when None the events' own
            ``at`` offsets are used (recorded traces), divided by
            ``speed``.
        speed: time-compression factor for recorded offsets (2.0 plays
            a trace back twice as fast).
        max_workers: bound on concurrently in-flight requests.

    Per-key ordering is preserved by chaining each event on its
    predecessor's future — a session's change waits for its open even
    if the schedule says otherwise (the wait shows up as lateness).
    """
    if rate is not None and rate <= 0:
        raise ReproError("open-loop rate must be positive")
    if speed <= 0:
        raise ReproError("open-loop speed must be positive")
    dues: list[float] = []
    if rate is not None:
        rng = random.Random(seed)
        t = 0.0
        for _ in events:
            t += rng.expovariate(rate)
            dues.append(t)
    else:
        last = 0.0
        for event in events:
            last = (event.at / speed) if event.at is not None else last
            dues.append(last)
    results: list[EventResult | None] = [None] * len(events)
    local = threading.local()
    made: list = []
    made_lock = threading.Lock()

    def get_target():
        target = getattr(local, "target", None)
        if target is None:
            target = target_factory()
            local.target = target
            with made_lock:
                made.append(target)
        return target

    chains: dict[str, Future] = {}
    t0 = time.perf_counter()
    with ThreadPoolExecutor(
        max_workers=max(1, max_workers), thread_name_prefix="repro-loadgen"
    ) as executor:
        for i, (event, due) in enumerate(zip(events, dues)):
            now = time.perf_counter() - t0
            if due > now:
                time.sleep(due - now)
            predecessor = chains.get(event.key) if event.key is not None else None

            def task(i=i, event=event, due=due, predecessor=predecessor):
                if predecessor is not None:
                    try:
                        predecessor.result()
                    except Exception:  # the dependency's own result records it
                        pass
                try:
                    target = get_target()
                except (ReproError, OSError) as exc:
                    # Connect failure fails this event, not the pool
                    # thread — later events retry the factory fresh.
                    local.target = None
                    results[i] = EventResult(
                        index=i, kind=event.kind, ok=False,
                        error=f"{type(exc).__name__}: {exc}",
                        started=time.perf_counter() - t0, due=due,
                    )
                    return
                results[i] = _run_one(target, event, i, t0, due=due)

            future = executor.submit(task)
            if event.key is not None:
                chains[event.key] = future
    wall = max(time.perf_counter() - t0, 1e-9)
    for target in made:
        target.close()
    final = [
        r
        if r is not None
        else EventResult(i, events[i].kind, ok=False, error="never dispatched")
        for i, r in enumerate(results)
    ]
    return final, wall


def run_events(
    events: list[WorkloadEvent],
    target_factory,
    *,
    mode: str = "closed",
    concurrency: int = 1,
    rate: float | None = None,
    speed: float = 1.0,
    max_workers: int = 16,
    seed: int = 0,
) -> tuple[list[EventResult], float]:
    """Dispatch to :func:`run_closed` / :func:`run_open` by mode."""
    if mode == "closed":
        return run_closed(events, target_factory, concurrency=concurrency)
    if mode == "open":
        return run_open(
            events, target_factory, rate=rate, speed=speed,
            max_workers=max_workers, seed=seed,
        )
    raise ReproError(f"unknown load mode {mode!r} (expected 'closed' or 'open')")


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def percentile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolated percentile of pre-sorted values (q in 0..100)."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = (q / 100.0) * (len(sorted_values) - 1)
    lo = int(position)
    hi = min(lo + 1, len(sorted_values) - 1)
    return sorted_values[lo] + (sorted_values[hi] - sorted_values[lo]) * (position - lo)


def latency_summary(latencies: list[float]) -> dict:
    """mean/p50/p90/p99/max (+ count) of a latency sample, in seconds.

    Backed by the shared log-bucketed histogram
    (:class:`~repro.obs.histogram.LatencyHistogram`): mean and max are
    exact, the percentiles bucket-resolved (within ~7.5% relative), and
    the empty/single-sample edge cases are exact by construction — the
    same math every other observability surface reports.
    """
    return LatencyHistogram.of(latencies).summary()


#: Snapshot leaves that are gauges/ratios/distribution summaries, not
#: monotone counters — subtracting them would report nonsense (a falling
#: cumulative ``hit_rate`` is not a per-run rate, ``entries``/``bytes``
#: shrink under eviction, ``inflight``/``queued``/``sessions`` are
#: instantaneous depths, and histogram summary leaves like ``p99`` are
#: positions, not counts), so they keep their *after* value.
_GAUGE_KEYS = frozenset({
    "hit_rate", "entries", "bytes",
    "inflight", "queued", "sessions",
    "mean", "min", "max", "p50", "p90", "p99",
})


def counters_delta(before: dict, after: dict) -> dict:
    """Numeric difference of two nested counter snapshots.

    Gauge leaves (:data:`_GAUGE_KEYS`) and non-numeric leaves keep their
    *after* value.  A counter missing from *before* starts at 0 — a
    counter born mid-run (the first ``errors`` or ``inflight_joins``
    bump on a fresh registry) must show up in the run's delta, not
    vanish.  Keys only *before* has are dropped — the result is what
    the run itself contributed on a long-lived shared engine.
    """
    out: dict = {}
    for key, after_value in after.items():
        before_value = before.get(key)
        if isinstance(after_value, dict):
            if isinstance(before_value, dict) or before_value is None:
                out[key] = counters_delta(before_value or {}, after_value)
            else:
                out[key] = after_value
        elif key not in _GAUGE_KEYS and isinstance(
            after_value, (int, float)
        ) and not isinstance(after_value, bool) and (
            before_value is None
            or (
                isinstance(before_value, (int, float))
                and not isinstance(before_value, bool)
            )
        ):
            out[key] = after_value - (before_value or 0)
        else:
            out[key] = after_value
    return out


@dataclass
class LoadReport:
    """One run's aggregate outcome (JSON-able via :meth:`to_dict`)."""

    scenario: str
    mode: str
    concurrency: int
    events: int
    errors: int
    wall_time: float
    throughput: float                      # completed events / second
    latency: dict = field(default_factory=dict)
    latency_histogram: dict | None = None  # serialized LatencyHistogram
    lateness: dict | None = None           # open-loop only
    by_kind: dict = field(default_factory=dict)
    statuses: dict = field(default_factory=dict)
    counters: dict | None = None           # engine/cache delta for the run
    mismatches: int = -1                   # replay verification (-1 = not run)
    mismatch_detail: list = field(default_factory=list)
    error_detail: list = field(default_factory=list)

    def to_dict(self) -> dict:
        out = {
            "scenario": self.scenario,
            "mode": self.mode,
            "concurrency": self.concurrency,
            "events": self.events,
            "errors": self.errors,
            "wall_time": self.wall_time,
            "throughput": self.throughput,
            "latency": self.latency,
            "by_kind": self.by_kind,
            "statuses": self.statuses,
        }
        if self.latency_histogram is not None:
            out["latency_histogram"] = self.latency_histogram
        if self.lateness is not None:
            out["lateness"] = self.lateness
        if self.counters is not None:
            out["counters"] = self.counters
        if self.mismatches >= 0:
            out["mismatches"] = self.mismatches
            if self.mismatch_detail:
                out["mismatch_detail"] = self.mismatch_detail
        if self.error_detail:
            out["error_detail"] = self.error_detail
        return out


def summarize(
    results: list[EventResult],
    wall: float,
    *,
    scenario: str = "",
    mode: str = "closed",
    concurrency: int = 1,
    stats_before: dict | None = None,
    stats_after: dict | None = None,
) -> LoadReport:
    """Fold per-event results into a :class:`LoadReport`."""
    ok = [r for r in results if r.ok]
    by_kind: dict[str, int] = {}
    statuses: dict[str, int] = {}
    for r in results:
        by_kind[r.kind] = by_kind.get(r.kind, 0) + 1
        for response in r.responses:
            statuses[response.status] = statuses.get(response.status, 0) + 1
    hist = LatencyHistogram.of(r.latency for r in ok)
    report = LoadReport(
        scenario=scenario,
        mode=mode,
        concurrency=concurrency,
        events=len(results),
        errors=len(results) - len(ok),
        wall_time=wall,
        throughput=len(ok) / wall,
        latency=hist.summary(),
        latency_histogram=hist.to_dict(),
        by_kind=by_kind,
        statuses=statuses,
        error_detail=[
            f"event {r.index} ({r.kind}): {r.error}" for r in results if not r.ok
        ][:10],
    )
    if mode == "open":
        report.lateness = latency_summary([r.lateness for r in ok])
    if stats_before is not None and stats_after is not None:
        report.counters = counters_delta(stats_before, stats_after)
    return report


# ----------------------------------------------------------------------
# replay with verification
# ----------------------------------------------------------------------
def _observed_outcomes(result: EventResult) -> list[dict]:
    """The verification tuples a live run produced (mirror of
    :func:`repro.workload.trace.expected_outcomes`)."""
    if result.kind == "close_session":
        return [{"existed": bool(result.existed)}]
    return [
        {
            "status": r.status,
            "fingerprint": r.fingerprint,
            "literals": (
                tuple(r.assignment.to_literals())
                if r.assignment is not None
                else None
            ),
        }
        for r in result.responses
    ]


def verify_results(
    pairs: list[tuple[WorkloadEvent, list[dict]]],
    results: list[EventResult],
) -> list[str]:
    """Mismatch descriptions between a replay run and its trace."""
    problems: list[str] = []
    for (event, expected), result in zip(pairs, results):
        if not result.ok:
            problems.append(f"event {result.index} ({event.kind}): {result.error}")
            continue
        observed = _observed_outcomes(result)
        if len(observed) != len(expected):
            problems.append(
                f"event {result.index} ({event.kind}): {len(observed)} responses, "
                f"trace recorded {len(expected)}"
            )
            continue
        for j, (got, want) in enumerate(zip(observed, expected)):
            for fkey in want:
                if got.get(fkey) != want[fkey]:
                    problems.append(
                        f"event {result.index} ({event.kind})[{j}]: {fkey} "
                        f"{got.get(fkey)!r} != recorded {want[fkey]!r}"
                    )
    return problems


def _materialize(request: SolveRequest):
    """The formula a stateless solve request carries (None for paths)."""
    if request.formula is not None:
        return request.formula
    if request.packed_bytes is not None:
        return PackedCNF.from_bytes(request.packed_bytes).to_formula()
    return None


def _batchable(event: WorkloadEvent) -> bool:
    """Whether a solve event can fold into a wire-level batch."""
    req = event.request
    return (
        event.kind == "solve"
        and req is not None
        and req.session is None
        and req.strategy == "portfolio"
        and req.hint is None
        and req.dimacs_path is None
        and req.has_source
    )


def coalesce_batches(
    pairs: list[tuple[WorkloadEvent, list[dict]]], min_run: int = 2
) -> list[tuple[WorkloadEvent, list[dict]]]:
    """Fold runs of compatible stateless solves into ``solve_many`` events.

    Consecutive stateless portfolio solves with identical shared options
    become one wire-level batch (their expected outcome lists are
    concatenated, so verification still covers every instance).
    """
    out: list[tuple[WorkloadEvent, list[dict]]] = []
    i = 0
    while i < len(pairs):
        event, expected = pairs[i]
        if not _batchable(event):
            out.append(pairs[i])
            i += 1
            continue
        run = [pairs[i]]
        opts = (
            event.request.deadline, event.request.seed,
            event.request.use_cache, event.request.lead,
        )
        j = i + 1
        while j < len(pairs) and _batchable(pairs[j][0]):
            req = pairs[j][0].request
            if (req.deadline, req.seed, req.use_cache, req.lead) != opts:
                break
            run.append(pairs[j])
            j += 1
        if len(run) < min_run:
            out.append(pairs[i])
            i += 1
            continue
        batched = WorkloadEvent(
            "solve_many",
            formulas=tuple(_materialize(ev.request) for ev, _ in run),
            options={
                "deadline": opts[0], "seed": opts[1],
                "use_cache": opts[2], "lead": opts[3],
            },
            at=event.at,
        )
        out.append((batched, [exp[0] for _, exp in run]))
        i = j
    return out


def replay_trace(
    trace: Trace,
    target_factory,
    *,
    mode: str = "closed",
    concurrency: int = 1,
    rate: float | None = None,
    speed: float = 1.0,
    max_workers: int = 16,
    verify: bool = True,
    batch_segments: bool = False,
    seed: int = 0,
    stats_target=None,
) -> LoadReport:
    """Re-execute a recorded trace and verify it reproduced itself.

    Args:
        trace: a parsed :class:`~repro.workload.trace.Trace`.
        target_factory: per-worker target constructor (see
            :func:`inprocess_factory` / :func:`client_factory`).
        mode/concurrency/rate/speed: load model (closed-loop by default;
            ``mode="open"`` without a rate replays the recorded arrival
            offsets, scaled by ``speed``).
        verify: compare every response against the recorded one.
        batch_segments: coalesce consecutive stateless solves into
            wire-level ``solve_many`` batches (see
            :func:`coalesce_batches`).
        stats_target: optional extra target used to snapshot engine/
            cache counters around the run.
    """
    pairs = [
        (record_to_event(record), expected_outcomes(record))
        for record in trace.records
    ]
    if batch_segments:
        pairs = coalesce_batches(pairs)
    events = [event for event, _ in pairs]
    before = stats_target.stats() if stats_target is not None else None
    results, wall = run_events(
        events, target_factory, mode=mode, concurrency=concurrency,
        rate=rate, speed=speed, max_workers=max_workers, seed=seed,
    )
    after = stats_target.stats() if stats_target is not None else None
    report = summarize(
        results, wall,
        scenario=str(trace.meta.get("scenario", "replay")),
        mode=mode, concurrency=concurrency,
        stats_before=before, stats_after=after,
    )
    if verify:
        problems = verify_results(pairs, results)
        report.mismatches = len(problems)
        report.mismatch_detail = problems[:10]
    return report


# ----------------------------------------------------------------------
# driver-side recording
# ----------------------------------------------------------------------
def write_trace_from_run(
    path: str,
    events: list[WorkloadEvent],
    results: list[EventResult],
    *,
    meta: dict | None = None,
) -> int:
    """Persist an executed stream as a replayable trace.

    Events are written in stream order with each result's latency as the
    recorded wall time and its dispatch offset as the arrival time, so
    an open-loop replay reproduces the run's pacing.  Failed events are
    skipped (a replay could not reproduce them); the count of written
    records is returned.
    """
    written = 0
    with TraceRecorder(path, meta=meta) as recorder:
        for event, result in zip(events, results):
            if not result.ok:
                continue
            op, header, payload = event_to_wire(event)
            if event.kind == "close_session":
                response: dict = {"ok": True, "existed": bool(result.existed)}
            elif event.kind == "solve_many":
                response = {
                    "ok": True,
                    "results": [response_to_wire(r) for r in result.responses],
                }
            else:
                response = response_to_wire(result.responses[0])
            recorder.record(
                op, header, payload, response,
                wall=result.latency, at=result.started,
            )
            written += 1
    return written
