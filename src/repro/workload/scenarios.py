"""Scenario generators: seeded, parameterized EC *request streams*.

The paper's premise is that engineering changes arrive as streams of
small edits against a solved base — yet until this subsystem the repo
could only exercise the engine with hand-rolled DIMACS families.  A
*scenario* here is a deterministic function ``(seed, tenants, changes)
-> list[WorkloadEvent]`` producing the typed requests the
:class:`~repro.service.service.SolverService` facade speaks: session
opens, engineering-change batches, re-queries, stateless solves, and
session closes.  The same stream can be executed in-process, shipped to
a ``repro serve`` daemon, recorded to a trace
(:mod:`repro.workload.trace`), or driven at load
(:mod:`repro.workload.runner`).

Determinism is a contract, not an accident: the same seed must produce a
wire-identical stream (the property suite asserts it via
:func:`repro.workload.trace.event_to_wire`), because traces, replay
verification, and benchmark trajectories all hinge on it.  Every
generator draws from one ``random.Random(seed)`` and never iterates an
unordered container.

Scenarios (all registered in :data:`SCENARIOS`):

``sat-tightening``
    per-tenant planted k-SAT sessions absorbing clause-adding changes
    that stay satisfiable under the planted witness — the hint-
    revalidation / CDCL-lead path of the §5 policy;
``sat-loosening``
    clause removals and fresh variables only — the O(1) revalidation
    fast path, no solver should ever launch after the opening solve;
``sat-mixed``
    interleaved tightening/loosening change sessions with sourceless
    re-queries and occasional ``ec_mode="force"`` full queries;
``coloring-churn``
    graph-coloring sessions (CNF-encoded: one variable per node/color,
    at-least-one per node, conflict clauses per edge) absorbing edge
    insertions (tightening) and deletions (loosening), the paper's
    canonical coloring EC;
``scheduling-precedence``
    time-indexed scheduling sessions (CNF-encoded start-step choices
    with exactly-one, unit-capacity, and precedence-forbidding clauses)
    absorbing precedence-edge insertions consistent with a planted
    schedule;
``tenant-churn``
    multi-tenant session churn — opens/closes, name reuse after close,
    and interleaved *fingerprint-colliding* vs distinct stateless
    solves, stressing the shared cache and the session table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_clause, random_planted_ksat
from repro.core.change import (
    AddClause,
    AddVariable,
    ChangeSet,
    RemoveClause,
)
from repro.errors import ReproError
from repro.service.requests import ChangeRequest, SolveRequest

#: Recognized :class:`WorkloadEvent` kinds (the service's typed ops).
EVENT_KINDS = ("solve", "change", "close_session", "solve_many")


@dataclass(frozen=True)
class WorkloadEvent:
    """One element of a workload stream.

    Attributes:
        kind: one of :data:`EVENT_KINDS`.
        request: the typed record for ``solve`` / ``change`` events.
        session: target session name for ``close_session`` events.
        formulas: the batch for ``solve_many`` events.
        options: shared ``solve_many`` options (deadline/seed/
            use_cache/lead), or None for defaults.
        at: optional open-loop due time (seconds from stream start);
            replayed traces carry the recorded offsets here.
    """

    kind: str
    request: SolveRequest | ChangeRequest | None = None
    session: str | None = None
    formulas: tuple[CNFFormula, ...] = ()
    options: dict | None = None
    at: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r} (expected one of {EVENT_KINDS})"
            )

    @property
    def key(self) -> str | None:
        """Ordering key: events with the same key must run in order.

        Session-scoped events key on the session name (a change must not
        overtake the open that creates its session); stateless events
        are keyless and may run in any interleaving.
        """
        if self.kind == "close_session":
            return self.session
        if self.request is not None:
            return getattr(self.request, "session", None)
        return None


def _interleave(streams: list[list[WorkloadEvent]]) -> list[WorkloadEvent]:
    """Round-robin merge, so tenants genuinely interleave on the wire."""
    out: list[WorkloadEvent] = []
    cursors = [0] * len(streams)
    remaining = sum(len(s) for s in streams)
    while remaining:
        for i, stream in enumerate(streams):
            if cursors[i] < len(stream):
                out.append(stream[cursors[i]])
                cursors[i] += 1
                remaining -= 1
    return out


def _satisfied_clause(
    variables: list[int], witness, rng: random.Random, width: int = 3
) -> Clause:
    """A random clause guaranteed satisfied by the witness (so tightening
    changes never tip a scenario into UNSAT — the paper's trials "make
    sure that we did not make the instance non-satisfiable")."""
    for _ in range(1000):
        cl = random_clause(variables, min(width, len(variables)), rng)
        if cl.is_satisfied(witness):
            return cl
    raise ReproError("could not draw a witness-satisfied clause")  # pragma: no cover


# ----------------------------------------------------------------------
# SAT-domain change sessions
# ----------------------------------------------------------------------
def sat_tightening(
    *, seed: int = 0, tenants: int = 4, changes: int = 6, num_vars: int = 24
) -> list[WorkloadEvent]:
    """Clause-adding change sessions that stay satisfiable."""
    rng = random.Random(seed)
    streams: list[list[WorkloadEvent]] = []
    for t in range(tenants):
        formula, witness = random_planted_ksat(num_vars, 3 * num_vars, rng=rng)
        name = f"sat-tight-{t}"
        variables = list(range(1, num_vars + 1))
        events = [
            WorkloadEvent(
                "solve", request=SolveRequest(formula=formula, session=name, seed=0)
            )
        ]
        for _ in range(changes):
            cl = _satisfied_clause(variables, witness, rng)
            events.append(
                WorkloadEvent(
                    "change",
                    request=ChangeRequest(name, ChangeSet([AddClause(cl)]), seed=0),
                )
            )
        events.append(
            WorkloadEvent("solve", request=SolveRequest(session=name, seed=0))
        )
        events.append(WorkloadEvent("close_session", session=name))
        streams.append(events)
    return _interleave(streams)


def sat_loosening(
    *, seed: int = 0, tenants: int = 4, changes: int = 6, num_vars: int = 24
) -> list[WorkloadEvent]:
    """Clause-removal / variable-addition sessions (O(1) re-solves)."""
    rng = random.Random(seed)
    streams: list[list[WorkloadEvent]] = []
    for t in range(tenants):
        formula, _witness = random_planted_ksat(num_vars, 3 * num_vars, rng=rng)
        name = f"sat-loose-{t}"
        working = formula.copy()
        events = [
            WorkloadEvent(
                "solve", request=SolveRequest(formula=formula, session=name, seed=0)
            )
        ]
        for i in range(changes):
            if i % 3 == 2 or working.num_clauses <= 1:
                cs = ChangeSet([AddVariable()])
            else:
                victim = working.clauses[rng.randrange(working.num_clauses)]
                cs = ChangeSet([RemoveClause(victim)])
            working = cs.apply_to(working)
            events.append(
                WorkloadEvent("change", request=ChangeRequest(name, cs, seed=0))
            )
        events.append(WorkloadEvent("close_session", session=name))
        streams.append(events)
    return _interleave(streams)


def sat_mixed(
    *, seed: int = 0, tenants: int = 4, changes: int = 6, num_vars: int = 24
) -> list[WorkloadEvent]:
    """Mixed tightening/loosening sessions with re-queries and forces."""
    rng = random.Random(seed)
    streams: list[list[WorkloadEvent]] = []
    for t in range(tenants):
        formula, witness = random_planted_ksat(num_vars, 3 * num_vars, rng=rng)
        name = f"sat-mixed-{t}"
        working = formula.copy()
        variables = list(range(1, num_vars + 1))
        events = [
            WorkloadEvent(
                "solve", request=SolveRequest(formula=formula, session=name, seed=0)
            )
        ]
        for i in range(changes):
            if rng.random() < 0.5:
                cs = ChangeSet([AddClause(_satisfied_clause(variables, witness, rng))])
            elif working.num_clauses > 1 and rng.random() < 0.8:
                cs = ChangeSet(
                    [RemoveClause(working.clauses[rng.randrange(working.num_clauses)])]
                )
            else:
                cs = ChangeSet([AddVariable()])
            working = cs.apply_to(working)
            ec_mode = "force" if i % 4 == 3 else "auto"
            events.append(
                WorkloadEvent(
                    "change",
                    request=ChangeRequest(name, cs, seed=0, ec_mode=ec_mode),
                )
            )
            if i % 3 == 1:
                events.append(
                    WorkloadEvent("solve", request=SolveRequest(session=name, seed=0))
                )
        events.append(WorkloadEvent("close_session", session=name))
        streams.append(events)
    return _interleave(streams)


# ----------------------------------------------------------------------
# graph-coloring change sessions (CNF-encoded)
# ----------------------------------------------------------------------
def _color_var(node: int, color: int, num_colors: int) -> int:
    """CNF variable for "node takes color" (colors are 0-based here)."""
    return node * num_colors + color + 1


def _conflict_clauses(u: int, v: int, num_colors: int) -> list[Clause]:
    """One clause per color forbidding a monochromatic edge."""
    return [
        Clause([-_color_var(u, c, num_colors), -_color_var(v, c, num_colors)])
        for c in range(num_colors)
    ]


def coloring_churn(
    *,
    seed: int = 0,
    tenants: int = 4,
    changes: int = 6,
    num_nodes: int = 10,
    num_colors: int = 3,
    num_edges: int = 16,
) -> list[WorkloadEvent]:
    """Edge-insertion/deletion sessions over CNF-encoded colorings.

    Each tenant gets a random k-colorable graph with a planted proper
    coloring; part of the edge set forms the base instance, the rest is
    held out as the insertion pool.  Inserting an edge adds its k
    conflict clauses (tightening — the paper's canonical coloring EC);
    deleting one removes them (loosening).  Because only
    non-monochromatic-under-the-planting edges exist, every step stays
    satisfiable.
    """
    from repro.coloring.generators import random_colorable_graph

    rng = random.Random(seed)
    base_count = max(1, (2 * num_edges) // 3)
    streams: list[list[WorkloadEvent]] = []
    for t in range(tenants):
        graph, _planted = random_colorable_graph(
            num_nodes, num_colors, num_edges, rng=rng
        )
        edges = [tuple(e) for e in graph.edges()]
        base, pool = edges[:base_count], list(edges[base_count:])
        clauses = [
            Clause([_color_var(n, c, num_colors) for c in range(num_colors)])
            for n in range(num_nodes)
        ]
        for u, v in base:
            clauses.extend(_conflict_clauses(u, v, num_colors))
        formula = CNFFormula(clauses, num_vars=num_nodes * num_colors)
        name = f"color-{t}"
        events = [
            WorkloadEvent(
                "solve", request=SolveRequest(formula=formula, session=name, seed=0)
            )
        ]
        present = list(base)
        for i in range(changes):
            if pool and (i % 2 == 0 or len(present) <= 2):
                u, v = pool.pop(0)
                cs = ChangeSet(
                    [AddClause(c) for c in _conflict_clauses(u, v, num_colors)]
                )
                present.append((u, v))
            else:
                u, v = present.pop(rng.randrange(len(present)))
                cs = ChangeSet(
                    [RemoveClause(c) for c in _conflict_clauses(u, v, num_colors)]
                )
            events.append(
                WorkloadEvent("change", request=ChangeRequest(name, cs, seed=0))
            )
        events.append(WorkloadEvent("close_session", session=name))
        streams.append(events)
    return _interleave(streams)


# ----------------------------------------------------------------------
# scheduling change sessions (CNF-encoded)
# ----------------------------------------------------------------------
def _start_var(op: int, step: int, horizon: int) -> int:
    """CNF variable for "operation starts at control step"."""
    return op * horizon + step + 1


def _precedence_clauses(before: int, after: int, horizon: int) -> list[Clause]:
    """Forbid every (start-before >= start-after) step pair."""
    return [
        Clause([-_start_var(before, tb, horizon), -_start_var(after, ta, horizon)])
        for tb in range(horizon)
        for ta in range(horizon)
        if ta <= tb
    ]


def scheduling_precedence(
    *,
    seed: int = 0,
    tenants: int = 4,
    changes: int = 6,
    num_ops: int = 6,
    horizon: int = 6,
) -> list[WorkloadEvent]:
    """Precedence-edge change sessions over CNF-encoded schedules.

    The time-indexed formulation (the paper cites Gebotys & Elmasry for
    this ILP family) as pure CNF: exactly-one start step per operation,
    unit-capacity resource rows as pairwise conflicts, precedence as
    forbidden step pairs.  The planted schedule (operation *i* starts at
    step *i*) stays feasible because precedence edges are only inserted
    from earlier-planted to later-planted operations.
    """
    rng = random.Random(seed)
    streams: list[list[WorkloadEvent]] = []
    for t in range(tenants):
        clauses = [
            Clause([_start_var(o, s, horizon) for s in range(horizon)])
            for o in range(num_ops)
        ]
        for o in range(num_ops):
            for s1 in range(horizon):
                for s2 in range(s1 + 1, horizon):
                    clauses.append(
                        Clause([-_start_var(o, s1, horizon), -_start_var(o, s2, horizon)])
                    )
        # Two unit-capacity resource types, operations alternating.
        for resource in (0, 1):
            ops = [o for o in range(num_ops) if o % 2 == resource]
            for i, a in enumerate(ops):
                for b in ops[i + 1:]:
                    for s in range(horizon):
                        clauses.append(
                            Clause([-_start_var(a, s, horizon), -_start_var(b, s, horizon)])
                        )
        formula = CNFFormula(clauses, num_vars=num_ops * horizon)
        name = f"sched-{t}"
        events = [
            WorkloadEvent(
                "solve", request=SolveRequest(formula=formula, session=name, seed=0)
            )
        ]
        candidates = [
            (a, b) for a in range(num_ops) for b in range(a + 1, num_ops)
        ]
        rng.shuffle(candidates)
        added: list[tuple[int, int]] = []
        for i in range(changes):
            if added and i % 4 == 3:
                a, b = added.pop(rng.randrange(len(added)))
                cs = ChangeSet(
                    [RemoveClause(c) for c in _precedence_clauses(a, b, horizon)]
                )
            elif candidates:
                a, b = candidates.pop(0)
                cs = ChangeSet(
                    [AddClause(c) for c in _precedence_clauses(a, b, horizon)]
                )
                added.append((a, b))
            else:  # pragma: no cover - needs changes > C(num_ops, 2)
                break
            events.append(
                WorkloadEvent("change", request=ChangeRequest(name, cs, seed=0))
            )
        events.append(WorkloadEvent("close_session", session=name))
        streams.append(events)
    return _interleave(streams)


# ----------------------------------------------------------------------
# multi-tenant churn
# ----------------------------------------------------------------------
def tenant_churn(
    *, seed: int = 0, tenants: int = 4, changes: int = 6, num_vars: int = 20
) -> list[WorkloadEvent]:
    """Session churn plus colliding/distinct stateless traffic.

    Tenants open a session over one of two *hot* instances (so their
    opening solves collide on the fp-v2 fingerprint and hit the shared
    cache), apply a few loosening changes, close, then reopen the *same
    name* over a distinct cold instance — the name-reuse path of the
    session table.  Between session events, stateless solves alternate
    between fresh copies of the hot instances (colliding: answered from
    cache) and freshly drawn distinct instances (cold: a real race).
    """
    rng = random.Random(seed)
    hot = [
        random_planted_ksat(num_vars, 3 * num_vars, rng=rng)[0] for _ in range(2)
    ]
    streams: list[list[WorkloadEvent]] = []
    for t in range(tenants):
        name = f"churn-{t}"
        base = hot[t % 2]
        working = base.copy()
        events = [
            WorkloadEvent(
                "solve",
                # A fresh object with identical content: the collision is
                # content-addressed, and concurrent workers must never
                # share one formula's lazily built packed kernel.
                request=SolveRequest(
                    formula=CNFFormula(base.clauses), session=name, seed=0
                ),
            )
        ]
        for i in range(max(1, changes // 2)):
            if i % 2 == 0 and working.num_clauses > 1:
                victim = working.clauses[rng.randrange(working.num_clauses)]
                cs = ChangeSet([RemoveClause(victim)])
            else:
                cs = ChangeSet([AddVariable()])
            working = cs.apply_to(working)
            events.append(
                WorkloadEvent("change", request=ChangeRequest(name, cs, seed=0))
            )
        events.append(WorkloadEvent("close_session", session=name))
        # Name reuse: a new tenant generation over a distinct instance.
        cold, _ = random_planted_ksat(num_vars, 3 * num_vars, rng=rng)
        events.append(
            WorkloadEvent(
                "solve", request=SolveRequest(formula=cold, session=name, seed=0)
            )
        )
        events.append(WorkloadEvent("close_session", session=name))
        # Stateless traffic: colliding (hot) vs distinct (cold) queries.
        for i in range(max(1, changes // 2)):
            if i % 2 == 0:
                stateless = CNFFormula(hot[(t + i) % 2].clauses)
            else:
                stateless, _ = random_planted_ksat(num_vars, 3 * num_vars, rng=rng)
            events.append(
                WorkloadEvent("solve", request=SolveRequest(formula=stateless, seed=0))
            )
        streams.append(events)
    return _interleave(streams)


#: Registry of scenario generators: name -> (seed, tenants, changes) -> stream.
SCENARIOS: dict[str, Callable[..., list[WorkloadEvent]]] = {
    "sat-tightening": sat_tightening,
    "sat-loosening": sat_loosening,
    "sat-mixed": sat_mixed,
    "coloring-churn": coloring_churn,
    "scheduling-precedence": scheduling_precedence,
    "tenant-churn": tenant_churn,
}


def build_scenario(
    name: str, *, seed: int = 0, tenants: int = 4, changes: int = 6
) -> list[WorkloadEvent]:
    """Build a named scenario stream (see :data:`SCENARIOS`).

    Raises:
        ReproError: unknown scenario name.
    """
    try:
        generator = SCENARIOS[name]
    except KeyError:
        raise ReproError(
            f"unknown scenario {name!r} (expected one of {sorted(SCENARIOS)})"
        ) from None
    return generator(seed=seed, tenants=tenants, changes=changes)
