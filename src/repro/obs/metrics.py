"""Live metrics: a narrow-lock registry, frame diffing, and the monitor.

The engine's :class:`~repro.engine.engine.EngineStats` counters are
merged under the engine's narrow stats lock — consistent, but a live
reader should not touch engine internals at all.  The observability
layer instead has the hot paths publish **per-query deltas** into a
:class:`MetricsRegistry` guarded by its own narrow lock (one
acquisition per query, dict adds inside), so samplers and ``stats``
readers never contend with solving — including the concurrent
distinct-fingerprint races the engine runs since PR 7.

Three layers stack on the registry:

* :class:`MetricsRegistry` — monotone counters, gauges, per-key counter
  families (per-session usage), and named
  :class:`~repro.obs.histogram.LatencyHistogram` s;
* :class:`FrameTracker`   — turns the registry's monotone state into
  per-interval *frames* (rps, hit rate, interval latency percentiles)
  by diffing successive snapshots — each ``repro stats --watch``
  subscriber owns one, so subscribers at different intervals don't
  fight over a shared cursor;
* :class:`StatsMonitor`   — the daemon's background sampler: one frame
  per second into an rrd-style :class:`~repro.obs.timeseries.RingSeries`,
  plus the one-shot frame (windowed rates over the recent past) behind
  ``repro stats --json``.
"""

from __future__ import annotations

import threading
import time

from repro.obs.histogram import LatencyHistogram
from repro.obs.timeseries import RingSeries

#: The engine/service counters a frame reports as per-interval deltas.
FRAME_COUNTERS = (
    "requests",
    "solves",
    "cache_hits",
    "revalidations",
    "races",
    "solver_calls",
    "batch_dedups",
    "inflight_joins",
    "errors",
    # CDCL search-effort counters (mirrored from EngineStats deltas):
    # where solver time went, not how many queries were answered.
    "propagations",
    "conflicts",
    "restarts",
)

#: The histogram every solve latency lands in.
LATENCY_HISTOGRAM = "solve_latency"


class MetricsRegistry:
    """Thread-safe named counters, gauges, families, and histograms.

    Every mutator takes the one internal lock exactly once; the hot-path
    entry point is :meth:`bump`, which applies a whole query's worth of
    deltas in a single acquisition.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._families: dict[str, dict[str, float]] = {}
        self._histograms: dict[str, LatencyHistogram] = {}

    # ------------------------------------------------------------------
    # writers
    # ------------------------------------------------------------------
    def bump(
        self,
        counts: dict | None = None,
        observe: dict | None = None,
        families: dict | None = None,
    ) -> None:
        """Apply one query's deltas atomically.

        Args:
            counts: ``{counter: delta}`` monotone increments.
            observe: ``{histogram: value}`` latency observations.
            families: ``{family: {key: delta}}`` per-key increments
                (e.g. per-session request counts).
        """
        with self._lock:
            if counts:
                for name, n in counts.items():
                    self._counters[name] = self._counters.get(name, 0) + n
            if observe:
                for name, value in observe.items():
                    hist = self._histograms.get(name)
                    if hist is None:
                        hist = self._histograms[name] = LatencyHistogram()
                    hist.record(value)
            if families:
                for family, keyed in families.items():
                    bucket = self._families.setdefault(family, {})
                    for key, n in keyed.items():
                        bucket[key] = bucket.get(key, 0) + n

    def inc(self, name: str, n: float = 1) -> None:
        """Increment one counter."""
        self.bump(counts={name: n})

    def observe(self, name: str, value: float) -> None:
        """Record one value into a named histogram."""
        self.bump(observe={name: value})

    def set_gauge(self, name: str, value: float) -> None:
        """Set a gauge to an absolute value."""
        with self._lock:
            self._gauges[name] = float(value)

    def adjust_gauge(self, name: str, delta: float) -> None:
        """Move a gauge by a delta (in-flight/queue-depth tracking)."""
        with self._lock:
            self._gauges[name] = self._gauges.get(name, 0.0) + delta

    # ------------------------------------------------------------------
    # readers
    # ------------------------------------------------------------------
    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> float:
        with self._lock:
            return self._gauges.get(name, 0.0)

    def histogram(self, name: str) -> LatencyHistogram:
        """An independent snapshot of a named histogram (empty if the
        name was never observed)."""
        with self._lock:
            hist = self._histograms.get(name)
            return hist.copy() if hist is not None else LatencyHistogram()

    def raw(self) -> tuple[dict, dict, dict]:
        """(counters, gauges, histogram snapshots) — the diffing feed."""
        with self._lock:
            return (
                dict(self._counters),
                dict(self._gauges),
                {name: h.copy() for name, h in self._histograms.items()},
            )

    def snapshot(self) -> dict:
        """One JSON-able view of everything (histograms as summaries)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "families": {f: dict(k) for f, k in self._families.items()},
                "histograms": {
                    name: h.summary() for name, h in self._histograms.items()
                },
            }


class FrameTracker:
    """Successive-snapshot diffing of one registry into metric frames.

    Each tracker owns its own previous-snapshot cursor, so any number of
    subscribers can watch one registry at independent intervals.
    """

    def __init__(self, registry: MetricsRegistry, *, t0: float | None = None):
        self.registry = registry
        self._t0 = t0 if t0 is not None else time.monotonic()
        self._prev_t = time.monotonic()
        counters, _gauges, hists = registry.raw()
        self._prev_counters = counters
        self._prev_hist = hists.get(LATENCY_HISTOGRAM, LatencyHistogram())

    def frame(self) -> dict:
        """One per-interval frame since the previous call (or birth)."""
        now = time.monotonic()
        counters, gauges, hists = self.registry.raw()
        dt = max(now - self._prev_t, 1e-9)
        deltas = {
            name: counters.get(name, 0) - self._prev_counters.get(name, 0)
            for name in FRAME_COUNTERS
        }
        hist = hists.get(LATENCY_HISTOGRAM, LatencyHistogram())
        interval_hist = hist.diff(self._prev_hist)
        self._prev_t = now
        self._prev_counters = counters
        self._prev_hist = hist
        return build_frame(
            deltas, gauges, interval_hist,
            interval=dt, uptime=now - self._t0, totals=counters,
        )


def hit_rate(deltas: dict) -> float:
    """Solver-work avoided per solve: (hits + revalidations + batch
    dedups + in-flight joins) / solves over a window (0.0 on an idle
    window)."""
    solves = deltas.get("solves", 0)
    if solves <= 0:
        return 0.0
    avoided = (
        deltas.get("cache_hits", 0)
        + deltas.get("revalidations", 0)
        + deltas.get("batch_dedups", 0)
        + deltas.get("inflight_joins", 0)
    )
    return min(1.0, avoided / solves)


def build_frame(
    deltas: dict,
    gauges: dict,
    latency: LatencyHistogram,
    *,
    interval: float,
    uptime: float,
    totals: dict | None = None,
) -> dict:
    """Assemble the wire-facing frame dict all surfaces share."""
    frame = {
        "ts": time.time(),
        "uptime": uptime,
        "interval": interval,
        "rps": deltas.get("requests", 0) / max(interval, 1e-9),
        "hit_rate": hit_rate(deltas),
        **{name: deltas.get(name, 0) for name in FRAME_COUNTERS},
        "inflight": gauges.get("inflight", 0),
        "queued": gauges.get("queued", 0),
        "sessions": gauges.get("sessions", 0),
        "latency": latency.summary(),
    }
    if totals is not None:
        frame["totals"] = dict(totals)
    return frame


class StatsMonitor:
    """The daemon's per-second sampler over one registry.

    Runs a background thread writing one :class:`RingSeries` row per
    ``interval`` (best-effort: a stalled host skips slots rather than
    backfilling), and answers the one-shot frame with *windowed* rates —
    a ``repro stats`` call right after a load burst still reports the
    burst's rps instead of the idle instant's zero.
    """

    FIELDS = (
        "requests", "solves", "cache_hits", "revalidations", "races",
        "solver_calls", "batch_dedups", "inflight_joins", "errors",
        "propagations", "conflicts", "restarts",
        "inflight", "queued", "sessions", "p50", "p99",
    )

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        interval: float = 1.0,
        slots: int = 300,
    ):
        if interval <= 0:
            raise ValueError("monitor interval must be positive")
        self.registry = registry
        self.interval = float(interval)
        self.series = RingSeries(self.FIELDS, slots=slots, step=self.interval)
        self._tracker = FrameTracker(registry)
        #: Monitor birth (monotonic) — the uptime epoch every frame and
        #: watch subscriber reports against.
        self.t0 = time.monotonic()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the sampling thread (idempotent)."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-stats-monitor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop and join the sampling thread (idempotent)."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    def sample(self) -> dict:
        """Take one sample row now (the thread's tick; callable directly
        from tests for clock-independent coverage)."""
        frame = self._tracker.frame()
        row = {f: frame.get(f, 0) for f in self.FIELDS if f not in ("p50", "p99")}
        row["p50"] = frame["latency"]["p50"]
        row["p99"] = frame["latency"]["p99"]
        self.series.put(time.time(), row)
        return frame

    # ------------------------------------------------------------------
    def snapshot_frame(self, *, window: float | None = 60.0, recent: int = 0) -> dict:
        """The one-shot frame: windowed rates + lifetime aggregates.

        Args:
            window: trailing seconds of ring history folded into the
                rates (None = the whole ring).
            recent: include this many raw per-second rows under
                ``"series"`` (0 = omit; the CLI's sparkline feed).
        """
        totals = self.series.totals(window)
        span = max(totals.get("span", 0.0), self.interval)
        deltas = {name: totals.get(name, 0) for name in FRAME_COUNTERS}
        _counters, gauges, hists = self.registry.raw()
        lifetime = hists.get(LATENCY_HISTOGRAM, LatencyHistogram())
        frame = build_frame(
            deltas, gauges, lifetime,
            interval=span, uptime=time.monotonic() - self.t0,
            totals=_counters,
        )
        frame["window"] = span
        frame["latency_histogram"] = lifetime.to_dict()
        if recent:
            frame["series"] = self.series.rows(last=recent)
        return frame
