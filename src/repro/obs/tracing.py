"""End-to-end distributed tracing for the serving stack.

PR 6's metrics layer shows *that* p99 is high; this module says *where*
a slow request spent its time once it crossed the client -> router ->
node -> pool-worker boundary.  The design is W3C-trace-context shaped,
shrunk to what the frame protocol needs:

* a :class:`TraceContext` — ``trace_id`` (32 hex), ``span_id`` (16 hex),
  and a sampled flag — rides the wire as one optional ``"trace"`` key in
  the frame header (old peers ignore it; old frames parse unchanged);
* every hop opens a :class:`Span` as a *child* of the incoming context
  and re-parents downstream work on itself: the client's root span, the
  router's ``router.forward`` hop, the daemon's ``daemon.<op>``, the
  engine's cache/race stages, and a synthesized ``solve`` span carrying
  the winning racer's CDCL counters (workers don't ship spans back —
  the parent reconstructs the solve from the outcome's wall time);
* finished spans land in a fixed-memory ring plus an optional JSONL
  sink whose records follow the daemon forensics-log convention —
  ``mono`` (monotonic), ``ts`` (wall), ``event: "span"`` — so trace
  records can share a file with op records and still be filtered out
  and joined on ``trace_id``, ordered by ``mono``.

**Sampling** decides at the root (the client, or the first traced hop
for untraced incoming requests): an unsampled request simply carries no
``"trace"`` key, and every downstream fast path is one global read plus
one contextvar read — zero allocation, no measurable overhead at
``--trace-sample 0``.

**Propagation** inside one process is a :data:`contextvars.ContextVar`:
daemon dispatch runs the whole service -> engine -> portfolio parent
path synchronously on the connection's handler thread, so activating
the daemon span's context around dispatch parents every engine stage
correctly without threading an argument through ten signatures.

The process-global :func:`install`/:func:`get_tracer` pair mirrors the
:mod:`repro.faults` idiom — one tracer per process, installed by the
daemon (``repro serve --trace-log``) or a test, cleared with
``install(None)``.

Reconstruction (the ``repro trace`` CLI) is file-based on purpose:
every participant appends spans to its own log, and
:func:`load_spans` + :func:`format_trace` join them on ``trace_id``
after the fact — the centralized-fusion framing of PAPERS.md's hard
decision fusion line: local observations become decision-grade once
fused at a coordinator.
"""

from __future__ import annotations

import contextvars
import json
import os
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "adopted",
    "ctx_from_wire",
    "ctx_to_wire",
    "current",
    "format_trace",
    "get_tracer",
    "group_traces",
    "install",
    "load_spans",
    "stage",
    "trace_tree",
]


# ----------------------------------------------------------------------
# context + wire form
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceContext:
    """One position in a trace: (trace_id, span_id, sampled).

    ``sampled`` is propagation state, not a wire field: an unsampled
    request never ships a context at all, so everything arriving off the
    wire is sampled by construction.
    """

    trace_id: str
    span_id: str
    sampled: bool = True


def new_trace_id() -> str:
    """A fresh 128-bit trace id (32 hex chars)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id (16 hex chars)."""
    return os.urandom(8).hex()


def ctx_to_wire(ctx: TraceContext) -> dict:
    """The compact header form of a context (the ``"trace"`` key)."""
    return {"tid": ctx.trace_id, "sid": ctx.span_id}


def ctx_from_wire(obj) -> TraceContext | None:
    """Parse a header's ``"trace"`` value; tolerant by contract.

    Anything that is not a well-formed context dict — missing key (old
    clients), wrong type, garbage ids — yields ``None``, never an
    exception: a malformed trace annotation must not fail the request
    it annotates.
    """
    if not isinstance(obj, dict):
        return None
    tid = obj.get("tid")
    sid = obj.get("sid")
    if not isinstance(tid, str) or not isinstance(sid, str) or not tid or not sid:
        return None
    return TraceContext(tid, sid, True)


@dataclass
class Span:
    """One in-progress span (finished spans live as plain dict records)."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    service: str
    start: float                       # time.monotonic() at begin
    ts: float                          # wall clock at begin
    tags: dict = field(default_factory=dict)

    @property
    def context(self) -> TraceContext:
        """The context downstream work should parent on."""
        return TraceContext(self.trace_id, self.span_id, True)


# ----------------------------------------------------------------------
# the tracer
# ----------------------------------------------------------------------
class Tracer:
    """Span factory + sink for one process (or one logical participant).

    Args:
        service: participant label stamped on every span (``client``,
            ``router``, a node address) — the waterfall's ``svc`` column.
        sample: root sampling probability in [0, 1].  Only *root*
            decisions consult it; a request arriving with a context is
            already sampled and is always continued.
        log_path: append one JSONL record per finished span (``repro
            serve --trace-log``); ``None`` keeps spans in the ring only.
        ring: fixed-memory bound on retained finished spans.
    """

    def __init__(
        self,
        service: str = "repro",
        *,
        sample: float = 1.0,
        log_path: str | None = None,
        ring: int = 512,
    ):
        self.service = str(service)
        self.sample = min(1.0, max(0.0, float(sample)))
        self.log_path = log_path
        self.ring: deque = deque(maxlen=max(1, int(ring)))
        self._lock = threading.Lock()
        #: Spans emitted over this tracer's lifetime (cheap smoke-test
        #: signal that sampling/propagation actually fired).
        self.emitted = 0

    # ------------------------------------------------------------------
    def maybe_trace(self) -> bool:
        """One root sampling decision."""
        if self.sample <= 0.0:
            return False
        if self.sample >= 1.0:
            return True
        return random.random() < self.sample

    def begin(
        self, name: str, parent: TraceContext | None = None, **tags
    ) -> Span:
        """Open a span — a child of *parent*, or a fresh trace root."""
        return Span(
            trace_id=parent.trace_id if parent is not None else new_trace_id(),
            span_id=new_span_id(),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            service=self.service,
            start=time.monotonic(),
            ts=time.time(),
            tags={k: v for k, v in tags.items() if v is not None},
        )

    def finish(self, span: Span, **tags) -> dict:
        """Close a span (duration = now - begin) and emit its record."""
        for key, value in tags.items():
            if value is not None:
                span.tags[key] = value
        return self._emit(span, max(0.0, time.monotonic() - span.start))

    def record(
        self,
        name: str,
        *,
        parent: TraceContext,
        duration: float,
        start: float | None = None,
        tags: dict | None = None,
    ) -> dict:
        """Emit a *synthetic* span with an externally measured duration.

        Pool workers do not ship spans back across the process boundary;
        the parent reconstructs the ``solve`` span from the winning
        outcome's ``wall_time`` (and the ``pool.wait`` span from its own
        clock) and records it here, parented on the active race stage.
        """
        duration = max(0.0, float(duration))
        now = time.monotonic()
        span = Span(
            trace_id=parent.trace_id,
            span_id=new_span_id(),
            parent_id=parent.span_id,
            name=name,
            service=self.service,
            start=now - duration if start is None else start,
            ts=time.time() - duration,
            tags={k: v for k, v in (tags or {}).items() if v is not None},
        )
        return self._emit(span, duration)

    def _emit(self, span: Span, duration: float) -> dict:
        record = {
            "mono": round(time.monotonic(), 6),
            "ts": round(span.ts, 3),
            "event": "span",
            "trace": span.trace_id,
            "span": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "svc": span.service,
            "start": round(span.start, 6),
            "dur": round(duration, 6),
        }
        if span.tags:
            record["tags"] = span.tags
        line = None
        if self.log_path is not None:
            line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            self.ring.append(record)
            self.emitted += 1
            if line is not None:
                with open(self.log_path, "a", encoding="utf-8") as fh:
                    fh.write(line + "\n")
        return record

    def spans(self) -> list[dict]:
        """A copy of the retained finished-span records (ring order)."""
        with self._lock:
            return list(self.ring)

    def span(self, name: str, parent: TraceContext | None = None, **tags):
        """Context manager: open, activate, and finish one span."""
        return _Stage(self, name, parent, tags)


# ----------------------------------------------------------------------
# process-global tracer + contextvar propagation (the faults idiom)
# ----------------------------------------------------------------------
_CURRENT: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_trace_context", default=None
)
_TRACER: Tracer | None = None


def install(tracer: Tracer | None) -> None:
    """Install (or clear, with ``None``) the process-global tracer."""
    global _TRACER
    _TRACER = tracer


def get_tracer() -> Tracer | None:
    """The process-global tracer, if any."""
    return _TRACER


def current() -> TraceContext | None:
    """The active trace context on this thread, if any."""
    return _CURRENT.get()


def active() -> tuple[Tracer | None, TraceContext | None]:
    """(tracer, context) when both exist and the context is sampled,
    else ``(None, None)`` — the one check instrumented code makes."""
    tracer = _TRACER
    if tracer is None:
        return None, None
    ctx = _CURRENT.get()
    if ctx is None or not ctx.sampled:
        return None, None
    return tracer, ctx


class _NullStage:
    """The disabled fast path: no span, no allocation, no contextvar set."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_STAGE = _NullStage()


class _Stage:
    """A live stage: child span of *parent*, activated for the block."""

    __slots__ = ("_tracer", "span", "_token")

    def __init__(self, tracer: Tracer, name: str, parent, tags: dict):
        self._tracer = tracer
        self.span = tracer.begin(name, parent, **tags)
        self._token = None

    def __enter__(self) -> Span:
        self._token = _CURRENT.set(self.span.context)
        return self.span

    def __exit__(self, etype, exc, tb):
        _CURRENT.reset(self._token)
        if exc is not None:
            self.span.tags.setdefault("error", repr(exc))
        self._tracer.finish(self.span)
        return False


def stage(name: str, **tags):
    """A child span of the active context, active within the block.

    The engine/portfolio instrumentation point: ``with
    tracing.stage("cache.lookup") as sp: ...`` yields the live
    :class:`Span` (annotate via ``sp.tags``) when a tracer is installed
    *and* a sampled context is active, else yields ``None`` through a
    shared no-op — the sample-rate-0 path costs one global read and one
    contextvar read.
    """
    tracer = _TRACER
    if tracer is None:
        return _NULL_STAGE
    ctx = _CURRENT.get()
    if ctx is None or not ctx.sampled:
        return _NULL_STAGE
    return _Stage(tracer, name, ctx, tags)


class _Activation:
    __slots__ = ("_ctx", "_token")

    def __init__(self, ctx: TraceContext):
        self._ctx = ctx
        self._token = None

    def __enter__(self) -> TraceContext:
        self._token = _CURRENT.set(self._ctx)
        return self._ctx

    def __exit__(self, *exc):
        _CURRENT.reset(self._token)
        return False


def activated(ctx: TraceContext | None):
    """Activate *ctx* for the block (no-op on ``None``) — the daemon's
    around-dispatch hook, run whether or not its own span was opened."""
    if ctx is None:
        return _NULL_STAGE
    return _Activation(ctx)


def adopted(trace_field) -> "_Activation | _NullStage":
    """Adopt a request record's ``trace`` dict for the block — but only
    when nothing is active yet.

    The in-process path: a :class:`~repro.service.requests.SolveRequest`
    built directly (no daemon) may carry a context; over the wire the
    daemon has already activated its own ``daemon.<op>`` span, which
    must stay the parent — adopting the client's context there would
    flatten the tree.
    """
    if _TRACER is None or _CURRENT.get() is not None:
        return _NULL_STAGE
    ctx = ctx_from_wire(trace_field)
    if ctx is None:
        return _NULL_STAGE
    return _Activation(ctx)


# ----------------------------------------------------------------------
# reconstruction: join per-participant logs into trace trees
# ----------------------------------------------------------------------
def load_spans(paths) -> list[dict]:
    """Read span records out of one or more JSONL logs.

    Non-JSON lines and non-span records (daemon op logs sharing the
    file) are skipped silently — the logs are a forensics mixtape, not a
    schema-checked database.
    """
    spans: list[dict] = []
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            continue
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except (ValueError, UnicodeDecodeError):
                continue
            if (
                isinstance(record, dict)
                and record.get("event") == "span"
                and isinstance(record.get("trace"), str)
                and isinstance(record.get("span"), str)
            ):
                spans.append(record)
    return spans


def group_traces(spans: list[dict]) -> dict[str, list[dict]]:
    """Bucket spans by ``trace_id``, each bucket ordered by ``mono``.

    ``mono`` is CLOCK_MONOTONIC — comparable across processes on one
    host, not across hosts; the tree structure below never depends on
    it, only the within-host ordering does.
    """
    traces: dict[str, list[dict]] = {}
    for span in spans:
        traces.setdefault(span["trace"], []).append(span)
    for bucket in traces.values():
        bucket.sort(key=lambda s: (s.get("mono") or 0.0, s.get("start") or 0.0))
    return traces


def trace_tree(
    spans: list[dict],
) -> tuple[list[dict], dict[str, list[dict]]]:
    """(roots, children-by-span-id) for one trace's spans.

    Spans whose parent never made it into any log (sampled-out hop, a
    node whose log was not passed in) surface as extra roots instead of
    vanishing — partial evidence beats silent loss.
    """
    by_id = {s["span"]: s for s in spans}
    children: dict[str, list[dict]] = {}
    roots: list[dict] = []
    for span in spans:
        parent = span.get("parent")
        if parent and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    for bucket in children.values():
        bucket.sort(key=lambda s: s.get("start") or 0.0)
    roots.sort(key=lambda s: s.get("start") or 0.0)
    return roots, children


def _offset(span: dict, parent: dict, parent_offset: float) -> float:
    """Waterfall offset of *span* relative to the trace root.

    Same-host spans offset by their true monotonic delta; a span whose
    clock is clearly from another host (negative delta, or a start past
    the parent's whole window) is centered inside its parent instead —
    printed durations stay authoritative either way.
    """
    p_start = parent.get("start")
    s_start = span.get("start")
    p_dur = float(parent.get("dur") or 0.0)
    s_dur = float(span.get("dur") or 0.0)
    if isinstance(p_start, (int, float)) and isinstance(s_start, (int, float)):
        delta = float(s_start) - float(p_start)
        if 0.0 <= delta <= max(p_dur * 1.5, p_dur + 0.001):
            return parent_offset + delta
    return parent_offset + max(0.0, (p_dur - s_dur) / 2.0)


_SKIP_TAGS = ("error",)


def _tag_text(span: dict) -> str:
    tags = span.get("tags") or {}
    parts = [f"{k}={v}" for k, v in tags.items()]
    return " ".join(parts)


def format_trace(spans: list[dict], *, width: int = 32) -> list[str]:
    """Render one trace's spans as an indented per-stage waterfall.

    One line per span: duration, tree-indented ``svc:name``, a bar
    positioned inside the root's window, then tags.  Multiple roots
    (orphaned subtrees) render one after another.
    """
    roots, children = trace_tree(spans)
    if not roots:
        return []
    trace_id = spans[0]["trace"]
    services = sorted({s.get("svc") or "?" for s in spans})
    lines = [
        f"trace {trace_id}  ({len(spans)} spans, "
        f"{len(services)} services: {', '.join(services)})"
    ]
    total = max(float(r.get("dur") or 0.0) for r in roots) or 1e-9

    def render(span: dict, depth: int, offset: float) -> None:
        dur = float(span.get("dur") or 0.0)
        left = int(round(width * min(1.0, max(0.0, offset / total))))
        fill = max(1, int(round(width * min(1.0, dur / total))))
        fill = min(fill, width - left) or 1
        bar = " " * left + "#" * fill + " " * (width - left - fill)
        label = "  " * depth + f"{span.get('svc', '?')}:{span['name']}"
        tags = _tag_text(span)
        lines.append(
            f"  {dur * 1000.0:9.2f}ms  {label:<44} |{bar}|"
            + (f"  {tags}" if tags else "")
        )
        for child in children.get(span["span"], ()):
            render(child, depth + 1, _offset(child, span, offset))

    for root in roots:
        render(root, 0, 0.0)
    return lines
