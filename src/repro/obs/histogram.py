"""Log-bucketed latency histograms (HDR-style, mergeable, JSON-able).

A :class:`LatencyHistogram` keeps exact *counts* in geometrically spaced
buckets: every recorded value lands in exactly one bucket whose width is
a fixed *relative* error bound (``10 ** (1 / buckets_per_decade)``), so
a p99 read off the histogram is within that bound of the exact
sorted-list p99 no matter how skewed the sample is.  Unlike a fixed
percentile list, histograms compose:

* **merge** — bucket counts add, so per-worker histograms fold into one
  run histogram and per-run histograms fold into a suite trajectory;
* **diff** — cumulative bucket counts subtract, which is how the daemon
  turns its lifetime latency histogram into per-second frames for
  ``repro stats --watch`` without ever storing raw samples;
* **serialize** — :meth:`to_dict` emits the sparse bucket array that
  ``BENCH_workload.json`` rows carry, so a regression shows up as a
  shifted distribution, not just three moved numbers.

Count/sum/min/max are tracked exactly; only the quantile *positions*
are bucket-resolved.  The empty and single-sample edge cases the old
sorted-list code guarded ad hoc are exact here by construction: an
empty histogram answers 0.0 everywhere, and quantiles are clamped to
the exact observed ``[min, max]`` range, so one sample answers itself.
"""

from __future__ import annotations

import math
from typing import Iterable

#: Default resolvable range: 1 microsecond .. ~17 minutes of latency.
DEFAULT_MIN = 1e-6
DEFAULT_MAX = 1e3
#: Default relative resolution: 10**(1/32) - 1 ~= 7.5% per bucket.
DEFAULT_BUCKETS_PER_DECADE = 32


class LatencyHistogram:
    """Fixed-memory log-bucketed histogram of nonnegative values.

    Args:
        min_value: smallest resolvable value; everything in ``(0,
            min_value)`` lands in the underflow bucket (index 0) and
            zero/negative values are counted there too.
        max_value: start of the overflow bucket; values at or above it
            are counted but only resolved as ">= max_value".
        buckets_per_decade: buckets per factor-of-10, i.e. the relative
            resolution ``10**(1/buckets_per_decade) - 1``.
    """

    __slots__ = (
        "min_value", "max_value", "buckets_per_decade",
        "counts", "count", "sum", "min", "max",
    )

    def __init__(
        self,
        *,
        min_value: float = DEFAULT_MIN,
        max_value: float = DEFAULT_MAX,
        buckets_per_decade: int = DEFAULT_BUCKETS_PER_DECADE,
    ):
        if min_value <= 0 or max_value <= min_value:
            raise ValueError("need 0 < min_value < max_value")
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.buckets_per_decade = int(buckets_per_decade)
        decades = math.log10(self.max_value / self.min_value)
        # +2: one underflow bucket in front, one overflow bucket behind.
        self.counts = [0] * (int(math.ceil(decades * buckets_per_decade)) + 2)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = 0.0

    # ------------------------------------------------------------------
    def _index(self, value: float) -> int:
        if value < self.min_value:            # includes 0 and negatives
            return 0
        if value >= self.max_value:
            return len(self.counts) - 1
        return 1 + int(
            math.log10(value / self.min_value) * self.buckets_per_decade
        )

    def _bucket_value(self, index: int) -> float:
        """A bucket's representative value (geometric midpoint)."""
        if index <= 0:
            return self.min_value
        if index >= len(self.counts) - 1:
            return self.max_value
        lo = self.min_value * 10 ** ((index - 1) / self.buckets_per_decade)
        return lo * 10 ** (0.5 / self.buckets_per_decade)

    # ------------------------------------------------------------------
    def record(self, value: float) -> None:
        """Count one value (nonnegative seconds, typically)."""
        value = float(value)
        self.counts[self._index(value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def record_many(self, values: Iterable[float]) -> None:
        """Count every value in an iterable."""
        for value in values:
            self.record(value)

    # ------------------------------------------------------------------
    def _compatible(self, other: "LatencyHistogram") -> None:
        if (
            other.min_value != self.min_value
            or other.max_value != self.max_value
            or other.buckets_per_decade != self.buckets_per_decade
        ):
            raise ValueError("histograms use different bucket schemes")

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold *other*'s counts into this histogram (in place)."""
        self._compatible(other)
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def diff(self, earlier: "LatencyHistogram") -> "LatencyHistogram":
        """The histogram of everything recorded *since* ``earlier``.

        Both must be snapshots of one monotonically growing histogram
        (bucket counts only ever increase); the result's min/max are
        bucket-resolved, not exact — the interval's extremes were never
        stored separately.
        """
        self._compatible(earlier)
        out = LatencyHistogram(
            min_value=self.min_value, max_value=self.max_value,
            buckets_per_decade=self.buckets_per_decade,
        )
        for i, n in enumerate(self.counts):
            d = n - earlier.counts[i]
            if d < 0:
                raise ValueError("diff against a non-earlier snapshot")
            out.counts[i] = d
        out.count = self.count - earlier.count
        out.sum = self.sum - earlier.sum
        if out.count:
            lo = next(i for i, n in enumerate(out.counts) if n)
            hi = next(
                i for i in range(len(out.counts) - 1, -1, -1) if out.counts[i]
            )
            out.min = min(self._bucket_value(lo), max(0.0, out.sum / out.count))
            out.max = self._bucket_value(hi + 1)
        return out

    def copy(self) -> "LatencyHistogram":
        """An independent snapshot (the substrate of :meth:`diff`)."""
        out = LatencyHistogram(
            min_value=self.min_value, max_value=self.max_value,
            buckets_per_decade=self.buckets_per_decade,
        )
        out.counts = list(self.counts)
        out.count = self.count
        out.sum = self.sum
        out.min = self.min
        out.max = self.max
        return out

    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` in [0, 1], bucket-resolved.

        Empty histograms answer 0.0; otherwise the answer is the
        representative value of the bucket holding the rank, clamped to
        the exact observed [min, max] — so a single-sample histogram
        answers that sample exactly, and q=1 is always the exact max.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * (self.count - 1)
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen > rank:
                if i == len(self.counts) - 1:
                    # Overflow values are only resolved as ">= max_value";
                    # the exact tracked max is the honest answer.
                    return self.max
                return min(max(self._bucket_value(i), self.min), self.max)
        return self.max  # pragma: no cover - rank < count by construction

    def percentile(self, p: float) -> float:
        """:meth:`quantile` with p in 0..100 (the CLI-facing spelling)."""
        return self.quantile(p / 100.0)

    @property
    def mean(self) -> float:
        """Exact mean (sum and count are tracked exactly)."""
        return self.sum / self.count if self.count else 0.0

    def summary(self) -> dict:
        """The classic report shape: mean/p50/p90/p99/max (+ count).

        mean and max are exact; the percentiles are bucket-resolved.
        """
        return {
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "max": self.max if self.count else 0.0,
            "count": self.count,
        }

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-able form: scheme + exact aggregates + sparse buckets.

        ``buckets`` is a ``[[index, count], ...]`` list of the nonzero
        buckets only — most latency distributions occupy a handful of
        the few hundred slots.
        """
        return {
            "scheme": {
                "min_value": self.min_value,
                "max_value": self.max_value,
                "buckets_per_decade": self.buckets_per_decade,
            },
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": [[i, n] for i, n in enumerate(self.counts) if n],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LatencyHistogram":
        """Rebuild a histogram serialized by :meth:`to_dict`."""
        scheme = data.get("scheme", {})
        out = cls(
            min_value=scheme.get("min_value", DEFAULT_MIN),
            max_value=scheme.get("max_value", DEFAULT_MAX),
            buckets_per_decade=scheme.get(
                "buckets_per_decade", DEFAULT_BUCKETS_PER_DECADE
            ),
        )
        for index, n in data.get("buckets", []):
            if not 0 <= index < len(out.counts) or n < 0:
                raise ValueError(f"bucket [{index}, {n}] outside the scheme")
            out.counts[index] = n
        out.count = int(data.get("count", sum(out.counts)))
        if out.count != sum(out.counts):
            raise ValueError("bucket counts disagree with the total")
        out.sum = float(data.get("sum", 0.0))
        if out.count:
            out.min = float(data["min"]) if data.get("min") is not None else 0.0
            out.max = (
                float(data["max"]) if data.get("max") is not None
                else out._bucket_value(len(out.counts) - 1)
            )
        return out

    @classmethod
    def of(cls, values: Iterable[float], **kwargs) -> "LatencyHistogram":
        """Build and fill a histogram in one call."""
        out = cls(**kwargs)
        out.record_many(values)
        return out

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatencyHistogram(count={self.count}, mean={self.mean:.6f}, "
            f"p99={self.quantile(0.99):.6f}, max={self.max:.6f})"
        )
