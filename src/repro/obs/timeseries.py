"""Fixed-memory per-second time series (rrd-style ring buffers).

A long-lived daemon cannot keep an unbounded log of per-second samples;
an rrd-style ring buffer keeps exactly the last *N* slots in constant
memory and overwrites the oldest as time advances.  :class:`RingSeries`
is one such buffer over a fixed field tuple; the daemon's monitor
samples one row per second (rps, hit rate, races, in-flight, latency
percentiles) so both the one-shot ``repro stats`` frame and a late
``--watch`` subscriber can see the recent past, not just the instant of
the request.

Rows are stamped with an integer slot time (``int(t // step)``);
writing a row for a newer slot implicitly expires every slot the clock
skipped — a gap in traffic reads back as missing rows, never as stale
numbers.
"""

from __future__ import annotations

import threading


class RingSeries:
    """A fixed-size ring of per-step sample rows.

    Args:
        fields: the row schema (every row carries exactly these keys).
        slots: ring capacity (how much history survives).
        step: slot width in seconds (1.0 = per-second samples).
    """

    def __init__(
        self, fields: tuple[str, ...], *, slots: int = 300, step: float = 1.0
    ):
        if not fields:
            raise ValueError("RingSeries needs at least one field")
        if slots < 1:
            raise ValueError("RingSeries needs at least one slot")
        if step <= 0:
            raise ValueError("RingSeries step must be positive")
        self.fields = tuple(fields)
        self.slots = int(slots)
        self.step = float(step)
        self._rows: list[list[float] | None] = [None] * self.slots
        self._stamps: list[int] = [-1] * self.slots
        self._latest_slot = -1
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def put(self, t: float, values: dict) -> None:
        """Write one sample row for the slot containing time ``t``.

        A second write to the same slot overwrites it; a write to an
        older slot than the latest is dropped (the ring only moves
        forward).  Unknown keys are rejected — the schema is fixed.
        """
        unknown = set(values) - set(self.fields)
        if unknown:
            raise ValueError(f"unknown series fields {sorted(unknown)}")
        slot = int(t // self.step)
        row = [float(values.get(f, 0.0)) for f in self.fields]
        with self._lock:
            if slot < self._latest_slot:
                return
            # Invalidate every slot the clock skipped so a quiet minute
            # never reads back as the last busy second repeated.
            if self._latest_slot >= 0:
                for missed in range(
                    max(self._latest_slot + 1, slot - self.slots + 1), slot
                ):
                    i = missed % self.slots
                    self._rows[i] = None
                    self._stamps[i] = -1
            i = slot % self.slots
            self._rows[i] = row
            self._stamps[i] = slot
            self._latest_slot = slot

    # ------------------------------------------------------------------
    def rows(self, last: int | None = None) -> list[dict]:
        """The most recent rows, oldest first, each with a ``"t"`` key
        (slot start time in seconds)."""
        with self._lock:
            stamped = sorted(
                (stamp, row)
                for stamp, row in zip(self._stamps, self._rows)
                if row is not None and stamp >= 0
            )
        if last is not None:
            stamped = stamped[-last:]
        return [
            {"t": stamp * self.step, **dict(zip(self.fields, row))}
            for stamp, row in stamped
        ]

    def latest(self) -> dict | None:
        """The newest row (or None when nothing was sampled yet)."""
        rows = self.rows(last=1)
        return rows[0] if rows else None

    def window(self, seconds: float) -> list[dict]:
        """Rows from the trailing ``seconds`` of recorded time."""
        rows = self.rows()
        if not rows:
            return []
        cutoff = rows[-1]["t"] - seconds
        return [r for r in rows if r["t"] > cutoff]

    def totals(self, seconds: float | None = None) -> dict:
        """Field sums over the trailing window (the whole ring when
        ``seconds`` is None) plus the covered ``"span"`` in seconds.

        This is how a one-shot ``repro stats`` frame reports a real
        rate after the burst that produced it already ended: events
        summed over the window divided by the window's span.
        """
        rows = self.rows() if seconds is None else self.window(seconds)
        out = {f: 0.0 for f in self.fields}
        for row in rows:
            for f in self.fields:
                out[f] += row[f]
        out["span"] = len(rows) * self.step
        return out

    def __len__(self) -> int:
        with self._lock:
            return sum(1 for row in self._rows if row is not None)
