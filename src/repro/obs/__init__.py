"""Observability: histograms, ring-buffer time series, live metrics.

The serving story (``repro serve`` + ``repro loadgen``) needs more than
end-of-run counter snapshots: this package holds the pieces that make a
running daemon introspectable —

* :mod:`repro.obs.histogram`  — log-bucketed HDR-style latency
  histograms (mergeable, diffable, JSON-able bucket arrays);
* :mod:`repro.obs.timeseries` — rrd-style fixed-memory per-second ring
  buffers;
* :mod:`repro.obs.metrics`    — the narrow-lock :class:`MetricsRegistry`
  the engine and service publish into, plus the frame diffing behind
  ``repro stats --watch`` and the daemon's :class:`StatsMonitor`;
* :mod:`repro.obs.tracing`    — end-to-end distributed tracing: a W3C-
  shaped trace context riding the frame header, per-hop spans, JSONL
  export, and the trace-tree reconstruction behind ``repro trace``.
"""

from repro.obs.histogram import LatencyHistogram
from repro.obs.metrics import (
    FRAME_COUNTERS,
    LATENCY_HISTOGRAM,
    FrameTracker,
    MetricsRegistry,
    StatsMonitor,
    build_frame,
    hit_rate,
)
from repro.obs.timeseries import RingSeries
from repro.obs.tracing import Span, TraceContext, Tracer

__all__ = [
    "FRAME_COUNTERS",
    "FrameTracker",
    "LATENCY_HISTOGRAM",
    "LatencyHistogram",
    "MetricsRegistry",
    "RingSeries",
    "Span",
    "StatsMonitor",
    "TraceContext",
    "Tracer",
    "build_frame",
    "hit_rate",
]
