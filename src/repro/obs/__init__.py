"""Observability: histograms, ring-buffer time series, live metrics.

The serving story (``repro serve`` + ``repro loadgen``) needs more than
end-of-run counter snapshots: this package holds the pieces that make a
running daemon introspectable —

* :mod:`repro.obs.histogram`  — log-bucketed HDR-style latency
  histograms (mergeable, diffable, JSON-able bucket arrays);
* :mod:`repro.obs.timeseries` — rrd-style fixed-memory per-second ring
  buffers;
* :mod:`repro.obs.metrics`    — the narrow-lock :class:`MetricsRegistry`
  the engine and service publish into, plus the frame diffing behind
  ``repro stats --watch`` and the daemon's :class:`StatsMonitor`.
"""

from repro.obs.histogram import LatencyHistogram
from repro.obs.metrics import (
    FRAME_COUNTERS,
    LATENCY_HISTOGRAM,
    FrameTracker,
    MetricsRegistry,
    StatsMonitor,
    build_frame,
    hit_rate,
)
from repro.obs.timeseries import RingSeries

__all__ = [
    "FRAME_COUNTERS",
    "FrameTracker",
    "LATENCY_HISTOGRAM",
    "LatencyHistogram",
    "MetricsRegistry",
    "RingSeries",
    "StatsMonitor",
    "build_frame",
    "hit_rate",
]
