"""Seeded, deterministic fault injection for chaos testing.

The serving stack (engine → portfolio workers → disk cache → daemon →
client) claims to survive worker crashes, torn cache writes, and flaky
connections.  This package makes those claims *testable*: a
:class:`FaultPlan` names injection points compiled into the production
code paths, each with a probability, an optional fire-count budget, and
an optional delay parameter, all driven by per-point seeded RNGs so the
same plan + seed reproduces the same injection decision sequence.

Activate a plan three ways:

* ``repro serve --chaos "seed=42;worker.kill:p=0.1,count=2"`` (CLI);
* :class:`~repro.engine.config.EngineConfig` ``chaos=`` (library);
* the ``REPRO_CHAOS`` environment variable — how *subprocess pool
  workers* pick the plan up: :func:`install` with ``propagate=True``
  exports the spec, and a worker's first :func:`fire` call lazily
  builds its own injector from the env var.

Production code calls :func:`fire` at each named point; with no plan
installed that is a single ``None`` check — the chaos layer costs
nothing when off.

Points wired through the stack today:

======================  ================================================
``worker.kill``         pool worker SIGKILLs itself mid-task
``worker.hang``         pool worker sleeps ``delay`` seconds (polling
                        its race's cancellation slot), then unknowns
``cache.put.io``        ``DiskCache.put`` raises ENOSPC
``cache.put.torn``      ``DiskCache.put`` leaves a torn entry file and
                        raises EIO (a crashed writer)
``wire.drop``           daemon drops the connection pre-dispatch
``wire.truncate``       daemon sends a truncated response frame
``wire.slow``           daemon sleeps ``delay`` seconds pre-dispatch
``auth.reject``         daemon 401s a *valid* token handshake (clients
                        retry inside their connect budget; the router
                        counts it and fails over)
``sync.drop``           daemon drops the connection on a ``sync`` pull
                        before the response (the cursor never advances,
                        so the idempotent re-pull converges anyway)
======================  ================================================
"""

from repro.faults.plan import FaultError, FaultPlan, FaultPoint
from repro.faults.injector import (
    ENV_VAR,
    FaultInjector,
    clear,
    fire,
    get_injector,
    install,
)

__all__ = [
    "ENV_VAR",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultPoint",
    "clear",
    "fire",
    "get_injector",
    "install",
]
