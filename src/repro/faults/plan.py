"""Fault plans: named injection points with seeded budgets.

A plan is written as a compact one-line spec so it fits a CLI flag and
an environment variable (the transport to subprocess pool workers)::

    seed=42;worker.kill:p=0.2,count=2;wire.drop:p=0.05;wire.slow:delay=0.1

Segments are ``;``-separated.  ``seed=N`` sets the plan seed (default
0); every other segment is ``point[:param=value,...]`` with parameters

* ``p`` (or ``probability``) — chance each :meth:`FaultInjector.fire`
  call at that point actually fires (default 1.0);
* ``count`` — lifetime fire budget per injector instance (default
  unlimited; pool workers each hold their own injector, so the budget
  is per process);
* ``delay`` — seconds, consumed by sleep-flavoured points
  (``worker.hang``, ``wire.slow``).

``FaultPlan.from_spec(plan.spec())`` round-trips exactly, so a failing
chaos run's plan can be reprinted and replayed verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError


class FaultError(ReproError):
    """A malformed fault-plan spec."""


@dataclass(frozen=True)
class FaultPoint:
    """One named injection point's budget within a plan."""

    name: str
    probability: float = 1.0
    count: int | None = None
    delay: float = 0.0

    def __post_init__(self) -> None:
        if not self.name or any(c in self.name for c in ";:,= \t"):
            raise FaultError(f"bad fault point name {self.name!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultError(
                f"{self.name}: probability must be in [0, 1], "
                f"got {self.probability}"
            )
        if self.count is not None and self.count < 0:
            raise FaultError(f"{self.name}: count must be >= 0")
        if self.delay < 0:
            raise FaultError(f"{self.name}: delay must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of :class:`FaultPoint` budgets."""

    points: tuple[FaultPoint, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        names = [p.name for p in self.points]
        if len(names) != len(set(names)):
            raise FaultError(f"duplicate fault points in plan: {names}")

    def point(self, name: str) -> FaultPoint | None:
        """The named point's budget, or None when the plan omits it."""
        for point in self.points:
            if point.name == name:
                return point
        return None

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse the one-line spec format (see the module docstring)."""
        seed = 0
        points: list[FaultPoint] = []
        for segment in spec.split(";"):
            segment = segment.strip()
            if not segment:
                continue
            if segment.startswith("seed="):
                try:
                    seed = int(segment[len("seed="):])
                except ValueError:
                    raise FaultError(f"bad seed segment {segment!r}") from None
                continue
            name, _, params = segment.partition(":")
            kwargs: dict = {}
            for param in filter(None, params.split(",")):
                key, eq, value = param.partition("=")
                if not eq:
                    raise FaultError(
                        f"{name}: parameter {param!r} needs key=value"
                    )
                key = key.strip()
                try:
                    if key in ("p", "probability"):
                        kwargs["probability"] = float(value)
                    elif key == "count":
                        kwargs["count"] = int(value)
                    elif key == "delay":
                        kwargs["delay"] = float(value)
                    else:
                        raise FaultError(
                            f"{name}: unknown parameter {key!r} "
                            "(expected p/probability, count, or delay)"
                        )
                except ValueError:
                    raise FaultError(
                        f"{name}: bad value {value!r} for {key}"
                    ) from None
            points.append(FaultPoint(name.strip(), **kwargs))
        return cls(points=tuple(points), seed=seed)

    def spec(self) -> str:
        """Serialize back to the one-line spec (parse → spec round-trips)."""
        segments = [f"seed={self.seed}"]
        for p in self.points:
            params = []
            if p.probability != 1.0:
                params.append(f"p={p.probability:g}")
            if p.count is not None:
                params.append(f"count={p.count}")
            if p.delay:
                params.append(f"delay={p.delay:g}")
            segments.append(
                p.name + (":" + ",".join(params) if params else "")
            )
        return ";".join(segments)
