"""The live fault injector and the process-global installation plumbing.

One :class:`FaultInjector` holds the mutable state of a running plan:
per-point fired/checked counters and a per-point ``random.Random``
seeded from ``(plan seed, point name)`` — string seeding hashes via
SHA-512, so the decision sequence at a point is identical in every
process running the same plan, regardless of ``PYTHONHASHSEED``.
Which *call* in a process's lifetime fires is therefore deterministic
per point per process; the global interleaving across worker processes
still depends on OS scheduling (and is reported, not asserted, by the
chaos harness).

Installation is process-global on purpose: chaos is an environment
property, not a per-object one, and the injection points live in layers
(pool worker entry, cache writes, the daemon's wire loop) that share no
object graph.  ``install(spec, propagate=True)`` additionally exports
the spec through the ``REPRO_CHAOS`` environment variable, which is how
*spawned/forked pool workers* adopt the plan: their first
:func:`get_injector` call finds no installed injector and builds one
from the env var.
"""

from __future__ import annotations

import os
import random
import threading

from repro.faults.plan import FaultPlan, FaultPoint

#: Environment variable carrying the plan spec to subprocess workers.
ENV_VAR = "REPRO_CHAOS"


class FaultInjector:
    """Mutable runtime state of one :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._rngs = {
            p.name: random.Random(f"{plan.seed}:{p.name}")
            for p in plan.points
        }
        self.fired: dict[str, int] = {p.name: 0 for p in plan.points}
        self.checked: dict[str, int] = {p.name: 0 for p in plan.points}

    def fire(self, name: str) -> FaultPoint | None:
        """Decide whether the named point fires on this call.

        Returns the point's budget (so the caller can read ``delay``)
        when it fires, else None — also None for points the plan does
        not mention, so call sites need no membership check.
        """
        point = self.plan.point(name)
        if point is None:
            return None
        with self._lock:
            self.checked[name] += 1
            if point.count is not None and self.fired[name] >= point.count:
                return None
            if self._rngs[name].random() >= point.probability:
                return None
            self.fired[name] += 1
        return point

    def snapshot(self) -> dict:
        """Plan spec + per-point checked/fired counts (health surface)."""
        with self._lock:
            return {
                "spec": self.plan.spec(),
                "seed": self.plan.seed,
                "points": {
                    name: {
                        "checked": self.checked[name],
                        "fired": self.fired[name],
                    }
                    for name in self.fired
                },
            }


_STATE_LOCK = threading.Lock()
_ACTIVE: FaultInjector | None = None
#: Whether this process already consulted ``REPRO_CHAOS`` (consulted at
#: most once, so a long-lived daemon is immune to env mutation races).
_ENV_CHECKED = False


def install(
    plan: FaultPlan | str, *, propagate: bool = False
) -> FaultInjector:
    """Install a plan (or spec string) process-globally.

    Args:
        propagate: also export the spec via ``REPRO_CHAOS`` so pool
            workers spawned *after* this call adopt the same plan.
    """
    global _ACTIVE, _ENV_CHECKED
    if isinstance(plan, str):
        plan = FaultPlan.from_spec(plan)
    injector = FaultInjector(plan)
    with _STATE_LOCK:
        _ACTIVE = injector
        _ENV_CHECKED = True
        if propagate:
            os.environ[ENV_VAR] = plan.spec()
    return injector


def clear() -> None:
    """Uninstall any active plan and drop the env-var export."""
    global _ACTIVE, _ENV_CHECKED
    with _STATE_LOCK:
        _ACTIVE = None
        _ENV_CHECKED = False
        os.environ.pop(ENV_VAR, None)


def get_injector() -> FaultInjector | None:
    """The active injector, lazily adopting ``REPRO_CHAOS`` if set.

    The lazy env-var pickup is the worker-process path: a forked worker
    inherits the parent's installed injector outright, but a *spawned*
    one re-imports this module fresh and finds the plan in its
    environment instead.
    """
    global _ACTIVE, _ENV_CHECKED
    if _ACTIVE is not None:
        return _ACTIVE
    if _ENV_CHECKED:
        return None
    with _STATE_LOCK:
        if _ACTIVE is None and not _ENV_CHECKED:
            _ENV_CHECKED = True
            spec = os.environ.get(ENV_VAR)
            if spec:
                _ACTIVE = FaultInjector(FaultPlan.from_spec(spec))
    return _ACTIVE


def fire(name: str) -> FaultPoint | None:
    """Module-level shorthand: fire against the active injector, if any."""
    injector = get_injector()
    return injector.fire(name) if injector is not None else None
