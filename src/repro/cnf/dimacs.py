"""DIMACS CNF reader and writer.

Supports the classic format used by the benchmark suite the paper
evaluates on::

    c optional comments
    p cnf <num_vars> <num_clauses>
    1 -3 5 0
    ...

The parser is tolerant of the common real-world deviations found in the
1990s DIMACS archives: clauses spanning several lines, multiple clauses per
line, ``%``-terminated files, and trailing blank lines.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

from repro.cnf.formula import CNFFormula
from repro.errors import DimacsError


def parse_dimacs(text: str) -> CNFFormula:
    """Parse DIMACS CNF *text* into a :class:`CNFFormula`.

    Raises:
        DimacsError: on a missing/duplicate header, literal out of the
            declared range, unterminated final clause, or garbage tokens.
    """
    num_vars: int | None = None
    declared_clauses: int | None = None
    clauses: list[list[int]] = []
    current: list[int] = []

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("%"):
            break
        if line.startswith("p"):
            if num_vars is not None:
                raise DimacsError(f"line {line_no}: duplicate problem line")
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise DimacsError(f"line {line_no}: malformed problem line {line!r}")
            try:
                num_vars, declared_clauses = int(parts[2]), int(parts[3])
            except ValueError:
                raise DimacsError(f"line {line_no}: non-integer header {line!r}") from None
            if num_vars < 0 or declared_clauses < 0:
                raise DimacsError(f"line {line_no}: negative counts in header")
            continue
        if num_vars is None:
            raise DimacsError(f"line {line_no}: clause data before problem line")
        for token in line.split():
            try:
                lit = int(token)
            except ValueError:
                raise DimacsError(f"line {line_no}: bad token {token!r}") from None
            if lit == 0:
                clauses.append(current)
                current = []
                continue
            if abs(lit) > num_vars:
                raise DimacsError(
                    f"line {line_no}: literal {lit} exceeds declared {num_vars} variables"
                )
            current.append(lit)

    if num_vars is None:
        raise DimacsError("no problem line found")
    if current:
        raise DimacsError("final clause not terminated by 0")
    if declared_clauses is not None and declared_clauses != len(clauses):
        # The archives contain slightly-off headers; only genuine mismatch
        # beyond off-by-noise is rejected to stay usable on real files.
        raise DimacsError(
            f"header declares {declared_clauses} clauses but file has {len(clauses)}"
        )
    return CNFFormula(clauses, num_vars=num_vars)


def read_dimacs(path: str | Path) -> CNFFormula:
    """Read and parse a DIMACS CNF file."""
    return parse_dimacs(Path(path).read_text())


def to_dimacs(formula: CNFFormula, comments: list[str] | None = None) -> str:
    """Serialize *formula* to a DIMACS CNF string.

    Variables keep their identifiers, and the header declares ``max_var``
    so round-tripping preserves the active-variable range (DIMACS cannot
    express gaps in the variable set; :func:`parse_dimacs` re-activates the
    full ``1..max_var`` range).
    """
    buf = io.StringIO()
    for comment in comments or []:
        buf.write(f"c {comment}\n")
    buf.write(f"p cnf {formula.max_var} {formula.num_clauses}\n")
    for cl in formula.clauses:
        buf.write(" ".join(str(l) for l in cl.literals))
        buf.write(" 0\n")
    return buf.getvalue()


def write_dimacs(
    formula: CNFFormula,
    path_or_file: str | Path | TextIO,
    comments: list[str] | None = None,
) -> None:
    """Write *formula* in DIMACS format to a path or open text file."""
    text = to_dimacs(formula, comments=comments)
    if isinstance(path_or_file, (str, Path)):
        Path(path_or_file).write_text(text)
    else:
        path_or_file.write(text)
