"""Mutable CNF formulas with stable variable identifiers.

Engineering change is defined by the paper as adding/removing clauses and
adding/removing (*eliminating*) variables.  To make "how much of the old
solution survives" a well-posed question, variable identifiers must remain
stable across those edits, so :class:`CNFFormula` tracks an explicit set of
*active* variables rather than renumbering.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

from repro.cnf.assignment import Assignment
from repro.cnf.clause import Clause
from repro.cnf.literals import check_variable
from repro.cnf.packed import PackedCNF
from repro.errors import ClauseError, VariableError


class CNFFormula:
    """A conjunction of :class:`Clause` objects over a stable variable set.

    Args:
        clauses: iterable of clauses or iterables of literals.
        num_vars: if given, variables ``1..num_vars`` are active even when
            some do not occur in any clause (DIMACS headers allow this).

    The formula owns its clause list; clauses themselves are immutable.
    Duplicate clauses are allowed (DIMACS files contain them) but can be
    stripped with :meth:`deduplicated`.
    """

    def __init__(
        self,
        clauses: Iterable[Clause | Iterable[int]] = (),
        num_vars: int | None = None,
    ):
        self._clauses: list[Clause] = []
        self._variables: set[int] = set()
        # Derived-state caches.  ``_packed`` is the flat-array kernel,
        # incrementally *maintained* by every EC edit once built; the
        # fingerprint caches are invalidated (dirty-flag style) instead.
        self._packed: PackedCNF | None = None
        self._normalized_cache: tuple[tuple[int, ...], ...] | None = None
        self._fingerprint_cache: str | None = None
        for cl in clauses:
            self.add_clause(cl)
        if num_vars is not None:
            if num_vars < 0:
                raise VariableError(f"num_vars must be >= 0, got {num_vars}")
            highest = max(self._variables, default=0)
            if highest > num_vars:
                raise VariableError(
                    f"clauses mention v{highest} but num_vars is {num_vars}"
                )
            self._variables.update(range(1, num_vars + 1))

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def clauses(self) -> tuple[Clause, ...]:
        """The clause tuple (a snapshot; mutating the formula invalidates it)."""
        return tuple(self._clauses)

    @property
    def variables(self) -> tuple[int, ...]:
        """Sorted tuple of active variable identifiers."""
        return tuple(sorted(self._variables))

    @property
    def num_vars(self) -> int:
        """Number of active variables."""
        return len(self._variables)

    @property
    def num_clauses(self) -> int:
        """Number of clauses (duplicates counted)."""
        return len(self._clauses)

    @property
    def max_var(self) -> int:
        """Largest active variable id (0 for the empty formula)."""
        return max(self._variables, default=0)

    def clause(self, index: int) -> Clause:
        """The clause at position *index*."""
        return self._clauses[index]

    def packed(self) -> PackedCNF:
        """The flat-array kernel of this formula (built once, then cached).

        The kernel is *incrementally maintained*: every EC edit primitive
        below updates it in place (O(changed clauses) digest work, array
        splices for storage) instead of invalidating it, so a change
        chain never re-packs the formula.  Callers must treat the result
        as read-only; it is also handed to solvers and shipped to
        portfolio workers via :meth:`PackedCNF.to_bytes`.
        """
        if self._packed is None:
            self._packed = PackedCNF.from_formula(self)
        return self._packed

    def _dirty(self) -> None:
        """Invalidate the clause-set caches after a clause-changing edit."""
        self._normalized_cache = None
        self._fingerprint_cache = None

    # ------------------------------------------------------------------
    # mutation — the four EC edit primitives
    # ------------------------------------------------------------------
    def add_clause(self, clause: Clause | Iterable[int]) -> Clause:
        """Append a clause; its variables become active.  Returns the clause."""
        if not isinstance(clause, Clause):
            clause = Clause(clause)
        if clause.is_empty():
            raise ClauseError("cannot add the empty clause to a formula")
        self._clauses.append(clause)
        self._variables.update(clause.variables)
        self._dirty()
        if self._packed is not None:
            self._packed.append_clause(clause.literals)
        return clause

    def remove_clause(self, clause: Clause | Iterable[int]) -> Clause:
        """Remove one occurrence of *clause*.

        Variables that no longer occur anywhere stay active (they become
        free / don't-care variables), matching the paper's semantics where
        deleting clauses only loosens the instance.
        """
        if not isinstance(clause, Clause):
            clause = Clause(clause)
        try:
            index = self._clauses.index(clause)
        except ValueError:
            raise ClauseError(f"clause {clause!r} not present in formula") from None
        del self._clauses[index]
        self._dirty()
        if self._packed is not None:
            self._packed.remove_clause_at(index)
        return clause

    def remove_clause_at(self, index: int) -> Clause:
        """Remove and return the clause at position *index*."""
        size = len(self._clauses)
        try:
            clause = self._clauses.pop(index)
        except IndexError:
            raise ClauseError(f"no clause at index {index}") from None
        self._dirty()
        if self._packed is not None:
            self._packed.remove_clause_at(index if index >= 0 else size + index)
        return clause

    def add_variable(self, var: int | None = None) -> int:
        """Activate a new variable and return its id.

        With no argument a fresh id (``max_var + 1``) is allocated.  Adding a
        variable never invalidates an existing solution (the paper assigns
        it a don't-care value).  Free variables are excluded from the
        fingerprint, so the clause-set caches stay valid.
        """
        if var is None:
            var = self.max_var + 1
        check_variable(var)
        if var in self._variables:
            raise VariableError(f"variable v{var} is already active")
        self._variables.add(var)
        if self._packed is not None:
            self._packed.add_variable(var)
        return var

    def remove_variable(self, var: int) -> int:
        """Eliminate *var*: strip its literals from every clause.

        Clauses reduced to the empty clause make the formula unsatisfiable;
        they are kept (as empty clauses are not allowed, a ``ClauseError``
        would hide the infeasibility), so we instead keep a ``Clause`` with
        no literals via the internal path and expose it through
        :meth:`has_empty_clause`.

        Returns the number of clauses that were shortened.
        """
        check_variable(var)
        if var not in self._variables:
            raise VariableError(f"variable v{var} is not active")
        touched = 0
        new_clauses: list[Clause] = []
        for cl in self._clauses:
            if cl.contains_variable(var):
                new_clauses.append(cl.without_variable(var))
                touched += 1
            else:
                new_clauses.append(cl)
        self._clauses = new_clauses
        self._variables.discard(var)
        self._dirty()
        if self._packed is not None:
            self._packed.eliminate_variable(var)
        return touched

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def has_empty_clause(self) -> bool:
        """True if variable elimination produced an empty (false) clause."""
        return any(cl.is_empty() for cl in self._clauses)

    def is_satisfied(self, assignment: Assignment) -> bool:
        """True if every clause has at least one true literal."""
        return all(cl.is_satisfied(assignment) for cl in self._clauses)

    def unsatisfied_clauses(self, assignment: Assignment) -> list[Clause]:
        """Clauses with no true literal under *assignment*."""
        return [cl for cl in self._clauses if not cl.is_satisfied(assignment)]

    def unsatisfied_indices(self, assignment: Assignment) -> list[int]:
        """Indices of clauses with no true literal under *assignment*."""
        return [i for i, cl in enumerate(self._clauses) if not cl.is_satisfied(assignment)]

    def satisfaction_levels(self, assignment: Assignment) -> list[int]:
        """Per-clause count of true literals (the paper's *k*)."""
        return [cl.satisfaction_level(assignment) for cl in self._clauses]

    # ------------------------------------------------------------------
    # structure queries used by the EC algorithms
    # ------------------------------------------------------------------
    def clauses_with_variable(self, var: int) -> list[int]:
        """Indices of clauses mentioning either polarity of *var*."""
        return [i for i, cl in enumerate(self._clauses) if cl.contains_variable(var)]

    def occurrence_counts(self) -> Counter[int]:
        """Counter mapping each literal to its number of occurrences."""
        counts: Counter[int] = Counter()
        for cl in self._clauses:
            counts.update(cl.literals)
        return counts

    def variable_occurrence_counts(self) -> Counter[int]:
        """Counter mapping each variable to its number of clause mentions."""
        counts: Counter[int] = Counter()
        for cl in self._clauses:
            counts.update(cl.variables)
        return counts

    def pure_literals(self) -> list[int]:
        """Literals whose complement never occurs (over occurring variables)."""
        occ = self.occurrence_counts()
        return sorted(
            (lit for lit in occ if -lit not in occ),
            key=lambda l: (abs(l), l < 0),
        )

    def unused_variables(self) -> list[int]:
        """Active variables that occur in no clause (free / don't-care)."""
        used: set[int] = set()
        for cl in self._clauses:
            used.update(cl.variables)
        return sorted(self._variables - used)

    def clause_length_histogram(self) -> Counter[int]:
        """Counter mapping clause length to number of clauses of that length."""
        return Counter(len(cl) for cl in self._clauses)

    def density(self) -> float:
        """Clause-to-variable ratio (0.0 for a formula with no variables)."""
        if not self._variables:
            return 0.0
        return len(self._clauses) / len(self._variables)

    # ------------------------------------------------------------------
    # copies and normal forms
    # ------------------------------------------------------------------
    def copy(self) -> "CNFFormula":
        """Deep-enough copy (clauses are immutable and shared).

        The packed kernel and fingerprint caches are carried along (the
        kernel as an independent copy — it is mutable), so an EC change
        chain built from successive copies keeps its incremental state.
        Copying the kernel is O(total literals) but pure C-level memcpy
        (array slices, one dict copy); the expensive part — re-hashing
        every clause digest — is what carrying the state avoids, and the
        per-edit *hash* work stays O(changed clauses).
        """
        out = CNFFormula()
        out._clauses = list(self._clauses)
        out._variables = set(self._variables)
        out._packed = self._packed.copy() if self._packed is not None else None
        out._normalized_cache = self._normalized_cache
        out._fingerprint_cache = self._fingerprint_cache
        return out

    def deduplicated(self) -> "CNFFormula":
        """Copy with duplicate clauses removed (first occurrence kept)."""
        seen: set[Clause] = set()
        out = CNFFormula()
        out._variables = set(self._variables)
        for cl in self._clauses:
            if cl not in seen:
                seen.add(cl)
                out._clauses.append(cl)
        return out

    def restricted_to_clauses(self, indices: Iterable[int]) -> "CNFFormula":
        """Sub-formula containing only the listed clause positions.

        The variable set shrinks to the variables of the kept clauses; this
        is what fast EC solves as the reduced instance ``F''``.
        """
        out = CNFFormula()
        for i in indices:
            out.add_clause(self._clauses[i])
        return out

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Clause]:
        return iter(self._clauses)

    def __len__(self) -> int:
        return len(self._clauses)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CNFFormula):
            return NotImplemented
        return (
            sorted(self._clauses, key=lambda c: c.literals)
            == sorted(other._clauses, key=lambda c: c.literals)
            and self._variables == other._variables
        )

    def __repr__(self) -> str:
        return f"CNFFormula(num_vars={self.num_vars}, num_clauses={self.num_clauses})"
