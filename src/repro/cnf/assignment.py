"""(Partial) truth assignments over DIMACS-style variables.

An :class:`Assignment` maps variable indices to booleans.  It may be
partial: variables absent from the mapping are *don't cares* (DC), which the
paper's fast-EC section exploits ("it can automatically be assigned a DC
value").
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.cnf.literals import check_variable
from repro.errors import AssignmentError


class Assignment:
    """A mutable partial mapping from variable index to truth value."""

    __slots__ = ("_values",)

    def __init__(self, values: Mapping[int, bool] | Iterable[tuple[int, bool]] = ()):
        self._values: dict[int, bool] = {}
        items = values.items() if isinstance(values, Mapping) else values
        for var, val in items:
            self[var] = val

    @classmethod
    def from_literals(cls, literals: Iterable[int]) -> "Assignment":
        """Build an assignment from signed literals (e.g. DPLL model output).

        >>> Assignment.from_literals([1, -2, 3]).as_dict()
        {1: True, 2: False, 3: True}
        """
        return cls({abs(l): l > 0 for l in literals})

    @classmethod
    def all_false(cls, variables: Iterable[int]) -> "Assignment":
        """Assignment setting every listed variable to False."""
        return cls({check_variable(v): False for v in variables})

    @classmethod
    def all_true(cls, variables: Iterable[int]) -> "Assignment":
        """Assignment setting every listed variable to True."""
        return cls({check_variable(v): True for v in variables})

    def get(self, var: int, default: bool | None = None) -> bool | None:
        """Value of *var*, or *default* if the variable is a don't-care."""
        return self._values.get(var, default)

    def is_assigned(self, var: int) -> bool:
        """True if *var* has a concrete truth value."""
        return var in self._values

    def assigned_variables(self) -> tuple[int, ...]:
        """Sorted tuple of variables with concrete values."""
        return tuple(sorted(self._values))

    def flip(self, var: int) -> "Assignment":
        """Flip *var* in place and return self (for chaining).

        Raises:
            AssignmentError: if *var* is unassigned.
        """
        if var not in self._values:
            raise AssignmentError(f"cannot flip unassigned variable v{var}")
        self._values[var] = not self._values[var]
        return self

    def flipped(self, var: int) -> "Assignment":
        """Return a copy with *var* flipped."""
        return self.copy().flip(var)

    def unassign(self, var: int) -> "Assignment":
        """Remove *var* from the assignment (make it a don't-care)."""
        self._values.pop(var, None)
        return self

    def restricted_to(self, variables: Iterable[int]) -> "Assignment":
        """Copy keeping only the listed variables."""
        keep = set(variables)
        return Assignment({v: b for v, b in self._values.items() if v in keep})

    def merged_with(self, other: "Assignment") -> "Assignment":
        """Copy where *other*'s values override this assignment's values.

        This is the fast-EC "combine p and new solution p'" step.
        """
        merged = dict(self._values)
        merged.update(other._values)
        return Assignment(merged)

    def agreement_with(self, other: "Assignment") -> int:
        """Number of variables assigned identically in both assignments."""
        return sum(
            1
            for var, val in self._values.items()
            if other._values.get(var) is val
        )

    def agreement_fraction(self, other: "Assignment") -> float:
        """``agreement_with(other) / len(self)``; 1.0 for two empty maps."""
        if not self._values:
            return 1.0
        return self.agreement_with(other) / len(self._values)

    def to_literals(self) -> tuple[int, ...]:
        """Signed literal representation sorted by variable index."""
        return tuple(v if b else -v for v, b in sorted(self._values.items()))

    def as_dict(self) -> dict[int, bool]:
        """A plain dict copy of the mapping."""
        return dict(sorted(self._values.items()))

    def copy(self) -> "Assignment":
        return Assignment(self._values)

    def __getitem__(self, var: int) -> bool:
        try:
            return self._values[var]
        except KeyError:
            raise AssignmentError(f"variable v{var} is unassigned") from None

    def __setitem__(self, var: int, value: bool) -> None:
        check_variable(var)
        if not isinstance(value, bool):
            raise AssignmentError(f"truth value for v{var} must be bool, got {value!r}")
        self._values[var] = value

    def __contains__(self, var: int) -> bool:
        return var in self._values

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._values))

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Assignment):
            return NotImplemented
        return self._values == other._values

    def __repr__(self) -> str:
        body = ", ".join(f"v{v}={int(b)}" for v, b in sorted(self._values.items()))
        return f"Assignment({{{body}}})"
