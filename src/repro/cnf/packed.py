"""Flat-array CNF kernel: MiniSat-style packed clause storage.

Object-graph formulas (:class:`~repro.cnf.formula.CNFFormula` holding
:class:`~repro.cnf.clause.Clause` instances) are the right representation
for *editing* — stable variable ids, hashable clauses, per-clause
provenance — but the wrong one for *hot paths*: every solver entry
re-flattens the clauses into int lists, every portfolio race pickles the
whole object graph into each worker, and every fingerprint re-sorts and
re-hashes the clause set from scratch.

:class:`PackedCNF` is the flat kernel those paths consume instead:

* all clause literals live in one contiguous ``array('i')`` of DIMACS
  literals (``lits``), with a clause-offset index (``offsets``; clause
  *i* spans ``lits[offsets[i]:offsets[i + 1]]``) — the same layout the
  CDCL watcher scheme already assumes internally;
* it is built **once** per formula (``CNFFormula.packed()`` caches it)
  and **incrementally maintained** under the paper's EC edit primitives
  (add/remove clause, add/eliminate variable) instead of rebuilt;
* :meth:`to_bytes` / :meth:`from_bytes` give a compact wire format so
  portfolio workers receive raw array bytes, not a pickled object graph;
* an order-independent running combine of per-clause digests
  (deduplicated, so clause order and multiplicity never matter) powers
  the incremental ``fp-v2`` fingerprint in O(changed clauses) per edit.

Invariants (relied on throughout): each clause's literals are
duplicate-free and sorted by ``(variable, polarity)`` exactly as
:class:`Clause` normalizes them, so a tautology shows up as two adjacent
literals of the same variable; the active variable set is tracked
explicitly (free variables survive clause removal, matching the
formula's stable-identifier semantics).

Wire format (version 1, all integers little-endian)::

    magic   b"PCNF"                      4 bytes
    version u8 (= 1)                     1 byte
    counts  u64 x 3                      number of variables / clauses / literals
    vars    i32 x num_vars               sorted active variable ids
    offsets i32 x (num_clauses + 1)      clause start offsets (offsets[0] = 0)
    lits    i32 x num_lits               DIMACS literals, clause-major

Literals must fit in a signed 32-bit int (every DIMACS tool shares this
bound).
"""

from __future__ import annotations

import hashlib
import struct
from array import array
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.errors import CNFError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.cnf.assignment import Assignment
    from repro.cnf.formula import CNFFormula

#: Wire-format magic and version (see the module docstring).
_MAGIC = b"PCNF"
_WIRE_VERSION = 1
_HEADER = struct.Struct("<4sBQQQ")

#: Version tag mixed into every fp-v2 digest so a future normalization
#: change invalidates old fingerprints instead of colliding with them.
FP2_VERSION = b"repro-cnf-fp-v2"

#: Width of the additive digest combine, in bytes.  An order-independent
#: sum (AdHash-style incremental hashing) is *weaker* than the underlying
#: hash against engineered collisions: Wagner's generalized-birthday
#: attack finds k clauses whose digests sum to a target in roughly
#: ``2**(bits / (1 + log2 k))`` work, which for a 256-bit sum would be
#: far below the hash's own collision bound.  A 2048-bit modulus keeps
#: per-edit updates O(1) (one big-int add) while pushing that attack
#: past ~2**100 work for any plausible clause count.
_DIGEST_BYTES = 256
_DIGEST_MOD = 1 << (8 * _DIGEST_BYTES)


def clause_digest(lits: tuple[int, ...]) -> int:
    """The order-combinable 2048-bit digest of one normalized clause."""
    h = hashlib.shake_256(b"cl|")
    h.update(",".join(map(str, lits)).encode("ascii"))
    return int.from_bytes(h.digest(_DIGEST_BYTES), "big")


class PackedCNF:
    """A CNF formula as flat literal/offset arrays plus an active-var set.

    Build one with :meth:`from_formula` / :meth:`from_clauses` /
    :meth:`from_bytes`; mutate it only through the EC edit methods
    (:meth:`append_clause`, :meth:`remove_clause_at`,
    :meth:`eliminate_variable`, :meth:`add_variable`) so the offset
    index, empty-clause count, and digest state stay consistent.
    """

    __slots__ = (
        "lits",
        "offsets",
        "_varset",
        "_vars_sorted",
        "_num_empty",
        "_digest_counts",
        "_digest_sum",
    )

    def __init__(self) -> None:
        self.lits: array = array("i")
        self.offsets: array = array("i", [0])
        self._varset: set[int] = set()
        self._vars_sorted: tuple[int, ...] | None = ()
        self._num_empty: int = 0
        # Digest state is lazy: solve-only consumers never pay for it.
        # Once initialized it is maintained incrementally by every edit.
        self._digest_counts: dict[tuple[int, ...], int] | None = None
        self._digest_sum: int = 0

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_formula(cls, formula: "CNFFormula") -> "PackedCNF":
        """Pack *formula* (clauses are already normalized by ``Clause``)."""
        out = cls()
        lits, offsets = out.lits, out.offsets
        empties = 0
        for cl in formula.clauses:
            cl_lits = cl.literals
            lits.extend(cl_lits)
            offsets.append(len(lits))
            if not cl_lits:
                empties += 1
        out._varset = set(formula.variables)
        out._vars_sorted = None
        out._num_empty = empties
        return out

    @classmethod
    def from_clauses(
        cls,
        clauses: Iterable[Iterable[int]],
        variables: Iterable[int] = (),
    ) -> "PackedCNF":
        """Pack raw literal iterables, normalizing each clause.

        Args:
            clauses: iterables of non-zero DIMACS literals (duplicates
                within a clause are dropped; tautologies are kept).
            variables: extra active variables beyond those occurring in
                the clauses (free / don't-care variables).
        """
        out = cls()
        for cl in clauses:
            norm = sorted({int(l) for l in cl}, key=lambda l: (abs(l), l < 0))
            if any(l == 0 for l in norm):
                raise CNFError("0 is not a valid literal")
            out.append_clause(norm)
        for v in variables:
            out._varset.add(int(v))
        out._vars_sorted = None
        return out

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_clauses(self) -> int:
        """Number of clauses (duplicates counted)."""
        return len(self.offsets) - 1

    @property
    def num_literals(self) -> int:
        """Total number of stored literals."""
        return len(self.lits)

    @property
    def variables(self) -> tuple[int, ...]:
        """Sorted tuple of active variable ids (cached)."""
        if self._vars_sorted is None:
            self._vars_sorted = tuple(sorted(self._varset))
        return self._vars_sorted

    @property
    def num_vars(self) -> int:
        """Number of active variables."""
        return len(self._varset)

    @property
    def max_var(self) -> int:
        """Largest active variable id (0 when there are none)."""
        return max(self._varset, default=0)

    def clause_bounds(self, index: int) -> tuple[int, int]:
        """The ``(start, end)`` span of clause *index* in :attr:`lits`."""
        return self.offsets[index], self.offsets[index + 1]

    def clause_literals(self, index: int) -> tuple[int, ...]:
        """The literal tuple of clause *index* (allocates; not a hot path)."""
        start, end = self.offsets[index], self.offsets[index + 1]
        return tuple(self.lits[start:end])

    def iter_clauses(self) -> Iterator[tuple[int, ...]]:
        """Yield every clause as a literal tuple (tests / conversion)."""
        for i in range(self.num_clauses):
            yield self.clause_literals(i)

    def has_empty_clause(self) -> bool:
        """True when some clause has no literals (trivially UNSAT)."""
        return self._num_empty > 0

    def is_tautology_at(self, index: int) -> bool:
        """True when clause *index* contains a variable in both polarities.

        Clause literals are sorted by ``(variable, polarity)``, so a
        tautological pair is always adjacent.
        """
        lits = self.lits
        start, end = self.offsets[index], self.offsets[index + 1]
        for k in range(start, end - 1):
            if lits[k] == -lits[k + 1]:
                return True
        return False

    def is_satisfied(self, assignment: "Assignment") -> bool:
        """True if every clause has at least one true literal.

        Mirrors ``CNFFormula.is_satisfied`` over the flat arrays so packed
        solver outcomes can be verified without materializing clauses.
        """
        lits, offsets = self.lits, self.offsets
        get = assignment.get
        for ci in range(len(offsets) - 1):
            for k in range(offsets[ci], offsets[ci + 1]):
                lit = lits[k]
                value = get(abs(lit))
                if value is not None and (value if lit > 0 else not value):
                    break
            else:
                return False
        return True

    # ------------------------------------------------------------------
    # EC edit primitives (keep arrays, empties, and digests in sync)
    # ------------------------------------------------------------------
    def append_clause(self, lits: Iterable[int]) -> None:
        """Append one normalized clause; its variables become active."""
        norm = tuple(lits)
        self.lits.extend(norm)
        self.offsets.append(len(self.lits))
        if not norm:
            self._num_empty += 1
        for l in norm:
            v = abs(l)
            if v not in self._varset:
                self._varset.add(v)
                self._vars_sorted = None
        if self._digest_counts is not None:
            self._digest_add(norm)

    def remove_clause_at(self, index: int) -> None:
        """Remove clause *index* (variables stay active, as in the formula)."""
        if not 0 <= index < self.num_clauses:
            raise CNFError(f"no clause at index {index}")
        start, end = self.offsets[index], self.offsets[index + 1]
        width = end - start
        removed = tuple(self.lits[start:end]) if self._digest_counts is not None else None
        if width == 0:
            self._num_empty -= 1
        del self.lits[start:end]
        del self.offsets[index + 1]
        if width:
            offsets = self.offsets
            for j in range(index + 1, len(offsets)):
                offsets[j] -= width
        if removed is not None:
            self._digest_discard(removed)

    def add_variable(self, var: int) -> None:
        """Activate *var* (a loosening change; no clause is touched)."""
        if var not in self._varset:
            self._varset.add(var)
            self._vars_sorted = None

    def eliminate_variable(self, var: int) -> int:
        """Strip every literal of *var* and deactivate it.

        Clauses keep their positions; ones reduced to zero literals are
        counted as empty (the instance becomes trivially UNSAT), matching
        ``CNFFormula.remove_variable``.  Returns the number of clauses
        shortened.
        """
        lits, offsets = self.lits, self.offsets
        new_lits = array("i")
        new_offsets = array("i", [0])
        digests = self._digest_counts is not None
        touched = 0
        for ci in range(len(offsets) - 1):
            start, end = offsets[ci], offsets[ci + 1]
            kept_from = len(new_lits)
            hit = False
            for k in range(start, end):
                lit = lits[k]
                if abs(lit) == var:
                    hit = True
                else:
                    new_lits.append(lit)
            new_offsets.append(len(new_lits))
            if hit:
                touched += 1
                if len(new_lits) == kept_from:
                    self._num_empty += 1
                if digests:
                    self._digest_discard(tuple(lits[start:end]))
                    self._digest_add(tuple(new_lits[kept_from:]))
        self.lits = new_lits
        self.offsets = new_offsets
        self._varset.discard(var)
        self._vars_sorted = None
        return touched

    # ------------------------------------------------------------------
    # incremental fp-v2 digest state
    # ------------------------------------------------------------------
    def _init_digests(self) -> None:
        counts: dict[tuple[int, ...], int] = {}
        total = 0
        for cl in self.iter_clauses():
            n = counts.get(cl, 0)
            counts[cl] = n + 1
            if n == 0:
                total = (total + clause_digest(cl)) % _DIGEST_MOD
        self._digest_counts = counts
        self._digest_sum = total

    def _digest_add(self, key: tuple[int, ...]) -> None:
        counts = self._digest_counts
        n = counts.get(key, 0)
        counts[key] = n + 1
        if n == 0:
            self._digest_sum = (self._digest_sum + clause_digest(key)) % _DIGEST_MOD

    def _digest_discard(self, key: tuple[int, ...]) -> None:
        counts = self._digest_counts
        n = counts[key]
        if n == 1:
            del counts[key]
            self._digest_sum = (self._digest_sum - clause_digest(key)) % _DIGEST_MOD
        else:
            counts[key] = n - 1

    def fingerprint(self) -> str:
        """Hex fp-v2 fingerprint of the deduplicated clause set.

        The first call initializes the per-clause digest state in
        O(clauses); every EC edit afterwards maintains it in O(changed
        clauses), so re-fingerprinting along a change chain is O(1) per
        query.  The same invariants as fp-v1 hold: clause order, clause
        multiplicity, and free variables never matter, and the empty
        clause is distinguished.
        """
        if self._digest_counts is None:
            self._init_digests()
        h = hashlib.sha256(FP2_VERSION)
        h.update(len(self._digest_counts).to_bytes(8, "big"))
        h.update(self._digest_sum.to_bytes(_DIGEST_BYTES, "big"))
        return h.hexdigest()

    # ------------------------------------------------------------------
    # copies and conversions
    # ------------------------------------------------------------------
    def copy(self) -> "PackedCNF":
        """An independent copy (array slicing + dict copy — all C-speed)."""
        out = PackedCNF()
        out.lits = array("i", self.lits)
        out.offsets = array("i", self.offsets)
        out._varset = set(self._varset)
        out._vars_sorted = self._vars_sorted
        out._num_empty = self._num_empty
        if self._digest_counts is not None:
            out._digest_counts = dict(self._digest_counts)
            out._digest_sum = self._digest_sum
        return out

    def to_formula(self) -> "CNFFormula":
        """Materialize a :class:`CNFFormula` (for backends without a packed
        entry point).  The packed kernel of the result is this object's
        copy, so converting back is free."""
        from repro.cnf.clause import Clause
        from repro.cnf.formula import CNFFormula

        out = CNFFormula()
        out._clauses = [
            Clause(cl, allow_tautology=True) for cl in self.iter_clauses()
        ]
        out._variables = set(self._varset)
        out._packed = self.copy()
        return out

    # ------------------------------------------------------------------
    # wire format
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to the compact wire format (see module docstring)."""
        variables = array("i", self.variables)
        header = _HEADER.pack(
            _MAGIC, _WIRE_VERSION, len(variables), self.num_clauses, len(self.lits)
        )
        parts = [header, variables.tobytes(), self.offsets.tobytes(), self.lits.tobytes()]
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "PackedCNF":
        """Deserialize a :meth:`to_bytes` payload.

        Raises:
            CNFError: on a bad magic, version, or truncated payload.
        """
        if len(payload) < _HEADER.size:
            raise CNFError("packed CNF payload truncated (no header)")
        magic, version, nvars, nclauses, nlits = _HEADER.unpack_from(payload)
        if magic != _MAGIC:
            raise CNFError(f"bad packed CNF magic {magic!r}")
        if version != _WIRE_VERSION:
            raise CNFError(f"unsupported packed CNF version {version}")
        item = array("i").itemsize
        expected = _HEADER.size + item * (nvars + nclauses + 1 + nlits)
        if len(payload) != expected:
            raise CNFError(
                f"packed CNF payload is {len(payload)} bytes, expected {expected}"
            )
        out = cls()
        pos = _HEADER.size
        variables = array("i")
        variables.frombytes(payload[pos : pos + item * nvars])
        pos += item * nvars
        offsets = array("i")
        offsets.frombytes(payload[pos : pos + item * (nclauses + 1)])
        pos += item * (nclauses + 1)
        lits = array("i")
        lits.frombytes(payload[pos:])
        # The offset index must be internally consistent, not just the
        # right length: solvers trust these spans blindly, and a mangled
        # clause set could otherwise produce a silently wrong (trusted,
        # never model-verified) UNSAT verdict instead of a parse error.
        if offsets[0] != 0 or offsets[-1] != nlits:
            raise CNFError(
                "packed CNF offsets inconsistent with the literal count"
            )
        empties = 0
        for i in range(nclauses):
            if offsets[i] > offsets[i + 1]:
                raise CNFError("packed CNF clause offsets are not monotonic")
            if offsets[i] == offsets[i + 1]:
                empties += 1
        out.lits = lits
        out.offsets = offsets
        out._varset = set(variables)
        out._vars_sorted = tuple(variables)
        out._num_empty = empties
        return out

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_clauses

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedCNF):
            return NotImplemented
        return (
            self.lits == other.lits
            and self.offsets == other.offsets
            and self._varset == other._varset
        )

    def __repr__(self) -> str:
        return (
            f"PackedCNF(num_vars={self.num_vars}, "
            f"num_clauses={self.num_clauses}, num_literals={self.num_literals})"
        )
