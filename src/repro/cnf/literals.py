"""DIMACS-style integer literals.

A literal is a non-zero integer.  Positive ``v`` denotes the uncomplemented
variable ``v``; negative ``-v`` denotes its complement.  Variable indices
start at 1, matching the DIMACS CNF convention, so literal 0 is reserved as
the DIMACS clause terminator and is never a valid literal.
"""

from __future__ import annotations

from repro.errors import LiteralError, VariableError


def check_literal(lit: int) -> int:
    """Return *lit* unchanged if it is a valid literal, else raise.

    Raises:
        LiteralError: if *lit* is zero or not an ``int``.
    """
    if not isinstance(lit, int) or isinstance(lit, bool):
        raise LiteralError(f"literal must be an int, got {lit!r}")
    if lit == 0:
        raise LiteralError("0 is not a valid literal (reserved DIMACS terminator)")
    return lit


def check_variable(var: int) -> int:
    """Return *var* unchanged if it is a valid variable index, else raise."""
    if not isinstance(var, int) or isinstance(var, bool):
        raise VariableError(f"variable must be an int, got {var!r}")
    if var <= 0:
        raise VariableError(f"variable indices start at 1, got {var}")
    return var


def literal(var: int, positive: bool = True) -> int:
    """Build a literal from a variable index and a polarity.

    >>> literal(3), literal(3, positive=False)
    (3, -3)
    """
    check_variable(var)
    return var if positive else -var


def variable_of(lit: int) -> int:
    """Return the variable index underlying a literal.

    >>> variable_of(-7)
    7
    """
    check_literal(lit)
    return abs(lit)


def complement(lit: int) -> int:
    """Return the complemented literal.

    >>> complement(4), complement(-4)
    (-4, 4)
    """
    check_literal(lit)
    return -lit


def is_positive(lit: int) -> bool:
    """True if the literal is the uncomplemented form of its variable."""
    check_literal(lit)
    return lit > 0


def is_negative(lit: int) -> bool:
    """True if the literal is the complemented form of its variable."""
    check_literal(lit)
    return lit < 0


def literal_to_str(lit: int) -> str:
    """Human-readable form used in docs and error messages.

    >>> literal_to_str(5), literal_to_str(-5)
    ("v5", "v5'")
    """
    check_literal(lit)
    return f"v{abs(lit)}" + ("'" if lit < 0 else "")


def evaluate_literal(lit: int, value: bool) -> bool:
    """Evaluate a literal given the truth value of its variable."""
    check_literal(lit)
    return value if lit > 0 else not value
